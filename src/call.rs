//! The typed host↔guest call boundary.
//!
//! The paper brings *typed* interoperability to the guest↔guest boundary;
//! this module extends the same discipline to the embedder boundary, in
//! the wasmtime `TypedFunc` style:
//!
//! * [`HostVal`] — the public value type crossing the boundary: 32/64-bit
//!   integers with the signedness RichWasm's `i32`/`u32`/`i64`/`u64`
//!   numeric types distinguish.
//! * [`WasmParams`] / [`WasmResults`] — sealed conversion traits mapping
//!   Rust types (`i32`, `i64`, `u32`, `u64`, `()` and tuples up to arity
//!   4) to and from boundary values.
//! * [`TypedFunc`] — a pre-resolved, pre-checked handle to a guest
//!   export, obtained with [`Instance::get_typed_func`]. The signature is
//!   validated **once**, against the artifact's *checked* RichWasm types;
//!   [`TypedFunc::call`] then performs no name lookup and no signature
//!   re-check — just value conversion, execution on every live backend,
//!   and (in differential mode) cross-backend agreement.
//! * [`HostSig`] plus the host-function machinery behind
//!   [`ModuleSet::host_fn`](crate::engine::ModuleSet::host_fn): one Rust
//!   closure over [`HostVal`]s, installed into *both* backends at
//!   instantiation so differential checking keeps running across host
//!   calls (see `DESIGN.md` §6 for the record/replay scheme that makes a
//!   stateful host observable exactly once per invocation).

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

use richwasm::syntax::{FunType, NumType, Pretype, Type, Value};
use richwasm_wasm::ast::{FuncType, ValType};
use richwasm_wasm::exec::{Val, WasmTrap};

use crate::engine::{Instance, PipelineError, PipelineErrorKind, Stage};

/// A value crossing the host↔guest boundary.
///
/// Signedness is tracked because RichWasm's type system distinguishes
/// `i32` from `u32` (and `i64` from `u64`); standard Wasm does not, so
/// values arriving from the Wasm backend carry the signedness of the
/// *declared* guest type. Two boundary values agree when they have the
/// same width and the same bit pattern — signedness is a view, not data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostVal {
    /// A signed 32-bit integer.
    I32(i32),
    /// An unsigned 32-bit integer.
    U32(u32),
    /// A signed 64-bit integer.
    I64(i64),
    /// An unsigned 64-bit integer.
    U64(u64),
}

/// The type of a [`HostVal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostValType {
    /// Signed 32-bit integer.
    I32,
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 64-bit integer.
    U64,
}

impl fmt::Display for HostValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HostValType::I32 => "i32",
            HostValType::U32 => "u32",
            HostValType::I64 => "i64",
            HostValType::U64 => "u64",
        })
    }
}

impl HostValType {
    /// The type's width in bits (32 or 64).
    pub fn width_bits(self) -> u32 {
        match self {
            HostValType::I32 | HostValType::U32 => 32,
            HostValType::I64 | HostValType::U64 => 64,
        }
    }

    /// Two boundary types are interchangeable when they have the same
    /// width: neither backend can observe signedness of a bit pattern,
    /// so `i32`↔`u32` and `i64`↔`u64` convert freely.
    pub fn compatible(self, other: HostValType) -> bool {
        self.width_bits() == other.width_bits()
    }

    /// The RichWasm numeric type this boundary type corresponds to.
    pub(crate) fn num_type(self) -> NumType {
        match self {
            HostValType::I32 => NumType::I32,
            HostValType::U32 => NumType::U32,
            HostValType::I64 => NumType::I64,
            HostValType::U64 => NumType::U64,
        }
    }

    /// The Wasm value type this boundary type lowers to.
    pub(crate) fn val_type(self) -> ValType {
        match self {
            HostValType::I32 | HostValType::U32 => ValType::I32,
            HostValType::I64 | HostValType::U64 => ValType::I64,
        }
    }
}

impl HostVal {
    /// The value's type.
    pub fn ty(&self) -> HostValType {
        match self {
            HostVal::I32(_) => HostValType::I32,
            HostVal::U32(_) => HostValType::U32,
            HostVal::I64(_) => HostValType::I64,
            HostVal::U64(_) => HostValType::U64,
        }
    }

    /// The raw bit pattern, zero-extended to 64 bits (32-bit values use
    /// the low half; signed values are *not* sign-extended, mirroring how
    /// RichWasm stores numeric payloads).
    pub fn bits(&self) -> u64 {
        match self {
            HostVal::I32(v) => *v as u32 as u64,
            HostVal::U32(v) => *v as u64,
            HostVal::I64(v) => *v as u64,
            HostVal::U64(v) => *v,
        }
    }

    /// Reinterprets the bit pattern at another boundary type of the same
    /// width. `None` on a width mismatch.
    pub fn cast(self, to: HostValType) -> Option<HostVal> {
        if !self.ty().compatible(to) {
            return None;
        }
        Some(HostVal::from_bits(to, self.bits()))
    }

    /// Builds a value of type `t` from raw bits (low 32 used for 32-bit
    /// types).
    pub fn from_bits(t: HostValType, bits: u64) -> HostVal {
        match t {
            HostValType::I32 => HostVal::I32(bits as u32 as i32),
            HostValType::U32 => HostVal::U32(bits as u32),
            HostValType::I64 => HostVal::I64(bits as i64),
            HostValType::U64 => HostVal::U64(bits),
        }
    }

    /// The RichWasm value with this bit pattern at the *declared* guest
    /// type `t` (same width required, checked by the caller).
    pub(crate) fn to_value_as(self, t: HostValType) -> Value {
        Value::Num(t.num_type(), self.bits())
    }

    /// The Wasm runtime value (signedness erases).
    pub(crate) fn to_wasm_val(self) -> Val {
        match self.ty().width_bits() {
            32 => Val::I32(self.bits() as u32),
            _ => Val::I64(self.bits()),
        }
    }

    /// Reads a RichWasm numeric value back as a boundary value. `None`
    /// for floats and non-numeric values.
    pub(crate) fn of_value(v: &Value) -> Option<HostVal> {
        match v {
            Value::Num(NumType::I32, bits) => Some(HostVal::I32(*bits as u32 as i32)),
            Value::Num(NumType::U32, bits) => Some(HostVal::U32(*bits as u32)),
            Value::Num(NumType::I64, bits) => Some(HostVal::I64(*bits as i64)),
            Value::Num(NumType::U64, bits) => Some(HostVal::U64(*bits)),
            _ => None,
        }
    }

    /// Reads a Wasm runtime value at the declared boundary type `want`
    /// (which supplies the signedness Wasm erased). `None` on a width
    /// mismatch or a float.
    pub(crate) fn of_wasm_val(v: Val, want: HostValType) -> Option<HostVal> {
        match (v, want.width_bits()) {
            (Val::I32(bits), 32) => Some(HostVal::from_bits(want, bits as u64)),
            (Val::I64(bits), 64) => Some(HostVal::from_bits(want, bits)),
            _ => None,
        }
    }
}

impl fmt::Display for HostVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostVal::I32(v) => write!(f, "{v}: i32"),
            HostVal::U32(v) => write!(f, "{v}: u32"),
            HostVal::I64(v) => write!(f, "{v}: i64"),
            HostVal::U64(v) => write!(f, "{v}: u64"),
        }
    }
}

/// Flattens RichWasm result values to boundary values the way the
/// compiler flattens result types: `unit` erases, 32/64-bit integers map
/// directly. `None` when any value has no integer-scalar representation
/// (floats, references, tuples, …).
pub(crate) fn flatten_values_to_host(values: &[Value]) -> Option<Vec<HostVal>> {
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        match v {
            Value::Unit => {}
            _ => out.push(HostVal::of_value(v)?),
        }
    }
    Some(out)
}

/// Converts Wasm results to boundary values with no type information:
/// integers read as signed. `None` when a float is present.
pub(crate) fn wasm_vals_to_host_raw(vals: &[Val]) -> Option<Vec<HostVal>> {
    vals.iter()
        .map(|v| match v {
            Val::I32(bits) => Some(HostVal::I32(*bits as i32)),
            Val::I64(bits) => Some(HostVal::I64(*bits as i64)),
            Val::F32(_) | Val::F64(_) => None,
        })
        .collect()
}

/// Bit-level agreement: same length, and pairwise same width + same bit
/// pattern (signedness is a view, not data — see [`HostVal`]).
pub(crate) fn host_vals_agree(a: &[HostVal], b: &[HostVal]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.ty().compatible(y.ty()) && x.bits() == y.bits())
}

/// A fixed-capacity, stack-allocated buffer of boundary values. The
/// conversion traits cap aggregate arity at 4, so the typed call path
/// never needs a heap allocation for parameters or results.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct HostValBuf {
    buf: [HostVal; 4],
    len: usize,
}

impl Default for HostValBuf {
    fn default() -> Self {
        HostValBuf {
            buf: [HostVal::I32(0); 4],
            len: 0,
        }
    }
}

impl HostValBuf {
    /// An empty buffer.
    pub fn new() -> HostValBuf {
        HostValBuf::default()
    }

    /// Appends a value; panics past capacity 4 (the sealed traits make
    /// that unreachable).
    pub fn push(&mut self, v: HostVal) {
        self.buf[self.len] = v;
        self.len += 1;
    }

    /// The filled prefix.
    pub fn as_slice(&self) -> &[HostVal] {
        &self.buf[..self.len]
    }
}

/// [`flatten_values_to_host`] into a stack buffer; additionally `None`
/// when more than 4 scalars come out (the typed path validated arity ≤ 4
/// at handle creation).
fn flatten_values_to_buf(values: &[Value]) -> Option<HostValBuf> {
    let mut out = HostValBuf::new();
    for v in values {
        match v {
            Value::Unit => {}
            _ => {
                if out.len == 4 {
                    return None;
                }
                out.push(HostVal::of_value(v)?);
            }
        }
    }
    Some(out)
}

/// [`wasm_vals_to_host`] into a stack buffer (`want.len() ≤ 4` by
/// construction of the typed path).
fn wasm_vals_to_buf(vals: &[Val], want: &[HostValType]) -> Option<HostValBuf> {
    if vals.len() != want.len() || want.len() > 4 {
        return None;
    }
    let mut out = HostValBuf::new();
    for (v, t) in vals.iter().zip(want) {
        out.push(HostVal::of_wasm_val(*v, *t)?);
    }
    Some(out)
}

mod sealed {
    /// Seals the conversion traits: the set of boundary types is fixed by
    /// the crate (adding one is an API change, not an impl).
    pub trait Sealed {}
}

/// A single Rust scalar crossing the boundary (`i32`, `u32`, `i64`,
/// `u64`). Sealed; see [`WasmParams`]/[`WasmResults`] for the aggregate
/// forms.
pub trait WasmTy: sealed::Sealed + Copy + Send + Sync + 'static {
    /// The boundary type this Rust type converts through.
    const TYPE: HostValType;

    /// Converts into a boundary value.
    fn into_host(self) -> HostVal;

    /// Converts back from a boundary value. `None` on a width mismatch;
    /// same-width signedness differences convert bit-exactly (Wasm
    /// cannot observe them).
    fn from_host(v: HostVal) -> Option<Self>;
}

/// Internal exact-variant extraction used by the `WasmTy` macro below.
trait FromExact: Sized {
    fn from_exact(v: HostVal) -> Self;
}

macro_rules! impl_from_exact {
    ($($rust:ty => $variant:ident),* $(,)?) => {$(
        impl FromExact for $rust {
            fn from_exact(v: HostVal) -> Self {
                match v {
                    HostVal::$variant(x) => x,
                    _ => unreachable!("from_bits produced the wrong variant"),
                }
            }
        }
    )*};
}

impl_from_exact!(i32 => I32, u32 => U32, i64 => I64, u64 => U64);

macro_rules! impl_wasm_ty {
    ($($rust:ty => $variant:ident),* $(,)?) => {$(
        impl sealed::Sealed for $rust {}
        impl WasmTy for $rust {
            const TYPE: HostValType = HostValType::$variant;
            fn into_host(self) -> HostVal {
                HostVal::$variant(self)
            }
            fn from_host(v: HostVal) -> Option<Self> {
                if v.ty().compatible(Self::TYPE) {
                    Some(<$rust as FromExact>::from_exact(HostVal::from_bits(
                        Self::TYPE,
                        v.bits(),
                    )))
                } else {
                    None
                }
            }
        }
    )*};
}

impl_wasm_ty!(i32 => I32, u32 => U32, i64 => I64, u64 => U64);

/// Rust types usable as the parameter list of a typed guest call: `()`,
/// any single [`WasmTy`], and tuples of up to four. Sealed.
pub trait WasmParams: sealed::Sealed {
    /// The boundary types of the parameters, left to right.
    fn valtypes() -> Vec<HostValType>;

    /// Appends the converted boundary values, left to right.
    fn into_host_vals(self, out: &mut HostValBuf);
}

/// Rust types usable as the result of a typed guest call: `()`, any
/// single [`WasmTy`], and tuples of up to four. Sealed.
pub trait WasmResults: sealed::Sealed + Sized {
    /// The boundary types of the results, left to right.
    fn valtypes() -> Vec<HostValType>;

    /// Converts back from the agreed boundary values. `None` on arity or
    /// width mismatch.
    fn from_host_vals(vals: &[HostVal]) -> Option<Self>;
}

impl sealed::Sealed for () {}

impl WasmParams for () {
    fn valtypes() -> Vec<HostValType> {
        Vec::new()
    }
    fn into_host_vals(self, _out: &mut HostValBuf) {}
}

impl WasmResults for () {
    fn valtypes() -> Vec<HostValType> {
        Vec::new()
    }
    fn from_host_vals(vals: &[HostVal]) -> Option<Self> {
        vals.is_empty().then_some(())
    }
}

impl<T: WasmTy> WasmParams for T {
    fn valtypes() -> Vec<HostValType> {
        vec![T::TYPE]
    }
    fn into_host_vals(self, out: &mut HostValBuf) {
        out.push(self.into_host());
    }
}

impl<T: WasmTy> WasmResults for T {
    fn valtypes() -> Vec<HostValType> {
        vec![T::TYPE]
    }
    fn from_host_vals(vals: &[HostVal]) -> Option<Self> {
        match vals {
            [v] => T::from_host(*v),
            _ => None,
        }
    }
}

macro_rules! impl_tuple_conversions {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: WasmTy),+> sealed::Sealed for ($($t,)+) {}

        impl<$($t: WasmTy),+> WasmParams for ($($t,)+) {
            fn valtypes() -> Vec<HostValType> {
                vec![$($t::TYPE),+]
            }
            fn into_host_vals(self, out: &mut HostValBuf) {
                $(out.push(self.$idx.into_host());)+
            }
        }

        impl<$($t: WasmTy),+> WasmResults for ($($t,)+) {
            fn valtypes() -> Vec<HostValType> {
                vec![$($t::TYPE),+]
            }
            fn from_host_vals(vals: &[HostVal]) -> Option<Self> {
                let n = [$(stringify!($t)),+].len();
                if vals.len() != n {
                    return None;
                }
                Some(($($t::from_host(vals[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple_conversions! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// The declared signature of a host function: boundary types only, which
/// is exactly what the lowering can represent at the Wasm boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSig {
    /// Parameter types, left to right.
    pub params: Vec<HostValType>,
    /// Result types, left to right.
    pub results: Vec<HostValType>,
}

impl HostSig {
    /// Builds a signature.
    pub fn new(
        params: impl IntoIterator<Item = HostValType>,
        results: impl IntoIterator<Item = HostValType>,
    ) -> HostSig {
        HostSig {
            params: params.into_iter().collect(),
            results: results.into_iter().collect(),
        }
    }

    /// The RichWasm function type guest imports must declare to link
    /// against this host function.
    pub fn to_fun_type(&self) -> FunType {
        FunType::mono(
            self.params
                .iter()
                .map(|t| Type::num(t.num_type()))
                .collect(),
            self.results
                .iter()
                .map(|t| Type::num(t.num_type()))
                .collect(),
        )
    }

    /// The Wasm function type of the lowered boundary.
    pub(crate) fn to_wasm_type(&self) -> FuncType {
        FuncType {
            params: self.params.iter().map(|t| t.val_type()).collect(),
            results: self.results.iter().map(|t| t.val_type()).collect(),
        }
    }
}

impl fmt::Display for HostSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let list = |f: &mut fmt::Formatter<'_>, ts: &[HostValType]| -> fmt::Result {
            write!(f, "[")?;
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, "]")
        };
        list(f, &self.params)?;
        write!(f, " -> ")?;
        list(f, &self.results)
    }
}

/// The Rust side of an engine-level host function: boundary values in,
/// boundary values (or a guest-visible trap message) out. `Fn` so one
/// closure serves both backends and any number of instances; stateful
/// hosts use interior mutability.
pub type HostCallback = Arc<dyn Fn(&[HostVal]) -> Result<Vec<HostVal>, String> + Send + Sync>;

/// Per-instance record/replay channel between the two backends'
/// installations of one host function (differential mode only): the
/// RichWasm backend runs first and *records* each call's outcome; the
/// Wasm backend *replays* it instead of re-invoking the closure. Host
/// side effects therefore happen once per invocation, and a stateful
/// host cannot desynchronise the backends. See `DESIGN.md` §6.
pub(crate) type ReplayLog = Arc<Mutex<VecDeque<Result<Vec<HostVal>, String>>>>;

/// Converts guest arguments to boundary values per the declared
/// signature (defensive: the typed linker already guaranteed the types).
fn richwasm_args_to_host(args: &[Value], sig: &HostSig) -> Result<Vec<HostVal>, String> {
    if args.len() != sig.params.len() {
        return Err(format!(
            "host function received {} arguments, its signature declares {}",
            args.len(),
            sig.params.len()
        ));
    }
    args.iter()
        .zip(&sig.params)
        .map(|(a, want)| {
            HostVal::of_value(a)
                .filter(|hv| hv.ty().compatible(*want))
                .map(|hv| HostVal::from_bits(*want, hv.bits()))
                .ok_or_else(|| format!("host argument {a} does not match declared {want}"))
        })
        .collect()
}

/// Checks and converts host results back to guest values per the
/// declared signature.
fn host_results_to_richwasm(out: &[HostVal], sig: &HostSig) -> Result<Vec<Value>, String> {
    check_host_results(out, sig)?;
    Ok(out
        .iter()
        .zip(&sig.results)
        .map(|(hv, want)| hv.to_value_as(*want))
        .collect())
}

fn check_host_results(out: &[HostVal], sig: &HostSig) -> Result<(), String> {
    if out.len() != sig.results.len() {
        return Err(format!(
            "host function returned {} values, its signature declares {}",
            out.len(),
            sig.results.len()
        ));
    }
    for (hv, want) in out.iter().zip(&sig.results) {
        if !hv.ty().compatible(*want) {
            return Err(format!(
                "host function returned {hv}, its signature declares {want}"
            ));
        }
    }
    Ok(())
}

/// Builds the RichWasm-interpreter installation of a host function. With
/// a replay log (differential mode) every outcome is recorded for the
/// Wasm backend to consume.
pub(crate) fn richwasm_host_fn(
    sig: HostSig,
    imp: HostCallback,
    log: Option<ReplayLog>,
) -> richwasm::interp::HostImpl {
    Arc::new(move |args: &[Value]| {
        let hv = richwasm_args_to_host(args, &sig)?;
        let outcome = imp(&hv).and_then(|out| {
            check_host_results(&out, &sig)?;
            Ok(out)
        });
        if let Some(log) = &log {
            log.lock()
                .expect("host replay log poisoned")
                .push_back(outcome.clone());
        }
        host_results_to_richwasm(&outcome?, &sig)
    })
}

/// Builds the Wasm-interpreter installation of a host function. With a
/// replay log (differential mode) it consumes recorded outcomes instead
/// of re-invoking the closure; an empty log (Wasm-only execution, or a
/// lowering bug making extra calls) falls back to invoking directly.
pub(crate) fn wasm_host_fn(
    sig: HostSig,
    imp: HostCallback,
    log: Option<ReplayLog>,
) -> richwasm_wasm::exec::HostFn {
    Arc::new(move |args: &[Val]| {
        let replayed = log
            .as_ref()
            .and_then(|log| log.lock().expect("host replay log poisoned").pop_front());
        let outcome = match replayed {
            Some(outcome) => outcome,
            None => {
                let hv: Option<Vec<HostVal>> = args
                    .iter()
                    .zip(&sig.params)
                    .map(|(v, t)| HostVal::of_wasm_val(*v, *t))
                    .collect();
                let hv = hv.filter(|hv| hv.len() == args.len() && args.len() == sig.params.len());
                match hv {
                    Some(hv) => imp(&hv).and_then(|out| {
                        check_host_results(&out, &sig)?;
                        Ok(out)
                    }),
                    None => Err("host arguments do not match the declared signature".into()),
                }
            }
        };
        match outcome {
            Ok(out) => Ok(out.iter().map(|hv| hv.to_wasm_val()).collect()),
            Err(msg) => Err(WasmTrap(format!("host function error: {msg}"))),
        }
    })
}

/// How one declared RichWasm parameter appears at the boundary: erased
/// (`unit`) or one integer scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParamSlot {
    /// A `unit` parameter: erased on the Wasm side, `Value::Unit` on the
    /// RichWasm side.
    Unit,
    /// One integer scalar of the declared boundary type.
    Scalar(HostValType),
}

/// Classifies a checked RichWasm type for the typed boundary. `Err` names
/// the reason (floats and aggregate/reference types have no typed-handle
/// representation yet).
fn classify_type(t: &Type) -> Result<ParamSlot, String> {
    match &*t.pre {
        Pretype::Unit => Ok(ParamSlot::Unit),
        Pretype::Num(NumType::I32) => Ok(ParamSlot::Scalar(HostValType::I32)),
        Pretype::Num(NumType::U32) => Ok(ParamSlot::Scalar(HostValType::U32)),
        Pretype::Num(NumType::I64) => Ok(ParamSlot::Scalar(HostValType::I64)),
        Pretype::Num(NumType::U64) => Ok(ParamSlot::Scalar(HostValType::U64)),
        other => Err(format!(
            "type `{other}` has no typed-call representation (32/64-bit integers and unit only)"
        )),
    }
}

fn fmt_valtypes(ts: &[HostValType]) -> String {
    let mut s = String::from("(");
    for (i, t) in ts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&t.to_string());
    }
    s.push(')');
    s
}

/// A pre-resolved, pre-checked handle to a guest export: the typed-call
/// half of the boundary. Create with [`Instance::get_typed_func`]; call
/// with [`TypedFunc::call`]. The handle stays valid across
/// [`Instance::reset`] and works with any instance of the *same
/// artifact* (instantiation is deterministic, so resolved indices
/// transfer); using it with a different artifact's instance is an error,
/// not undefined behaviour.
pub struct TypedFunc<P, R> {
    key: crate::engine::CacheKey,
    module: String,
    func: String,
    /// Pre-resolved RichWasm target: (defining instance, function index)
    /// of the closure behind the export.
    rw: Option<(u32, u32)>,
    /// Pre-resolved Wasm target: store address of the export.
    wasm_addr: Option<usize>,
    /// Declared parameter shape (unit slots + scalars, in order).
    shape: Vec<ParamSlot>,
    /// Declared result scalars (unit results erased).
    result_scalars: Vec<HostValType>,
    _marker: PhantomData<fn(P) -> R>,
}

impl<P, R> fmt::Debug for TypedFunc<P, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypedFunc({}.{} @ {})", self.module, self.func, self.key)
    }
}

impl<P, R> Clone for TypedFunc<P, R> {
    fn clone(&self) -> Self {
        TypedFunc {
            key: self.key,
            module: self.module.clone(),
            func: self.func.clone(),
            rw: self.rw,
            wasm_addr: self.wasm_addr,
            shape: self.shape.clone(),
            result_scalars: self.result_scalars.clone(),
            _marker: PhantomData,
        }
    }
}

fn typed_err(module: &str, msg: String) -> PipelineError {
    PipelineError::new(
        Stage::Execute,
        Some(module),
        PipelineErrorKind::Unsupported(msg),
    )
}

impl Instance {
    /// Resolves export `func` of `module` to a [`TypedFunc`] handle,
    /// validating the Rust-side signature `P -> R` against the
    /// artifact's **checked** RichWasm function type once — calls through
    /// the handle perform no lookup and no re-check.
    ///
    /// Signedness is checked up to width: `i32`↔`u32` (and `i64`↔`u64`)
    /// interchange freely, because no backend can observe the difference
    /// on a bit pattern. `unit` parameters/results erase, exactly as the
    /// compiler erases them.
    ///
    /// # Errors
    ///
    /// A [`Stage::Execute`] error naming both the Rust-side signature and
    /// the checked RichWasm type on any mismatch (unknown module/export,
    /// polymorphic export, non-scalar types, arity or width
    /// disagreement), and when no backend is live.
    pub fn get_typed_func<P: WasmParams, R: WasmResults>(
        &self,
        module: &str,
        func: &str,
    ) -> Result<TypedFunc<P, R>, PipelineError> {
        let artifact = self.artifact();
        let Some(m) = artifact.find_module(module) else {
            return Err(typed_err(
                module,
                format!("no module named `{module}` in this artifact"),
            ));
        };
        let Some(fidx) = m.find_export(func) else {
            return Err(typed_err(
                module,
                format!("module `{module}` has no function export `{func}`"),
            ));
        };
        let ty = m.funcs[fidx as usize].ty();
        if !ty.quants.is_empty() {
            return Err(typed_err(
                module,
                format!(
                    "export `{module}.{func}` is polymorphic ({ty}); typed handles require a \
                     monomorphic signature (use `invoke_instantiated` on the runtime instead)"
                ),
            ));
        }

        let mut shape = Vec::with_capacity(ty.arrow.params.len());
        let mut param_scalars = Vec::new();
        for p in &ty.arrow.params {
            let slot = classify_type(p).map_err(|why| {
                typed_err(module, format!("parameter of `{module}.{func}`: {why}"))
            })?;
            if let ParamSlot::Scalar(t) = slot {
                param_scalars.push(t);
            }
            shape.push(slot);
        }
        let mut result_scalars = Vec::new();
        for r in &ty.arrow.results {
            match classify_type(r)
                .map_err(|why| typed_err(module, format!("result of `{module}.{func}`: {why}")))?
            {
                ParamSlot::Unit => {}
                ParamSlot::Scalar(t) => result_scalars.push(t),
            }
        }

        let p_types = P::valtypes();
        if p_types.len() != param_scalars.len()
            || p_types
                .iter()
                .zip(&param_scalars)
                .any(|(a, b)| !a.compatible(*b))
        {
            return Err(typed_err(
                module,
                format!(
                    "signature mismatch for `{module}.{func}`: host-side parameters {} do not \
                     match the checked guest type {ty}",
                    fmt_valtypes(&p_types)
                ),
            ));
        }
        let r_types = R::valtypes();
        if r_types.len() != result_scalars.len()
            || r_types
                .iter()
                .zip(&result_scalars)
                .any(|(a, b)| !a.compatible(*b))
        {
            return Err(typed_err(
                module,
                format!(
                    "signature mismatch for `{module}.{func}`: host-side results {} do not \
                     match the checked guest type {ty}",
                    fmt_valtypes(&r_types)
                ),
            ));
        }

        // Resolve once, on both live backends. Resolution goes *through
        // the closure* on the RichWasm side, so a re-exported import
        // calls its defining module directly.
        let rw = self.richwasm.as_ref().and_then(|rt| {
            let mi = rt.instance_by_name(module)?;
            rt.store
                .insts
                .get(mi as usize)
                .and_then(|inst| inst.funcs.get(fidx as usize))
                .map(|cl| (cl.inst, cl.func))
        });
        let wasm_addr = self.wasm.as_ref().and_then(|linker| {
            let wi = linker.instance_by_name(module)?;
            linker.export_func_addr(wi, func)
        });
        if rw.is_none() && wasm_addr.is_none() {
            return Err(typed_err(
                module,
                "no live backend to resolve the typed handle against (both were extracted?)".into(),
            ));
        }

        Ok(TypedFunc {
            key: artifact.key(),
            module: module.to_string(),
            func: func.to_string(),
            rw,
            wasm_addr,
            shape,
            result_scalars,
            _marker: PhantomData,
        })
    }
}

impl<P: WasmParams, R: WasmResults> TypedFunc<P, R> {
    /// Calls the guest function with `params` on every live backend of
    /// `inst`, cross-checking in differential mode — semantically
    /// [`Instance::invoke`], minus the per-call name lookups, signature
    /// discovery, and untyped value plumbing.
    ///
    /// # Errors
    ///
    /// Execution failures ([`Stage::Execute`]), cross-backend
    /// disagreement ([`Stage::Differential`]), and use with an instance
    /// of a different artifact.
    pub fn call(&self, inst: &mut Instance, params: P) -> Result<R, PipelineError> {
        if inst.artifact().key() != self.key {
            return Err(typed_err(
                &self.module,
                format!(
                    "typed handle for artifact {} used with an instance of artifact {}",
                    self.key,
                    inst.artifact().key()
                ),
            ));
        }
        inst.begin_invocation();

        let mut hv = HostValBuf::new();
        params.into_host_vals(&mut hv);
        let hv = hv.as_slice();

        // RichWasm backend first: in differential mode it is the
        // recording side of any host functions.
        let rw_res = match (self.rw, &mut inst.richwasm) {
            (Some((mi, fi)), Some(rt)) => {
                let mut args = Vec::with_capacity(self.shape.len());
                let mut scalars = hv.iter();
                for slot in &self.shape {
                    match slot {
                        ParamSlot::Unit => args.push(Value::Unit),
                        ParamSlot::Scalar(t) => args.push(
                            scalars
                                .next()
                                .expect("arity validated at handle creation")
                                .to_value_as(*t),
                        ),
                    }
                }
                Some(rt.invoke_func(mi, fi, args).map_err(|e| {
                    PipelineError::new(
                        Stage::Execute,
                        Some(&self.module),
                        PipelineErrorKind::Runtime(e),
                    )
                }))
            }
            _ => None,
        };
        let wasm_res = match (self.wasm_addr, &mut inst.wasm) {
            (Some(addr), Some(linker)) => {
                let mut wargs = [Val::I32(0); 4];
                for (slot, v) in wargs.iter_mut().zip(hv) {
                    *slot = v.to_wasm_val();
                }
                Some(linker.invoke_addr(addr, &wargs[..hv.len()]).map_err(|e| {
                    PipelineError::new(
                        Stage::Execute,
                        Some(&self.module),
                        PipelineErrorKind::Wasm(e),
                    )
                }))
            }
            _ => None,
        };

        let agreed = self.reconcile(rw_res, wasm_res)?;
        R::from_host_vals(agreed.as_slice()).ok_or_else(|| {
            typed_err(
                &self.module,
                format!(
                    "result {} of `{}.{}` does not convert to the handle's result type",
                    fmt_valtypes(
                        &agreed
                            .as_slice()
                            .iter()
                            .map(HostVal::ty)
                            .collect::<Vec<_>>()
                    ),
                    self.module,
                    self.func
                ),
            )
        })
    }

    /// Cross-backend reconciliation, mirroring the string-keyed path:
    /// when both backends ran, both outcomes must agree bit-for-bit.
    fn reconcile(
        &self,
        rw_res: Option<Result<richwasm::interp::InvokeResult, PipelineError>>,
        wasm_res: Option<Result<Vec<Val>, PipelineError>>,
    ) -> Result<HostValBuf, PipelineError> {
        let module = self.module.as_str();
        match (rw_res, wasm_res) {
            (Some(Ok(ir)), Some(Ok(wr))) => {
                let a = flatten_values_to_buf(&ir.values).ok_or_else(|| {
                    typed_err(
                        module,
                        format!(
                            "result {:?} has no integer-scalar representation to compare",
                            ir.values
                        ),
                    )
                })?;
                let b = wasm_vals_to_buf(&wr, &self.result_scalars).ok_or_else(|| {
                    typed_err(
                        module,
                        format!("wasm result {wr:?} does not match the declared result scalars"),
                    )
                })?;
                if !host_vals_agree(a.as_slice(), b.as_slice()) {
                    return Err(PipelineError::new(
                        Stage::Differential,
                        Some(module),
                        PipelineErrorKind::Mismatch {
                            richwasm: format!("{:?}", ir.values),
                            wasm: format!("{wr:?}"),
                        },
                    ));
                }
                Ok(a)
            }
            // At least one side failed: the shared policy (trap
            // propagation vs `Mismatch`) lives next to `Instance::invoke`'s
            // comparison in the engine.
            (Some(rw), Some(wr)) => Err(crate::engine::reconcile_failures(
                module,
                rw.map(|ir| format!("{:?}", ir.values)),
                wr.map(|vals| format!("{vals:?}")),
            )),
            (Some(r), None) => {
                let ir = r?;
                flatten_values_to_buf(&ir.values).ok_or_else(|| {
                    typed_err(
                        module,
                        format!(
                            "result {:?} has no integer-scalar representation",
                            ir.values
                        ),
                    )
                })
            }
            (None, Some(r)) => {
                let wr = r?;
                wasm_vals_to_buf(&wr, &self.result_scalars).ok_or_else(|| {
                    typed_err(
                        module,
                        format!("wasm result {wr:?} does not match the declared result scalars"),
                    )
                })
            }
            (None, None) => Err(typed_err(
                module,
                "no live backend to call (both were extracted?)".into(),
            )),
        }
    }
}
