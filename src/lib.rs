//! Umbrella crate for the RichWasm reproduction workspace.
//!
//! Re-exports the component crates so root-level `examples/` and `tests/`
//! can exercise the entire pipeline: source languages (ML, L3) → RichWasm →
//! WebAssembly.
//!
//! Three top-level APIs drive the chain:
//!
//! * [`engine`] — the compile-once / run-many API. An [`Engine`] owns the
//!   configuration and a content-addressed artifact cache; compiling a
//!   module set yields an immutable, cheaply shareable [`Artifact`], and
//!   each [`Artifact::instantiate`](engine::Artifact::instantiate) call
//!   produces an independent live [`Instance`] for repeated invocation.
//!   For concurrent traffic, [`Artifact::pool`](engine::Artifact::pool)
//!   pre-instantiates an [`InstancePool`] that worker threads check
//!   instances out of (recycled through `reset` on checkin), and
//!   [`Engine::invoke_parallel`](engine::Engine::invoke_parallel) /
//!   [`InstancePool::invoke_batch`](engine::InstancePool::invoke_batch)
//!   drive whole batches across scoped threads.
//! * [`call`] — the typed host↔guest boundary over the engine: [`TypedFunc`]
//!   handles (signature checked once against the artifact's checked
//!   types, then lookup-free calls) and host functions
//!   ([`ModuleSet::host_fn`](engine::ModuleSet::host_fn)) installed into
//!   both backends so differential checking spans host calls.
//! * [`pipeline`] — the original one-shot [`Pipeline`] builder, now a
//!   thin facade over the engine (one full compile per `build`).
//! * [`server`] — open-loop serving on top of the engine: an
//!   [`EngineServer`] accepts jobs through bounded per-tenant queues
//!   (non-blocking submission, backpressure instead of unbounded
//!   queueing), runs them on a worker pool under a per-job fuel budget,
//!   and reports throughput/shed/tail-latency via [`ServerStats`].

pub mod call;
pub mod engine;
pub mod pipeline;
pub mod server;

pub use call::{HostSig, HostVal, HostValType, TypedFunc, WasmParams, WasmResults, WasmTy};
pub use engine::{
    Analysis, Artifact, CacheKey, CacheStats, Engine, EngineConfig, Exec, Instance, InstancePool,
    Invocation, Job, ModuleSet, PipelineError, PipelineErrorKind, PoolStats, PooledInstance,
    Source, Stage, Timings, WasmBytes, WasmTier,
};
pub use pipeline::{Pipeline, Program, Report, Run};
pub use richwasm;
pub use richwasm_analyze as analyze;
pub use richwasm_l3 as l3;
pub use richwasm_lower as lower;
pub use richwasm_ml as ml;
pub use richwasm_wasm as wasm;
pub use server::{
    EngineServer, JobError, JobOutcome, JobTicket, JobTiming, ServerConfig, ServerStats,
    SubmitError, TenantConfig,
};
