//! Umbrella crate for the RichWasm reproduction workspace.
//!
//! Re-exports the component crates so root-level `examples/` and `tests/`
//! can exercise the entire pipeline: source languages (ML, L3) → RichWasm →
//! WebAssembly.

pub mod pipeline;

pub use pipeline::{Exec, Pipeline, PipelineError, PipelineErrorKind, Stage};
pub use richwasm;
pub use richwasm_l3 as l3;
pub use richwasm_lower as lower;
pub use richwasm_ml as ml;
pub use richwasm_wasm as wasm;
