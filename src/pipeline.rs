//! The one-shot compatibility facade over the compile-once / run-many
//! [`engine`](crate::engine) API.
//!
//! A [`Pipeline`] accepts a mix of ML, L3, and raw RichWasm modules and
//! drives them through the whole chain the paper describes:
//!
//! ```text
//! frontend (ML §5 / L3 §5) → typecheck (§4) → lower (§6) → validate →
//! encode (.wasm) → execute (RichWasm interpreter §3 / Wasm interpreter)
//! ```
//!
//! Every stage is timed, and every failure is reported through one
//! diagnostic type, [`PipelineError`], carrying the stage and the source
//! module it arose in. Execution supports three modes ([`Exec`]): the
//! RichWasm interpreter, the lowered Wasm, or **differential** — run both
//! and fail on disagreement (the repo's standing erasure-correctness
//! check, experiment E5).
//!
//! Internally, `build` is exactly [`Engine::compile`] on a throwaway
//! engine followed by
//! [`Artifact::instantiate`](crate::engine::Artifact::instantiate) —
//! each `Pipeline` pays the full static pipeline once. Services that
//! invoke the same program repeatedly should hold an [`Engine`] instead
//! and reuse its cached [`Artifact`](crate::engine::Artifact)s.
//!
//! # Example
//!
//! ```
//! use richwasm_repro::pipeline::Pipeline;
//! use richwasm::syntax::*;
//!
//! let m = Module {
//!     funcs: vec![Func::Defined {
//!         exports: vec!["main".into()],
//!         ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
//!         locals: vec![],
//!         body: vec![Instr::i32(42)],
//!     }],
//!     ..Module::default()
//! };
//! let run = Pipeline::new().richwasm("m", m).run().unwrap();
//! assert_eq!(run.result.i32(), Some(42)); // both backends agreed
//! ```

use richwasm::interp::Runtime;
use richwasm::syntax::{self, Value};
use richwasm_l3::L3Module;
use richwasm_ml::MlModule;
use richwasm_wasm::exec::WasmLinker;

use crate::call::{HostSig, HostVal};
use crate::engine::{invoke_backends, Engine, EngineConfig, ModuleSet};

pub use crate::engine::{
    Analysis, Exec, Invocation, PipelineError, PipelineErrorKind, Source, Stage, Timings,
};

/// What `build` produced besides the executable program.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-stage wall-clock timings.
    pub timings: Timings,
    /// The standard `.wasm` encoding of every lowered module (empty in
    /// [`Exec::Interp`] mode). Includes the generated runtime module.
    pub binaries: Vec<(String, Vec<u8>)>,
}

/// A built program: instantiated on the requested backend(s), ready to
/// invoke exports.
#[derive(Debug)]
pub struct Program {
    /// The RichWasm interpreter with every module instantiated (present
    /// unless the pipeline ran in [`Exec::Wasm`] mode).
    pub richwasm: Option<Runtime>,
    /// The Wasm interpreter with every lowered module instantiated
    /// (present unless the pipeline ran in [`Exec::Interp`] mode).
    pub wasm: Option<WasmLinker>,
    /// Build artifacts and timings.
    pub report: Report,
    exec: Exec,
    entry: Option<String>,
    entry_func: String,
    /// Host-call record/replay channels inherited from the instance —
    /// cleared at the start of every [`Program::invoke`], so a one-sided
    /// failure cannot leak recorded outcomes into the next invocation.
    replay: Vec<crate::call::ReplayLog>,
}

/// A completed `run`: the built program plus the entry invocation result.
#[derive(Debug)]
pub struct Run {
    /// The built program (for further invocations or store inspection).
    pub program: Program,
    /// The result of invoking `main` on the entry module.
    pub result: Invocation,
}

/// Builder for the five-stage compilation path.
///
/// See the [module documentation](self) for an example.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    set: ModuleSet,
    config: EngineConfig,
}

impl Pipeline {
    /// An empty pipeline in differential mode with type checking on.
    pub fn new() -> Pipeline {
        Pipeline {
            set: ModuleSet::new(),
            config: EngineConfig::new(),
        }
    }

    /// Adds an ML source module under `name`.
    pub fn ml(mut self, name: impl Into<String>, m: MlModule) -> Self {
        self.set = self.set.ml(name, m);
        self
    }

    /// Adds an L3 source module under `name`.
    pub fn l3(mut self, name: impl Into<String>, m: L3Module) -> Self {
        self.set = self.set.l3(name, m);
        self
    }

    /// Adds a raw RichWasm module under `name`.
    pub fn richwasm(mut self, name: impl Into<String>, m: syntax::Module) -> Self {
        self.set = self.set.richwasm(name, m);
        self
    }

    /// Adds a precompiled standard `.wasm` binary under `name` (decoded
    /// and re-validated, never trusted). Requires [`Exec::Wasm`]; see
    /// [`ModuleSet::wasm_module`].
    pub fn wasm_module(mut self, name: impl Into<String>, bytes: impl Into<Vec<u8>>) -> Self {
        self.set = self.set.wasm_module(name, bytes);
        self
    }

    /// Selects the execution mode (default: [`Exec::Differential`]).
    pub fn exec(mut self, exec: Exec) -> Self {
        self.config = self.config.exec(exec);
        self
    }

    /// Shorthand for `exec(Exec::Interp)`.
    pub fn interp_only(self) -> Self {
        self.exec(Exec::Interp)
    }

    /// Toggles the RichWasm type check (default: on). Turning it off
    /// reproduces the paper's "world without RichWasm types" contrast:
    /// faults then surface only dynamically.
    pub fn typecheck(mut self, on: bool) -> Self {
        self.config = self.config.typecheck(on);
        self
    }

    /// Runs a GC every `n` interpreter steps (default: only on demand).
    pub fn auto_gc_every(mut self, n: u64) -> Self {
        self.config = self.config.auto_gc_every(n);
        self
    }

    /// Selects the static-analysis policy applied at build time (see
    /// [`Analysis`]); defaults to [`Analysis::Warn`].
    pub fn analysis(mut self, analysis: Analysis) -> Self {
        self.config = self.config.analysis(analysis);
        self
    }

    /// Caps interpreter steps per invocation.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.config = self.config.fuel(fuel);
        self
    }

    /// Names the module whose entry function [`Pipeline::run`] invokes.
    /// Defaults to the only module when exactly one was added.
    pub fn entry(mut self, name: impl Into<String>) -> Self {
        self.set = self.set.entry(name);
        self
    }

    /// Names the exported function [`Pipeline::run`] invokes on the entry
    /// module (default `"main"`).
    pub fn entry_func(mut self, name: impl Into<String>) -> Self {
        self.set = self.set.entry_func(name);
        self
    }

    /// Registers a host function, exposed to guests as export `name` of a
    /// host module named `module` and installed into both backends at
    /// build time. See [`ModuleSet::host_fn`].
    pub fn host_fn(
        mut self,
        module: impl Into<String>,
        name: impl Into<String>,
        sig: HostSig,
        imp: impl Fn(&[HostVal]) -> Result<Vec<HostVal>, String> + Send + Sync + 'static,
    ) -> Self {
        self.set = self.set.host_fn(module, name, sig, imp);
        self
    }

    /// Registers a *stateful* host function with a reset hook. See
    /// [`ModuleSet::host_fn_with_reset`] — the hook only matters to
    /// engine [`Instance`](crate::engine::Instance)s (the one-shot facade
    /// never resets), but accepting it here keeps the two builders
    /// interchangeable.
    pub fn host_fn_with_reset(
        mut self,
        module: impl Into<String>,
        name: impl Into<String>,
        sig: HostSig,
        imp: impl Fn(&[HostVal]) -> Result<Vec<HostVal>, String> + Send + Sync + 'static,
        on_reset: impl Fn() + Send + Sync + 'static,
    ) -> Self {
        self.set = self
            .set
            .host_fn_with_reset(module, name, sig, imp, on_reset);
        self
    }

    /// Runs frontend → typecheck → (lower → validate → encode) →
    /// instantiation and returns the executable [`Program`].
    ///
    /// # Errors
    ///
    /// The first stage failure, as a [`PipelineError`] naming the stage
    /// and offending module.
    pub fn build(self) -> Result<Program, PipelineError> {
        // A throwaway engine: one-shot semantics, so the static pipeline
        // runs in full and the cache is bypassed — by design.
        let exec = self.config.exec;
        let engine = Engine::with_config(self.config);
        let artifact = engine.compile_uncached(&self.set)?;
        let mut instance = artifact.instantiate()?;

        let mut timings = artifact.timings().clone();
        timings.extend(instance.timings());
        let entry = artifact.entry().map(str::to_string);
        let entry_func = artifact.entry_func().to_string();
        Ok(Program {
            richwasm: instance.richwasm.take(),
            wasm: instance.wasm.take(),
            report: Report {
                timings,
                binaries: artifact.wasm_binaries().to_vec(),
            },
            exec,
            entry,
            entry_func,
            replay: std::mem::take(&mut instance.replay),
        })
    }

    /// [`Pipeline::build`], then invoke the entry function (default
    /// `"main"`, see [`Pipeline::entry_func`]) on the entry module with
    /// no arguments.
    ///
    /// # Errors
    ///
    /// As [`Pipeline::build`], plus execution/differential failures.
    pub fn run(self) -> Result<Run, PipelineError> {
        let mut program = self.build()?;
        let Some(entry) = program.entry.clone() else {
            return Err(PipelineError::new(
                Stage::Execute,
                None,
                PipelineErrorKind::Unsupported(
                    "no entry module: add at least one module, and call .entry(name) when \
                     more than one is added"
                        .into(),
                ),
            ));
        };
        let func = program.entry_func.clone();
        let result = program.invoke(&entry, &func, vec![])?;
        Ok(Run { program, result })
    }
}

impl Program {
    /// Invokes export `func` of `module` with `args` on every active
    /// backend; in differential mode the results must agree. See
    /// [`Instance::invoke`](crate::engine::Instance::invoke), which this
    /// delegates to.
    ///
    /// # Errors
    ///
    /// Execution failures ([`Stage::Execute`]) or cross-backend
    /// disagreement ([`Stage::Differential`]).
    pub fn invoke(
        &mut self,
        module: &str,
        func: &str,
        args: Vec<Value>,
    ) -> Result<Invocation, PipelineError> {
        for log in &self.replay {
            log.lock().expect("host replay log poisoned").clear();
        }
        invoke_backends(
            &mut self.richwasm,
            &mut self.wasm,
            self.exec,
            module,
            func,
            args,
        )
    }

    /// The execution mode this program was built with.
    pub fn exec_mode(&self) -> Exec {
        self.exec
    }

    /// The RichWasm runtime, panicking when the pipeline ran Wasm-only.
    /// Convenience for store inspection in tests.
    pub fn runtime(&mut self) -> &mut Runtime {
        self.richwasm
            .as_mut()
            .expect("pipeline was built without the RichWasm interpreter")
    }
}
