//! The unified five-stage compilation driver.
//!
//! A [`Pipeline`] accepts a mix of ML, L3, and raw RichWasm modules and
//! drives them through the whole chain the paper describes:
//!
//! ```text
//! frontend (ML §5 / L3 §5) → typecheck (§4) → lower (§6) → validate →
//! encode (.wasm) → execute (RichWasm interpreter §3 / Wasm interpreter)
//! ```
//!
//! Every stage is timed, and every failure is reported through one
//! diagnostic type, [`PipelineError`], carrying the stage and the source
//! module it arose in. Execution supports three modes ([`Exec`]): the
//! RichWasm interpreter, the lowered Wasm, or **differential** — run both
//! and fail on disagreement (the repo's standing erasure-correctness
//! check, experiment E5).
//!
//! # Example
//!
//! ```
//! use richwasm_repro::pipeline::Pipeline;
//! use richwasm::syntax::*;
//!
//! let m = Module {
//!     funcs: vec![Func::Defined {
//!         exports: vec!["main".into()],
//!         ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
//!         locals: vec![],
//!         body: vec![Instr::i32(42)],
//!     }],
//!     ..Module::default()
//! };
//! let run = Pipeline::new().richwasm("m", m).run().unwrap();
//! assert_eq!(run.result.i32(), Some(42)); // both backends agreed
//! ```

use std::fmt;
use std::time::{Duration, Instant};

use richwasm::error::{RuntimeError, TypeError};
use richwasm::interp::{InvokeResult, Runtime};
use richwasm::syntax::{self, NumType, Value};
use richwasm::typecheck::check_module;
use richwasm_l3::{compile_module as compile_l3, L3Error, L3Module};
use richwasm_lower::{lower_modules_with_envs, LowerError};
use richwasm_ml::{compile_module as compile_ml, MlError, MlModule};
use richwasm_wasm::binary::encode_module;
use richwasm_wasm::exec::{Val, WasmLinker, WasmTrap};
use richwasm_wasm::validate::ValidationError;
use richwasm_wasm::validate_module;

/// A source module in one of the three input languages.
#[derive(Debug, Clone)]
pub enum Source {
    /// A core ML module (compiled by `richwasm-ml`, paper §5).
    Ml(Box<MlModule>),
    /// An L3 module (compiled by `richwasm-l3`, paper §5).
    L3(Box<L3Module>),
    /// An already-built RichWasm module.
    RichWasm(Box<syntax::Module>),
}

/// The pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Source-language compilation to RichWasm.
    Frontend,
    /// The RichWasm substructural type check.
    Typecheck,
    /// Typed linking + instantiation on the RichWasm interpreter.
    Instantiate,
    /// Whole-program type-directed lowering to Wasm.
    Lower,
    /// Validation of the lowered Wasm modules.
    Validate,
    /// Standard `.wasm` binary encoding.
    Encode,
    /// Execution (either interpreter).
    Execute,
    /// Cross-backend result comparison.
    Differential,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Frontend => "frontend",
            Stage::Typecheck => "typecheck",
            Stage::Instantiate => "instantiate",
            Stage::Lower => "lower",
            Stage::Validate => "validate",
            Stage::Encode => "encode",
            Stage::Execute => "execute",
            Stage::Differential => "differential",
        })
    }
}

/// The underlying cause of a [`PipelineError`].
#[derive(Debug)]
pub enum PipelineErrorKind {
    /// The ML frontend rejected its input.
    Ml(MlError),
    /// The L3 frontend rejected its input (L3 checks linearity itself).
    L3(L3Error),
    /// The RichWasm checker or typed linker rejected a module.
    Type(TypeError),
    /// The RichWasm → Wasm compiler failed.
    Lower(LowerError),
    /// A lowered module failed Wasm validation.
    Validation(ValidationError),
    /// The RichWasm interpreter trapped or got stuck.
    Runtime(RuntimeError),
    /// The Wasm interpreter trapped.
    Wasm(WasmTrap),
    /// The two backends disagreed in differential mode.
    Mismatch {
        /// What the RichWasm interpreter produced.
        richwasm: String,
        /// What the Wasm interpreter produced.
        wasm: String,
    },
    /// The request cannot be expressed on the selected backend(s).
    Unsupported(String),
}

impl fmt::Display for PipelineErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineErrorKind::Ml(e) => write!(f, "{e}"),
            PipelineErrorKind::L3(e) => write!(f, "{e}"),
            PipelineErrorKind::Type(e) => write!(f, "{e}"),
            PipelineErrorKind::Lower(e) => write!(f, "{e}"),
            PipelineErrorKind::Validation(e) => write!(f, "{e}"),
            PipelineErrorKind::Runtime(e) => write!(f, "{e}"),
            PipelineErrorKind::Wasm(e) => write!(f, "{e}"),
            PipelineErrorKind::Mismatch { richwasm, wasm } => {
                write!(
                    f,
                    "backends disagree: richwasm produced {richwasm}, wasm produced {wasm}"
                )
            }
            PipelineErrorKind::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

/// A failure in some pipeline stage, with source-module context.
#[derive(Debug)]
pub struct PipelineError {
    /// The stage that failed.
    pub stage: Stage,
    /// The module being processed when the failure arose, if any.
    pub module: Option<String>,
    /// The underlying cause.
    pub kind: PipelineErrorKind,
}

impl PipelineError {
    fn new(stage: Stage, module: Option<&str>, kind: PipelineErrorKind) -> PipelineError {
        PipelineError {
            stage,
            module: module.map(str::to_string),
            kind,
        }
    }

    /// True when the failure is a static rejection (type checking, typed
    /// linking, or a frontend error) rather than a dynamic fault.
    pub fn is_static_rejection(&self) -> bool {
        matches!(
            self.kind,
            PipelineErrorKind::Ml(_) | PipelineErrorKind::L3(_) | PipelineErrorKind::Type(_)
        )
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline stage `{}`", self.stage)?;
        if let Some(m) = &self.module {
            write!(f, " (module `{m}`)")?;
        }
        write!(f, ": {}", self.kind)
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            PipelineErrorKind::Type(e) => Some(e),
            PipelineErrorKind::Lower(e) => Some(e),
            PipelineErrorKind::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

/// Which interpreter(s) execute the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exec {
    /// RichWasm interpreter only (skips the Wasm half of the pipeline).
    Interp,
    /// Lowered Wasm only.
    Wasm,
    /// Both, with results compared after every invocation.
    #[default]
    Differential,
}

impl Exec {
    fn wants_interp(self) -> bool {
        self != Exec::Wasm
    }
    fn wants_wasm(self) -> bool {
        self != Exec::Interp
    }
}

/// Wall-clock time spent per stage, in stage order.
#[derive(Debug, Clone, Default)]
pub struct Timings(Vec<(Stage, Duration)>);

impl Timings {
    fn add(&mut self, stage: Stage, d: Duration) {
        self.0.push((stage, d));
    }

    /// Per-stage entries in the order they ran.
    pub fn entries(&self) -> &[(Stage, Duration)] {
        &self.0
    }

    /// Total time across all recorded stages.
    pub fn total(&self) -> Duration {
        self.0.iter().map(|(_, d)| *d).sum()
    }

    /// Accumulated time for one stage.
    pub fn of(&self, stage: Stage) -> Duration {
        self.0
            .iter()
            .filter(|(s, _)| *s == stage)
            .map(|(_, d)| *d)
            .sum()
    }
}

impl fmt::Display for Timings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (stage, d)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{stage}: {d:.2?}")?;
        }
        Ok(())
    }
}

/// What `build` produced besides the executable program.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-stage wall-clock timings.
    pub timings: Timings,
    /// The standard `.wasm` encoding of every lowered module (empty in
    /// [`Exec::Interp`] mode). Includes the generated runtime module.
    pub binaries: Vec<(String, Vec<u8>)>,
}

/// The result of invoking an export through [`Program::invoke`].
#[derive(Debug, Clone)]
pub struct Invocation {
    /// The RichWasm interpreter's result (absent in [`Exec::Wasm`] mode).
    pub richwasm: Option<InvokeResult>,
    /// The Wasm interpreter's result (absent in [`Exec::Interp`] mode).
    pub wasm: Option<Vec<Val>>,
}

impl Invocation {
    /// The single `i32` result, when there is exactly one (from whichever
    /// backend ran; in differential mode both agreed).
    pub fn i32(&self) -> Option<i32> {
        if let Some(r) = &self.richwasm {
            if let [Value::Num(NumType::I32 | NumType::U32, bits)] = r.values[..] {
                return Some(bits as u32 as i32);
            }
            return None;
        }
        if let Some(vals) = &self.wasm {
            if let [Val::I32(w)] = vals[..] {
                return Some(w as i32);
            }
        }
        None
    }
}

/// A built program: instantiated on the requested backend(s), ready to
/// invoke exports.
#[derive(Debug)]
pub struct Program {
    /// The RichWasm interpreter with every module instantiated (present
    /// unless the pipeline ran in [`Exec::Wasm`] mode).
    pub richwasm: Option<Runtime>,
    /// The Wasm interpreter with every lowered module instantiated
    /// (present unless the pipeline ran in [`Exec::Interp`] mode).
    pub wasm: Option<WasmLinker>,
    /// Build artifacts and timings.
    pub report: Report,
    exec: Exec,
    entry: Option<String>,
}

/// A completed `run`: the built program plus the entry invocation result.
#[derive(Debug)]
pub struct Run {
    /// The built program (for further invocations or store inspection).
    pub program: Program,
    /// The result of invoking `main` on the entry module.
    pub result: Invocation,
}

/// Builder for the five-stage compilation path.
///
/// See the [module documentation](self) for an example.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    sources: Vec<(String, Source)>,
    exec: Exec,
    typecheck: bool,
    auto_gc_every: Option<u64>,
    fuel: Option<u64>,
    entry: Option<String>,
}

impl Pipeline {
    /// An empty pipeline in differential mode with type checking on.
    pub fn new() -> Pipeline {
        Pipeline {
            typecheck: true,
            ..Pipeline::default()
        }
    }

    /// Adds an ML source module under `name`.
    pub fn ml(mut self, name: impl Into<String>, m: MlModule) -> Self {
        self.sources.push((name.into(), Source::Ml(Box::new(m))));
        self
    }

    /// Adds an L3 source module under `name`.
    pub fn l3(mut self, name: impl Into<String>, m: L3Module) -> Self {
        self.sources.push((name.into(), Source::L3(Box::new(m))));
        self
    }

    /// Adds a raw RichWasm module under `name`.
    pub fn richwasm(mut self, name: impl Into<String>, m: syntax::Module) -> Self {
        self.sources
            .push((name.into(), Source::RichWasm(Box::new(m))));
        self
    }

    /// Selects the execution mode (default: [`Exec::Differential`]).
    pub fn exec(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Shorthand for `exec(Exec::Interp)`.
    pub fn interp_only(self) -> Self {
        self.exec(Exec::Interp)
    }

    /// Toggles the RichWasm type check (default: on). Turning it off
    /// reproduces the paper's "world without RichWasm types" contrast:
    /// faults then surface only dynamically.
    pub fn typecheck(mut self, on: bool) -> Self {
        self.typecheck = on;
        self
    }

    /// Runs a GC every `n` interpreter steps (default: only on demand).
    pub fn auto_gc_every(mut self, n: u64) -> Self {
        self.auto_gc_every = Some(n);
        self
    }

    /// Caps interpreter steps per invocation.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Names the module whose exported `main` [`Pipeline::run`] invokes.
    /// Defaults to the only module when exactly one was added.
    pub fn entry(mut self, name: impl Into<String>) -> Self {
        self.entry = Some(name.into());
        self
    }

    /// Runs frontend → typecheck → (lower → validate → encode) →
    /// instantiation and returns the executable [`Program`].
    ///
    /// # Errors
    ///
    /// The first stage failure, as a [`PipelineError`] naming the stage
    /// and offending module.
    pub fn build(self) -> Result<Program, PipelineError> {
        let mut timings = Timings::default();

        // Lowering is type-directed: `Session` re-checks whatever it is
        // given, so an unchecked Wasm build is impossible by construction.
        // Reject the combination instead of silently re-enabling checks
        // under a different stage name.
        if !self.typecheck && self.exec.wants_wasm() {
            return Err(PipelineError::new(
                Stage::Typecheck,
                None,
                PipelineErrorKind::Unsupported(
                    "typecheck(false) requires Exec::Interp: lowering is type-directed, so \
                     the Wasm path cannot run unchecked"
                        .into(),
                ),
            ));
        }

        // `build` owns the sources, so raw RichWasm modules move through
        // without a copy; only the entry name is needed afterwards.
        let entry = self
            .entry
            .or_else(|| (self.sources.len() == 1).then(|| self.sources[0].0.clone()));

        // Stage 1: frontends.
        let t0 = Instant::now();
        let mut modules: Vec<(String, syntax::Module)> = Vec::with_capacity(self.sources.len());
        for (name, src) in self.sources {
            let compiled = match src {
                Source::Ml(m) => compile_ml(&m).map_err(|e| {
                    PipelineError::new(Stage::Frontend, Some(&name), PipelineErrorKind::Ml(e))
                })?,
                Source::L3(m) => compile_l3(&m).map_err(|e| {
                    PipelineError::new(Stage::Frontend, Some(&name), PipelineErrorKind::L3(e))
                })?,
                Source::RichWasm(m) => *m,
            };
            modules.push((name, compiled));
        }
        timings.add(Stage::Frontend, t0.elapsed());

        // Stage 2: the RichWasm substructural type check. The resulting
        // module environments feed the type-directed lowering, which
        // would otherwise have to re-run the check.
        let mut envs = Vec::new();
        if self.typecheck {
            let t0 = Instant::now();
            for (name, m) in &modules {
                envs.push(check_module(m).map_err(|e| {
                    PipelineError::new(Stage::Typecheck, Some(name), PipelineErrorKind::Type(e))
                })?);
            }
            timings.add(Stage::Typecheck, t0.elapsed());
        }

        // Stage 3: typed linking + instantiation on the RichWasm
        // interpreter. Modules were already checked above, so per-module
        // re-checking is off; the linker's FFI boundary check still runs.
        // The last backend to consume `modules` takes them by move.
        let richwasm = if self.exec.wants_interp() {
            let t0 = Instant::now();
            let mut rt = Runtime::new();
            rt.config.check_modules = false;
            if let Some(n) = self.auto_gc_every {
                rt.config.auto_gc_every = Some(n);
            }
            if let Some(fuel) = self.fuel {
                rt.config.fuel = fuel;
            }
            if self.exec.wants_wasm() {
                for (name, m) in &modules {
                    rt.instantiate(name, m.clone()).map_err(|e| {
                        PipelineError::new(
                            Stage::Instantiate,
                            Some(name),
                            PipelineErrorKind::Type(e),
                        )
                    })?;
                }
            } else {
                for (name, m) in std::mem::take(&mut modules) {
                    rt.instantiate(&name, m).map_err(|e| {
                        PipelineError::new(
                            Stage::Instantiate,
                            Some(&name),
                            PipelineErrorKind::Type(e),
                        )
                    })?;
                }
            }
            timings.add(Stage::Instantiate, t0.elapsed());
            Some(rt)
        } else {
            None
        };

        // Stages 4–6: lower whole-program, validate, encode, instantiate
        // on the Wasm interpreter.
        let mut binaries = Vec::new();
        let wasm = if self.exec.wants_wasm() {
            let t0 = Instant::now();
            let lowered = lower_modules_with_envs(&modules, &envs)
                .map_err(|e| PipelineError::new(Stage::Lower, None, PipelineErrorKind::Lower(e)))?;
            timings.add(Stage::Lower, t0.elapsed());

            let t0 = Instant::now();
            for (name, wm) in &lowered {
                validate_module(wm).map_err(|e| {
                    PipelineError::new(
                        Stage::Validate,
                        Some(name),
                        PipelineErrorKind::Validation(e),
                    )
                })?;
            }
            timings.add(Stage::Validate, t0.elapsed());

            let t0 = Instant::now();
            for (name, wm) in &lowered {
                binaries.push((name.clone(), encode_module(wm)));
            }
            timings.add(Stage::Encode, t0.elapsed());

            let t0 = Instant::now();
            let mut linker = WasmLinker::new();
            if let Some(fuel) = self.fuel {
                // Units differ (reduction steps vs executed instructions),
                // but both backends must be bounded or fuel exhaustion on
                // one side would masquerade as a differential mismatch.
                linker.max_steps = fuel;
            }
            for (name, wm) in lowered {
                linker.instantiate(&name, wm).map_err(|e| {
                    PipelineError::new(Stage::Instantiate, Some(&name), PipelineErrorKind::Wasm(e))
                })?;
            }
            timings.add(Stage::Instantiate, t0.elapsed());
            Some(linker)
        } else {
            None
        };

        Ok(Program {
            richwasm,
            wasm,
            report: Report { timings, binaries },
            exec: self.exec,
            entry,
        })
    }

    /// [`Pipeline::build`], then invoke `main` on the entry module with no
    /// arguments.
    pub fn run(self) -> Result<Run, PipelineError> {
        let mut program = self.build()?;
        let Some(entry) = program.entry.clone() else {
            return Err(PipelineError::new(
                Stage::Execute,
                None,
                PipelineErrorKind::Unsupported(
                    "no entry module: add at least one module, and call .entry(name) when \
                     more than one is added"
                        .into(),
                ),
            ));
        };
        let result = program.invoke(&entry, "main", vec![])?;
        Ok(Run { program, result })
    }
}

/// Flattens a RichWasm result value to its lowered Wasm representation
/// (`unit` erases; numerics map to their Wasm type). Returns `None` for
/// values without a direct scalar lowering (references, tuples, …).
fn flatten_value(v: &Value) -> Option<Vec<Val>> {
    match v {
        Value::Unit => Some(vec![]),
        Value::Num(NumType::I32 | NumType::U32, bits) => Some(vec![Val::I32(*bits as u32)]),
        Value::Num(NumType::I64 | NumType::U64, bits) => Some(vec![Val::I64(*bits)]),
        Value::Num(NumType::F32, bits) => Some(vec![Val::F32(f32::from_bits(*bits as u32))]),
        Value::Num(NumType::F64, bits) => Some(vec![Val::F64(f64::from_bits(*bits))]),
        _ => None,
    }
}

/// Bit-exact comparison (floats compare by bit pattern, so NaN == NaN).
fn vals_equal(a: &[Val], b: &[Val]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Val::F32(x), Val::F32(y)) => x.to_bits() == y.to_bits(),
            (Val::F64(x), Val::F64(y)) => x.to_bits() == y.to_bits(),
            _ => x == y,
        })
}

impl Program {
    /// Invokes export `func` of `module` with `args` on every active
    /// backend; in differential mode the results must agree.
    ///
    /// Arguments are RichWasm values; for the Wasm backend they are
    /// lowered the same way the compiler lowers parameters (`unit`
    /// erases, numerics pass through).
    ///
    /// # Errors
    ///
    /// Execution failures ([`Stage::Execute`]) or cross-backend
    /// disagreement ([`Stage::Differential`]). In differential mode
    /// *both* backends always run, so a trap on only one of them — the
    /// very erasure bug differential mode exists to catch — surfaces as
    /// a [`PipelineErrorKind::Mismatch`], and a failed invocation never
    /// leaves the two backends' states out of step.
    pub fn invoke(
        &mut self,
        module: &str,
        func: &str,
        args: Vec<Value>,
    ) -> Result<Invocation, PipelineError> {
        let interp_result: Option<Result<InvokeResult, PipelineError>> =
            self.richwasm.as_mut().map(|rt| {
                let inst = rt.instance_by_name(module).ok_or_else(|| {
                    PipelineError::new(
                        Stage::Execute,
                        Some(module),
                        PipelineErrorKind::Unsupported(format!("no module named `{module}`")),
                    )
                })?;
                rt.invoke(inst, func, args.clone()).map_err(|e| {
                    PipelineError::new(Stage::Execute, Some(module), PipelineErrorKind::Runtime(e))
                })
            });
        // Outside differential mode there is nothing to cross-check, so
        // an interpreter failure propagates immediately.
        let interp_result = match (interp_result, self.exec) {
            (Some(r), Exec::Differential) => Some(r),
            (Some(r), _) => Some(Ok(r?)),
            (None, _) => None,
        };

        let wasm_result: Option<Result<Vec<Val>, PipelineError>> =
            self.wasm.as_mut().map(|linker| {
                let inst = linker.instance_by_name(module).ok_or_else(|| {
                    PipelineError::new(
                        Stage::Execute,
                        Some(module),
                        PipelineErrorKind::Unsupported(format!("no module named `{module}`")),
                    )
                })?;
                let mut wargs = Vec::new();
                for a in &args {
                    let flat = flatten_value(a).ok_or_else(|| {
                        PipelineError::new(
                            Stage::Execute,
                            Some(module),
                            PipelineErrorKind::Unsupported(format!(
                                "argument {a:?} has no scalar Wasm lowering"
                            )),
                        )
                    })?;
                    wargs.extend(flat);
                }
                linker.invoke(inst, func, &wargs).map_err(|e| {
                    PipelineError::new(Stage::Execute, Some(module), PipelineErrorKind::Wasm(e))
                })
            });

        if self.exec == Exec::Differential {
            // A backend may have been extracted through the pub fields
            // (the benches do this); fall back to whatever is left.
            match (interp_result, wasm_result) {
                (Some(ir), Some(wr)) => return Self::compare(module, ir, wr),
                (ir, wr) => {
                    return Ok(Invocation {
                        richwasm: ir.transpose()?,
                        wasm: wr.transpose()?,
                    })
                }
            }
        }

        Ok(Invocation {
            richwasm: interp_result.transpose()?,
            wasm: wasm_result.transpose()?,
        })
    }

    /// Differential-mode reconciliation: both outcomes (success or
    /// failure) must agree.
    fn compare(
        module: &str,
        interp: Result<InvokeResult, PipelineError>,
        wasm: Result<Vec<Val>, PipelineError>,
    ) -> Result<Invocation, PipelineError> {
        match (interp, wasm) {
            (Ok(ir), Ok(wr)) => {
                let mut flat = Vec::new();
                let mut comparable = true;
                for v in &ir.values {
                    match flatten_value(v) {
                        Some(vals) => flat.extend(vals),
                        None => comparable = false,
                    }
                }
                if !comparable {
                    return Err(PipelineError::new(
                        Stage::Differential,
                        Some(module),
                        PipelineErrorKind::Unsupported(format!(
                            "result {:?} has no scalar Wasm lowering to compare against",
                            ir.values
                        )),
                    ));
                }
                if !vals_equal(&flat, &wr) {
                    return Err(PipelineError::new(
                        Stage::Differential,
                        Some(module),
                        PipelineErrorKind::Mismatch {
                            richwasm: format!("{:?}", ir.values),
                            wasm: format!("{wr:?}"),
                        },
                    ));
                }
                Ok(Invocation {
                    richwasm: Some(ir),
                    wasm: Some(wr),
                })
            }
            // Both failed. A trap on the interpreter matching a wasm-side
            // failure is an agreed dynamic fault; any other interp failure
            // class (stuck, fuel, …) coinciding with a wasm error is still
            // a disagreement worth surfacing with both sides attached.
            (Err(ie), Err(we)) => {
                if matches!(
                    ie.kind,
                    PipelineErrorKind::Runtime(RuntimeError::Trap { .. })
                ) {
                    Err(ie)
                } else {
                    Err(PipelineError::new(
                        Stage::Differential,
                        Some(module),
                        PipelineErrorKind::Mismatch {
                            richwasm: format!("error: {}", ie.kind),
                            wasm: format!("error: {}", we.kind),
                        },
                    ))
                }
            }
            // One-sided failure: the disagreement differential mode is for.
            (Ok(ir), Err(we)) => Err(PipelineError::new(
                Stage::Differential,
                Some(module),
                PipelineErrorKind::Mismatch {
                    richwasm: format!("{:?}", ir.values),
                    wasm: format!("error: {}", we.kind),
                },
            )),
            (Err(ie), Ok(wr)) => Err(PipelineError::new(
                Stage::Differential,
                Some(module),
                PipelineErrorKind::Mismatch {
                    richwasm: format!("error: {}", ie.kind),
                    wasm: format!("{wr:?}"),
                },
            )),
        }
    }

    /// The execution mode this program was built with.
    pub fn exec_mode(&self) -> Exec {
        self.exec
    }

    /// The RichWasm runtime, panicking when the pipeline ran Wasm-only.
    /// Convenience for store inspection in tests.
    pub fn runtime(&mut self) -> &mut Runtime {
        self.richwasm
            .as_mut()
            .expect("pipeline was built without the RichWasm interpreter")
    }
}
