//! The compile-once / run-many API: [`Engine`] → [`Artifact`] → [`Instance`].
//!
//! The paper's whole point (§4–§6) is that *separately compiled* ML and
//! L3 modules interoperate safely through typed linking — but a service
//! invoking the same program N times should not pay the static pipeline
//! N times. This module splits the one-shot [`Pipeline`](crate::pipeline)
//! workflow into three long-lived types:
//!
//! * [`Engine`] — owns the configuration (execution mode, fuel, auto-GC)
//!   and a **content-addressed artifact cache** keyed by a stable hash of
//!   the module set's ASTs plus the configuration. [`Engine::compile`] on
//!   a cache hit skips every static stage and returns the cached
//!   [`Artifact`]. On a miss, the per-module frontend + typecheck stages
//!   of independent source modules run **in parallel** (scoped threads);
//!   the whole-program lower stage stays sequential, as §6 requires the
//!   shared table layout to be computed globally.
//! * [`Artifact`] — the immutable output of frontend → typecheck → lower
//!   → validate → encode: the RichWasm modules, their checked
//!   [`ModuleEnv`]s, the lowered Wasm modules, and the standard `.wasm`
//!   bytes. Cheaply cloneable (one [`Arc`] bump) and shareable across
//!   threads.
//! * [`Instance`] — a live store pair (RichWasm runtime and/or
//!   [`WasmLinker`]) created by [`Artifact::instantiate`], supporting
//!   repeated [`Instance::invoke`] with the same differential checking as
//!   the one-shot driver. Instances of one artifact share nothing
//!   mutable.
//!
//! # Example
//!
//! ```
//! use richwasm_repro::engine::{Engine, ModuleSet};
//! use richwasm::syntax::*;
//!
//! let m = Module {
//!     funcs: vec![Func::Defined {
//!         exports: vec!["main".into()],
//!         ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
//!         locals: vec![],
//!         body: vec![Instr::i32(42)],
//!     }],
//!     ..Module::default()
//! };
//! let engine = Engine::new();
//! let set = ModuleSet::new().richwasm("m", m);
//! let artifact = engine.compile(&set).unwrap();      // cold: full pipeline
//! let mut inst = artifact.instantiate().unwrap();
//! assert_eq!(inst.invoke_entry().unwrap().i32(), Some(42));
//! let again = engine.compile(&set).unwrap();         // warm: cache hit
//! assert!(artifact.same_as(&again));
//! assert_eq!(engine.cache_stats().hits, 1);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use richwasm::env::ModuleEnv;
use richwasm::error::{RuntimeError, TypeError};
use richwasm::interp::{InvokeResult, Runtime};
use richwasm::syntax::{self, NumType, Value};
use richwasm::typecheck::check_module;
use richwasm_analyze::{
    analyze_module, AnalysisReport, AnalyzeError, Bound, CostReport, Diagnostic, FuncCost, Pass,
    Severity,
};
use richwasm_l3::{compile_module as compile_l3, L3Error, L3Module};
use richwasm_lower::lower::RUNTIME_NAME;
use richwasm_lower::{lower_modules_with_plan, LinkPlan, LowerError};
use richwasm_ml::{compile_module as compile_ml, MlError, MlModule};
use richwasm_wasm::ast as w;
use richwasm_wasm::binary::encode_module;
use richwasm_wasm::compile::{
    compile_module as compile_wasm_bytecode, decode_compiled, encode_compiled, CompiledModule,
};
use richwasm_wasm::decode::{decode_module, DecodeError};
use richwasm_wasm::exec::{Val, WasmLinker, WasmTrap};
use richwasm_wasm::validate::ValidationError;
use richwasm_wasm::validate_module;

use crate::call::{
    flatten_values_to_host, richwasm_host_fn, wasm_host_fn, wasm_vals_to_host_raw, HostCallback,
    HostSig, HostVal, ReplayLog, WasmResults,
};

/// A source module in one of the three input languages, or a precompiled
/// standard `.wasm` binary.
#[derive(Debug, Clone)]
pub enum Source {
    /// A core ML module (compiled by `richwasm-ml`, paper §5).
    Ml(Box<MlModule>),
    /// An L3 module (compiled by `richwasm-l3`, paper §5).
    L3(Box<L3Module>),
    /// An already-built RichWasm module.
    RichWasm(Box<syntax::Module>),
    /// Standard `.wasm` bytes (precompiled or externally produced). They
    /// enter the pipeline at the decode stage and carry no RichWasm
    /// types, so they execute on the Wasm backend only ([`Exec::Wasm`]).
    Wasm(WasmBytes),
}

/// Owned `.wasm` bytes behind a cheap, *stable* `Debug` rendering (length
/// plus 128-bit FNV content hash) — the cache key hashes sources through
/// `Debug`, and rendering megabytes of binary as a decimal byte list
/// would make keying cost scale with module size.
#[derive(Clone, PartialEq, Eq)]
pub struct WasmBytes(pub Vec<u8>);

impl fmt::Debug for WasmBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut h = Fnv128::new();
        h.update(&self.0);
        write!(
            f,
            "WasmBytes {{ len: {}, fnv: {:032x} }}",
            self.0.len(),
            h.0
        )
    }
}

/// The pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Source-language compilation to RichWasm.
    Frontend,
    /// Binary decoding of precompiled `.wasm` sources.
    Decode,
    /// The RichWasm substructural type check.
    Typecheck,
    /// Typed linking + instantiation on the RichWasm interpreter.
    Instantiate,
    /// Whole-program type-directed lowering to Wasm.
    Lower,
    /// Validation of the lowered Wasm modules.
    Validate,
    /// Standard `.wasm` binary encoding.
    Encode,
    /// CFG/dataflow static analysis of the lowered modules
    /// (`richwasm-analyze`): re-verification, fuel bounds, call-graph
    /// discipline, dead-code lint.
    Analyze,
    /// Execution (either interpreter).
    Execute,
    /// Cross-backend result comparison.
    Differential,
}

impl Stage {
    /// True for the static (compile-time) stages an [`Artifact`] caches:
    /// everything up to and including binary encoding, minus the dynamic
    /// `Instantiate`/`Execute`/`Differential` stages.
    pub fn is_static(self) -> bool {
        matches!(
            self,
            Stage::Frontend
                | Stage::Decode
                | Stage::Typecheck
                | Stage::Lower
                | Stage::Validate
                | Stage::Encode
                | Stage::Analyze
        )
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Frontend => "frontend",
            Stage::Decode => "decode",
            Stage::Typecheck => "typecheck",
            Stage::Instantiate => "instantiate",
            Stage::Lower => "lower",
            Stage::Validate => "validate",
            Stage::Encode => "encode",
            Stage::Analyze => "analyze",
            Stage::Execute => "execute",
            Stage::Differential => "differential",
        })
    }
}

/// The underlying cause of a [`PipelineError`].
#[derive(Debug)]
pub enum PipelineErrorKind {
    /// The ML frontend rejected its input.
    Ml(MlError),
    /// The L3 frontend rejected its input (L3 checks linearity itself).
    L3(L3Error),
    /// The RichWasm checker or typed linker rejected a module.
    Type(TypeError),
    /// The RichWasm → Wasm compiler failed.
    Lower(LowerError),
    /// A `.wasm` binary failed to decode.
    Decode(DecodeError),
    /// A serialized artifact was malformed, corrupt, or compiled under a
    /// different configuration (stale).
    Artifact(String),
    /// A lowered module failed Wasm validation.
    Validation(ValidationError),
    /// Static analysis rejected a module (`analysis: Deny` with a
    /// `Deny`-severity finding — e.g. the independent re-verifier
    /// disagreed with the validator).
    Analysis(AnalyzeError),
    /// The RichWasm interpreter trapped or got stuck.
    Runtime(RuntimeError),
    /// The Wasm interpreter trapped.
    Wasm(WasmTrap),
    /// The two backends disagreed in differential mode.
    Mismatch {
        /// What the RichWasm interpreter produced.
        richwasm: String,
        /// What the Wasm interpreter produced.
        wasm: String,
    },
    /// The request cannot be expressed on the selected backend(s).
    Unsupported(String),
}

impl fmt::Display for PipelineErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineErrorKind::Ml(e) => write!(f, "{e}"),
            PipelineErrorKind::L3(e) => write!(f, "{e}"),
            PipelineErrorKind::Type(e) => write!(f, "{e}"),
            PipelineErrorKind::Lower(e) => write!(f, "{e}"),
            PipelineErrorKind::Decode(e) => write!(f, "{e}"),
            PipelineErrorKind::Artifact(reason) => write!(f, "artifact: {reason}"),
            PipelineErrorKind::Validation(e) => write!(f, "{e}"),
            PipelineErrorKind::Analysis(e) => write!(f, "{e}"),
            PipelineErrorKind::Runtime(e) => write!(f, "{e}"),
            PipelineErrorKind::Wasm(e) => write!(f, "{e}"),
            PipelineErrorKind::Mismatch { richwasm, wasm } => {
                write!(
                    f,
                    "backends disagree: richwasm produced {richwasm}, wasm produced {wasm}"
                )
            }
            PipelineErrorKind::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

/// A failure in some pipeline stage, with source-module context.
#[derive(Debug)]
pub struct PipelineError {
    /// The stage that failed.
    pub stage: Stage,
    /// The module being processed when the failure arose, if any.
    pub module: Option<String>,
    /// The underlying cause.
    pub kind: PipelineErrorKind,
}

impl PipelineError {
    pub(crate) fn new(
        stage: Stage,
        module: Option<&str>,
        kind: PipelineErrorKind,
    ) -> PipelineError {
        PipelineError {
            stage,
            module: module.map(str::to_string),
            kind,
        }
    }

    /// True when the failure is a static rejection (type checking, typed
    /// linking, or a frontend error) rather than a dynamic fault.
    pub fn is_static_rejection(&self) -> bool {
        matches!(
            self.kind,
            PipelineErrorKind::Ml(_) | PipelineErrorKind::L3(_) | PipelineErrorKind::Type(_)
        )
    }

    /// True when the failure is fuel exhaustion on either backend — the
    /// job ran out of its step/instruction budget. An embedder resource
    /// policy event (the job was preempted), not a guest semantic fault:
    /// the serving layer maps it to a retryable per-job failure, and
    /// differential mode treats it as an agreed outcome rather than a
    /// backend mismatch (see [`EngineConfig::fuel`]).
    pub fn is_fuel_exhausted(&self) -> bool {
        match &self.kind {
            PipelineErrorKind::Runtime(e) => e.is_out_of_fuel(),
            PipelineErrorKind::Wasm(t) => t.is_fuel_exhausted(),
            _ => false,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline stage `{}`", self.stage)?;
        if let Some(m) = &self.module {
            write!(f, " (module `{m}`)")?;
        }
        write!(f, ": {}", self.kind)
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        // Every wrapped layer error chains; only the two kinds without an
        // underlying error value (Mismatch, Unsupported) terminate here.
        match &self.kind {
            PipelineErrorKind::Ml(e) => Some(e),
            PipelineErrorKind::L3(e) => Some(e),
            PipelineErrorKind::Type(e) => Some(e),
            PipelineErrorKind::Lower(e) => Some(e),
            PipelineErrorKind::Decode(e) => Some(e),
            PipelineErrorKind::Validation(e) => Some(e),
            PipelineErrorKind::Analysis(e) => Some(e),
            PipelineErrorKind::Runtime(e) => Some(e),
            PipelineErrorKind::Wasm(e) => Some(e),
            PipelineErrorKind::Mismatch { .. }
            | PipelineErrorKind::Unsupported(_)
            | PipelineErrorKind::Artifact(_) => None,
        }
    }
}

/// Which interpreter(s) execute the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exec {
    /// RichWasm interpreter only (skips the Wasm half of the pipeline).
    Interp,
    /// Lowered Wasm only.
    Wasm,
    /// Both, with results compared after every invocation.
    #[default]
    Differential,
}

impl Exec {
    pub(crate) fn wants_interp(self) -> bool {
        self != Exec::Wasm
    }
    pub(crate) fn wants_wasm(self) -> bool {
        self != Exec::Interp
    }
}

/// Which execution tier serves the Wasm backend (see `DESIGN.md` §13).
///
/// Orthogonal to [`Exec`]: `Exec` picks which *backends* run (RichWasm
/// interpreter, Wasm, or both differentially); `WasmTier` picks how the
/// Wasm backend itself executes — flat bytecode (the default, compiled
/// at artifact build time), the tree-walking interpreter (the original
/// engine, kept as the oracle), or both with every invocation
/// cross-checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WasmTier {
    /// Flat-bytecode VM: function bodies are lowered to linear `Op`
    /// sequences with pre-resolved branch targets at artifact build
    /// time. Functions the bytecode compiler declines stay tree-walked
    /// (the two tiers interoperate call-by-call).
    #[default]
    Bytecode,
    /// Tree-walking interpreter only — no bytecode is compiled, cached,
    /// or serialized. The reference engine.
    Tree,
    /// Bytecode execution **plus** a second tree-walking store that
    /// re-runs every invocation and must agree on results, trap
    /// messages, and fuel, step-for-step — the tier-differential mode
    /// the fuzz farm pins. Requires a host-free module set (host
    /// closures would observe doubled side effects).
    Check,
}

impl WasmTier {
    pub(crate) fn code(self) -> u8 {
        match self {
            WasmTier::Bytecode => 0,
            WasmTier::Tree => 1,
            WasmTier::Check => 2,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<WasmTier> {
        Some(match c {
            0 => WasmTier::Bytecode,
            1 => WasmTier::Tree,
            2 => WasmTier::Check,
            _ => return None,
        })
    }

    /// True when this tier compiles (and serializes) flat bytecode.
    pub fn compiles_bytecode(self) -> bool {
        self != WasmTier::Tree
    }
}

/// Wall-clock time spent per stage, in stage order.
///
/// When the frontend + typecheck stages run in parallel (multi-module
/// sets), the recorded `Frontend`/`Typecheck` durations are the *sums of
/// per-module thread time* — the aggregate work — while the compile's
/// elapsed wall clock is what benchmarks observe.
#[derive(Debug, Clone, Default)]
pub struct Timings(Vec<(Stage, Duration)>);

impl Timings {
    pub(crate) fn add(&mut self, stage: Stage, d: Duration) {
        self.0.push((stage, d));
    }

    /// Per-stage entries in the order they ran.
    pub fn entries(&self) -> &[(Stage, Duration)] {
        &self.0
    }

    /// Total time across all recorded stages.
    pub fn total(&self) -> Duration {
        self.0.iter().map(|(_, d)| *d).sum()
    }

    /// Accumulated time for one stage.
    pub fn of(&self, stage: Stage) -> Duration {
        self.0
            .iter()
            .filter(|(s, _)| *s == stage)
            .map(|(_, d)| *d)
            .sum()
    }

    /// True when no static (compile-time) stage was recorded — the
    /// observable invariant of a cache hit or a pure invocation.
    pub fn no_static_stages(&self) -> bool {
        self.0.iter().all(|(s, _)| !s.is_static())
    }

    pub(crate) fn extend(&mut self, other: &Timings) {
        self.0.extend(other.0.iter().cloned());
    }
}

impl fmt::Display for Timings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (stage, d)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{stage}: {d:.2?}")?;
        }
        Ok(())
    }
}

/// The result of invoking an export through [`Instance::invoke`].
///
/// Besides the raw per-backend results, every invocation carries the
/// *agreed* boundary view ([`Invocation::results`]): the flattened
/// integer-scalar values the backends settled on (in differential mode,
/// the values both produced). Typed extraction goes through
/// [`Invocation::returned`].
#[derive(Debug, Clone)]
pub struct Invocation {
    /// The RichWasm interpreter's result (absent in [`Exec::Wasm`] mode).
    pub richwasm: Option<InvokeResult>,
    /// The Wasm interpreter's result (absent in [`Exec::Interp`] mode).
    pub wasm: Option<Vec<Val>>,
    /// The agreed boundary view, when the result has one (`None` for
    /// floats/references/aggregates).
    agreed: Option<Vec<HostVal>>,
}

impl Invocation {
    /// Builds the invocation, computing the agreed boundary view: the
    /// RichWasm values flattened the way the compiler flattens result
    /// types (`unit` erases; signedness comes from the declared types),
    /// falling back to the Wasm values (read as signed — standard Wasm
    /// erases signedness) when only that backend ran.
    pub(crate) fn new(richwasm: Option<InvokeResult>, wasm: Option<Vec<Val>>) -> Invocation {
        let agreed = match (&richwasm, &wasm) {
            (Some(r), _) => flatten_values_to_host(&r.values),
            (None, Some(vals)) => wasm_vals_to_host_raw(vals),
            (None, None) => None,
        };
        Invocation {
            richwasm,
            wasm,
            agreed,
        }
    }

    /// The agreed result values as boundary scalars, in order (`unit`
    /// results erased). Empty when the result has no integer-scalar
    /// representation — use the raw per-backend fields for those.
    pub fn results(&self) -> &[HostVal] {
        self.agreed.as_deref().unwrap_or(&[])
    }

    /// Extracts the agreed result at a Rust type: `run.returned::<i32>()`,
    /// `run.returned::<(u32, u64)>()`, `run.returned::<()>()`, … `None`
    /// when the arity or widths do not match (or there is no agreed
    /// scalar view at all).
    pub fn returned<R: WasmResults>(&self) -> Option<R> {
        R::from_host_vals(self.agreed.as_deref()?)
    }

    /// The single `i32`-width result, when there is exactly one. This
    /// consults the *agreed* value — whichever backends ran, including
    /// differential mode where the RichWasm result may flatten (e.g.
    /// `[unit, i32]`) to the single scalar the Wasm backend produced.
    pub fn i32(&self) -> Option<i32> {
        self.returned::<i32>()
    }
}

/// What to do with static-analysis findings (`richwasm-analyze`) at
/// [`Artifact`] build time.
///
/// Analysis runs over every lowered/decoded Wasm module after
/// validation ([`Stage::Analyze`]) and its [`AnalysisReport`]s are
/// cached on the artifact ([`Artifact::analysis`]) — including the
/// static fuel bounds the serving layer uses to reject infeasible
/// budgets up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Analysis {
    /// Skip the analyze stage entirely (no reports on the artifact).
    Off,
    /// Run analysis, keep all findings as report data; never fail the
    /// compile. The default.
    #[default]
    Warn,
    /// Run analysis and fail the compile
    /// ([`PipelineErrorKind::Analysis`]) when any `Deny`-severity
    /// finding fires — i.e. when the independent re-verifier and the
    /// validator disagree about a module.
    Deny,
}

impl Analysis {
    /// Stable wire code (artifact serialisation).
    fn code(self) -> u8 {
        match self {
            Analysis::Off => 0,
            Analysis::Warn => 1,
            Analysis::Deny => 2,
        }
    }

    /// Inverse of [`Analysis::code`].
    fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Analysis::Off),
            1 => Some(Analysis::Warn),
            2 => Some(Analysis::Deny),
            _ => None,
        }
    }
}

/// Engine-wide configuration: everything that affects *what* an
/// [`Artifact`] contains or *how* its [`Instance`]s execute. The
/// semantic fields are part of the cache key (see `DESIGN.md` §5);
/// [`EngineConfig::cache_dir`] is deliberately **not** — where artifacts
/// are persisted does not change what they contain, so moving a cache
/// directory never invalidates its entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Execution mode (default: [`Exec::Differential`]).
    pub exec: Exec,
    /// Run the RichWasm substructural check (default: `true`). Turning it
    /// off requires [`Exec::Interp`]: lowering is type-directed, so the
    /// Wasm path cannot run unchecked.
    pub typecheck: bool,
    /// Run a GC every `n` interpreter steps (default: only on demand).
    pub auto_gc_every: Option<u64>,
    /// Caps interpreter steps per invocation on both backends.
    pub fuel: Option<u64>,
    /// Static-analysis policy at artifact build time (default:
    /// [`Analysis::Warn`] — run the passes, cache the reports, never
    /// fail the compile).
    pub analysis: Analysis,
    /// Which tier serves the Wasm backend (default:
    /// [`WasmTier::Bytecode`]). See [`WasmTier`].
    pub wasm_tier: WasmTier,
    /// Directory for the **persistent artifact cache** (default: none —
    /// in-memory caching only). See [`EngineConfig::cache_dir`].
    pub cache_dir: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            exec: Exec::Differential,
            typecheck: true,
            auto_gc_every: None,
            fuel: None,
            analysis: Analysis::Warn,
            wasm_tier: WasmTier::Bytecode,
            cache_dir: None,
        }
    }
}

impl EngineConfig {
    /// The default configuration (differential mode, typecheck on).
    pub fn new() -> EngineConfig {
        EngineConfig::default()
    }

    /// Selects the execution mode.
    pub fn exec(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Shorthand for `exec(Exec::Interp)`.
    pub fn interp_only(self) -> Self {
        self.exec(Exec::Interp)
    }

    /// Toggles the RichWasm type check.
    pub fn typecheck(mut self, on: bool) -> Self {
        self.typecheck = on;
        self
    }

    /// Runs a GC every `n` interpreter steps.
    pub fn auto_gc_every(mut self, n: u64) -> Self {
        self.auto_gc_every = Some(n);
        self
    }

    /// Caps interpreter steps per invocation.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Selects the static-analysis policy (see [`Analysis`]).
    pub fn analysis(mut self, analysis: Analysis) -> Self {
        self.analysis = analysis;
        self
    }

    /// Selects the Wasm execution tier (see [`WasmTier`]).
    pub fn wasm_tier(mut self, tier: WasmTier) -> Self {
        self.wasm_tier = tier;
        self
    }

    /// Persists compiled artifacts under `dir` so warm compiles survive
    /// process restarts: a cold [`Engine::compile`] writes the artifact
    /// (hash-keyed file), and a later engine — in this process or the
    /// next — with the same configuration and directory loads it back,
    /// skipping every static stage. Missing, corrupt, or stale entries
    /// fall back to a cold compile (recorded in
    /// [`CacheStats::disk_misses`]) and are rewritten.
    ///
    /// Only [`Exec::Wasm`] compiles of host-function-free module sets are
    /// persisted: a serialized artifact carries `.wasm` bytes and entry
    /// metadata, not RichWasm sources, so it cannot serve the
    /// interpreter-backed modes — and host closures live in process
    /// memory, unreachable from disk. Other compiles simply bypass the
    /// directory (see `DESIGN.md` §9).
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The stable 128-bit fingerprint of the **semantic** fields (exec
    /// mode, typecheck, auto-GC, fuel, analysis, Wasm tier — not
    /// `cache_dir`): the
    /// configuration's contribution to cache keys, and the compatibility
    /// stamp embedded in serialized artifacts.
    pub fn fingerprint(&self) -> u128 {
        use fmt::Write as _;
        let mut h = Fnv128::new();
        let _ = write!(
            h,
            "exec:{:?}|typecheck:{}|auto_gc:{:?}|fuel:{:?}|analysis:{:?}|tier:{:?}",
            self.exec, self.typecheck, self.auto_gc_every, self.fuel, self.analysis, self.wasm_tier
        );
        h.0
    }
}

/// One host function registered on a [`ModuleSet`]: export name,
/// declared signature, the Rust closure implementing it, and an optional
/// state-reset hook run by [`Instance::reset`].
#[derive(Clone)]
pub(crate) struct HostFuncDef {
    pub(crate) name: String,
    pub(crate) sig: HostSig,
    pub(crate) imp: HostCallback,
    /// Rewinds whatever interior-mutable state `imp` closes over, so a
    /// reset (or pool-recycled) instance cannot observe host state left
    /// behind by earlier invocations. `None` for stateless hosts.
    pub(crate) on_reset: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl fmt::Debug for HostFuncDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HostFuncDef {{ name: {:?}, sig: {} }}",
            self.name, self.sig
        )
    }
}

/// A named group of host functions guests import from (the `module` part
/// of `(import "module" "name" …)`).
#[derive(Debug, Clone)]
pub(crate) struct HostModuleDef {
    pub(crate) name: String,
    pub(crate) funcs: Vec<HostFuncDef>,
}

/// A named, ordered set of source modules plus an optional entry module —
/// the unit of compilation an [`Engine`] caches. Host functions
/// ([`ModuleSet::host_fn`]) ride along: their *signatures* are content
/// (part of the cache key), their closures are installed into both
/// backends at instantiation.
#[derive(Debug, Clone, Default)]
pub struct ModuleSet {
    pub(crate) sources: Vec<(String, Source)>,
    pub(crate) entry: Option<String>,
    pub(crate) entry_func: Option<String>,
    pub(crate) hosts: Vec<HostModuleDef>,
}

impl ModuleSet {
    /// An empty module set.
    pub fn new() -> ModuleSet {
        ModuleSet::default()
    }

    /// Adds an ML source module under `name`.
    pub fn ml(mut self, name: impl Into<String>, m: MlModule) -> Self {
        self.sources.push((name.into(), Source::Ml(Box::new(m))));
        self
    }

    /// Adds an L3 source module under `name`.
    pub fn l3(mut self, name: impl Into<String>, m: L3Module) -> Self {
        self.sources.push((name.into(), Source::L3(Box::new(m))));
        self
    }

    /// Adds a raw RichWasm module under `name`.
    pub fn richwasm(mut self, name: impl Into<String>, m: syntax::Module) -> Self {
        self.sources
            .push((name.into(), Source::RichWasm(Box::new(m))));
        self
    }

    /// Adds a precompiled (or externally produced) standard `.wasm`
    /// binary under `name`. The bytes are **never trusted**: they enter
    /// the ordinary decode → validate → instantiate path, with strict
    /// bounds/LEB checking at decode and full re-validation after.
    ///
    /// Binary modules carry no RichWasm types, so they run on the Wasm
    /// backend only — compiling a set that contains one under
    /// [`Exec::Interp`] or [`Exec::Differential`] fails cleanly at the
    /// decode stage. They may be freely mixed with source modules (whose
    /// lowered forms instantiate alongside them, imports resolving by
    /// module name exactly as between lowered guests).
    pub fn wasm_module(mut self, name: impl Into<String>, bytes: impl Into<Vec<u8>>) -> Self {
        self.sources
            .push((name.into(), Source::Wasm(WasmBytes(bytes.into()))));
        self
    }

    /// Registers a host function: a Rust closure exposed to guests as
    /// export `name` of a host module named `module`, installed into
    /// **both** execution backends at
    /// [`Artifact::instantiate`] time. Guests import it like any module
    /// export — an ML `MlImport`/L3 `L3Import` (or raw
    /// `Func::Imported`) whose declared type equals
    /// [`HostSig::to_fun_type`] — and the typed linker's FFI check
    /// guards the boundary exactly as it does between guests.
    ///
    /// The closure receives the arguments as [`HostVal`]s and must return
    /// exactly the declared results; `Err(msg)` traps the guest. In
    /// differential mode the closure runs **once per invocation** (on the
    /// RichWasm backend); the Wasm backend replays the recorded outcomes,
    /// so stateful hosts stay consistent across the cross-check.
    ///
    /// Multiple calls with the same `module` accumulate functions under
    /// one host module.
    pub fn host_fn(
        mut self,
        module: impl Into<String>,
        name: impl Into<String>,
        sig: HostSig,
        imp: impl Fn(&[HostVal]) -> Result<Vec<HostVal>, String> + Send + Sync + 'static,
    ) -> Self {
        self.push_host_fn(module.into(), name.into(), sig, Arc::new(imp), None);
        self
    }

    /// [`ModuleSet::host_fn`] for *stateful* hosts: `on_reset` rewinds the
    /// interior-mutable state `imp` closes over, and [`Instance::reset`]
    /// (hence every [`InstancePool`] checkin) runs it — so a recycled
    /// instance cannot observe host state left behind by a previous
    /// checkout.
    ///
    /// Host closures are shared by every instance of an artifact: when a
    /// pool holds more than one instance, `on_reset` rewinds state that
    /// concurrent checkouts may also be touching. Pools with stateful
    /// hosts should therefore either keep the state per-invocation
    /// (reset is then a no-op) or make it genuinely concurrent.
    pub fn host_fn_with_reset(
        mut self,
        module: impl Into<String>,
        name: impl Into<String>,
        sig: HostSig,
        imp: impl Fn(&[HostVal]) -> Result<Vec<HostVal>, String> + Send + Sync + 'static,
        on_reset: impl Fn() + Send + Sync + 'static,
    ) -> Self {
        self.push_host_fn(
            module.into(),
            name.into(),
            sig,
            Arc::new(imp),
            Some(Arc::new(on_reset)),
        );
        self
    }

    fn push_host_fn(
        &mut self,
        module: String,
        name: String,
        sig: HostSig,
        imp: HostCallback,
        on_reset: Option<Arc<dyn Fn() + Send + Sync>>,
    ) {
        let def = HostFuncDef {
            name,
            sig,
            imp,
            on_reset,
        };
        match self.hosts.iter_mut().find(|h| h.name == module) {
            Some(h) => h.funcs.push(def),
            None => self.hosts.push(HostModuleDef {
                name: module,
                funcs: vec![def],
            }),
        }
    }

    /// Names the module whose exported entry function invocations target.
    /// Defaults to the only module when exactly one was added.
    pub fn entry(mut self, name: impl Into<String>) -> Self {
        self.entry = Some(name.into());
        self
    }

    /// Names the exported function [`Instance::invoke_entry`] (and the
    /// one-shot `Pipeline::run`) invoke on the entry module. Defaults to
    /// `"main"`.
    pub fn entry_func(mut self, name: impl Into<String>) -> Self {
        self.entry_func = Some(name.into());
        self
    }

    fn resolved_entry(&self) -> Option<String> {
        self.entry
            .clone()
            .or_else(|| (self.sources.len() == 1).then(|| self.sources[0].0.clone()))
    }
}

/// The content hash identifying one (module set, configuration) pair in
/// the engine's artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u128);

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 128-bit: stable across runs and platforms (unlike
/// `DefaultHasher`), dependency-free, and fast enough that keying is
/// negligible next to even a warm compile.
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Fnv128 {
        Fnv128(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

impl fmt::Write for Fnv128 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Content-addresses a module set under a configuration: the hash covers
/// the full AST of every module (via its canonical `Debug` rendering —
/// for raw modules that *is* the RichWasm AST; for ML/L3 sources the
/// frontends are deterministic, so the source AST is a faithful proxy
/// and hashing pre-frontend lets a hit skip the frontend stage too),
/// each module's name and language, the entry selections, the whole
/// [`EngineConfig`], and every host function's module, name, and
/// **signature** — host signatures shape the lowered imports, so they
/// are content. The host closure itself cannot be content-hashed; its
/// `Arc` identity is hashed instead, so re-registering behaviourally
/// different closures under identical signatures can never resurrect a
/// cached artifact carrying the old behaviour.
fn cache_key(config: &EngineConfig, set: &ModuleSet) -> CacheKey {
    use fmt::Write as _;
    let mut h = Fnv128::new();
    let _ = write!(
        h,
        "cfg:{:032x}|entry:{:?}|entry_func:{:?}",
        config.fingerprint(),
        set.entry,
        set.entry_func
    );
    for (name, src) in &set.sources {
        // `{name:?}` quotes and escapes the name, so a crafted module
        // name cannot forge the `|mod:`/`=` separators and alias two
        // distinct sets onto one hash stream.
        let _ = write!(h, "|mod:{name:?}={src:?}");
    }
    for hm in &set.hosts {
        let _ = write!(h, "|host:{:?}", hm.name);
        for f in &hm.funcs {
            let _ = write!(h, "|hfn:{:?}:{}@{:p}", f.name, f.sig, Arc::as_ptr(&f.imp));
            // The reset hook shapes post-reset behaviour, so its identity
            // is content for the same reason the closure's is.
            if let Some(r) = &f.on_reset {
                let _ = write!(h, "~reset@{:p}", Arc::as_ptr(r));
            }
        }
    }
    CacheKey(h.0)
}

/// Cache effectiveness counters, via [`Engine::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compiles served from the in-memory cache (all static stages
    /// skipped).
    pub hits: u64,
    /// Compiles that ran the full static pipeline.
    pub misses: u64,
    /// Compiles served from the persistent cache
    /// ([`EngineConfig::cache_dir`]): the artifact was loaded from disk —
    /// decode + re-validate of the stored bytes, no static stage re-run.
    pub disk_hits: u64,
    /// Persistent-cache entries that were present but unusable (corrupt,
    /// truncated, stale fingerprint, or failing re-validation); each one
    /// fell back to a cold compile, which also counts in `misses`.
    pub disk_misses: u64,
}

impl CacheStats {
    /// Fraction of compiles served from either cache layer, in
    /// `0.0..=1.0` (`0.0` before any compile).
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.disk_hits;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )?;
        if self.disk_hits + self.disk_misses > 0 {
            write!(
                f,
                ", disk: {} hits, {} unusable",
                self.disk_hits, self.disk_misses
            )?;
        }
        Ok(())
    }
}

/// Magic + format version of a serialized [`Artifact`] (`DESIGN.md` §9);
/// bump the trailing byte on any layout change so stale files fall back
/// to a cold compile instead of misparsing.
const ARTIFACT_MAGIC: &[u8] = b"RWART\x03";

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        None => out.push(0),
    }
}

/// Serializes one module's [`AnalysisReport`] (diagnostics + fuel-cost
/// summary) into the artifact byte stream.
fn write_analysis(out: &mut Vec<u8>, r: &AnalysisReport) {
    out.extend_from_slice(&(r.diagnostics.len() as u32).to_le_bytes());
    for d in &r.diagnostics {
        out.extend_from_slice(&d.func.to_le_bytes());
        out.extend_from_slice(&d.offset.to_le_bytes());
        out.push(d.pass.code());
        out.push(d.severity.code());
        write_str(out, &d.message);
    }
    out.extend_from_slice(&(r.cost.funcs.len() as u32).to_le_bytes());
    for fc in &r.cost.funcs {
        out.extend_from_slice(&fc.func.to_le_bytes());
        out.extend_from_slice(&fc.min_steps.to_le_bytes());
        match fc.max_steps {
            Bound::Finite(n) => {
                out.push(0);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Bound::Unbounded { min_iteration } => {
                out.push(1);
                out.extend_from_slice(&min_iteration.to_le_bytes());
            }
        }
    }
    out.extend_from_slice(&(r.cost.exports.len() as u32).to_le_bytes());
    for (name, idx) in &r.cost.exports {
        write_str(out, name);
        out.extend_from_slice(&idx.to_le_bytes());
    }
    write_opt_u64(out, r.cost.max_call_depth.map(u64::from));
}

/// Inverse of [`write_analysis`]; `None` on any framing error.
fn read_analysis(r: &mut ArtifactReader<'_>) -> Option<AnalysisReport> {
    let nd = u32::from_le_bytes(r.array::<4>()?) as usize;
    let mut diagnostics = Vec::new();
    for _ in 0..nd {
        let func = u32::from_le_bytes(r.array::<4>()?);
        let offset = u32::from_le_bytes(r.array::<4>()?);
        let pass = Pass::from_code(r.u8()?)?;
        let severity = Severity::from_code(r.u8()?)?;
        let message = r.string()?;
        diagnostics.push(Diagnostic {
            func,
            offset,
            pass,
            severity,
            message,
        });
    }
    let nf = u32::from_le_bytes(r.array::<4>()?) as usize;
    let mut funcs = Vec::new();
    for _ in 0..nf {
        let func = u32::from_le_bytes(r.array::<4>()?);
        let min_steps = u64::from_le_bytes(r.array::<8>()?);
        let max_steps = match r.u8()? {
            0 => Bound::Finite(u64::from_le_bytes(r.array::<8>()?)),
            1 => Bound::Unbounded {
                min_iteration: u64::from_le_bytes(r.array::<8>()?),
            },
            _ => return None,
        };
        funcs.push(FuncCost {
            func,
            min_steps,
            max_steps,
        });
    }
    let ne = u32::from_le_bytes(r.array::<4>()?) as usize;
    let mut exports = Vec::new();
    for _ in 0..ne {
        let name = r.string()?;
        let idx = u32::from_le_bytes(r.array::<4>()?);
        exports.push((name, idx));
    }
    let max_call_depth = match r.opt_u64()? {
        Some(v) => Some(u32::try_from(v).ok()?),
        None => None,
    };
    Some(AnalysisReport {
        diagnostics,
        cost: CostReport {
            funcs,
            exports,
            max_call_depth,
        },
    })
}

/// Bounds-checked cursor over a serialized artifact; every accessor
/// returns `None` at EOF instead of panicking.
struct ArtifactReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ArtifactReader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.bytes.len() - self.pos {
            return None;
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn array<const N: usize>(&mut self) -> Option<[u8; N]> {
        self.take(N).map(|s| s.try_into().expect("exact length"))
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            _ => Some(Some(u64::from_le_bytes(self.array::<8>()?))),
        }
    }

    fn string(&mut self) -> Option<String> {
        let len = u32::from_le_bytes(self.array::<4>()?) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[derive(Debug)]
struct ArtifactInner {
    key: CacheKey,
    config: EngineConfig,
    entry: Option<String>,
    /// The exported function entry invocations call (default `"main"`).
    entry_func: String,
    /// Host modules (name, signatures, closures) to install into both
    /// backends at instantiation, before any guest module.
    hosts: Vec<HostModuleDef>,
    /// RichWasm modules (post-frontend), in instantiation order.
    modules: Vec<(String, syntax::Module)>,
    /// Checked module environments (empty when `typecheck` is off).
    envs: Vec<ModuleEnv>,
    /// The whole-program table layout the modules were lowered under.
    link_plan: LinkPlan,
    /// Lowered Wasm modules, runtime first (empty in [`Exec::Interp`]).
    lowered: Vec<(String, w::Module)>,
    /// Standard `.wasm` encodings of `lowered`.
    binaries: Vec<(String, Vec<u8>)>,
    /// Per-module static-analysis reports, in `lowered` order (empty
    /// when [`Analysis::Off`] or in [`Exec::Interp`]).
    analysis: Vec<(String, AnalysisReport)>,
    /// Flat-bytecode compilations of `lowered`, in the same order
    /// (empty when [`WasmTier::Tree`] or in [`Exec::Interp`]). Attached
    /// to every instance's Wasm store at instantiation.
    compiled: Vec<(String, CompiledModule)>,
    /// Static-stage timings of the (cold) compile that produced this.
    timings: Timings,
}

/// The immutable result of the static pipeline — everything up to, but
/// not including, instantiation. Cloning is one `Arc` bump; artifacts are
/// `Send + Sync` and can be instantiated from many threads at once.
#[derive(Debug, Clone)]
pub struct Artifact {
    inner: Arc<ArtifactInner>,
}

impl Artifact {
    /// The content hash this artifact is cached under.
    pub fn key(&self) -> CacheKey {
        self.inner.key
    }

    /// The configuration it was compiled under.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The resolved entry module, if any.
    pub fn entry(&self) -> Option<&str> {
        self.inner.entry.as_deref()
    }

    /// The exported function entry invocations call (default `"main"`,
    /// configurable with [`ModuleSet::entry_func`]).
    pub fn entry_func(&self) -> &str {
        &self.inner.entry_func
    }

    /// The (post-frontend) RichWasm module compiled under `name`, with
    /// its checked types — the source of truth typed handles validate
    /// against.
    pub(crate) fn find_module(&self, name: &str) -> Option<&syntax::Module> {
        self.inner
            .modules
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m)
    }

    /// Module names in instantiation order.
    pub fn module_names(&self) -> impl Iterator<Item = &str> {
        self.inner.modules.iter().map(|(n, _)| n.as_str())
    }

    /// The checked [`ModuleEnv`]s (empty when the check was disabled).
    pub fn envs(&self) -> &[ModuleEnv] {
        &self.inner.envs
    }

    /// The whole-program [`LinkPlan`] the modules were lowered under.
    pub fn link_plan(&self) -> &LinkPlan {
        &self.inner.link_plan
    }

    /// Standard `.wasm` bytes per lowered module, generated runtime
    /// module first (empty in [`Exec::Interp`] mode).
    pub fn wasm_binaries(&self) -> &[(String, Vec<u8>)] {
        &self.inner.binaries
    }

    /// The lowered Wasm modules in instantiation order, generated
    /// runtime module first (empty in [`Exec::Interp`] mode) — the ASTs
    /// the static-analysis passes (and the bytecode tier) consume.
    pub fn lowered_modules(&self) -> &[(String, w::Module)] {
        &self.inner.lowered
    }

    /// Per-module static-analysis reports, in [`Artifact::lowered_modules`]
    /// order. Empty when analysis was [`Analysis::Off`], in
    /// [`Exec::Interp`] mode, or on an artifact loaded from a pre-analysis
    /// serialization.
    pub fn analysis(&self) -> &[(String, AnalysisReport)] {
        &self.inner.analysis
    }

    /// The statically proven minimum interpreter-step cost of invoking
    /// exported function `func` of module `module`, from the cached
    /// fuel-cost analysis. A budget strictly below this bound *cannot*
    /// complete — the serving layer uses it to reject infeasible jobs
    /// before an instance checkout. `None` when analysis did not run,
    /// the export is unknown (or re-exported from an import), or no
    /// path completes normally (a guaranteed trap is not a fuel
    /// problem).
    pub fn static_min_steps(&self, module: &str, func: &str) -> Option<u64> {
        let (_, report) = self.inner.analysis.iter().find(|(n, _)| n == module)?;
        let min = report.cost.min_steps_of_export(func)?;
        (min != richwasm_analyze::NEVER).then_some(min)
    }

    /// Static-stage timings of the cold compile that built this artifact.
    /// A cache hit returns the same artifact, so these do *not* grow —
    /// the static stages ran exactly once.
    pub fn timings(&self) -> &Timings {
        &self.inner.timings
    }

    /// True when `other` is literally the same cached artifact (pointer
    /// identity, not structural comparison).
    pub fn same_as(&self, other: &Artifact) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Serializes the artifact for the persistent cache (or for shipping
    /// to another process): the standard `.wasm` bytes of every module,
    /// the entry metadata, the configuration (fields + fingerprint), the
    /// cache key, and a whole-file checksum. The format is documented in
    /// `DESIGN.md` §9.
    ///
    /// Returns `None` when the artifact is not self-contained on disk:
    /// only [`Exec::Wasm`] artifacts serialize (`.wasm` bytes carry no
    /// RichWasm types, so the interpreter-backed modes cannot be rebuilt
    /// from them), and only without host functions (closures live in
    /// process memory). [`Artifact::deserialize`] inverts this exactly —
    /// same key, same bytes, same entry — after re-decoding and
    /// re-validating every module, because bytes read back from disk are
    /// as untrusted as bytes from anywhere else.
    pub fn serialize(&self) -> Option<Vec<u8>> {
        let inner = &self.inner;
        if inner.config.exec != Exec::Wasm || !inner.hosts.is_empty() || inner.binaries.is_empty() {
            return None;
        }
        let mut out = Vec::new();
        out.extend_from_slice(ARTIFACT_MAGIC);
        out.extend_from_slice(&inner.config.fingerprint().to_le_bytes());
        out.push(inner.config.typecheck as u8);
        write_opt_u64(&mut out, inner.config.auto_gc_every);
        write_opt_u64(&mut out, inner.config.fuel);
        out.push(inner.config.analysis.code());
        out.push(inner.config.wasm_tier.code());
        out.extend_from_slice(&inner.key.0.to_le_bytes());
        match &inner.entry {
            Some(e) => {
                out.push(1);
                write_str(&mut out, e);
            }
            None => out.push(0),
        }
        write_str(&mut out, &inner.entry_func);
        out.extend_from_slice(&(inner.binaries.len() as u32).to_le_bytes());
        for (name, bytes) in &inner.binaries {
            write_str(&mut out, name);
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out.extend_from_slice(&(inner.analysis.len() as u32).to_le_bytes());
        for (name, report) in &inner.analysis {
            write_str(&mut out, name);
            write_analysis(&mut out, report);
        }
        // v3 bytecode section: one self-versioned payload per compiled
        // module (see `richwasm_wasm::compile::BYTECODE_VERSION`).
        out.extend_from_slice(&(inner.compiled.len() as u32).to_le_bytes());
        for (name, cm) in &inner.compiled {
            write_str(&mut out, name);
            let mut payload = Vec::new();
            encode_compiled(cm, &mut payload);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        let mut h = Fnv128::new();
        h.update(&out);
        out.extend_from_slice(&h.0.to_le_bytes());
        Some(out)
    }

    /// Reconstructs an artifact from [`Artifact::serialize`] output.
    ///
    /// The bytes are treated as untrusted: the checksum must match, and
    /// every embedded `.wasm` module goes back through the full strict
    /// decode → validate path before it can be instantiated. The
    /// resulting artifact is equivalent to the original for every
    /// [`Exec::Wasm`] purpose — identical key, entry metadata, and
    /// byte-identical [`Artifact::wasm_binaries`] — but records no
    /// static-stage [`Timings`] (nothing was recompiled; the load cost
    /// itself is what the `e10_decode` bench measures).
    ///
    /// # Errors
    ///
    /// [`PipelineErrorKind::Artifact`] for framing/checksum/format
    /// failures, [`PipelineErrorKind::Decode`] /
    /// [`PipelineErrorKind::Validation`] when an embedded module is bad.
    pub fn deserialize(bytes: &[u8]) -> Result<Artifact, PipelineError> {
        let corrupt = |reason: &str| {
            PipelineError::new(
                Stage::Decode,
                None,
                PipelineErrorKind::Artifact(reason.to_string()),
            )
        };
        if bytes.len() < ARTIFACT_MAGIC.len() + 16 {
            return Err(corrupt("truncated artifact"));
        }
        if &bytes[..ARTIFACT_MAGIC.len()] != ARTIFACT_MAGIC {
            return Err(corrupt("bad artifact magic/version"));
        }
        let (payload, stored_sum) = bytes.split_at(bytes.len() - 16);
        let mut h = Fnv128::new();
        h.update(payload);
        if h.0.to_le_bytes() != stored_sum {
            return Err(corrupt("artifact checksum mismatch"));
        }

        let mut r = ArtifactReader {
            bytes: payload,
            pos: ARTIFACT_MAGIC.len(),
        };
        let fingerprint = u128::from_le_bytes(r.array::<16>().ok_or_else(|| corrupt("eof"))?);
        let typecheck = r.u8().ok_or_else(|| corrupt("eof"))? != 0;
        let auto_gc_every = r.opt_u64().ok_or_else(|| corrupt("eof"))?;
        let fuel = r.opt_u64().ok_or_else(|| corrupt("eof"))?;
        let analysis_level = Analysis::from_code(r.u8().ok_or_else(|| corrupt("eof"))?)
            .ok_or_else(|| corrupt("bad analysis policy code"))?;
        let wasm_tier = WasmTier::from_code(r.u8().ok_or_else(|| corrupt("eof"))?)
            .ok_or_else(|| corrupt("bad wasm tier code"))?;
        let config = EngineConfig {
            exec: Exec::Wasm,
            typecheck,
            auto_gc_every,
            fuel,
            analysis: analysis_level,
            wasm_tier,
            cache_dir: None,
        };
        if config.fingerprint() != fingerprint {
            return Err(corrupt("configuration fingerprint mismatch"));
        }
        let key = CacheKey(u128::from_le_bytes(
            r.array::<16>().ok_or_else(|| corrupt("eof"))?,
        ));
        let entry = if r.u8().ok_or_else(|| corrupt("eof"))? != 0 {
            Some(r.string().ok_or_else(|| corrupt("bad entry name"))?)
        } else {
            None
        };
        let entry_func = r.string().ok_or_else(|| corrupt("bad entry function"))?;
        let count = u32::from_le_bytes(r.array::<4>().ok_or_else(|| corrupt("eof"))?) as usize;
        let mut lowered = Vec::new();
        let mut binaries = Vec::new();
        for _ in 0..count {
            let name = r.string().ok_or_else(|| corrupt("bad module name"))?;
            let len = u64::from_le_bytes(r.array::<8>().ok_or_else(|| corrupt("eof"))?) as usize;
            let data = r.take(len).ok_or_else(|| corrupt("truncated module"))?;
            let wm = decode_module(data).map_err(|e| {
                PipelineError::new(Stage::Decode, Some(&name), PipelineErrorKind::Decode(e))
            })?;
            validate_module(&wm).map_err(|e| {
                PipelineError::new(
                    Stage::Validate,
                    Some(&name),
                    PipelineErrorKind::Validation(e),
                )
            })?;
            binaries.push((name.clone(), data.to_vec()));
            lowered.push((name, wm));
        }
        let n_reports = u32::from_le_bytes(r.array::<4>().ok_or_else(|| corrupt("eof"))?) as usize;
        let mut analysis = Vec::new();
        for _ in 0..n_reports {
            let name = r.string().ok_or_else(|| corrupt("bad report name"))?;
            let report =
                read_analysis(&mut r).ok_or_else(|| corrupt("malformed analysis report"))?;
            analysis.push((name, report));
        }
        // Bytecode section. Framing errors are corruption; a payload
        // that frames but fails `decode_compiled` (e.g. a bytecode
        // format-version bump) falls back to recompiling from the
        // already-validated module — stale bytecode must never force a
        // full cold compile when the `.wasm` bytes are still good.
        let n_compiled = u32::from_le_bytes(r.array::<4>().ok_or_else(|| corrupt("eof"))?) as usize;
        let mut compiled = Vec::new();
        for _ in 0..n_compiled {
            let name = r
                .string()
                .ok_or_else(|| corrupt("bad compiled-module name"))?;
            let len = u64::from_le_bytes(r.array::<8>().ok_or_else(|| corrupt("eof"))?) as usize;
            let data = r.take(len).ok_or_else(|| corrupt("truncated bytecode"))?;
            let cm = match decode_compiled(data) {
                Ok(cm) => cm,
                Err(_) => {
                    let (_, wm) = lowered
                        .iter()
                        .find(|(n, _)| *n == name)
                        .ok_or_else(|| corrupt("bytecode for unknown module"))?;
                    compile_wasm_bytecode(wm)
                }
            };
            compiled.push((name, cm));
        }
        if r.pos != payload.len() {
            return Err(corrupt("trailing bytes in artifact"));
        }
        Ok(Artifact {
            inner: Arc::new(ArtifactInner {
                key,
                config,
                entry,
                entry_func,
                hosts: Vec::new(),
                modules: Vec::new(),
                envs: Vec::new(),
                link_plan: LinkPlan::default(),
                lowered,
                binaries,
                analysis,
                compiled,
                timings: Timings::default(),
            }),
        })
    }

    /// Creates a fresh, independent [`Instance`]: typed linking +
    /// instantiation on the RichWasm interpreter and/or instantiation of
    /// the lowered modules on the Wasm interpreter. No static stage runs.
    ///
    /// # Errors
    ///
    /// Link errors ([`Stage::Instantiate`]) — e.g. an import whose
    /// declared type does not match the provider's export.
    pub fn instantiate(&self) -> Result<Instance, PipelineError> {
        let inner = &self.inner;
        let config = &inner.config;
        let mut timings = Timings::default();
        let t0 = Instant::now();

        // One record/replay channel per host function, in registration
        // order — only differential mode needs them (the RichWasm backend
        // records each host call's outcome, the Wasm backend replays it,
        // so host side effects happen once per invocation).
        let replay: Vec<ReplayLog> = if config.exec == Exec::Differential {
            inner
                .hosts
                .iter()
                .flat_map(|hm| &hm.funcs)
                .map(|_| ReplayLog::default())
                .collect()
        } else {
            Vec::new()
        };

        let richwasm = if config.exec.wants_interp() {
            Some(self.build_runtime(&replay)?)
        } else {
            None
        };

        let wasm = if config.exec.wants_wasm() {
            let mut linker = WasmLinker::new();
            if let Some(fuel) = config.fuel {
                // Units differ (reduction steps vs executed instructions),
                // but both backends must be bounded or fuel exhaustion on
                // one side would masquerade as a differential mismatch.
                linker.max_steps = fuel;
            }
            // Host modules first: guests resolve imports against them.
            let mut k = 0;
            for hm in &inner.hosts {
                let funcs = hm
                    .funcs
                    .iter()
                    .map(|f| {
                        let log = replay.get(k).cloned();
                        k += 1;
                        (
                            f.name.clone(),
                            f.sig.to_wasm_type(),
                            wasm_host_fn(f.sig.clone(), f.imp.clone(), log),
                        )
                    })
                    .collect();
                linker.register_host_module(&hm.name, funcs);
            }
            for (name, wm) in &inner.lowered {
                let idx = linker.instantiate(name, wm.clone()).map_err(|e| {
                    PipelineError::new(Stage::Instantiate, Some(name), PipelineErrorKind::Wasm(e))
                })?;
                // Bytecode tiers: re-point the defined functions at
                // their flat compilations (declined functions keep the
                // tree-walker — the tiers interoperate call-by-call).
                if config.wasm_tier.compiles_bytecode() {
                    if let Some((_, cm)) = inner.compiled.iter().find(|(n, _)| n == name) {
                        linker.attach_compiled(idx, cm).map_err(|e| {
                            PipelineError::new(
                                Stage::Instantiate,
                                Some(name),
                                PipelineErrorKind::Wasm(e),
                            )
                        })?;
                    }
                }
            }
            // Baseline for cheap Instance::reset.
            linker.seal();
            Some(linker)
        } else {
            None
        };

        // Check tier: a second, tree-walking-only store of the same
        // modules; `Instance::invoke` re-runs every invocation on it
        // and cross-checks results, traps, and fuel (see `oracle_check`).
        let wasm_oracle = if config.exec.wants_wasm() && config.wasm_tier == WasmTier::Check {
            if !inner.hosts.is_empty() {
                return Err(PipelineError::new(
                    Stage::Instantiate,
                    None,
                    PipelineErrorKind::Unsupported(
                        "WasmTier::Check requires a host-free module set: the oracle \
                         re-runs every invocation, which would double host side effects"
                            .into(),
                    ),
                ));
            }
            let mut oracle = WasmLinker::new();
            if let Some(fuel) = config.fuel {
                oracle.max_steps = fuel;
            }
            for (name, wm) in &inner.lowered {
                oracle.instantiate(name, wm.clone()).map_err(|e| {
                    PipelineError::new(Stage::Instantiate, Some(name), PipelineErrorKind::Wasm(e))
                })?;
            }
            oracle.seal();
            Some(oracle)
        } else {
            None
        };
        timings.add(Stage::Instantiate, t0.elapsed());

        Ok(Instance {
            richwasm,
            wasm,
            wasm_oracle,
            artifact: self.clone(),
            timings,
            invocations: 0,
            replay,
        })
    }

    /// Typed linking + instantiation of the (already checked) RichWasm
    /// modules on a fresh interpreter runtime — host modules first, then
    /// the guests. Modules were checked at compile time (when the check
    /// is on), so per-module re-checking is off; the typed linker's FFI
    /// boundary check still runs.
    fn build_runtime(&self, replay: &[ReplayLog]) -> Result<Runtime, PipelineError> {
        let config = &self.inner.config;
        let mut rt = Runtime::new();
        rt.config.check_modules = false;
        if let Some(n) = config.auto_gc_every {
            rt.config.auto_gc_every = Some(n);
        }
        if let Some(fuel) = config.fuel {
            rt.config.fuel = fuel;
        }
        let mut k = 0;
        for hm in &self.inner.hosts {
            let funcs = hm
                .funcs
                .iter()
                .map(|f| {
                    let log = replay.get(k).cloned();
                    k += 1;
                    (
                        f.name.clone(),
                        f.sig.to_fun_type(),
                        richwasm_host_fn(f.sig.clone(), f.imp.clone(), log),
                    )
                })
                .collect();
            rt.register_host_module(&hm.name, funcs);
        }
        for (name, m) in &self.inner.modules {
            rt.instantiate(name, m.clone()).map_err(|e| {
                PipelineError::new(Stage::Instantiate, Some(name), PipelineErrorKind::Type(e))
            })?;
        }
        Ok(rt)
    }
}

/// A live, independently mutable execution of an [`Artifact`]: the
/// RichWasm runtime and/or the Wasm linker, ready for repeated
/// [`Instance::invoke`] calls. Two instances of one artifact share no
/// mutable state.
#[derive(Debug)]
pub struct Instance {
    /// The RichWasm interpreter with every module instantiated (present
    /// unless the engine runs in [`Exec::Wasm`] mode). Public so harness
    /// code can extract the backend and drive it directly.
    pub richwasm: Option<Runtime>,
    /// The Wasm interpreter with every lowered module instantiated
    /// (present unless the engine runs in [`Exec::Interp`] mode).
    pub wasm: Option<WasmLinker>,
    /// The tree-walking oracle store ([`WasmTier::Check`] only): a
    /// second instantiation of the same modules with no bytecode
    /// attached, re-run and cross-checked on every invocation.
    pub wasm_oracle: Option<WasmLinker>,
    artifact: Artifact,
    timings: Timings,
    invocations: u64,
    /// Host-call record/replay channels (differential mode only), cleared
    /// at the start of every invocation. `pub(crate)` so the `Pipeline`
    /// facade can carry them into its `Program` when it dismantles the
    /// instance.
    pub(crate) replay: Vec<ReplayLog>,
}

impl Instance {
    /// The artifact this instance was created from.
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// Marks the start of one invocation: bumps the counter and clears
    /// any leftover host-call recordings (a failed invocation on one
    /// backend must not leak recorded outcomes into the next).
    pub(crate) fn begin_invocation(&mut self) {
        self.invocations += 1;
        for log in &self.replay {
            log.lock().expect("host replay log poisoned").clear();
        }
    }

    /// The execution mode this instance runs in.
    pub fn exec_mode(&self) -> Exec {
        self.artifact.config().exec
    }

    /// Dynamic-stage timings of this instance (instantiation; never any
    /// static stage — [`Timings::no_static_stages`] always holds, however
    /// many invocations have run).
    pub fn timings(&self) -> &Timings {
        &self.timings
    }

    /// Number of completed [`Instance::invoke`] calls (successful or not).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The RichWasm runtime, panicking when the engine runs Wasm-only.
    /// Convenience for store inspection in tests.
    pub fn runtime(&mut self) -> &mut Runtime {
        self.richwasm
            .as_mut()
            .expect("instance was built without the RichWasm interpreter")
    }

    /// Invokes export `func` of `module` with `args` on every active
    /// backend; in differential mode the results must agree.
    ///
    /// Arguments are RichWasm values; for the Wasm backend they are
    /// lowered the same way the compiler lowers parameters (`unit`
    /// erases, numerics pass through).
    ///
    /// # Errors
    ///
    /// Execution failures ([`Stage::Execute`]) or cross-backend
    /// disagreement ([`Stage::Differential`]). In differential mode
    /// *both* backends always run, so a trap on only one of them — the
    /// very erasure bug differential mode exists to catch — surfaces as
    /// a [`PipelineErrorKind::Mismatch`], and a failed invocation never
    /// leaves the two backends' states out of step.
    pub fn invoke(
        &mut self,
        module: &str,
        func: &str,
        args: Vec<Value>,
    ) -> Result<Invocation, PipelineError> {
        self.begin_invocation();
        let exec = self.exec_mode();
        let oracle_args = self.wasm_oracle.as_ref().map(|_| args.clone());
        let result = invoke_backends(&mut self.richwasm, &mut self.wasm, exec, module, func, args);
        if let Some(args) = oracle_args {
            self.oracle_check(module, func, &args, &result)?;
        }
        result
    }

    /// [`WasmTier::Check`]: replays the invocation on the tree-walking
    /// oracle store and demands bit-identical results (or identical trap
    /// messages) *and* an identical fuel count. Any divergence is a
    /// [`Stage::Differential`] mismatch — the property the fuzz farm's
    /// tier-differential mode sweeps at scale.
    fn oracle_check(
        &mut self,
        module: &str,
        func: &str,
        args: &[Value],
        main: &Result<Invocation, PipelineError>,
    ) -> Result<(), PipelineError> {
        let (Some(oracle), Some(linker)) = (&mut self.wasm_oracle, &self.wasm) else {
            return Ok(());
        };
        // The bytecode-side outcome on the Wasm backend. Failures that
        // never reached that backend (unknown module, un-lowerable
        // arguments, interpreter-side errors) have nothing to check.
        let main_out: Result<Vec<Val>, String> = match main {
            Ok(inv) => match &inv.wasm {
                Some(vals) => Ok(vals.clone()),
                None => return Ok(()),
            },
            Err(e) => match &e.kind {
                PipelineErrorKind::Wasm(t) => Err(t.to_string()),
                _ => return Ok(()),
            },
        };
        let mut wargs = Vec::new();
        for a in args {
            match flatten_value(a) {
                Some(flat) => wargs.extend(flat),
                None => return Ok(()),
            }
        }
        let Some(inst) = oracle.instance_by_name(module) else {
            return Ok(());
        };
        let oracle_out: Result<Vec<Val>, String> =
            oracle.invoke(inst, func, &wargs).map_err(|e| e.to_string());
        let outcomes_agree = match (&main_out, &oracle_out) {
            (Ok(a), Ok(b)) => vals_equal(a, b),
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        if !outcomes_agree || linker.last_steps() != oracle.last_steps() {
            return Err(PipelineError::new(
                Stage::Differential,
                Some(module),
                PipelineErrorKind::Mismatch {
                    richwasm: format!(
                        "tree-walker oracle: {oracle_out:?} in {} steps",
                        oracle.last_steps()
                    ),
                    wasm: format!(
                        "bytecode tier: {main_out:?} in {} steps",
                        linker.last_steps()
                    ),
                },
            ));
        }
        Ok(())
    }

    /// Invokes the entry function (default `"main"`, see
    /// [`ModuleSet::entry_func`]) on the entry module with no arguments.
    ///
    /// # Errors
    ///
    /// As [`Instance::invoke`], plus an `Unsupported` error when the
    /// module set has no resolvable entry.
    pub fn invoke_entry(&mut self) -> Result<Invocation, PipelineError> {
        let Some(entry) = self.artifact.entry().map(str::to_string) else {
            return Err(PipelineError::new(
                Stage::Execute,
                None,
                PipelineErrorKind::Unsupported(
                    "no entry module: add at least one module, and call .entry(name) when \
                     more than one is added"
                        .into(),
                ),
            ));
        };
        let func = self.artifact.entry_func().to_string();
        self.invoke(&entry, &func, vec![])
    }

    /// Rewinds the instance to its freshly instantiated state without
    /// re-running any static stage: the Wasm store restores its sealed
    /// baseline in place, and the RichWasm runtime re-links from the
    /// artifact's (already checked) modules.
    ///
    /// Three pieces of host-boundary state are rewound with the stores —
    /// the invariant [`InstancePool`] recycling relies on (a recycled
    /// instance must be indistinguishable from a fresh one):
    ///
    /// * the differential record/replay queues are drained, so a recycled
    ///   instance can never replay a host outcome recorded by a previous
    ///   checkout's (possibly failed) invocation;
    /// * every host function's `on_reset` hook
    ///   ([`ModuleSet::host_fn_with_reset`]) runs, rewinding stateful
    ///   host closures;
    /// * the invocation counter restarts at zero.
    ///
    /// # Errors
    ///
    /// The same link errors as [`Artifact::instantiate`] — impossible in
    /// practice for an artifact that instantiated once already.
    pub fn reset(&mut self) -> Result<(), PipelineError> {
        if let Some(linker) = &mut self.wasm {
            // In-place restore of the sealed baseline — no re-validation,
            // no import re-resolution.
            linker.reset().map_err(|e| {
                PipelineError::new(Stage::Instantiate, None, PipelineErrorKind::Wasm(e))
            })?;
        }
        if let Some(oracle) = &mut self.wasm_oracle {
            oracle.reset().map_err(|e| {
                PipelineError::new(Stage::Instantiate, None, PipelineErrorKind::Wasm(e))
            })?;
        }
        if self.richwasm.is_some() {
            self.richwasm = Some(self.artifact.build_runtime(&self.replay)?);
        }
        for log in &self.replay {
            log.lock().expect("host replay log poisoned").clear();
        }
        for hm in &self.artifact.inner.hosts {
            for f in &hm.funcs {
                if let Some(on_reset) = &f.on_reset {
                    on_reset();
                }
            }
        }
        self.invocations = 0;
        Ok(())
    }
}

/// One invocation request for the batch APIs
/// ([`InstancePool::invoke_batch`], [`Engine::invoke_parallel`]): which
/// export of which module to call, with which arguments.
#[derive(Debug, Clone)]
pub struct Job {
    /// The target module name.
    pub module: String,
    /// The exported function name.
    pub func: String,
    /// RichWasm argument values (converted per backend exactly as
    /// [`Instance::invoke`] converts them).
    pub args: Vec<Value>,
}

impl Job {
    /// Builds a job.
    pub fn new(module: impl Into<String>, func: impl Into<String>, args: Vec<Value>) -> Job {
        Job {
            module: module.into(),
            func: func.into(),
            args,
        }
    }
}

/// Pool effectiveness counters, via [`InstancePool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Instances handed out by `checkout`/`try_checkout`.
    pub checkouts: u64,
    /// Instances returned, reset, and made available again.
    pub recycled: u64,
    /// Slots lost because a returned instance could neither be reset nor
    /// replaced (never observed in practice — both require an artifact
    /// that already instantiated once to fail to do so again).
    pub lost: u64,
    /// Checkouts that found the pool empty and had to wait (including
    /// [`InstancePool::checkout_timeout`] calls that timed out).
    pub blocked_waits: u64,
    /// Total time those checkouts spent waiting, in nanoseconds
    /// (saturating; ~584 years of cumulative waiting before it matters).
    pub blocked_nanos: u64,
}

impl PoolStats {
    /// Total time checkouts spent blocked waiting for an instance —
    /// the pool-contention signal: a growing value means demand
    /// outstrips [`InstancePool::capacity`].
    pub fn blocked_wait_time(&self) -> Duration {
        Duration::from_nanos(self.blocked_nanos)
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} checkouts, {} recycled, {} lost",
            self.checkouts, self.recycled, self.lost
        )?;
        if self.blocked_waits > 0 {
            write!(
                f,
                ", {} blocked for {:.1}ms total",
                self.blocked_waits,
                self.blocked_wait_time().as_secs_f64() * 1e3
            )?;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct PoolState {
    idle: Vec<Instance>,
    stats: PoolStats,
}

/// A fixed-capacity pool of pre-instantiated [`Instance`]s of one
/// [`Artifact`] — the serving-traffic primitive: N isolated instances,
/// checked out to one worker thread at a time and recycled through
/// [`Instance::reset`] on checkin, so every checkout observes a freshly
/// instantiated program.
///
/// The pool is `Sync`: share it by reference (or `Arc`) across worker
/// threads and call [`InstancePool::checkout`] from each. Instances
/// themselves are **thread-confined while checked out** — differential
/// cross-checking and the host record/replay queues are per-instance
/// state and never cross threads (see `DESIGN.md` §8).
///
/// Created by [`Artifact::pool`].
#[derive(Debug)]
pub struct InstancePool {
    artifact: Artifact,
    capacity: usize,
    state: Mutex<PoolState>,
    available: Condvar,
}

impl InstancePool {
    /// The artifact the pooled instances were created from.
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// Number of instances the pool was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Instances currently available for checkout.
    pub fn idle(&self) -> usize {
        self.state
            .lock()
            .expect("instance pool poisoned")
            .idle
            .len()
    }

    /// Checkout/recycle counters since construction.
    pub fn stats(&self) -> PoolStats {
        self.state.lock().expect("instance pool poisoned").stats
    }

    /// Checks an instance out of the pool, blocking until one is
    /// available. The returned guard derefs to [`Instance`]; dropping it
    /// checks the instance back in (resetting it — see
    /// [`Instance::reset`] — so the next checkout gets a fresh program).
    pub fn checkout(&self) -> PooledInstance<'_> {
        let mut state = self.state.lock().expect("instance pool poisoned");
        let mut waited: Option<Instant> = None;
        loop {
            if let Some(inst) = state.idle.pop() {
                state.stats.checkouts += 1;
                if let Some(since) = waited {
                    state.stats.blocked_waits += 1;
                    state.stats.blocked_nanos = state
                        .stats
                        .blocked_nanos
                        .saturating_add(since.elapsed().as_nanos() as u64);
                }
                return PooledInstance {
                    pool: self,
                    inst: Some(inst),
                };
            }
            waited.get_or_insert_with(Instant::now);
            state = self.available.wait(state).expect("instance pool poisoned");
        }
    }

    /// [`InstancePool::checkout`] with a bounded wait: `None` when no
    /// instance became available within `timeout`. The wait (successful
    /// or not) is recorded in [`PoolStats::blocked_waits`] /
    /// [`PoolStats::blocked_nanos`], so contention is observable either
    /// way.
    pub fn checkout_timeout(&self, timeout: Duration) -> Option<PooledInstance<'_>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("instance pool poisoned");
        let mut waited: Option<Instant> = None;
        loop {
            if let Some(inst) = state.idle.pop() {
                state.stats.checkouts += 1;
                if let Some(since) = waited {
                    state.stats.blocked_waits += 1;
                    state.stats.blocked_nanos = state
                        .stats
                        .blocked_nanos
                        .saturating_add(since.elapsed().as_nanos() as u64);
                }
                return Some(PooledInstance {
                    pool: self,
                    inst: Some(inst),
                });
            }
            let since = *waited.get_or_insert_with(Instant::now);
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                state.stats.blocked_waits += 1;
                state.stats.blocked_nanos = state
                    .stats
                    .blocked_nanos
                    .saturating_add(since.elapsed().as_nanos() as u64);
                return None;
            };
            let (next, timed_out) = self
                .available
                .wait_timeout(state, remaining)
                .expect("instance pool poisoned");
            state = next;
            if timed_out.timed_out() && state.idle.is_empty() {
                state.stats.blocked_waits += 1;
                state.stats.blocked_nanos = state
                    .stats
                    .blocked_nanos
                    .saturating_add(since.elapsed().as_nanos() as u64);
                return None;
            }
        }
    }

    /// [`InstancePool::checkout`] without blocking: `None` when every
    /// instance is currently checked out.
    pub fn try_checkout(&self) -> Option<PooledInstance<'_>> {
        let mut state = self.state.lock().expect("instance pool poisoned");
        let inst = state.idle.pop()?;
        state.stats.checkouts += 1;
        Some(PooledInstance {
            pool: self,
            inst: Some(inst),
        })
    }

    /// Returns an instance to the pool. The instance is **re-reset** here
    /// (not lazily at checkout), so `checkin` is the only place pool
    /// hygiene lives and an idle pool holds only fresh instances. A reset
    /// failure falls back to minting a replacement instance from the
    /// artifact; if even that fails the slot is dropped and counted in
    /// [`PoolStats::lost`].
    fn checkin(&self, mut inst: Instance) {
        let recycled = match inst.reset() {
            Ok(()) => Some(inst),
            Err(_) => self.artifact.instantiate().ok(),
        };
        let mut state = self.state.lock().expect("instance pool poisoned");
        match recycled {
            Some(inst) => {
                state.idle.push(inst);
                state.stats.recycled += 1;
            }
            None => state.stats.lost += 1,
        }
        drop(state);
        self.available.notify_one();
    }

    /// Runs every job across up to `workers` scoped threads sharing this
    /// pool, returning the per-job outcomes **in job order**. Each worker
    /// checks out one instance for its whole share of the batch (jobs are
    /// claimed from a shared counter, so a slow job never stalls the
    /// others behind a fixed partition), keeping differential checking
    /// and the host record/replay queues strictly per-instance.
    ///
    /// `workers` is clamped to the pool capacity and the job count; with
    /// one worker the batch runs inline on the calling thread.
    ///
    /// Instances are **not** reset between jobs of one batch (resetting
    /// happens at checkin), so this API is for *invocation-independent*
    /// jobs — the serving-traffic shape, and the only shape whose
    /// results are schedule-independent. A guest that accumulates store
    /// state across invocations sees a worker's share of the batch, not
    /// the whole of it; drive such a guest through one checked-out
    /// instance instead, where the invocation order is yours.
    pub fn invoke_batch(
        &self,
        workers: usize,
        jobs: &[Job],
    ) -> Vec<Result<Invocation, PipelineError>> {
        if jobs.is_empty() {
            // Nothing to run — in particular, do not block on a checkout
            // the empty batch will never use.
            return Vec::new();
        }
        let workers = workers.max(1).min(self.capacity).min(jobs.len());
        if workers <= 1 {
            let mut inst = self.checkout();
            return jobs
                .iter()
                .map(|j| inst.invoke(&j.module, &j.func, j.args.clone()))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<Result<Invocation, PipelineError>>> =
            std::iter::repeat_with(|| None).take(jobs.len()).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut inst = self.checkout();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { break };
                            out.push((i, inst.invoke(&job.module, &job.func, job.args.clone())));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("batch worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every job index claimed exactly once"))
            .collect()
    }
}

/// A checked-out pool instance: derefs to [`Instance`]; dropping it
/// checks the instance back in (reset included).
pub struct PooledInstance<'p> {
    pool: &'p InstancePool,
    /// `None` only transiently during drop.
    inst: Option<Instance>,
}

impl fmt::Debug for PooledInstance<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PooledInstance({})", self.pool.artifact.key())
    }
}

impl std::ops::Deref for PooledInstance<'_> {
    type Target = Instance;
    fn deref(&self) -> &Instance {
        self.inst.as_ref().expect("instance present until drop")
    }
}

impl std::ops::DerefMut for PooledInstance<'_> {
    fn deref_mut(&mut self) -> &mut Instance {
        self.inst.as_mut().expect("instance present until drop")
    }
}

impl Drop for PooledInstance<'_> {
    fn drop(&mut self) {
        if let Some(inst) = self.inst.take() {
            self.pool.checkin(inst);
        }
    }
}

impl Artifact {
    /// Pre-instantiates `n` isolated instances as an [`InstancePool`].
    /// The pool shares nothing mutable between instances; it can be
    /// shared across threads and drained with
    /// [`InstancePool::checkout`] / [`InstancePool::invoke_batch`].
    ///
    /// # Errors
    ///
    /// `Unsupported` for `n == 0`, plus any [`Artifact::instantiate`]
    /// link error.
    pub fn pool(&self, n: usize) -> Result<InstancePool, PipelineError> {
        if n == 0 {
            return Err(PipelineError::new(
                Stage::Instantiate,
                None,
                PipelineErrorKind::Unsupported("an instance pool needs capacity >= 1".into()),
            ));
        }
        let mut idle = Vec::with_capacity(n);
        for _ in 0..n {
            idle.push(self.instantiate()?);
        }
        Ok(InstancePool {
            artifact: self.clone(),
            capacity: n,
            state: Mutex::new(PoolState {
                idle,
                stats: PoolStats::default(),
            }),
            available: Condvar::new(),
        })
    }

    /// The [`Job`] equivalent of [`Instance::invoke_entry`]: the entry
    /// module's entry function with no arguments. `None` when the module
    /// set has no resolvable entry.
    pub fn entry_job(&self) -> Option<Job> {
        Some(Job::new(self.entry()?, self.entry_func(), vec![]))
    }
}

/// The long-lived compilation engine: configuration plus the
/// content-addressed artifact cache. Shareable across threads (`&self`
/// everywhere); concurrent compiles of the same key race benignly (both
/// produce equal artifacts; one wins the cache slot).
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    cache: Mutex<HashMap<CacheKey, Artifact>>,
    stats: Mutex<CacheStats>,
}

impl Engine {
    /// An engine with the default configuration (differential mode,
    /// typecheck on).
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Engine {
        Engine {
            config,
            ..Engine::default()
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cache hit/miss counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        *self.stats.lock().expect("engine stats poisoned")
    }

    /// Number of artifacts currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").len()
    }

    /// Drops every cached artifact (instances and externally held
    /// artifact clones stay valid — they own their data via `Arc`).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("engine cache poisoned").clear();
    }

    /// Compiles a module set to an [`Artifact`], or returns the cached
    /// artifact when the same (module set, configuration) content hash
    /// was compiled before — skipping every static stage.
    ///
    /// On a miss, per-module frontend + typecheck stages run in parallel
    /// across the set's modules; lowering, validation, and encoding then
    /// run sequentially (lowering is whole-program, §6).
    ///
    /// # Errors
    ///
    /// The first stage failure, as a [`PipelineError`] naming the stage
    /// and offending module. Failures are not cached: a later compile of
    /// the same set retries.
    pub fn compile(&self, set: &ModuleSet) -> Result<Artifact, PipelineError> {
        let key = cache_key(&self.config, set);
        if let Some(hit) = self
            .cache
            .lock()
            .expect("engine cache poisoned")
            .get(&key)
            .cloned()
        {
            self.stats.lock().expect("engine stats poisoned").hits += 1;
            return Ok(hit);
        }
        // Second chance: the persistent cache (when configured and the
        // compile is persistable — Exec::Wasm, no host functions).
        if let Some(artifact) = self.try_disk_load(key, set) {
            self.cache
                .lock()
                .expect("engine cache poisoned")
                .insert(key, artifact.clone());
            self.stats.lock().expect("engine stats poisoned").disk_hits += 1;
            return Ok(artifact);
        }
        // Compile outside the lock: a slow build must not serialise
        // unrelated compiles.
        let artifact = self.compile_cold(set, key)?;
        self.store_disk(key, &artifact);
        self.cache
            .lock()
            .expect("engine cache poisoned")
            .insert(key, artifact.clone());
        self.stats.lock().expect("engine stats poisoned").misses += 1;
        Ok(artifact)
    }

    /// Compiles a standalone `.wasm` binary — precompiled by an earlier
    /// engine ([`Artifact::wasm_binaries`]) or externally produced —
    /// through the ordinary decode → validate path, as a single-module
    /// set named `"main"` (so [`Instance::invoke_entry`] calls its
    /// exported `main`). The bytes are never trusted; see
    /// [`ModuleSet::wasm_module`].
    ///
    /// # Errors
    ///
    /// Decode/validation failures; `Unsupported` unless the engine runs
    /// [`Exec::Wasm`] (binary modules carry no RichWasm types, so the
    /// differential and interpreter modes reject them cleanly).
    pub fn load_wasm(&self, bytes: impl Into<Vec<u8>>) -> Result<Artifact, PipelineError> {
        self.compile(&ModuleSet::new().wasm_module("main", bytes))
    }

    fn disk_path(dir: &Path, key: CacheKey) -> PathBuf {
        dir.join(format!("{key}.rwart"))
    }

    /// Attempts to serve `key` from the persistent cache. Absent files
    /// are ordinary cold compiles; present-but-unusable files (corrupt,
    /// stale fingerprint, failed re-validation, mismatched key) count as
    /// [`CacheStats::disk_misses`] and fall back to a cold compile that
    /// rewrites the entry.
    fn try_disk_load(&self, key: CacheKey, set: &ModuleSet) -> Option<Artifact> {
        let dir = self.config.cache_dir.as_ref()?;
        // Host closures make keys process-local (closure identity is
        // content), so sets with hosts never consult the disk.
        if self.config.exec != Exec::Wasm || !set.hosts.is_empty() {
            return None;
        }
        let bytes = fs::read(Self::disk_path(dir, key)).ok()?;
        match Artifact::deserialize(&bytes) {
            Ok(a) if a.key() == key && a.config().fingerprint() == self.config.fingerprint() => {
                Some(a)
            }
            _ => {
                self.stats
                    .lock()
                    .expect("engine stats poisoned")
                    .disk_misses += 1;
                None
            }
        }
    }

    /// Best-effort persistent-cache write (atomic: temp file + rename).
    /// I/O failures degrade to cold compiles on the next engine; they
    /// never fail the compile that produced the artifact.
    fn store_disk(&self, key: CacheKey, artifact: &Artifact) {
        let Some(dir) = &self.config.cache_dir else {
            return;
        };
        let Some(bytes) = artifact.serialize() else {
            return;
        };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        // The temp name must be unique per *call*, not just per process:
        // compiles run outside the cache lock, so two threads missing on
        // the same key can both land here concurrently, and interleaved
        // writes to one temp path would rename a corrupt file into place.
        static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
        let tmp = dir.join(format!(
            "{key}.tmp{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, &bytes).is_err() || fs::rename(&tmp, Self::disk_path(dir, key)).is_err()
        {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// [`Engine::compile`] + [`Artifact::instantiate`] in one call.
    ///
    /// # Errors
    ///
    /// As the two underlying calls.
    pub fn instantiate(&self, set: &ModuleSet) -> Result<Instance, PipelineError> {
        self.compile(set)?.instantiate()
    }

    /// Drives `jobs` across `workers` scoped threads over a fresh
    /// [`InstancePool`] of the compiled (cache-aware) module set:
    /// [`Engine::compile`] → [`Artifact::pool`]`(workers)` →
    /// [`InstancePool::invoke_batch`]. Per-job outcomes come back in job
    /// order; differential checking and host record/replay stay strictly
    /// per-instance, exactly as in sequential invocation.
    ///
    /// Services that invoke the same set repeatedly should hold the pool
    /// themselves ([`Artifact::pool`]) instead of re-instantiating one
    /// per batch — this is the one-call convenience form.
    ///
    /// # Errors
    ///
    /// Compile and instantiation failures. Per-job execution failures are
    /// reported in the returned vector, not as a batch failure.
    pub fn invoke_parallel(
        &self,
        set: &ModuleSet,
        workers: usize,
        jobs: &[Job],
    ) -> Result<Vec<Result<Invocation, PipelineError>>, PipelineError> {
        let pool = self.compile(set)?.pool(workers.max(1))?;
        Ok(pool.invoke_batch(workers.max(1), jobs))
    }

    /// A full compile that bypasses the cache entirely (no lookup, no
    /// insertion, no stats). Used by the one-shot `Pipeline` facade,
    /// whose throwaway engines could never hit the cache anyway —
    /// caching there would only keep a dead artifact copy alive.
    pub(crate) fn compile_uncached(&self, set: &ModuleSet) -> Result<Artifact, PipelineError> {
        self.compile_cold(set, cache_key(&self.config, set))
    }

    /// The full static pipeline, no cache involved.
    fn compile_cold(&self, set: &ModuleSet, key: CacheKey) -> Result<Artifact, PipelineError> {
        let config = &self.config;

        // Lowering is type-directed: `Session` re-checks whatever it is
        // given, so an unchecked Wasm build is impossible by construction.
        // Reject the combination instead of silently re-enabling checks
        // under a different stage name.
        if !config.typecheck && config.exec.wants_wasm() {
            return Err(PipelineError::new(
                Stage::Typecheck,
                None,
                PipelineErrorKind::Unsupported(
                    "typecheck(false) requires Exec::Interp: lowering is type-directed, so \
                     the Wasm path cannot run unchecked"
                        .into(),
                ),
            ));
        }

        // Precompiled binaries carry no RichWasm types: the interpreter
        // backend cannot run them, so the differential cross-check (and
        // Interp mode) must reject them up front rather than trap later.
        if config.exec != Exec::Wasm
            && set
                .sources
                .iter()
                .any(|(_, s)| matches!(s, Source::Wasm(_)))
        {
            return Err(PipelineError::new(
                Stage::Decode,
                None,
                PipelineErrorKind::Unsupported(
                    "precompiled .wasm modules execute on the Wasm backend only: compile \
                     them with EngineConfig::new().exec(Exec::Wasm)"
                        .into(),
                ),
            ));
        }

        // Host modules share the guest namespace: a clash would make an
        // import silently resolve against the wrong provider. Likewise a
        // duplicate function name within one host module — the two
        // backends resolve duplicates differently (first match vs last
        // insert), which would split the record/replay pairing.
        for hm in &set.hosts {
            for (i, f) in hm.funcs.iter().enumerate() {
                if hm.funcs[..i].iter().any(|g| g.name == f.name) {
                    return Err(PipelineError::new(
                        Stage::Instantiate,
                        Some(&hm.name),
                        PipelineErrorKind::Unsupported(format!(
                            "host module `{}` registers function `{}` twice",
                            hm.name, f.name
                        )),
                    ));
                }
            }
            if set.sources.iter().any(|(n, _)| *n == hm.name) {
                return Err(PipelineError::new(
                    Stage::Instantiate,
                    Some(&hm.name),
                    PipelineErrorKind::Unsupported(format!(
                        "host module `{}` clashes with a guest module of the same name",
                        hm.name
                    )),
                ));
            }
            if hm.name == RUNTIME_NAME && config.exec.wants_wasm() {
                return Err(PipelineError::new(
                    Stage::Instantiate,
                    Some(&hm.name),
                    PipelineErrorKind::Unsupported(format!(
                        "host module name `{RUNTIME_NAME}` is reserved for the generated \
                         runtime module"
                    )),
                ));
            }
        }

        let entry = set.resolved_entry();
        let entry_func = set.entry_func.clone().unwrap_or_else(|| "main".into());
        let mut timings = Timings::default();

        // Stages 1–2: frontends + the substructural check for source
        // modules, strict binary decoding for precompiled ones. Modules
        // are processed *independently* (imports are matched structurally
        // at link time, not against the provider's env), so the per-module
        // work fans out across scoped threads. Results come back in source
        // order; the first error in source order wins.
        enum Checked {
            Rich(syntax::Module, Option<ModuleEnv>, Duration, Duration),
            Wasm(Box<w::Module>, Duration),
        }
        let check_one = |name: &str, src: &Source| -> Result<Checked, PipelineError> {
            let t0 = Instant::now();
            let m = match src {
                Source::Ml(m) => compile_ml(m).map_err(|e| {
                    PipelineError::new(Stage::Frontend, Some(name), PipelineErrorKind::Ml(e))
                })?,
                Source::L3(m) => compile_l3(m).map_err(|e| {
                    PipelineError::new(Stage::Frontend, Some(name), PipelineErrorKind::L3(e))
                })?,
                Source::RichWasm(m) => (**m).clone(),
                Source::Wasm(bytes) => {
                    let wm = decode_module(&bytes.0).map_err(|e| {
                        PipelineError::new(Stage::Decode, Some(name), PipelineErrorKind::Decode(e))
                    })?;
                    return Ok(Checked::Wasm(Box::new(wm), t0.elapsed()));
                }
            };
            let frontend = t0.elapsed();
            let t1 = Instant::now();
            let env = if config.typecheck {
                Some(check_module(&m).map_err(|e| {
                    PipelineError::new(Stage::Typecheck, Some(name), PipelineErrorKind::Type(e))
                })?)
            } else {
                None
            };
            Ok(Checked::Rich(m, env, frontend, t1.elapsed()))
        };
        let results: Vec<Result<Checked, PipelineError>> = if set.sources.len() <= 1 {
            // Nothing to fan out; skip the thread-spawn overhead.
            set.sources.iter().map(|(n, s)| check_one(n, s)).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = set
                    .sources
                    .iter()
                    .map(|(n, s)| scope.spawn(|| check_one(n, s)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("frontend worker panicked"))
                    .collect()
            })
        };
        let mut modules = Vec::with_capacity(set.sources.len());
        let mut decoded = Vec::new();
        let mut envs = Vec::new();
        let mut frontend_total = Duration::ZERO;
        let mut decode_total = Duration::ZERO;
        let mut typecheck_total = Duration::ZERO;
        for ((name, _), result) in set.sources.iter().zip(results) {
            match result? {
                Checked::Rich(m, env, frontend, typecheck) => {
                    modules.push((name.clone(), m));
                    envs.extend(env);
                    frontend_total += frontend;
                    typecheck_total += typecheck;
                }
                Checked::Wasm(wm, decode) => {
                    decoded.push((name.clone(), *wm));
                    decode_total += decode;
                }
            }
        }
        if !modules.is_empty() || decoded.is_empty() {
            timings.add(Stage::Frontend, frontend_total);
            if config.typecheck {
                timings.add(Stage::Typecheck, typecheck_total);
            }
        }
        if !decoded.is_empty() {
            timings.add(Stage::Decode, decode_total);
        }

        // Stages 3–5: lower whole-program, validate, encode. A set with
        // no source-language modules generates no runtime module (decoded
        // binaries are self-contained — the one from a previous compile
        // is already among them when it is needed); otherwise the
        // generated runtime instantiates first, then every module in
        // declaration order (lowered or decoded), so imports resolve by
        // name exactly as between lowered guests.
        let mut link_plan = LinkPlan::default();
        let mut lowered = Vec::new();
        let mut binaries = Vec::new();
        if config.exec.wants_wasm() {
            let mut lowered_rich = Vec::new();
            if !modules.is_empty() {
                let t0 = Instant::now();
                link_plan = LinkPlan::compute(&modules);
                lowered_rich =
                    lower_modules_with_plan(&modules, &envs, &link_plan).map_err(|e| {
                        PipelineError::new(Stage::Lower, None, PipelineErrorKind::Lower(e))
                    })?;
                timings.add(Stage::Lower, t0.elapsed());
            }
            let mut rich_iter = lowered_rich.into_iter();
            if let Some(runtime) = rich_iter.next() {
                debug_assert_eq!(runtime.0, RUNTIME_NAME);
                lowered.push(runtime);
            }
            let mut decoded_iter = decoded.into_iter();
            for (_, src) in &set.sources {
                let next = match src {
                    Source::Wasm(_) => decoded_iter.next(),
                    _ => rich_iter.next(),
                };
                lowered.push(next.expect("one lowered/decoded module per source"));
            }

            let t0 = Instant::now();
            for (name, wm) in &lowered {
                validate_module(wm).map_err(|e| {
                    PipelineError::new(
                        Stage::Validate,
                        Some(name),
                        PipelineErrorKind::Validation(e),
                    )
                })?;
            }
            timings.add(Stage::Validate, t0.elapsed());

            let t0 = Instant::now();
            for (name, wm) in &lowered {
                binaries.push((name.clone(), encode_module(wm)));
            }
            timings.add(Stage::Encode, t0.elapsed());
        }

        // Bytecode tier: flatten every validated function body to linear
        // ops (timed under `Encode` — it is the other build-time code
        // emission). Tree tier skips this entirely.
        let mut compiled = Vec::new();
        if config.exec.wants_wasm() && config.wasm_tier.compiles_bytecode() {
            let t0 = Instant::now();
            for (name, wm) in &lowered {
                compiled.push((name.clone(), compile_wasm_bytecode(wm)));
            }
            timings.add(Stage::Encode, t0.elapsed());
        }

        // Stage 6: CFG/dataflow static analysis of every lowered (or
        // decoded) module — independent re-verification, fuel bounds,
        // call-graph discipline, dead-code lint. The reports are part of
        // the artifact: the serving layer reads the fuel bounds to
        // reject infeasible budgets without an instance checkout.
        let mut analysis = Vec::new();
        if config.analysis != Analysis::Off && !lowered.is_empty() {
            let t0 = Instant::now();
            for (name, wm) in &lowered {
                let report = analyze_module(wm);
                enforce_analysis(config.analysis, name, &report)?;
                analysis.push((name.clone(), report));
            }
            timings.add(Stage::Analyze, t0.elapsed());
        }

        Ok(Artifact {
            inner: Arc::new(ArtifactInner {
                key,
                config: config.clone(),
                entry,
                entry_func,
                hosts: set.hosts.clone(),
                modules,
                envs,
                link_plan,
                lowered,
                binaries,
                analysis,
                compiled,
                timings,
            }),
        })
    }
}

/// Applies the [`Analysis`] policy to one module's report: under
/// [`Analysis::Deny`], any `Deny`-severity finding fails the compile
/// with [`PipelineErrorKind::Analysis`]; under [`Analysis::Warn`] the
/// findings stay report data on the artifact.
fn enforce_analysis(
    level: Analysis,
    name: &str,
    report: &AnalysisReport,
) -> Result<(), PipelineError> {
    if level == Analysis::Deny && report.has_deny() {
        return Err(PipelineError::new(
            Stage::Analyze,
            Some(name),
            PipelineErrorKind::Analysis(AnalyzeError {
                diagnostics: report.deny_diagnostics(),
            }),
        ));
    }
    Ok(())
}

/// Flattens a RichWasm result value to its lowered Wasm representation
/// (`unit` erases; numerics map to their Wasm type). Returns `None` for
/// values without a direct scalar lowering (references, tuples, …).
fn flatten_value(v: &Value) -> Option<Vec<Val>> {
    match v {
        Value::Unit => Some(vec![]),
        Value::Num(NumType::I32 | NumType::U32, bits) => Some(vec![Val::I32(*bits as u32)]),
        Value::Num(NumType::I64 | NumType::U64, bits) => Some(vec![Val::I64(*bits)]),
        Value::Num(NumType::F32, bits) => Some(vec![Val::F32(f32::from_bits(*bits as u32))]),
        Value::Num(NumType::F64, bits) => Some(vec![Val::F64(f64::from_bits(*bits))]),
        _ => None,
    }
}

/// Bit-exact comparison (floats compare by bit pattern, so NaN == NaN).
fn vals_equal(a: &[Val], b: &[Val]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Val::F32(x), Val::F32(y)) => x.to_bits() == y.to_bits(),
            (Val::F64(x), Val::F64(y)) => x.to_bits() == y.to_bits(),
            _ => x == y,
        })
}

/// The shared invocation path of [`Instance::invoke`] and the
/// compatibility `Program::invoke`: run every available backend,
/// cross-check in differential mode.
pub(crate) fn invoke_backends(
    richwasm: &mut Option<Runtime>,
    wasm: &mut Option<WasmLinker>,
    exec: Exec,
    module: &str,
    func: &str,
    args: Vec<Value>,
) -> Result<Invocation, PipelineError> {
    // Flatten up front so the interpreter path below can consume `args`
    // without cloning. A value with no scalar lowering only matters when
    // a Wasm backend actually runs, so the error is deferred into that
    // closure.
    let wargs: Result<Vec<Val>, PipelineError> = args.iter().try_fold(Vec::new(), |mut acc, a| {
        let flat = flatten_value(a).ok_or_else(|| {
            PipelineError::new(
                Stage::Execute,
                Some(module),
                PipelineErrorKind::Unsupported(format!(
                    "argument {a:?} has no scalar Wasm lowering"
                )),
            )
        })?;
        acc.extend(flat);
        Ok(acc)
    });

    let interp_result: Option<Result<InvokeResult, PipelineError>> = richwasm.as_mut().map(|rt| {
        let inst = rt.instance_by_name(module).ok_or_else(|| {
            PipelineError::new(
                Stage::Execute,
                Some(module),
                PipelineErrorKind::Unsupported(format!("no module named `{module}`")),
            )
        })?;
        rt.invoke(inst, func, args).map_err(|e| {
            PipelineError::new(Stage::Execute, Some(module), PipelineErrorKind::Runtime(e))
        })
    });
    // Outside differential mode there is nothing to cross-check, so
    // an interpreter failure propagates immediately.
    let interp_result = match (interp_result, exec) {
        (Some(r), Exec::Differential) => Some(r),
        (Some(r), _) => Some(Ok(r?)),
        (None, _) => None,
    };

    let wasm_result: Option<Result<Vec<Val>, PipelineError>> = wasm.as_mut().map(|linker| {
        let inst = linker.instance_by_name(module).ok_or_else(|| {
            PipelineError::new(
                Stage::Execute,
                Some(module),
                PipelineErrorKind::Unsupported(format!("no module named `{module}`")),
            )
        })?;
        let wargs = wargs?;
        linker.invoke(inst, func, &wargs).map_err(|e| {
            PipelineError::new(Stage::Execute, Some(module), PipelineErrorKind::Wasm(e))
        })
    });

    if exec == Exec::Differential {
        // A backend may have been extracted through the pub fields
        // (the benches do this); fall back to whatever is left.
        match (interp_result, wasm_result) {
            (Some(ir), Some(wr)) => return compare(module, ir, wr),
            (ir, wr) => return Ok(Invocation::new(ir.transpose()?, wr.transpose()?)),
        }
    }

    Ok(Invocation::new(
        interp_result.transpose()?,
        wasm_result.transpose()?,
    ))
}

/// Differential-mode reconciliation: both outcomes (success or failure)
/// must agree.
fn compare(
    module: &str,
    interp: Result<InvokeResult, PipelineError>,
    wasm: Result<Vec<Val>, PipelineError>,
) -> Result<Invocation, PipelineError> {
    match (interp, wasm) {
        (Ok(ir), Ok(wr)) => {
            let mut flat = Vec::new();
            let mut comparable = true;
            for v in &ir.values {
                match flatten_value(v) {
                    Some(vals) => flat.extend(vals),
                    None => comparable = false,
                }
            }
            if !comparable {
                return Err(PipelineError::new(
                    Stage::Differential,
                    Some(module),
                    PipelineErrorKind::Unsupported(format!(
                        "result {:?} has no scalar Wasm lowering to compare against",
                        ir.values
                    )),
                ));
            }
            if !vals_equal(&flat, &wr) {
                return Err(PipelineError::new(
                    Stage::Differential,
                    Some(module),
                    PipelineErrorKind::Mismatch {
                        richwasm: format!("{:?}", ir.values),
                        wasm: format!("{wr:?}"),
                    },
                ));
            }
            Ok(Invocation::new(Some(ir), Some(wr)))
        }
        // At least one side failed: the shared policy decides.
        (ir, wr) => Err(reconcile_failures(
            module,
            ir.map(|r| format!("{:?}", r.values)),
            wr.map(|vals| format!("{vals:?}")),
        )),
    }
}

/// The shared differential *failure* policy, used by both the
/// string-keyed invoke path and `TypedFunc::call` (successes are
/// pre-rendered by the caller; the `(Ok, Ok)` value comparison differs
/// per path and stays with the caller):
///
/// * fuel exhaustion on **either** backend — an agreed preemption, not a
///   mismatch. The two backends meter fuel in different native units
///   (RichWasm reduction steps vs executed Wasm instructions), so under
///   a finite budget one side can run dry while the other completes;
///   fuel is embedder resource policy, not program semantics, and must
///   never read as a semantic disagreement. The fuel error is propagated
///   (RichWasm side preferred when both ran dry) and classified by
///   [`PipelineError::is_fuel_exhausted`];
/// * both failed with a genuine interpreter trap on the RichWasm side —
///   an agreed dynamic fault, propagated as-is;
/// * both failed otherwise (stuck, …) — still a disagreement worth
///   surfacing with both sides attached;
/// * one-sided failure — the disagreement differential mode exists for.
pub(crate) fn reconcile_failures(
    module: &str,
    interp: Result<String, PipelineError>,
    wasm: Result<String, PipelineError>,
) -> PipelineError {
    debug_assert!(interp.is_err() || wasm.is_err());
    if let Err(ie) = &interp {
        if ie.is_fuel_exhausted() {
            return interp.unwrap_err();
        }
    }
    if let Err(we) = &wasm {
        if we.is_fuel_exhausted() {
            return wasm.unwrap_err();
        }
    }
    if let (Err(ie), Err(_)) = (&interp, &wasm) {
        if matches!(
            ie.kind,
            PipelineErrorKind::Runtime(RuntimeError::Trap { .. })
        ) {
            return interp.unwrap_err();
        }
    }
    let render =
        |side: Result<String, PipelineError>| side.unwrap_or_else(|e| format!("error: {}", e.kind));
    PipelineError::new(
        Stage::Differential,
        Some(module),
        PipelineErrorKind::Mismatch {
            richwasm: render(interp),
            wasm: render(wasm),
        },
    )
}

// The embedder's concurrency contract, enforced at compile time (the
// other half — `Runtime`/`WasmLinker` — is asserted in their own crates):
//
// * `Engine`, `Artifact`, `ModuleSet`, and `InstancePool` are shared by
//   reference across worker threads (`Sync`), and cross thread
//   boundaries when a service spawns its workers (`Send`);
// * `Instance` (and its pool guard) is `Send` — checked out to one
//   thread at a time, moved, never shared: differential stores and the
//   host record/replay queues stay thread-confined by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<Artifact>();
    assert_send_sync::<ModuleSet>();
    assert_send_sync::<InstancePool>();
    assert_send_sync::<Job>();
    assert_send_sync::<Invocation>();
    assert_send::<Instance>();
    assert_send::<PooledInstance<'_>>();
    assert_send::<PipelineError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::HostValType;

    #[test]
    fn cache_key_is_stable_and_content_sensitive() {
        let cfg = EngineConfig::new();
        let set = ModuleSet::new().richwasm("m", syntax::Module::default());
        let k1 = cache_key(&cfg, &set);
        let k2 = cache_key(&cfg, &set);
        assert_eq!(k1, k2, "same content, same key");

        let renamed = ModuleSet::new().richwasm("other", syntax::Module::default());
        assert_ne!(k1, cache_key(&cfg, &renamed), "module name is content");

        let recfg = cfg.interp_only();
        assert_ne!(k1, cache_key(&recfg, &set), "config is part of the key");
    }

    #[test]
    fn cache_key_cannot_be_forged_through_module_names() {
        // A module name crafted to contain the key's separator syntax
        // must not collapse a two-module set onto a one-module set.
        let cfg = EngineConfig::new();
        let two = ModuleSet::new()
            .richwasm("a", syntax::Module::default())
            .richwasm("b", syntax::Module::default());
        let forged_name = format!("a\"={:?}|mod:\"b", Source::RichWasm(Box::default()));
        let one = ModuleSet::new().richwasm(forged_name, syntax::Module::default());
        assert_ne!(cache_key(&cfg, &two), cache_key(&cfg, &one));
    }

    /// A guest whose `main` imports and calls `host.tick(5)`, adding 1.
    fn host_client_set() -> ModuleSet {
        let m = syntax::Module {
            funcs: vec![
                syntax::Func::Imported {
                    exports: vec![],
                    module: "host".into(),
                    name: "tick".into(),
                    ty: syntax::FunType::mono(
                        vec![syntax::Type::num(NumType::I32)],
                        vec![syntax::Type::num(NumType::I32)],
                    ),
                },
                syntax::Func::Defined {
                    exports: vec!["main".into()],
                    ty: syntax::FunType::mono(vec![], vec![syntax::Type::num(NumType::I32)]),
                    locals: vec![],
                    body: vec![
                        syntax::Instr::i32(5),
                        syntax::Instr::Call(0, vec![]),
                        syntax::Instr::i32(1),
                        syntax::Instr::Num(syntax::NumInstr::IntBinop(
                            NumType::I32,
                            syntax::instr::IntBinop::Add,
                        )),
                    ],
                },
            ],
            ..syntax::Module::default()
        };
        ModuleSet::new().richwasm("m", m).host_fn(
            "host",
            "tick",
            crate::call::HostSig::new([HostValType::I32], [HostValType::I32]),
            |args| {
                let HostVal::I32(x) = args[0] else {
                    return Err("expected i32".into());
                };
                Ok(vec![HostVal::I32(x * 2)])
            },
        )
    }

    // Regression (PR 4): `Instance::reset` must drain the differential
    // record/replay queues. A leftover recording (here injected directly;
    // in the wild, host outcomes recorded by an invocation that failed
    // between the two backends) would otherwise be replayed by the Wasm
    // backend of the *next* checkout, desynchronising the cross-check
    // with a stale host outcome.
    #[test]
    fn reset_drains_host_replay_queues() {
        let engine = Engine::new();
        let mut inst = engine.instantiate(&host_client_set()).unwrap();
        assert_eq!(inst.replay.len(), 1, "one replay channel per host fn");

        inst.replay[0]
            .lock()
            .unwrap()
            .push_back(Ok(vec![HostVal::I32(999)]));
        inst.reset().unwrap();
        assert!(
            inst.replay.iter().all(|l| l.lock().unwrap().is_empty()),
            "reset left a recorded host outcome behind"
        );
        // And the next invocation computes fresh: tick(5)*... = 10 + 1,
        // not the injected 999 + 1.
        assert_eq!(inst.invoke_entry().unwrap().i32(), Some(11));
    }

    #[test]
    fn pool_checkin_recycles_through_reset() {
        let engine = Engine::new();
        let artifact = engine.compile(&host_client_set()).unwrap();
        let pool = artifact.pool(2).unwrap();
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.idle(), 2);

        {
            let mut a = pool.checkout();
            let mut b = pool.checkout();
            assert_eq!(pool.idle(), 0);
            assert!(pool.try_checkout().is_none(), "pool exhausted");
            assert_eq!(a.invoke_entry().unwrap().i32(), Some(11));
            assert_eq!(b.invoke_entry().unwrap().i32(), Some(11));
            assert_eq!(a.invocations(), 1);
        }
        assert_eq!(pool.idle(), 2, "drop returned both instances");
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 2);
        assert_eq!(stats.recycled, 2);
        assert_eq!(stats.lost, 0);

        // A recycled instance is indistinguishable from a fresh one.
        let c = pool.checkout();
        assert_eq!(c.invocations(), 0, "checkin re-reset the instance");
        assert!(c.timings().no_static_stages());
    }

    #[test]
    fn empty_pool_is_rejected() {
        let engine = Engine::new();
        let artifact = engine
            .compile(&ModuleSet::new().richwasm("m", syntax::Module::default()))
            .unwrap();
        let err = artifact.pool(0).unwrap_err();
        assert!(matches!(err.kind, PipelineErrorKind::Unsupported(_)));
    }

    #[test]
    fn empty_batch_returns_without_touching_the_pool() {
        let engine = Engine::new();
        let pool = engine.compile(&host_client_set()).unwrap().pool(1).unwrap();
        // Exhaust the pool, then submit an empty batch: it must return
        // immediately instead of blocking on a checkout it will not use.
        let _held = pool.checkout();
        assert!(pool.invoke_batch(4, &[]).is_empty());
        assert_eq!(pool.stats().checkouts, 1, "empty batch checked nothing out");
    }

    #[test]
    fn enforce_analysis_fails_only_deny_level_with_deny_findings() {
        // A Deny finding only arises from a checker disagreement, which
        // no valid module can trigger through the public API — so the
        // policy gate is tested with a fabricated report.
        let deny_report = AnalysisReport {
            diagnostics: vec![Diagnostic {
                func: 0,
                offset: 0,
                pass: Pass::Verify,
                severity: Severity::Deny,
                message: "fabricated disagreement".into(),
            }],
            cost: CostReport::default(),
        };
        assert!(enforce_analysis(Analysis::Off, "m", &deny_report).is_ok());
        assert!(enforce_analysis(Analysis::Warn, "m", &deny_report).is_ok());
        let err = enforce_analysis(Analysis::Deny, "m", &deny_report).unwrap_err();
        assert_eq!(err.stage, Stage::Analyze);
        assert_eq!(err.module.as_deref(), Some("m"));
        assert!(matches!(err.kind, PipelineErrorKind::Analysis(_)));

        let warn_report = AnalysisReport {
            diagnostics: vec![Diagnostic {
                func: 0,
                offset: 0,
                pass: Pass::DeadCode,
                severity: Severity::Warn,
                message: "dead code".into(),
            }],
            cost: CostReport::default(),
        };
        assert!(enforce_analysis(Analysis::Deny, "m", &warn_report).is_ok());
    }

    #[test]
    fn compiled_artifact_carries_analysis_reports() {
        let engine = Engine::new();
        let artifact = engine.compile(&host_client_set()).unwrap();
        // Differential mode lowers to Wasm, so analysis ran: one report
        // per lowered module (runtime + guests), none with Deny findings.
        assert_eq!(
            artifact.analysis().len(),
            artifact.lowered_modules().len(),
            "one report per lowered module"
        );
        assert!(artifact.analysis().iter().all(|(_, r)| !r.has_deny()));

        // Off produces an artifact with no reports — and a different
        // cache key, so the two configurations never alias.
        let off = Engine::with_config(EngineConfig::new().analysis(Analysis::Off));
        let bare = off.compile(&host_client_set()).unwrap();
        assert!(bare.analysis().is_empty());
        assert_ne!(artifact.key(), bare.key());
    }

    #[test]
    fn invoke_batch_matches_sequential_and_preserves_job_order() {
        let engine = Engine::new();
        let artifact = engine.compile(&host_client_set()).unwrap();
        let jobs: Vec<Job> = (0..16)
            .map(|_| artifact.entry_job().expect("set has an entry"))
            .collect();

        let pool = artifact.pool(3).unwrap();
        let parallel = pool.invoke_batch(3, &jobs);
        let sequential = pool.invoke_batch(1, &jobs);
        assert_eq!(parallel.len(), jobs.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.results(), s.results());
            assert_eq!(p.i32(), Some(11));
        }
    }
}
