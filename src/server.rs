//! Open-loop serving: [`EngineServer`] — an asynchronous job scheduler
//! over an [`Artifact`] + [`InstancePool`].
//!
//! The batch APIs ([`InstancePool::invoke_batch`],
//! `Engine::invoke_parallel`) are *closed-loop*: the caller blocks until
//! the whole batch completes, so arrival stops whenever the system is
//! busy. Real traffic is an *open-loop* stream — requests keep arriving
//! whether or not the system keeps up — and an embedder that cannot shed
//! load, bound queueing, or preempt a runaway guest will fall over on
//! the first hot tenant. This module adds that serving discipline
//! (DESIGN.md §10):
//!
//! * **Bounded queues, non-blocking submission.** Each tenant owns a
//!   bounded lock-free ring ([`richwasm_queue::RingQueue`]);
//!   [`EngineServer::submit`] never blocks — it returns a [`JobTicket`]
//!   on admission or [`SubmitError::Backpressure`] when the tenant's
//!   queue is full. Admission is **deny-by-default**: unknown tenants
//!   get [`SubmitError::UnknownTenant`].
//! * **Per-tenant admission control.** [`TenantConfig`] bounds both the
//!   queue depth (jobs waiting) and max-in-flight (jobs executing), so
//!   one hot tenant saturates its own allowance, not the pool.
//! * **Fuel preemption.** Every job runs under a fuel budget
//!   ([`ServerConfig::job_fuel`]) on both backends; an exhausted job
//!   fails with [`JobError::FuelExhausted`] without poisoning its
//!   instance — checkin resets it, so the next job gets a fresh program.
//! * **Latency telemetry.** Enqueue→start→finish timestamps feed a
//!   fixed-size log-bucketed histogram; [`ServerStats`] reports
//!   throughput, queue depth, shed count, and p50/p90/p99 latency.
//! * **Graceful shutdown.** [`EngineServer::drain`] rejects new work,
//!   completes everything already accepted (zero dropped tickets), and
//!   joins the workers. Dropping the server drains it.
//!
//! # Example
//!
//! ```
//! use richwasm_repro::engine::{Engine, Job, ModuleSet};
//! use richwasm_repro::server::{EngineServer, ServerConfig, TenantConfig};
//! use richwasm::syntax::*;
//!
//! let m = Module {
//!     funcs: vec![Func::Defined {
//!         exports: vec!["main".into()],
//!         ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
//!         locals: vec![],
//!         body: vec![Instr::i32(42)],
//!     }],
//!     ..Module::default()
//! };
//! let artifact = Engine::new()
//!     .compile(&ModuleSet::new().richwasm("m", m))
//!     .unwrap();
//! let server = EngineServer::start(
//!     &artifact,
//!     ServerConfig::new().workers(2).tenant("alice", TenantConfig::new()),
//! )
//! .unwrap();
//! let ticket = server.submit("alice", Job::new("m", "main", vec![])).unwrap();
//! let outcome = ticket.wait();
//! assert_eq!(outcome.result.unwrap().i32(), Some(42));
//! server.drain();
//! println!("{}", server.stats());
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use richwasm_queue::RingQueue;

use crate::engine::{Artifact, InstancePool, Invocation, Job, PipelineError, PoolStats};

/// Per-tenant admission limits. Defaults: queue depth 64, max-in-flight
/// unbounded (the pool size is the real execution bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Maximum jobs waiting in this tenant's queue. A submit beyond the
    /// bound is shed with [`SubmitError::Backpressure`].
    pub queue_depth: usize,
    /// Maximum jobs of this tenant executing concurrently. Workers skip
    /// a tenant at its bound, so a hot tenant cannot occupy every pool
    /// instance while others wait.
    pub max_in_flight: usize,
}

impl TenantConfig {
    /// Default limits (queue depth 64, in-flight unbounded).
    pub fn new() -> TenantConfig {
        TenantConfig {
            queue_depth: 64,
            max_in_flight: usize::MAX,
        }
    }

    /// Sets the queue-depth bound (clamped to at least 1).
    pub fn queue_depth(mut self, depth: usize) -> TenantConfig {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the max-in-flight bound (clamped to at least 1).
    pub fn max_in_flight(mut self, n: usize) -> TenantConfig {
        self.max_in_flight = n.max(1);
        self
    }
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig::new()
    }
}

/// Server-wide configuration: worker/pool size, the per-job fuel
/// budget, and the tenant table (deny-by-default: only tenants listed
/// here may submit).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= pool capacity). Default 2.
    pub workers: usize,
    /// Per-job fuel budget applied to **both** backends at every
    /// checkout (`None` = the artifact's own [`EngineConfig::fuel`]
    /// settings stand). Fuel exhaustion fails the one job
    /// ([`JobError::FuelExhausted`]); the instance is reset on checkin,
    /// so a preempted guest cannot poison the pool.
    ///
    /// [`EngineConfig::fuel`]: crate::engine::EngineConfig::fuel
    pub job_fuel: Option<u64>,
    tenants: Vec<(String, TenantConfig)>,
}

impl ServerConfig {
    /// Default configuration: 2 workers, no fuel override, no tenants
    /// (every submit denied until [`ServerConfig::tenant`] adds one).
    pub fn new() -> ServerConfig {
        ServerConfig {
            workers: 2,
            job_fuel: None,
            tenants: Vec::new(),
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn workers(mut self, n: usize) -> ServerConfig {
        self.workers = n.max(1);
        self
    }

    /// Sets the per-job fuel budget.
    pub fn job_fuel(mut self, fuel: u64) -> ServerConfig {
        self.job_fuel = Some(fuel);
        self
    }

    /// Registers a tenant (replacing any previous registration of the
    /// same name).
    pub fn tenant(mut self, name: impl Into<String>, config: TenantConfig) -> ServerConfig {
        let name = name.into();
        self.tenants.retain(|(n, _)| *n != name);
        self.tenants.push((name, config));
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

/// Why [`EngineServer::submit`] rejected a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant is not registered — admission is deny-by-default.
    UnknownTenant,
    /// The tenant's queue is at its configured depth; the job was shed.
    Backpressure,
    /// The server is draining (or drained) and accepts no new work.
    Draining,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SubmitError::UnknownTenant => "unknown tenant (admission is deny-by-default)",
            SubmitError::Backpressure => "tenant queue full (job shed)",
            SubmitError::Draining => "server is draining",
        })
    }
}

impl std::error::Error for SubmitError {}

/// Why a job failed (the per-job analogue of [`PipelineError`], owned
/// and cloneable so the ticket can hand it to any number of waiters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job exhausted its fuel budget on either backend and was
    /// preempted. Retryable policy failure, not a guest fault — the
    /// instance was reset and subsequent jobs are unaffected.
    FuelExhausted,
    /// The job's fuel budget is strictly below the statically proven
    /// minimum step cost of the target function (the `richwasm-analyze`
    /// fuel bounds cached on the artifact): it could only ever be
    /// preempted, so the server rejects it *before* an instance
    /// checkout instead of burning a pool slot on a doomed run.
    BudgetInfeasible {
        /// The budget the job would have run under.
        budget: u64,
        /// The proven minimum number of interpreter steps to complete.
        required: u64,
    },
    /// The job failed for any other reason (trap, mismatch, …), rendered
    /// from the underlying [`PipelineError`].
    Failed(String),
}

impl JobError {
    fn from_pipeline(e: &PipelineError) -> JobError {
        if e.is_fuel_exhausted() {
            JobError::FuelExhausted
        } else {
            JobError::Failed(e.to_string())
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::FuelExhausted => f.write_str("job preempted: fuel budget exhausted"),
            JobError::BudgetInfeasible { budget, required } => write!(
                f,
                "job rejected: fuel budget {budget} is below the statically proven \
                 minimum of {required} steps"
            ),
            JobError::Failed(reason) => write!(f, "job failed: {reason}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Where one job's time went: enqueue→start (queueing) and
/// start→finish (service).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTiming {
    /// Time spent waiting in the tenant queue before a worker picked the
    /// job up.
    pub queued: Duration,
    /// Time spent executing (checkout + invoke + checkin).
    pub service: Duration,
}

impl JobTiming {
    /// End-to-end latency (enqueue→finish) — what the histogram records.
    pub fn total(&self) -> Duration {
        self.queued + self.service
    }
}

/// The resolution of one accepted job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The invocation result, or why the job failed.
    pub result: Result<Invocation, JobError>,
    /// Where the job's latency went.
    pub timing: JobTiming,
}

struct TicketState {
    outcome: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

impl TicketState {
    fn resolve(&self, outcome: JobOutcome) {
        let mut slot = self.outcome.lock().expect("ticket poisoned");
        debug_assert!(slot.is_none(), "a ticket resolves exactly once");
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
    }
}

/// The poll/wait handle [`EngineServer::submit`] returns for an accepted
/// job. Cheap to clone; every clone observes the same outcome.
#[derive(Clone)]
pub struct JobTicket {
    state: Arc<TicketState>,
}

impl JobTicket {
    fn new() -> JobTicket {
        JobTicket {
            state: Arc::new(TicketState {
                outcome: Mutex::new(None),
                done: Condvar::new(),
            }),
        }
    }

    /// Non-blocking check: the outcome when the job has finished, else
    /// `None`.
    pub fn poll(&self) -> Option<JobOutcome> {
        self.state.outcome.lock().expect("ticket poisoned").clone()
    }

    /// True once the job has finished (successfully or not).
    pub fn is_done(&self) -> bool {
        self.state
            .outcome
            .lock()
            .expect("ticket poisoned")
            .is_some()
    }

    /// Blocks until the job finishes. Every accepted ticket resolves —
    /// [`EngineServer::drain`] completes admitted jobs rather than
    /// dropping them — so this cannot wait forever unless the server is
    /// leaked without ever draining.
    pub fn wait(&self) -> JobOutcome {
        let mut slot = self.state.outcome.lock().expect("ticket poisoned");
        loop {
            if let Some(outcome) = slot.clone() {
                return outcome;
            }
            slot = self.state.done.wait(slot).expect("ticket poisoned");
        }
    }

    /// [`JobTicket::wait`] with a bound: `None` when the job has not
    /// finished within `timeout`.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.outcome.lock().expect("ticket poisoned");
        loop {
            if let Some(outcome) = slot.clone() {
                return Some(outcome);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (next, _) = self
                .state
                .done
                .wait_timeout(slot, remaining)
                .expect("ticket poisoned");
            slot = next;
        }
    }
}

impl fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JobTicket {{ done: {} }}", self.is_done())
    }
}

/// An accepted job travelling through a tenant queue.
struct QueuedJob {
    job: Job,
    ticket: JobTicket,
    enqueued: Instant,
}

struct Tenant {
    name: String,
    config: TenantConfig,
    queue: RingQueue<QueuedJob>,
    /// Jobs admitted but not yet picked up. The ring capacity is the
    /// queue depth rounded up to a power of two, so this counter — not
    /// ring fullness — enforces the *configured* depth exactly.
    queued: AtomicUsize,
    /// Jobs of this tenant currently executing.
    in_flight: AtomicUsize,
    /// Submissions shed with [`SubmitError::Backpressure`].
    shed: AtomicU64,
}

/// A fixed-size log₂-bucketed latency histogram: bucket *i* for
/// `1 ≤ i ≤ 62` holds samples in `[2^(i-1), 2^i)` nanoseconds, and the
/// two end buckets are special — bucket 0 holds only exact-zero
/// samples, and bucket 63 saturates (every sample in
/// `[2^62, u64::MAX]`, including durations clamped to `u64::MAX`).
/// 64 buckets therefore cover every representable duration; recording
/// is one atomic add, wait-free.
struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

impl LatencyHistogram {
    fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - nanos.leading_zeros()).min(63) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The latency below which a fraction `q` (in `0.0..=1.0`) of the
    /// recorded samples fall, to bucket resolution (the bucket's upper
    /// bound, so the estimate is conservative). Zero before any sample.
    fn quantile(&self, q: f64) -> Duration {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { 1u64 << i };
                return Duration::from_nanos(upper);
            }
        }
        Duration::from_nanos(u64::MAX)
    }
}

/// A point-in-time snapshot of serving telemetry, via
/// [`EngineServer::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Jobs completed (successfully or not) since the server started.
    pub completed: u64,
    /// Submissions shed with [`SubmitError::Backpressure`], summed over
    /// tenants.
    pub shed: u64,
    /// Jobs currently waiting across all tenant queues.
    pub queued: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// Completed jobs per second of server lifetime.
    pub throughput: f64,
    /// Median end-to-end (enqueue→finish) latency, to histogram-bucket
    /// resolution.
    pub p50: Duration,
    /// 90th-percentile end-to-end latency.
    pub p90: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99: Duration,
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} completed ({:.1}/s), {} shed, {} queued, {} in flight; \
             latency p50 {:.2?} p90 {:.2?} p99 {:.2?}",
            self.completed,
            self.throughput,
            self.shed,
            self.queued,
            self.in_flight,
            self.p50,
            self.p90,
            self.p99,
        )
    }
}

struct ServerInner {
    pool: InstancePool,
    job_fuel: Option<u64>,
    tenants: Vec<Tenant>,
    by_name: HashMap<String, usize>,
    /// The shutdown gate. `submit` admits under the read lock; `drain`
    /// flips the flag under the write lock, so once the flag is visibly
    /// set **no** admission is still in progress — every accepted job is
    /// either in a queue (the drain sweep runs it) or already running.
    draining: RwLock<bool>,
    /// Worker wake-up: workers park here when every queue is empty.
    idle: Mutex<()>,
    wake: Condvar,
    /// Workers currently parked (or about to park). `submit` skips the
    /// notify syscall entirely while this is zero — the common hot-path
    /// case.
    sleepers: AtomicUsize,
    completed: AtomicU64,
    latency: LatencyHistogram,
    started: Instant,
}

impl ServerInner {
    /// Claims and runs one job from some tenant queue, scanning from
    /// `from` so concurrent workers start at different tenants. Returns
    /// false when no tenant had a runnable job.
    fn run_one(&self, from: usize) -> bool {
        let n = self.tenants.len();
        for i in 0..n {
            let tenant = &self.tenants[(from + i) % n];
            // Optimistically claim an in-flight slot before popping:
            // between a pop and an in-flight increment the job would be
            // invisible to both counters and a concurrent `drain` could
            // believe the tenant idle.
            if tenant.in_flight.fetch_add(1, Ordering::SeqCst) >= tenant.config.max_in_flight {
                tenant.in_flight.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let Some(queued_job) = tenant.queue.pop() else {
                tenant.in_flight.fetch_sub(1, Ordering::SeqCst);
                continue;
            };
            tenant.queued.fetch_sub(1, Ordering::SeqCst);
            self.run_job(&queued_job);
            tenant.in_flight.fetch_sub(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Resolves a job's ticket and records its latency telemetry.
    fn finish_job(
        &self,
        queued_job: &QueuedJob,
        start: Instant,
        result: Result<Invocation, JobError>,
    ) {
        let timing = JobTiming {
            queued: start.duration_since(queued_job.enqueued),
            service: start.elapsed(),
        };
        self.latency.record(timing.total());
        self.completed.fetch_add(1, Ordering::Relaxed);
        queued_job
            .ticket
            .state
            .resolve(JobOutcome { result, timing });
    }

    /// Executes one job on a pool instance and resolves its ticket.
    fn run_job(&self, queued_job: &QueuedJob) {
        let start = Instant::now();

        // Feasibility gate (static fuel bounds, `richwasm-analyze`): a
        // budget strictly below the proven minimum step cost of the
        // target export can only ever be preempted, so reject it here —
        // before a pool checkout — instead of burning a slot on a
        // doomed run.
        let artifact = self.pool.artifact();
        let budget = self.job_fuel.or(artifact.config().fuel);
        if let Some(budget) = budget {
            let job = &queued_job.job;
            if let Some(required) = artifact.static_min_steps(&job.module, &job.func) {
                if budget < required {
                    self.finish_job(
                        queued_job,
                        start,
                        Err(JobError::BudgetInfeasible { budget, required }),
                    );
                    return;
                }
            }
        }

        let result = {
            let mut inst = self.pool.checkout();
            // Reset-on-checkin rebuilds backend state from the artifact's
            // own config, so the per-job budget is applied per checkout.
            if let Some(fuel) = self.job_fuel {
                if let Some(rt) = inst.richwasm.as_mut() {
                    rt.config.fuel = fuel;
                }
                if let Some(linker) = inst.wasm.as_mut() {
                    linker.max_steps = fuel;
                }
                // The Check-tier oracle must meter the same budget, or
                // fuel preemption would masquerade as a tier mismatch.
                if let Some(oracle) = inst.wasm_oracle.as_mut() {
                    oracle.max_steps = fuel;
                }
            }
            let job = &queued_job.job;
            inst.invoke(&job.module, &job.func, job.args.clone())
            // Drop = checkin = reset: a trapped or fuel-preempted job
            // cannot poison the instance for the next checkout.
        };
        self.finish_job(
            queued_job,
            start,
            result.map_err(|e| JobError::from_pipeline(&e)),
        );
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if self.run_one(worker) {
                continue;
            }
            if *self.draining.read().expect("drain gate poisoned") {
                // Draining and a full scan found nothing runnable: any
                // job still queued (another tenant at max-in-flight) is
                // finished by the drain sweep.
                return;
            }
            // Park until a submit notifies (or a short timeout backstops
            // the race where a job arrives between the scan above and
            // the wait below).
            let guard = self.idle.lock().expect("idle lock poisoned");
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            let (guard, _) = self
                .wake
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("idle lock poisoned");
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
        }
    }
}

/// An open-loop job server over an [`Artifact`]: bounded per-tenant
/// queues, non-blocking submission with backpressure, fuel-preempted
/// execution on a worker pool, and latency telemetry. See the
/// [module docs](self) for the full picture and an example.
pub struct EngineServer {
    inner: Arc<ServerInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl EngineServer {
    /// Instantiates a pool of `config.workers` instances of `artifact`
    /// and starts that many worker threads.
    ///
    /// # Errors
    ///
    /// The same instantiation errors as [`Artifact::pool`].
    pub fn start(artifact: &Artifact, config: ServerConfig) -> Result<EngineServer, PipelineError> {
        let workers = config.workers.max(1);
        let pool = artifact.pool(workers)?;
        let mut tenants = Vec::with_capacity(config.tenants.len());
        let mut by_name = HashMap::with_capacity(config.tenants.len());
        for (name, tenant_config) in config.tenants {
            by_name.insert(name.clone(), tenants.len());
            tenants.push(Tenant {
                name,
                config: tenant_config,
                queue: RingQueue::with_capacity(tenant_config.queue_depth),
                queued: AtomicUsize::new(0),
                in_flight: AtomicUsize::new(0),
                shed: AtomicU64::new(0),
            });
        }
        let inner = Arc::new(ServerInner {
            pool,
            job_fuel: config.job_fuel,
            tenants,
            by_name,
            draining: RwLock::new(false),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            started: Instant::now(),
        });
        let handles = (0..workers)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("engine-server-{worker}"))
                    .spawn(move || inner.worker_loop(worker))
                    .expect("spawning a server worker thread failed")
            })
            .collect();
        Ok(EngineServer {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// Submits a job for `tenant`, without blocking.
    ///
    /// On admission the job is queued and a [`JobTicket`] returned —
    /// every accepted ticket resolves, even across [`EngineServer::drain`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownTenant`] for unregistered tenants (deny by
    /// default), [`SubmitError::Backpressure`] when the tenant's queue
    /// is at its configured depth (the shed is counted), and
    /// [`SubmitError::Draining`] once shutdown has begun.
    pub fn submit(&self, tenant: &str, job: Job) -> Result<JobTicket, SubmitError> {
        // Admission happens under the read side of the drain gate: once
        // `drain` holds the write lock, no submit is mid-admission.
        let draining = self.inner.draining.read().expect("drain gate poisoned");
        if *draining {
            return Err(SubmitError::Draining);
        }
        let tenant = match self.inner.by_name.get(tenant) {
            Some(&i) => &self.inner.tenants[i],
            None => return Err(SubmitError::UnknownTenant),
        };
        if tenant.queued.fetch_add(1, Ordering::SeqCst) >= tenant.config.queue_depth {
            tenant.queued.fetch_sub(1, Ordering::SeqCst);
            tenant.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Backpressure);
        }
        let ticket = JobTicket::new();
        let queued_job = QueuedJob {
            job,
            ticket: ticket.clone(),
            enqueued: Instant::now(),
        };
        if tenant.queue.push(queued_job).is_err() {
            // Unreachable: the ring is at least `queue_depth` big and the
            // admission counter bounds occupancy. Kept as a shed, not a
            // panic, so a bookkeeping bug degrades to backpressure.
            tenant.queued.fetch_sub(1, Ordering::SeqCst);
            tenant.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Backpressure);
        }
        drop(draining);
        if self.inner.sleepers.load(Ordering::SeqCst) > 0 {
            // Lock-then-notify pairs with the worker's lock-then-register
            // parking protocol; without the lock the wake could slip
            // between a worker's last scan and its wait.
            let _guard = self.inner.idle.lock().expect("idle lock poisoned");
            self.inner.wake.notify_one();
        }
        Ok(ticket)
    }

    /// Gracefully shuts down: rejects new submissions, completes every
    /// already-accepted job (no ticket is ever dropped), and joins the
    /// worker threads. Idempotent; called by `Drop` if not called
    /// explicitly.
    pub fn drain(&self) {
        {
            let mut draining = self.inner.draining.write().expect("drain gate poisoned");
            *draining = true;
        }
        // Wake every parked worker so it observes the flag and exits.
        let handles: Vec<_> = {
            let mut workers = self.workers.lock().expect("worker registry poisoned");
            workers.drain(..).collect()
        };
        for handle in &handles {
            let _ = handle;
            let _guard = self.inner.idle.lock().expect("idle lock poisoned");
            self.inner.wake.notify_all();
        }
        for handle in handles {
            handle.join().expect("server worker panicked");
        }
        // Sweep stragglers: a worker may have exited while a tenant sat
        // at max-in-flight with jobs still queued. The pool is fully
        // idle now, so run them inline.
        for tenant in &self.inner.tenants {
            while let Some(queued_job) = tenant.queue.pop() {
                tenant.queued.fetch_sub(1, Ordering::SeqCst);
                self.inner.run_job(&queued_job);
            }
        }
    }

    /// A point-in-time telemetry snapshot.
    pub fn stats(&self) -> ServerStats {
        let inner = &self.inner;
        let completed = inner.completed.load(Ordering::Relaxed);
        let elapsed = inner.started.elapsed().as_secs_f64();
        ServerStats {
            completed,
            shed: inner
                .tenants
                .iter()
                .map(|t| t.shed.load(Ordering::Relaxed))
                .sum(),
            queued: inner
                .tenants
                .iter()
                .map(|t| t.queued.load(Ordering::SeqCst))
                .sum(),
            in_flight: inner
                .tenants
                .iter()
                .map(|t| t.in_flight.load(Ordering::SeqCst))
                .sum(),
            throughput: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            p50: inner.latency.quantile(0.50),
            p90: inner.latency.quantile(0.90),
            p99: inner.latency.quantile(0.99),
        }
    }

    /// Shed count for one tenant (`None` for unknown tenants).
    pub fn tenant_shed(&self, tenant: &str) -> Option<u64> {
        let &i = self.inner.by_name.get(tenant)?;
        Some(self.inner.tenants[i].shed.load(Ordering::Relaxed))
    }

    /// The registered tenant names, in registration order.
    pub fn tenants(&self) -> Vec<&str> {
        self.inner.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// The underlying pool's counters (checkout/recycle/contention).
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.pool.stats()
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &Artifact {
        self.inner.pool.artifact()
    }
}

impl fmt::Debug for EngineServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EngineServer {{ tenants: {}, stats: {} }}",
            self.inner.tenants.len(),
            self.stats()
        )
    }
}

impl Drop for EngineServer {
    fn drop(&mut self) {
        self.drain();
    }
}

// The server is the cross-thread embedding: submitters on any thread,
// workers on their own, tickets handed wherever the caller pleases.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineServer>();
    assert_send_sync::<JobTicket>();
    assert_send_sync::<ServerStats>();
    assert_send_sync::<SubmitError>();
    assert_send_sync::<JobError>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        for micros in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_micros(micros));
        }
        // p50 of 10 samples: the 5th (50µs) — its bucket's upper bound
        // is at most the next power of two in nanos.
        let p50 = h.quantile(0.50);
        assert!(p50 >= Duration::from_micros(50), "p50 {p50:?} too low");
        assert!(p50 <= Duration::from_micros(128), "p50 {p50:?} too high");
        // p99 lands on the 1ms outlier's bucket.
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_micros(1000), "p99 {p99:?} too low");
        assert!(p99 <= Duration::from_micros(2048), "p99 {p99:?} too high");
        // Monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.9));
    }

    #[test]
    fn histogram_is_zero_before_any_sample() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }

    /// Pins the documented bucket contract at every boundary: bucket 0
    /// holds only 0 ns, bucket `i` in `1..=62` holds `[2^(i-1), 2^i)`,
    /// and bucket 63 saturates up to `u64::MAX`.
    #[test]
    fn histogram_bucket_boundaries() {
        let bucket_of = |nanos: u64| {
            let h = LatencyHistogram::new();
            h.record(Duration::from_nanos(nanos));
            (0..64)
                .find(|&i| h.buckets[i].load(Ordering::Relaxed) == 1)
                .expect("exactly one bucket incremented")
        };
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        for k in [1u32, 7, 31, 61] {
            // 2^k opens bucket k+1; 2^k ± 1 stay on their own sides.
            assert_eq!(bucket_of(1 << k), k as usize + 1, "2^{k}");
            assert_eq!(bucket_of((1 << k) + 1), k as usize + 1, "2^{k}+1");
            assert_eq!(bucket_of((1 << k) - 1), k as usize, "2^{k}-1");
        }
        // The saturating top bucket: everything from 2^62 up.
        assert_eq!(bucket_of(1 << 62), 63);
        assert_eq!(bucket_of((1 << 62) + 1), 63);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn tenant_config_clamps() {
        let t = TenantConfig::new().queue_depth(0).max_in_flight(0);
        assert_eq!(t.queue_depth, 1);
        assert_eq!(t.max_in_flight, 1);
    }
}
