//! Quickstart: build a RichWasm module by hand, type check it, run it on
//! the RichWasm interpreter, compile it to WebAssembly, validate and run
//! the Wasm, and emit standard `.wasm` bytes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use richwasm::interp::Runtime;
use richwasm::syntax::instr::Block;
use richwasm::syntax::*;
use richwasm::typecheck::check_module;
use richwasm_lower::lower_modules;
use richwasm_wasm::exec::WasmLinker;

fn main() {
    // A module with one export: allocate a *linear* struct, strongly
    // update it, read it back, free it — the core RichWasm workflow.
    let i32t = Type::num(NumType::I32);
    let module = Module {
        funcs: vec![Func::Defined {
            exports: vec!["main".into()],
            ty: FunType::mono(vec![], vec![i32t.clone()]),
            locals: vec![Size::Const(32)],
            body: vec![
                Instr::i32(20),
                Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
                Instr::MemUnpack(
                    Block::new(
                        ArrowType::new(vec![], vec![]),
                        vec![instr::LocalEffect::new(0, i32t.clone())],
                    ),
                    vec![
                        // Strong update: replace the i32 with another i32
                        // (a different *value*; linear refs would even
                        // allow a different type).
                        Instr::i32(42),
                        Instr::StructSet(0),
                        Instr::StructGet(0),
                        Instr::SetLocal(0),
                        Instr::StructFree,
                    ],
                ),
                Instr::GetLocal(0, Qual::Unr),
            ],
        }],
        ..Module::default()
    };

    // 1. Type check (the paper's central artifact).
    check_module(&module).expect("well-typed");
    println!("✓ RichWasm type checker accepts the module");

    // 2. Run on the RichWasm interpreter (paper §3 semantics).
    let mut rt = Runtime::new();
    let idx = rt.instantiate("quickstart", module.clone()).unwrap();
    let out = rt.invoke(idx, "main", vec![]).unwrap();
    println!("✓ RichWasm interpreter: {} (in {} steps)", out.values[0], out.steps);
    println!(
        "  memory: {} allocs, {} frees, {} live",
        rt.store.mem.allocs,
        rt.store.mem.frees,
        rt.store.mem.live()
    );

    // 3. Compile to WebAssembly (paper §6).
    let lowered = lower_modules(&[("quickstart".to_string(), module)]).unwrap();
    let mut linker = WasmLinker::new();
    let mut main_inst = 0;
    for (name, wm) in &lowered {
        richwasm_wasm::validate_module(wm).expect("lowered Wasm validates");
        let i = linker.instantiate(name, wm.clone()).unwrap();
        if name == "quickstart" {
            main_inst = i;
        }
    }
    let wasm_out = linker.invoke(main_inst, "main", &[]).unwrap();
    println!("✓ Lowered WebAssembly agrees: {}", wasm_out[0]);

    // 4. Standard binary encoding.
    for (name, wm) in &lowered {
        let bytes = richwasm_wasm::binary::encode_module(wm);
        println!("  {name}.wasm: {} bytes (header {:02x?})", bytes.len(), &bytes[..4]);
    }
}
