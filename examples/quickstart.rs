//! Quickstart: build a RichWasm module by hand, then let the
//! compile-once / run-many [`Engine`] do everything else — type check it,
//! compile it to WebAssembly, validate, and hand out live [`Instance`]s
//! that execute on the RichWasm interpreter *and* the lowered Wasm with
//! every result cross-checked.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use richwasm::syntax::instr::Block;
use richwasm::syntax::*;
use richwasm_repro::engine::{Engine, ModuleSet};

fn main() {
    // A module with one export: allocate a *linear* struct, strongly
    // update it, read it back, free it — the core RichWasm workflow.
    let i32t = Type::num(NumType::I32);
    let module = Module {
        funcs: vec![Func::Defined {
            exports: vec!["main".into()],
            ty: FunType::mono(vec![], vec![i32t.clone()]),
            locals: vec![Size::Const(32)],
            body: vec![
                Instr::i32(20),
                Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
                Instr::MemUnpack(
                    Block::new(
                        ArrowType::new(vec![], vec![]),
                        vec![instr::LocalEffect::new(0, i32t)],
                    ),
                    vec![
                        // Strong update: replace the i32 with another i32
                        // (a different *value*; linear refs would even
                        // allow a different type).
                        Instr::i32(42),
                        Instr::StructSet(0),
                        Instr::StructGet(0),
                        Instr::SetLocal(0),
                        Instr::StructFree,
                    ],
                ),
                Instr::GetLocal(0, Qual::Unr),
            ],
        }],
        ..Module::default()
    };

    // Compile ONCE: frontend (a no-op for raw RichWasm) → typecheck →
    // lower → validate → encode, cached under a content hash of the AST
    // plus the engine's configuration.
    let engine = Engine::new();
    let set = ModuleSet::new().richwasm("quickstart", module);
    let artifact = engine.compile(&set).expect("the module is well-typed");
    println!("✓ RichWasm type checker accepts the module");
    println!("  artifact key: {}", artifact.key());

    // Run MANY: each instance is an independent live store pair.
    let mut instance = artifact.instantiate().expect("typed linking succeeds");
    let result = instance
        .invoke_entry()
        .expect("both backends run and agree");
    let interp = result.richwasm.as_ref().unwrap();
    println!(
        "✓ RichWasm interpreter: {} (in {} steps)",
        interp.values[0], interp.steps
    );
    println!(
        "✓ Lowered WebAssembly agrees: {}",
        result.wasm.as_ref().unwrap()[0]
    );

    let mem = &instance.runtime().store.mem;
    println!(
        "  memory: {} allocs, {} frees, {} live",
        mem.allocs,
        mem.frees,
        mem.live()
    );

    // Standard binary encoding, produced by the artifact's encode stage.
    for (name, bytes) in artifact.wasm_binaries() {
        println!(
            "  {name}.wasm: {} bytes (header {:02x?})",
            bytes.len(),
            &bytes[..4]
        );
    }

    // Per-stage wall-clock timings of the (cold) compile.
    println!("  static stages: {}", artifact.timings());

    // Compiling the same set again is a cache hit: no static stage runs.
    let again = engine.compile(&set).expect("cache hit");
    assert!(again.same_as(&artifact));
    let stats = engine.cache_stats();
    println!(
        "✓ second compile was a cache hit ({} hit / {} miss) — \
         the static pipeline ran exactly once",
        stats.hits, stats.misses
    );
}
