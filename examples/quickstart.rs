//! Quickstart: build a RichWasm module by hand, then let the unified
//! [`Pipeline`] driver do everything else — type check it, run it on the
//! RichWasm interpreter, compile it to WebAssembly, validate, execute the
//! Wasm, cross-check the two results, and emit standard `.wasm` bytes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use richwasm::syntax::instr::Block;
use richwasm::syntax::*;
use richwasm_repro::pipeline::Pipeline;

fn main() {
    // A module with one export: allocate a *linear* struct, strongly
    // update it, read it back, free it — the core RichWasm workflow.
    let i32t = Type::num(NumType::I32);
    let module = Module {
        funcs: vec![Func::Defined {
            exports: vec!["main".into()],
            ty: FunType::mono(vec![], vec![i32t.clone()]),
            locals: vec![Size::Const(32)],
            body: vec![
                Instr::i32(20),
                Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
                Instr::MemUnpack(
                    Block::new(
                        ArrowType::new(vec![], vec![]),
                        vec![instr::LocalEffect::new(0, i32t.clone())],
                    ),
                    vec![
                        // Strong update: replace the i32 with another i32
                        // (a different *value*; linear refs would even
                        // allow a different type).
                        Instr::i32(42),
                        Instr::StructSet(0),
                        Instr::StructGet(0),
                        Instr::SetLocal(0),
                        Instr::StructFree,
                    ],
                ),
                Instr::GetLocal(0, Qual::Unr),
            ],
        }],
        ..Module::default()
    };

    // One driver call runs the whole five-stage path in differential
    // mode: frontend (a no-op for raw RichWasm) → typecheck → lower →
    // validate → encode → execute on both interpreters + compare.
    let run = Pipeline::new()
        .richwasm("quickstart", module)
        .run()
        .expect("the module is well-typed and both backends agree");

    let interp = run.result.richwasm.as_ref().unwrap();
    println!("✓ RichWasm type checker accepts the module");
    println!(
        "✓ RichWasm interpreter: {} (in {} steps)",
        interp.values[0], interp.steps
    );
    println!(
        "✓ Lowered WebAssembly agrees: {}",
        run.result.wasm.as_ref().unwrap()[0]
    );

    let mut program = run.program;
    let mem = &program.runtime().store.mem;
    println!(
        "  memory: {} allocs, {} frees, {} live",
        mem.allocs,
        mem.frees,
        mem.live()
    );

    // Standard binary encoding, produced by the pipeline's encode stage.
    for (name, bytes) in &program.report.binaries {
        println!(
            "  {name}.wasm: {} bytes (header {:02x?})",
            bytes.len(),
            &bytes[..4]
        );
    }

    // Per-stage wall-clock timings.
    println!("  stages: {}", program.report.timings);
}
