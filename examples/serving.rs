//! Open-loop serving: an [`EngineServer`] with three tenants — a
//! well-behaved one, a *hot* one that floods its bounded queue until
//! submissions shed, and a *greedy* one whose jobs blow their fuel
//! budget and are preempted without poisoning the pool.
//!
//! ```sh
//! cargo run --example serving
//! ```

use richwasm_bench::workloads::churn;
use richwasm_repro::engine::{Engine, Job, ModuleSet};
use richwasm_repro::server::{EngineServer, JobError, ServerConfig, SubmitError, TenantConfig};

fn main() {
    // One artifact, two exports: a quick job (200 allocate/update/free
    // iterations) and a hog that cannot finish under the fuel budget.
    let engine = Engine::new();
    let artifact = engine
        .compile(
            &ModuleSet::new()
                .richwasm("quick", churn(200))
                .richwasm("hog", churn(1_000_000)),
        )
        .expect("workloads are well-typed");

    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(2)
            .job_fuel(100_000) // plenty for `quick`, nowhere near `hog`
            .tenant("steady", TenantConfig::new().queue_depth(64))
            .tenant("hot", TenantConfig::new().queue_depth(4))
            .tenant("greedy", TenantConfig::new().queue_depth(8)),
    )
    .expect("pool instantiation succeeds");

    // Deny-by-default admission: an unregistered tenant gets nowhere.
    assert_eq!(
        server
            .submit("mallory", Job::new("quick", "main", vec![]))
            .unwrap_err(),
        SubmitError::UnknownTenant
    );
    println!("✓ unknown tenant denied (admission is deny-by-default)");

    // The steady tenant submits a modest stream; everything is admitted.
    let steady: Vec<_> = (0..32)
        .map(|_| {
            server
                .submit("steady", Job::new("quick", "main", vec![]))
                .expect("within the steady tenant's queue depth")
        })
        .collect();

    // The hot tenant floods far beyond its depth-4 queue: the surplus is
    // shed with `Backpressure` instead of queueing without bound.
    let mut hot_accepted = Vec::new();
    let mut hot_shed = 0u32;
    for _ in 0..200 {
        match server.submit("hot", Job::new("quick", "main", vec![])) {
            Ok(ticket) => hot_accepted.push(ticket),
            Err(SubmitError::Backpressure) => hot_shed += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        hot_shed > 0,
        "a depth-4 queue must shed under a 200-job flood"
    );
    println!(
        "✓ hot tenant: {} accepted, {} shed by backpressure",
        hot_accepted.len(),
        hot_shed
    );

    // The greedy tenant's jobs exhaust their fuel budget and fail —
    // individually, without taking a worker or an instance down.
    let greedy: Vec<_> = (0..4)
        .map(|_| {
            server
                .submit("greedy", Job::new("hog", "main", vec![]))
                .expect("admission is about queueing, not job size")
        })
        .collect();
    for ticket in &greedy {
        assert_eq!(
            ticket.wait().result.expect_err("the hog cannot finish"),
            JobError::FuelExhausted
        );
    }
    println!("✓ greedy tenant: {} jobs preempted by fuel", greedy.len());

    // Every *accepted* job resolves, and the well-behaved results agree
    // with the sequential oracle.
    let oracle = artifact
        .instantiate()
        .unwrap()
        .invoke("quick", "main", vec![])
        .unwrap()
        .i32();
    for ticket in steady.iter().chain(&hot_accepted) {
        let outcome = ticket.wait();
        assert_eq!(outcome.result.expect("quick jobs succeed").i32(), oracle);
    }
    println!(
        "✓ all {} accepted quick jobs agree with the sequential oracle",
        steady.len() + hot_accepted.len()
    );

    // Graceful shutdown, then one coherent stats block.
    server.drain();
    assert_eq!(
        server
            .submit("steady", Job::new("quick", "main", vec![]))
            .unwrap_err(),
        SubmitError::Draining
    );
    let stats = server.stats();
    assert!(stats.shed >= u64::from(hot_shed));
    println!("✓ drained: server rejects new work");
    println!("  server: {stats}");
    println!("  pool:   {}", server.pool_stats());
}
