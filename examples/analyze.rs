//! **Experiment E13**: the static-analysis report over the scenario
//! programs — what `richwasm-analyze` proves about every lowered module
//! at `Artifact` build time: independent re-verification, static fuel
//! bounds (min/max interpreter steps per function), call-depth bounds,
//! and lint findings.
//!
//! ```sh
//! cargo run --example analyze
//! ```

use richwasm_analyze::{Bound, Severity, NEVER};
use richwasm_bench::workloads::{
    arith_chain, churn, counter_client, counter_library, ml_tower, stash_client, stash_module,
};
use richwasm_repro::engine::{Engine, ModuleSet};

fn main() {
    let scenarios: Vec<(&str, ModuleSet)> = vec![
        (
            "E1 interop (ML stash + L3 client)",
            ModuleSet::new()
                .ml("ml", stash_module(false))
                .l3("l3", stash_client())
                .entry("l3"),
        ),
        (
            "E2 counter (L3 library + ML app)",
            ModuleSet::new()
                .l3("gfx", counter_library())
                .ml("app", counter_client())
                .entry("app"),
        ),
        ("E4 ML tower", ModuleSet::new().ml("tower", ml_tower(4))),
        (
            "E5 arithmetic chain",
            ModuleSet::new().richwasm("chain", arith_chain(64)),
        ),
        (
            "E12 churn workload",
            ModuleSet::new().richwasm("m", churn(50)),
        ),
    ];

    let engine = Engine::new();
    for (label, set) in scenarios {
        let artifact = engine.compile(&set).expect("scenario compiles");
        println!("== {label}");
        for (name, report) in artifact.analysis() {
            let denies = report
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Deny)
                .count();
            let depth = match report.cost.max_call_depth {
                Some(d) => format!("{d}"),
                None => "unbounded/unknown".into(),
            };
            println!(
                "  module `{name}`: {} function(s), {} finding(s) ({denies} deny), \
                 call depth {depth}",
                report.cost.funcs.len(),
                report.diagnostics.len(),
            );
            for (export, idx) in &report.cost.exports {
                let Some(fc) = report.cost.func(*idx) else {
                    continue;
                };
                let min = if fc.min_steps == NEVER {
                    "never completes".to_string()
                } else {
                    format!("≥{}", fc.min_steps)
                };
                let max = match fc.max_steps {
                    Bound::Finite(n) => format!("≤{n}"),
                    Bound::Unbounded { min_iteration } => {
                        format!("unbounded (≥{min_iteration}/iteration)")
                    }
                };
                println!("    export `{export}`: steps {min}, {max}");
            }
            for d in &report.diagnostics {
                println!("    {d}");
            }
        }
        if let (Some(entry), func) = (artifact.entry(), artifact.entry_func()) {
            if let Some(min) = artifact.static_min_steps(entry, func) {
                println!(
                    "  entry `{entry}`.`{func}`: any fuel budget below {min} steps is \
                     rejected as infeasible before an instance checkout"
                );
            }
        }
        println!();
    }
}
