//! Host functions: Rust closures exposed to RichWasm guests, with the
//! same typed boundary the paper builds between guest languages.
//!
//! A host "telemetry" module provides two functions — a logger and a
//! counter — and **two** guest languages import them: a garbage-collected
//! ML module and a manually-managed L3 module. Both run under
//! differential execution (RichWasm interpreter *and* lowered Wasm, every
//! result cross-checked), with host calls recorded on one backend and
//! replayed on the other so the Rust side effects happen exactly once
//! per invocation.
//!
//! ```sh
//! cargo run --example host_funcs
//! ```

use std::sync::atomic::{AtomicI32, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use richwasm_l3::{L3Expr, L3Fun, L3Import, L3Module, L3Op, L3Ty};
use richwasm_ml::{MlBinop, MlExpr, MlFun, MlImport, MlModule, MlTy};
use richwasm_repro::engine::{Engine, ModuleSet};
use richwasm_repro::{HostSig, HostVal, HostValType};

fn ml_guest() -> MlModule {
    // ML: `main () = log (count 2 + count 3)` — all ints, imported from
    // the host module "telemetry".
    MlModule {
        imports: vec![
            MlImport {
                module: "telemetry".into(),
                name: "log".into(),
                params: vec![MlTy::Int],
                ret: MlTy::Int,
            },
            MlImport {
                module: "telemetry".into(),
                name: "count".into(),
                params: vec![MlTy::Int],
                ret: MlTy::Int,
            },
        ],
        funs: vec![MlFun {
            name: "main".into(),
            export: true,
            tyvars: 0,
            params: vec![],
            ret: MlTy::Int,
            body: MlExpr::CallTop {
                name: "log".into(),
                tyargs: vec![],
                args: vec![MlExpr::Binop(
                    MlBinop::Add,
                    Box::new(MlExpr::CallTop {
                        name: "count".into(),
                        tyargs: vec![],
                        args: vec![MlExpr::Int(2)],
                    }),
                    Box::new(MlExpr::CallTop {
                        name: "count".into(),
                        tyargs: vec![],
                        args: vec![MlExpr::Int(3)],
                    }),
                )],
            },
        }],
        ..MlModule::default()
    }
}

fn l3_guest() -> L3Module {
    // L3: allocate a linear cell, log its contents, add the running
    // count, free it — manual memory management around host calls.
    L3Module {
        imports: vec![
            L3Import {
                module: "telemetry".into(),
                name: "log".into(),
                params: vec![L3Ty::Int],
                ret: L3Ty::Int,
            },
            L3Import {
                module: "telemetry".into(),
                name: "count".into(),
                params: vec![L3Ty::Int],
                ret: L3Ty::Int,
            },
        ],
        funs: vec![L3Fun {
            name: "main".into(),
            export: true,
            params: vec![],
            ret: L3Ty::Int,
            body: L3Expr::Let(
                "cell".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(40)), 64)),
                Box::new(L3Expr::Let(
                    "v".into(),
                    Box::new(L3Expr::Free(Box::new(L3Expr::Var("cell".into())))),
                    Box::new(L3Expr::Op(
                        L3Op::Add,
                        Box::new(L3Expr::CallTop {
                            name: "log".into(),
                            args: vec![L3Expr::Var("v".into())],
                        }),
                        Box::new(L3Expr::CallTop {
                            name: "count".into(),
                            args: vec![L3Expr::Int(1)],
                        }),
                    )),
                )),
            ),
        }],
    }
}

fn main() {
    // Host state: a log of every value the guests reported, and a
    // running counter. Interior mutability — the closures are `Fn` and
    // serve both backends.
    let log = Arc::new(Mutex::new(Vec::<i32>::new()));
    let total = Arc::new(AtomicI32::new(0));
    let host_calls = Arc::new(AtomicU32::new(0));

    let sig = HostSig::new([HostValType::I32], [HostValType::I32]);
    let (log_c, total_c) = (log.clone(), total.clone());
    let (calls_a, calls_b) = (host_calls.clone(), host_calls.clone());

    let set = ModuleSet::new()
        // `log(x)`: record x, echo it back.
        .host_fn("telemetry", "log", sig.clone(), move |args| {
            calls_a.fetch_add(1, Ordering::SeqCst);
            let HostVal::I32(x) = args[0] else {
                return Err("log expects an i32".into());
            };
            log_c.lock().expect("log poisoned").push(x);
            Ok(vec![HostVal::I32(x)])
        })
        // `count(n)`: add n to the running total, return the new total.
        .host_fn("telemetry", "count", sig, move |args| {
            calls_b.fetch_add(1, Ordering::SeqCst);
            let HostVal::I32(n) = args[0] else {
                return Err("count expects an i32".into());
            };
            Ok(vec![HostVal::I32(
                total_c.fetch_add(n, Ordering::SeqCst) + n,
            )])
        })
        .ml("ml_guest", ml_guest())
        .l3("l3_guest", l3_guest());

    // Differential mode (the default): both backends run every guest
    // instruction; host calls are recorded on the RichWasm backend and
    // replayed on the Wasm backend.
    let engine = Engine::new();
    let mut inst = engine.instantiate(&set).expect("host imports link");

    // ML guest: count(2) = 2, count(3) = 5, log(7) → 7.
    let ml_main = inst
        .get_typed_func::<(), i32>("ml_guest", "main")
        .expect("checked ML signature");
    let r = ml_main.call(&mut inst, ()).expect("both backends agree");
    println!("ml_guest.main()  = {r}  (log+count through the host)");
    assert_eq!(r, 7);

    // L3 guest: log(40) = 40, count(1) = 6 (the counter is shared host
    // state!), 40 + 6 = 46.
    let l3_main = inst
        .get_typed_func::<(), i32>("l3_guest", "main")
        .expect("checked L3 signature");
    let r = l3_main.call(&mut inst, ()).expect("both backends agree");
    println!("l3_guest.main()  = {r}  (linear cell freed, host state shared)");
    assert_eq!(r, 46);

    println!("host log         = {:?}", log.lock().unwrap());
    println!("host counter     = {}", total.load(Ordering::SeqCst));
    println!("host invocations = {}", host_calls.load(Ordering::SeqCst));
    assert_eq!(*log.lock().unwrap(), vec![7, 40]);
    assert_eq!(total.load(Ordering::SeqCst), 6);
    // 5 guest→host calls total — each executed ONCE even though two
    // backends ran every guest instruction (record/replay, DESIGN.md §6).
    assert_eq!(host_calls.load(Ordering::SeqCst), 5);

    println!("✓ host functions executed once per invocation, both backends agreed");
    println!("  engine cache: {}", engine.cache_stats());
}
