//! **Experiment E6**: the reproduction's inventory, the analogue of the
//! paper's Coq-development statistics (§4: "14k lines of specifications …
//! and 52k lines of proofs").
//!
//! ```sh
//! cargo run --example inventory
//! ```

use std::fs;
use std::path::Path;

use richwasm_bench::workloads::{stash_client, stash_module};
use richwasm_repro::engine::{Engine, ModuleSet};

fn count_lines(dir: &Path, code: &mut usize, tests: &mut usize) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            count_lines(&p, code, tests);
        } else if p.extension().is_some_and(|x| x == "rs") {
            let Ok(src) = fs::read_to_string(&p) else {
                continue;
            };
            let mut in_tests = false;
            for line in src.lines() {
                if line.contains("#[cfg(test)]") {
                    in_tests = true;
                }
                let is_test_file = p.components().any(|c| c.as_os_str() == "tests")
                    || p.components().any(|c| c.as_os_str() == "benches");
                if in_tests || is_test_file {
                    *tests += 1;
                } else {
                    *code += 1;
                }
            }
        }
    }
}

fn main() {
    println!("=== Reproduction inventory (cf. the paper's Coq statistics) ===\n");
    println!("Paper: 14k lines of Coq specifications + 52k lines of proofs.");
    println!("Here:  executable Rust, with the proof burden carried by tests.\n");
    let crates = [
        (
            "richwasm (core IL: types, checker, interpreter, GC, linker)",
            "crates/core",
        ),
        (
            "richwasm-wasm (Wasm 1.0+multi-value substrate)",
            "crates/wasm",
        ),
        ("richwasm-lower (RichWasm → Wasm compiler)", "crates/lower"),
        ("richwasm-ml (core ML frontend)", "crates/ml"),
        ("richwasm-l3 (L3 frontend)", "crates/l3"),
        ("richwasm-bench (benchmark harness)", "crates/bench"),
        ("integration tests + examples", "."),
    ];
    let mut total_code = 0;
    let mut total_tests = 0;
    for (name, dir) in crates {
        let mut code = 0;
        let mut tests = 0;
        if dir == "." {
            count_lines(Path::new("tests"), &mut code, &mut tests);
            count_lines(Path::new("examples"), &mut code, &mut tests);
            count_lines(Path::new("src"), &mut code, &mut tests);
        } else {
            count_lines(Path::new(dir), &mut code, &mut tests);
        }
        println!("{name:>62}: {code:>6} code, {tests:>6} test lines");
        total_code += code;
        total_tests += tests;
    }
    println!(
        "{:>62}: {total_code:>6} code, {total_tests:>6} test lines",
        "TOTAL"
    );
    println!("\nExperiment index (see EXPERIMENTS.md):");
    for (id, what, where_) in [
        (
            "E1",
            "Fig. 1/3 unsafe interop statically rejected",
            "tests/interop.rs",
        ),
        (
            "E2",
            "Fig. 9 counter layout runs over both backends",
            "tests/counter.rs",
        ),
        (
            "E3",
            "type safety (progress/preservation) as property tests",
            "tests/soundness.rs",
        ),
        (
            "E4",
            "ML & L3 compilers are type preserving",
            "crates/{ml,l3} tests",
        ),
        (
            "E5",
            "RichWasm → Wasm erasure agrees end to end",
            "tests/pipeline.rs",
        ),
        ("E6", "this inventory", "examples/inventory.rs"),
        (
            "E7",
            "compile-once/run-many amortisation via the Engine cache",
            "tests/engine.rs, bench e7",
        ),
    ] {
        println!("  {id}: {what:<55} [{where_}]");
    }

    // And the analogue of the paper's compile-time report: the five-stage
    // static pipeline, timed per stage on the E1 interop scenario, plus
    // the engine's amortisation story (a second compile is a cache hit).
    let engine = Engine::new();
    let set = ModuleSet::new()
        .ml("ml", stash_module(false))
        .l3("l3", stash_client())
        .entry("l3");
    let artifact = engine
        .compile(&set)
        .expect("the E1 scenario compiles through the full pipeline");
    let mut inst = artifact.instantiate().expect("links");
    inst.invoke_entry().expect("runs on both backends");
    println!("\nStatic stage timings (E1 interop scenario, differential mode):");
    for (stage, d) in artifact.timings().entries() {
        println!("  {stage:<12} {d:>10.2?}");
    }
    println!("Dynamic stage timings (one instance):");
    for (stage, d) in inst.timings().entries() {
        println!("  {stage:<12} {d:>10.2?}");
    }
    engine.compile(&set).expect("cache hit");
    let stats = engine.cache_stats();
    println!(
        "Artifact cache: {} hit / {} miss — compile once, run many.",
        stats.hits, stats.misses
    );
}
