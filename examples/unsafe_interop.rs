//! The paper's headline example (Fig. 1 / Fig. 3): ML and L3 sharing
//! memory, with the unsafe version *statically rejected* and the safe
//! version running to completion.
//!
//! ```sh
//! cargo run --example unsafe_interop
//! ```

use richwasm::interp::Runtime;
use richwasm::typecheck::check_module;
use richwasm_l3::{
    compile_module as compile_l3, translate_ty as l3_ty, L3Expr, L3Fun, L3Import, L3Module, L3Ty,
};
use richwasm_ml::{
    compile_module as compile_ml, MlExpr, MlFun, MlGlobal, MlImport, MlModule, MlTy,
};

fn lin_ref_l3() -> L3Ty {
    L3Ty::Ref(Box::new(L3Ty::Int), 64)
}

fn lin_ref_ml() -> MlTy {
    MlTy::Foreign(l3_ty(&lin_ref_l3()))
}

fn ml_module(buggy: bool) -> MlModule {
    let var = |x: &str| Box::new(MlExpr::Var(x.into()));
    let stash_body = if buggy {
        MlExpr::Seq(
            Box::new(MlExpr::Assign(var("c"), var("r"))),
            Box::new(MlExpr::Var("r".into())),
        )
    } else {
        MlExpr::Assign(var("c"), var("r"))
    };
    MlModule {
        globals: vec![MlGlobal {
            name: "c".into(),
            ty: MlTy::RefToLin(Box::new(lin_ref_ml())),
            init: MlExpr::NewRefToLin(lin_ref_ml()),
        }],
        funs: vec![
            MlFun {
                name: "stash".into(),
                export: true,
                tyvars: 0,
                params: vec![("r".into(), lin_ref_ml())],
                ret: if buggy { lin_ref_ml() } else { MlTy::Unit },
                body: stash_body,
            },
            MlFun {
                name: "get_stashed".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: lin_ref_ml(),
                body: MlExpr::Deref(var("c")),
            },
        ],
        ..MlModule::default()
    }
}

fn main() {
    println!("=== Fig. 1 / Fig. 3: unsafe interoperability ===\n");
    println!("ML module (the GC'd language):");
    println!("    let c = ref_to_lin (Ref Int)lin");
    println!("    fun stash (r : (Ref Int)lin) = c := r; r     (* buggy: uses r twice *)");
    println!("    fun get_stashed () = !c\n");
    println!("L3 client (the manually managed language):");
    println!("    free (split (stash (join (new !42 1))));");
    println!("    free (split (get_stashed ()))                (* double free! *)\n");

    // The buggy ML module: the ML compiler accepts it (it performs no
    // linearity checking, §5)…
    let buggy = compile_ml(&ml_module(true)).expect("ML compiles the buggy module");
    println!("✓ ML compiler accepts the buggy module (ML does not check linearity)");

    // …but RichWasm rejects it.
    match check_module(&buggy) {
        Err(e) => println!("✓ RichWasm type checker REJECTS it:\n    {e}\n"),
        Ok(_) => unreachable!("the double use of a linear value must not type check"),
    }

    // The corrected version: stash keeps exactly one copy.
    println!("Fixed ML: fun stash (r) = c := r    (* returns unit, no duplication *)\n");
    let safe = compile_ml(&ml_module(false)).unwrap();
    check_module(&safe).expect("safe version type checks");
    println!("✓ RichWasm type checker accepts the fixed module");

    let client = L3Module {
        imports: vec![
            L3Import {
                module: "ml".into(),
                name: "stash".into(),
                params: vec![lin_ref_l3()],
                ret: L3Ty::Unit,
            },
            L3Import {
                module: "ml".into(),
                name: "get_stashed".into(),
                params: vec![L3Ty::Unit],
                ret: lin_ref_l3(),
            },
        ],
        funs: vec![L3Fun {
            name: "main".into(),
            export: true,
            params: vec![],
            ret: L3Ty::Int,
            body: L3Expr::Seq(
                Box::new(L3Expr::CallTop {
                    name: "stash".into(),
                    args: vec![L3Expr::Join(Box::new(L3Expr::New(
                        Box::new(L3Expr::Int(42)),
                        64,
                    )))],
                }),
                Box::new(L3Expr::Free(Box::new(L3Expr::CallTop {
                    name: "get_stashed".into(),
                    args: vec![L3Expr::Unit],
                }))),
            ),
        }],
    };
    let l3 = compile_l3(&client).unwrap();

    let mut rt = Runtime::new();
    rt.instantiate("ml", safe).unwrap();
    let c = rt.instantiate("l3", l3).unwrap();
    println!("✓ Typed linker accepts the ML ↔ L3 boundary (types match exactly)");
    let out = rt.invoke(c, "main", vec![]).unwrap();
    println!(
        "✓ Runs safely: result = {}, linear frees = {}, linear cells live = {}",
        out.values[0],
        rt.store.mem.frees,
        rt.store.mem.lin.len()
    );
    println!("\nThe L3 value crossed into ML's GC'd heap and back with zero copies —");
    println!("fine-grained shared-memory interop, statically safe (paper §1).");
}
