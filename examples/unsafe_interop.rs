//! The paper's headline example (Fig. 1 / Fig. 3): ML and L3 sharing
//! memory, with the unsafe version *statically rejected* by the engine's
//! typecheck stage and the safe version running to completion on both
//! backends.
//!
//! The stash module and client are the shared E1 workload builders from
//! `richwasm_bench::workloads`.
//!
//! ```sh
//! cargo run --example unsafe_interop
//! ```

use richwasm_bench::workloads::{stash_client, stash_module};
use richwasm_repro::engine::{Engine, ModuleSet, Stage};

fn main() {
    println!("=== Fig. 1 / Fig. 3: unsafe interoperability ===\n");
    println!("ML module (the GC'd language):");
    println!("    let c = ref_to_lin (Ref Int)lin");
    println!("    fun stash (r : (Ref Int)lin) = c := r; r     (* buggy: uses r twice *)");
    println!("    fun get_stashed () = !c\n");
    println!("L3 client (the manually managed language):");
    println!("    free (split (stash (join (new !42 1))));");
    println!("    free (split (get_stashed ()))                (* double free! *)\n");

    let engine = Engine::new();

    // The buggy ML module: the frontend stage accepts it (the ML compiler
    // performs no linearity checking, §5) — the typecheck stage is where
    // RichWasm rejects the duplication. The artifact never exists.
    let err = engine
        .compile(
            &ModuleSet::new()
                .ml("ml", stash_module(true))
                .l3("l3", stash_client())
                .entry("l3"),
        )
        .expect_err("the double use of a linear value must not type check");
    assert_eq!(
        err.stage,
        Stage::Typecheck,
        "rejected statically, before anything runs"
    );
    println!("✓ ML compiler accepts the buggy module (ML does not check linearity)");
    println!("✓ RichWasm type checker REJECTS it:\n    {err}\n");

    // The corrected version: stash keeps exactly one copy.
    println!("Fixed ML: fun stash (r) = c := r    (* returns unit, no duplication *)\n");
    let mut instance = engine
        .instantiate(
            &ModuleSet::new()
                .ml("ml", stash_module(false))
                .l3("l3", stash_client())
                .entry("l3"),
        )
        .expect("safe version type checks and links");
    println!("✓ RichWasm type checker accepts the fixed module");
    println!("✓ Typed linker accepts the ML ↔ L3 boundary (types match exactly)");

    let result = instance
        .invoke_entry()
        .expect("runs on both backends")
        .i32()
        .expect("a single i32 result");
    let mem = &instance.runtime().store.mem;
    println!(
        "✓ Runs safely on both backends: result = {}, linear frees = {}, linear cells live = {}",
        result,
        mem.frees,
        mem.lin.len()
    );
    println!("\nThe L3 value crossed into ML's GC'd heap and back with zero copies —");
    println!("fine-grained shared-memory interop, statically safe (paper §1).");
}
