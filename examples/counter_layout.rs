//! The Fig. 9 / §4.2 scenario: a performance-critical *linear* library
//! (here, the paper's simplified mutable counter with configuration)
//! driven by *garbage-collected* client logic that never reasons about
//! linearity — run both on the RichWasm interpreter and through the full
//! WebAssembly pipeline.
//!
//! ```sh
//! cargo run --example counter_layout
//! ```

use richwasm::interp::Runtime;
use richwasm::syntax::Value;
use richwasm::typecheck::check_module;
use richwasm_l3::{
    compile_module as compile_l3, translate_ty as l3_ty, L3Expr, L3Fun, L3Module, L3Op, L3Ty,
};
use richwasm_lower::lower_modules;
use richwasm_ml::{
    compile_module as compile_ml, MlExpr, MlFun, MlGlobal, MlImport, MlModule, MlTy,
};
use richwasm_wasm::exec::{Val, WasmLinker};

fn counter_l3() -> L3Ty {
    // Counter cell: (count, step) — State and Config packaged linearly.
    L3Ty::Ref(Box::new(L3Ty::Prod(Box::new(L3Ty::Int), Box::new(L3Ty::Int))), 128)
}

fn counter_ml() -> MlTy {
    MlTy::Foreign(l3_ty(&counter_l3()))
}

fn library() -> L3Module {
    let v = |x: &str| Box::new(L3Expr::Var(x.into()));
    L3Module {
        funs: vec![
            L3Fun {
                name: "make_counter".into(),
                export: true,
                params: vec![("step".into(), L3Ty::Int)],
                ret: counter_l3(),
                body: L3Expr::Join(Box::new(L3Expr::New(
                    Box::new(L3Expr::Pair(Box::new(L3Expr::Int(0)), v("step"))),
                    128,
                ))),
            },
            L3Fun {
                name: "incr".into(),
                export: true,
                params: vec![("r".into(), counter_l3())],
                ret: counter_l3(),
                body: L3Expr::LetPair(
                    "p2".into(),
                    "old".into(),
                    Box::new(L3Expr::Swap(
                        Box::new(L3Expr::Split(v("r"))),
                        Box::new(L3Expr::Pair(
                            Box::new(L3Expr::Int(0)),
                            Box::new(L3Expr::Int(0)),
                        )),
                    )),
                    Box::new(L3Expr::LetPair(
                        "count".into(),
                        "step".into(),
                        v("old"),
                        Box::new(L3Expr::LetPair(
                            "p3".into(),
                            "dummy".into(),
                            Box::new(L3Expr::Swap(
                                v("p2"),
                                Box::new(L3Expr::Pair(
                                    Box::new(L3Expr::Op(L3Op::Add, v("count"), v("step"))),
                                    v("step"),
                                )),
                            )),
                            Box::new(L3Expr::Seq(v("dummy"), Box::new(L3Expr::Join(v("p3"))))),
                        )),
                    )),
                ),
            },
            L3Fun {
                name: "finish".into(),
                export: true,
                params: vec![("r".into(), counter_l3())],
                ret: L3Ty::Int,
                body: L3Expr::LetPair(
                    "count".into(),
                    "step".into(),
                    Box::new(L3Expr::Free(v("r"))),
                    Box::new(L3Expr::Seq(v("step"), v("count"))),
                ),
            },
        ],
        ..L3Module::default()
    }
}

fn client() -> MlModule {
    let var = |x: &str| Box::new(MlExpr::Var(x.into()));
    MlModule {
        imports: vec![
            MlImport {
                module: "gfx".into(),
                name: "make_counter".into(),
                params: vec![MlTy::Int],
                ret: counter_ml(),
            },
            MlImport {
                module: "gfx".into(),
                name: "incr".into(),
                params: vec![counter_ml()],
                ret: counter_ml(),
            },
            MlImport {
                module: "gfx".into(),
                name: "finish".into(),
                params: vec![counter_ml()],
                ret: MlTy::Int,
            },
        ],
        globals: vec![MlGlobal {
            name: "slot".into(),
            ty: MlTy::RefToLin(Box::new(counter_ml())),
            init: MlExpr::NewRefToLin(counter_ml()),
        }],
        funs: vec![
            MlFun {
                name: "setup".into(),
                export: true,
                tyvars: 0,
                params: vec![("step".into(), MlTy::Int)],
                ret: MlTy::Unit,
                body: MlExpr::Assign(
                    var("slot"),
                    Box::new(MlExpr::CallTop {
                        name: "make_counter".into(),
                        tyargs: vec![],
                        args: vec![MlExpr::Var("step".into())],
                    }),
                ),
            },
            MlFun {
                name: "bump".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: MlTy::Unit,
                body: MlExpr::Assign(
                    var("slot"),
                    Box::new(MlExpr::CallTop {
                        name: "incr".into(),
                        tyargs: vec![],
                        args: vec![MlExpr::Deref(var("slot"))],
                    }),
                ),
            },
            MlFun {
                name: "total".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: MlTy::Int,
                body: MlExpr::CallTop {
                    name: "finish".into(),
                    tyargs: vec![],
                    args: vec![MlExpr::Deref(var("slot"))],
                },
            },
        ],
    }
}

fn main() {
    println!("=== Fig. 9: GC'd client over a linear library ===\n");
    println!("Heap layout (mirroring the paper's figure):");
    println!("  Client slot (GC'd, unrestricted)  →  option⟨Counter⟩ (linear)");
    println!("  Counter (linear cell)             =  (State: count, Config: step)\n");

    let gfx = compile_l3(&library()).unwrap();
    check_module(&gfx).unwrap();
    let app = compile_ml(&client()).unwrap();
    check_module(&app).unwrap();
    println!("✓ Library (L3) and client (ML) both type check as RichWasm");

    // RichWasm interpreter.
    let mut rt = Runtime::new();
    rt.instantiate("gfx", gfx.clone()).unwrap();
    let app_i = rt.instantiate("app", app.clone()).unwrap();
    rt.invoke(app_i, "setup", vec![Value::i32(5)]).unwrap();
    for _ in 0..4 {
        rt.invoke(app_i, "bump", vec![Value::Unit]).unwrap();
    }
    let out = rt.invoke(app_i, "total", vec![Value::Unit]).unwrap();
    println!("✓ RichWasm interpreter: 4 bumps × step 5 = {}", out.values[0]);

    // Full Wasm pipeline.
    let lowered =
        lower_modules(&[("gfx".to_string(), gfx), ("app".to_string(), app)]).unwrap();
    let mut linker = WasmLinker::new();
    let mut app_w = 0;
    for (name, wm) in &lowered {
        richwasm_wasm::validate_module(wm).unwrap();
        let i = linker.instantiate(name, wm.clone()).unwrap();
        if name == "app" {
            app_w = i;
        }
    }
    linker.invoke(app_w, "setup", &[Val::I32(5)]).unwrap();
    for _ in 0..4 {
        linker.invoke(app_w, "bump", &[]).unwrap();
    }
    let wout = linker.invoke(app_w, "total", &[]).unwrap();
    println!("✓ Lowered WebAssembly agrees: {}", wout[0]);
    println!("\nThe client configured and used the linear counter without any");
    println!("linearity reasoning (paper §4.2) — the take/put discipline is");
    println!("generated by the ML compiler's ref_to_lin linking type.");
}
