//! Warm-across-restarts serving: the persistent artifact cache and the
//! binary decoder.
//!
//! ```text
//! cargo run --release --example precompiled
//! ```
//!
//! Three acts:
//!
//! 1. an engine with `cache_dir` pays the full static pipeline once,
//!    then a *second* engine (a stand-in for the next process after a
//!    restart or deploy) serves the same module set from disk without
//!    re-running a single static stage;
//! 2. an artifact is shipped as bytes (`serialize`/`deserialize`) — the
//!    same path, but with the transport in your hands;
//! 3. `Engine::load_wasm` admits an externally produced `.wasm` binary
//!    through the strict decode → validate path.

use std::time::Instant;

use richwasm_repro::engine::{Artifact, Engine, EngineConfig, Exec, ModuleSet};
use richwasm_repro::richwasm::syntax::{self, FunType, Instr, NumInstr, NumType, Qual, Type};

fn library_set() -> ModuleSet {
    // A tiny "service": doubled(x) = x + x, main() = doubled(21).
    let i32t = || Type::num(NumType::I32);
    let m = syntax::Module {
        funcs: vec![
            syntax::Func::Defined {
                exports: vec!["doubled".into()],
                ty: FunType::mono(vec![i32t()], vec![i32t()]),
                locals: vec![],
                body: vec![
                    Instr::GetLocal(0, Qual::Unr),
                    Instr::GetLocal(0, Qual::Unr),
                    Instr::Num(NumInstr::IntBinop(
                        NumType::I32,
                        syntax::instr::IntBinop::Add,
                    )),
                ],
            },
            syntax::Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![i32t()]),
                locals: vec![],
                body: vec![Instr::i32(21), Instr::Call(0, vec![])],
            },
        ],
        ..syntax::Module::default()
    };
    ModuleSet::new().richwasm("svc", m)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("richwasm_precompiled_{}", std::process::id()));
    let config = || EngineConfig::new().exec(Exec::Wasm).cache_dir(&dir);

    // Act 1 — cold compile, persisted.
    let t0 = Instant::now();
    let engine = Engine::with_config(config());
    let artifact = engine.compile(&library_set()).unwrap();
    let cold = t0.elapsed();
    let mut inst = artifact.instantiate().unwrap();
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(42));
    println!("cold compile: {cold:.2?}  (stages: {})", artifact.timings());

    // Act 1b — "the next process": same directory, fresh engine. The
    // compile is a disk hit: decode + re-validate of the stored bytes,
    // zero static stages.
    let t0 = Instant::now();
    let restarted = Engine::with_config(config());
    let warm = restarted.compile(&library_set()).unwrap();
    let disk_hit = t0.elapsed();
    assert!(warm.timings().no_static_stages());
    assert_eq!(warm.wasm_binaries(), artifact.wasm_binaries());
    let stats = restarted.cache_stats();
    println!("disk-warm compile after restart: {disk_hit:.2?}  ({stats})");
    let mut winst = warm.instantiate().unwrap();
    assert_eq!(winst.invoke_entry().unwrap().i32(), Some(42));

    // Act 2 — explicit transport: bytes out, artifact back.
    let bytes = artifact
        .serialize()
        .expect("Exec::Wasm artifacts serialize");
    let shipped = Artifact::deserialize(&bytes).unwrap();
    assert_eq!(shipped.key(), artifact.key());
    let mut sinst = shipped.instantiate().unwrap();
    let out = sinst
        .invoke("svc", "doubled", vec![syntax::Value::i32(8)])
        .unwrap();
    println!(
        "shipped artifact ({} bytes): doubled(8) = {:?}",
        bytes.len(),
        out.i32().unwrap()
    );

    // Act 3a — the whole lowered program as external bytes: every binary
    // (generated runtime included) re-enters through decode → validate,
    // linked back together by module name.
    let mut reloaded = ModuleSet::new();
    for (name, bytes) in artifact.wasm_binaries() {
        reloaded = reloaded.wasm_module(name, bytes.clone());
    }
    let loader = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
    let mut linst = loader
        .compile(&reloaded.entry("svc"))
        .unwrap()
        .instantiate()
        .unwrap();
    assert_eq!(linst.invoke_entry().unwrap().i32(), Some(42));
    println!("re-decoded program agrees: main() = 42");

    // Act 3b — a truly foreign module (hand-assembled, no RichWasm
    // pedigree) through `Engine::load_wasm`.
    let foreign = {
        use richwasm_repro::wasm::ast as w;
        let mut m = w::Module::default();
        let t = m.intern_type(w::FuncType {
            params: vec![],
            results: vec![w::ValType::I32],
        });
        m.funcs.push(w::FuncDef {
            type_idx: t,
            locals: vec![],
            body: vec![
                w::WInstr::I32Const(6),
                w::WInstr::I32Const(7),
                w::WInstr::IBin(w::Width::W32, w::IBinOp::Mul),
            ],
        });
        m.exports.push(w::Export {
            name: "main".into(),
            kind: w::ExportKind::Func(0),
        });
        richwasm_repro::wasm::binary::encode_module(&m)
    };
    let mut finst = loader.load_wasm(foreign).unwrap().instantiate().unwrap();
    assert_eq!(finst.invoke_entry().unwrap().i32(), Some(42));
    println!("external .wasm admitted via decode+validate: main() = 42");

    let _ = std::fs::remove_dir_all(&dir);
}
