//! **Experiment E5** (paper §6): the full pipeline — ML and L3 sources,
//! compiled to RichWasm, type checked, *lowered to WebAssembly*, validated
//! by our from-scratch Wasm validator, executed on our Wasm interpreter —
//! agrees with the RichWasm interpreter, and the lowered modules encode to
//! the standard binary format.

use richwasm::interp::Runtime;
use richwasm::syntax::Value;
use richwasm_l3::{compile_module as compile_l3, L3Expr, L3Fun, L3Module, L3Op, L3Ty};
use richwasm_lower::lower_modules;
use richwasm_ml::{compile_module as compile_ml, MlBinop, MlExpr, MlFun, MlModule, MlTy};
use richwasm_wasm::exec::{Val, WasmLinker};
use richwasm_wasm::validate_module;

fn run_both(modules: Vec<(&str, richwasm::syntax::Module)>, main_mod: &str) -> (i32, i32) {
    // RichWasm interpreter.
    let mut rt = Runtime::new();
    let mut main_idx = 0;
    for (name, m) in &modules {
        let i = rt.instantiate(name, m.clone()).expect("richwasm instantiation");
        if name == &main_mod {
            main_idx = i;
        }
    }
    let direct = rt.invoke(main_idx, "main", vec![]).expect("richwasm run");
    let Value::Num(_, bits) = direct.values[0] else { panic!("non-numeric result") };

    // Lowered pipeline.
    let named: Vec<(String, richwasm::syntax::Module)> =
        modules.into_iter().map(|(n, m)| (n.to_string(), m)).collect();
    let lowered = lower_modules(&named).expect("lowering");
    let mut linker = WasmLinker::new();
    let mut wasm_main = 0;
    for (name, wm) in &lowered {
        validate_module(wm).expect("lowered module validates");
        // Also exercise the standard binary encoding.
        let bytes = richwasm_wasm::binary::encode_module(wm);
        assert_eq!(&bytes[..4], b"\0asm");
        let i = linker.instantiate(name, wm.clone()).expect("wasm instantiation");
        if name == main_mod {
            wasm_main = i;
        }
    }
    let out = linker.invoke(wasm_main, "main", &[]).expect("wasm run");
    let Val::I32(w) = out[0] else { panic!("non-i32 wasm result") };
    (bits as u32 as i32, w as i32)
}

#[test]
fn ml_program_through_full_pipeline() {
    // Closures, tuples, case analysis, refs — all ML features at once.
    let var = |x: &str| Box::new(MlExpr::Var(x.into()));
    let sum = MlTy::Sum(vec![MlTy::Int, MlTy::Unit]);
    let m = MlModule {
        funs: vec![MlFun {
            name: "main".into(),
            export: true,
            tyvars: 0,
            params: vec![],
            ret: MlTy::Int,
            body: MlExpr::Let(
                "r".into(),
                Box::new(MlExpr::NewRef(Box::new(MlExpr::Int(30)))),
                Box::new(MlExpr::Let(
                    "f".into(),
                    Box::new(MlExpr::Lam {
                        param: "x".into(),
                        param_ty: MlTy::Int,
                        ret_ty: MlTy::Int,
                        body: Box::new(MlExpr::Binop(
                            MlBinop::Add,
                            Box::new(MlExpr::Deref(var("r"))),
                            var("x"),
                        )),
                    }),
                    Box::new(MlExpr::Case(
                        Box::new(MlExpr::Inj {
                            sum: sum.clone(),
                            tag: 0,
                            e: Box::new(MlExpr::App(var("f"), Box::new(MlExpr::Int(12)))),
                        }),
                        vec![
                            ("n".into(), MlExpr::Var("n".into())),
                            ("_u".into(), MlExpr::Int(0)),
                        ],
                    )),
                )),
            ),
        }],
        ..MlModule::default()
    };
    let rw = compile_ml(&m).unwrap();
    let (a, b) = run_both(vec![("m", rw)], "m");
    assert_eq!(a, 42);
    assert_eq!(b, 42, "RichWasm and lowered Wasm agree");
}

#[test]
fn l3_program_through_full_pipeline() {
    let v = |x: &str| Box::new(L3Expr::Var(x.into()));
    let m = L3Module {
        funs: vec![L3Fun {
            name: "main".into(),
            export: true,
            params: vec![],
            ret: L3Ty::Int,
            body: L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(40)), 64)),
                Box::new(L3Expr::LetPair(
                    "p2".into(),
                    "old".into(),
                    Box::new(L3Expr::Swap(v("p"), Box::new(L3Expr::Int(2)))),
                    Box::new(L3Expr::Op(
                        L3Op::Add,
                        v("old"),
                        Box::new(L3Expr::Free(v("p2"))),
                    )),
                )),
            ),
        }],
        ..L3Module::default()
    };
    let rw = compile_l3(&m).unwrap();
    let (a, b) = run_both(vec![("m", rw)], "m");
    assert_eq!(a, 42);
    assert_eq!(b, 42);
}

#[test]
fn cross_language_interop_through_wasm() {
    // The Fig. 3 safe scenario, but the whole thing lowered to Wasm: the
    // ML stash module and the L3 client share one Wasm memory managed by
    // the generated allocator runtime.
    use richwasm_l3::{translate_ty as l3_ty, L3Import};
    use richwasm_ml::MlGlobal;
    let lin_ref_l3 = L3Ty::Ref(Box::new(L3Ty::Int), 64);
    let lin_ref_ml = MlTy::Foreign(l3_ty(&lin_ref_l3));
    let var = |x: &str| Box::new(MlExpr::Var(x.into()));

    let ml = MlModule {
        globals: vec![MlGlobal {
            name: "c".into(),
            ty: MlTy::RefToLin(Box::new(lin_ref_ml.clone())),
            init: MlExpr::NewRefToLin(lin_ref_ml.clone()),
        }],
        funs: vec![
            MlFun {
                name: "stash".into(),
                export: true,
                tyvars: 0,
                params: vec![("r".into(), lin_ref_ml.clone())],
                ret: MlTy::Unit,
                body: MlExpr::Assign(var("c"), var("r")),
            },
            MlFun {
                name: "get_stashed".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: lin_ref_ml.clone(),
                body: MlExpr::Deref(var("c")),
            },
        ],
        ..MlModule::default()
    };
    let l3 = L3Module {
        imports: vec![
            L3Import {
                module: "ml".into(),
                name: "stash".into(),
                params: vec![lin_ref_l3.clone()],
                ret: L3Ty::Unit,
            },
            L3Import {
                module: "ml".into(),
                name: "get_stashed".into(),
                params: vec![L3Ty::Unit],
                ret: lin_ref_l3.clone(),
            },
        ],
        funs: vec![L3Fun {
            name: "main".into(),
            export: true,
            params: vec![],
            ret: L3Ty::Int,
            body: L3Expr::Seq(
                Box::new(L3Expr::CallTop {
                    name: "stash".into(),
                    args: vec![L3Expr::Join(Box::new(L3Expr::New(
                        Box::new(L3Expr::Int(42)),
                        64,
                    )))],
                }),
                Box::new(L3Expr::Free(Box::new(L3Expr::CallTop {
                    name: "get_stashed".into(),
                    args: vec![L3Expr::Unit],
                }))),
            ),
        }],
    };
    let rw_ml = compile_ml(&ml).unwrap();
    let rw_l3 = compile_l3(&l3).unwrap();
    let (a, b) = run_both(vec![("ml", rw_ml), ("l3", rw_l3)], "l3");
    assert_eq!(a, 42);
    assert_eq!(b, 42, "shared-memory interop agrees across both backends");
}

#[test]
fn lowered_allocator_reclaims_memory() {
    // The generated free-list allocator actually reclaims: run a loop of
    // alloc/free cycles through the lowered pipeline and check the live
    // counter returns to its baseline.
    let v = |x: &str| Box::new(L3Expr::Var(x.into()));
    let m = L3Module {
        funs: vec![
            L3Fun {
                name: "cycle".into(),
                export: true,
                params: vec![("x".into(), L3Ty::Int)],
                ret: L3Ty::Int,
                body: L3Expr::Let(
                    "p".into(),
                    Box::new(L3Expr::New(v("x"), 64)),
                    Box::new(L3Expr::Free(v("p"))),
                ),
            },
            L3Fun {
                name: "main".into(),
                export: true,
                params: vec![],
                ret: L3Ty::Int,
                body: L3Expr::CallTop { name: "cycle".into(), args: vec![L3Expr::Int(42)] },
            },
        ],
        ..L3Module::default()
    };
    let rw = compile_l3(&m).unwrap();
    let lowered = lower_modules(&[("m".to_string(), rw)]).unwrap();
    let mut linker = WasmLinker::new();
    let mut rt_i = 0;
    let mut m_i = 0;
    for (name, wm) in &lowered {
        let i = linker.instantiate(name, wm.clone()).unwrap();
        if name == "rw_runtime" {
            rt_i = i;
        } else {
            m_i = i;
        }
    }
    for k in 0..100 {
        assert_eq!(
            linker.invoke(m_i, "cycle", &[Val::I32(k)]).unwrap(),
            vec![Val::I32(k)]
        );
    }
    let live = linker.invoke(rt_i, "live", &[]).unwrap();
    assert_eq!(live, vec![Val::I32(0)], "every allocation was returned to the free list");
}

#[test]
fn polymorphic_call_chains_through_wasm() {
    // id2<a>(x) = id1<a>(x): instantiating a callee with the caller's own
    // type variable — exercises telescope composition in the checker and
    // RePad identity plans in the lowering.
    let id1 = MlFun {
        name: "id1".into(),
        export: false,
        tyvars: 1,
        params: vec![("x".into(), MlTy::Var(0))],
        ret: MlTy::Var(0),
        body: MlExpr::Var("x".into()),
    };
    let id2 = MlFun {
        name: "id2".into(),
        export: false,
        tyvars: 1,
        params: vec![("x".into(), MlTy::Var(0))],
        ret: MlTy::Var(0),
        body: MlExpr::CallTop {
            name: "id1".into(),
            tyargs: vec![MlTy::Var(0)],
            args: vec![MlExpr::Var("x".into())],
        },
    };
    let main = MlFun {
        name: "main".into(),
        export: true,
        tyvars: 0,
        params: vec![],
        ret: MlTy::Int,
        body: MlExpr::Binop(
            MlBinop::Add,
            Box::new(MlExpr::CallTop {
                name: "id2".into(),
                tyargs: vec![MlTy::Int],
                args: vec![MlExpr::Int(40)],
            }),
            Box::new(MlExpr::CallTop {
                name: "id2".into(),
                // A different instantiation of the same function: a boxed
                // tuple, projected after the round trip.
                tyargs: vec![MlTy::Int],
                args: vec![MlExpr::Int(2)],
            }),
        ),
    };
    let m = MlModule { funs: vec![id1, id2, main], ..MlModule::default() };
    let rw = compile_ml(&m).unwrap();
    let (a, b) = run_both(vec![("m", rw)], "m");
    assert_eq!(a, 42);
    assert_eq!(b, 42);
}

#[test]
fn gc_under_pressure_in_counter_scenario() {
    // Run the Fig. 9 counter with the collector firing every few steps:
    // results unchanged, and dead option cells get reclaimed.
    use richwasm_l3::compile_module as compile_l3_mod;
    use richwasm_ml::compile_module as compile_ml_mod;
    let gfx = compile_l3_mod(&richwasm_bench_workloads::counter_library()).unwrap();
    let app = compile_ml_mod(&richwasm_bench_workloads::counter_client()).unwrap();
    let mut rt = Runtime::new();
    rt.config.auto_gc_every = Some(7);
    rt.instantiate("gfx", gfx).unwrap();
    let app_i = rt.instantiate("app", app).unwrap();
    rt.invoke(app_i, "setup", vec![Value::i32(2)]).unwrap();
    for _ in 0..10 {
        rt.invoke(app_i, "bump", vec![Value::Unit]).unwrap();
    }
    let out = rt.invoke(app_i, "total", vec![Value::Unit]).unwrap();
    assert_eq!(out.values, vec![Value::i32(20)]);
}

// The bench crate's workload builders are reused for the GC pressure test.
use richwasm_bench::workloads as richwasm_bench_workloads;
