//! **Experiment E5** (paper §6): the full pipeline — ML and L3 sources,
//! compiled to RichWasm, type checked, *lowered to WebAssembly*, validated
//! by our from-scratch Wasm validator, executed on our Wasm interpreter —
//! agrees with the RichWasm interpreter, and the lowered modules encode to
//! the standard binary format.
//!
//! All scenarios go through the compile-once/run-many [`Engine`] in its
//! default differential mode, so backend agreement is checked on every
//! invocation rather than hand-wired per test.

use richwasm::syntax::Value;
use richwasm_bench::workloads;
use richwasm_l3::{L3Expr, L3Fun, L3Module, L3Op, L3Ty};
use richwasm_ml::{MlBinop, MlExpr, MlFun, MlModule, MlTy};
use richwasm_repro::engine::{Engine, EngineConfig, Exec, ModuleSet, Stage};

#[test]
fn ml_program_through_full_pipeline() {
    // Closures, tuples, case analysis, refs — all ML features at once.
    let var = |x: &str| Box::new(MlExpr::Var(x.into()));
    let sum = MlTy::Sum(vec![MlTy::Int, MlTy::Unit]);
    let m = MlModule {
        funs: vec![MlFun {
            name: "main".into(),
            export: true,
            tyvars: 0,
            params: vec![],
            ret: MlTy::Int,
            body: MlExpr::Let(
                "r".into(),
                Box::new(MlExpr::NewRef(Box::new(MlExpr::Int(30)))),
                Box::new(MlExpr::Let(
                    "f".into(),
                    Box::new(MlExpr::Lam {
                        param: "x".into(),
                        param_ty: MlTy::Int,
                        ret_ty: MlTy::Int,
                        body: Box::new(MlExpr::Binop(
                            MlBinop::Add,
                            Box::new(MlExpr::Deref(var("r"))),
                            var("x"),
                        )),
                    }),
                    Box::new(MlExpr::Case(
                        Box::new(MlExpr::Inj {
                            sum,
                            tag: 0,
                            e: Box::new(MlExpr::App(var("f"), Box::new(MlExpr::Int(12)))),
                        }),
                        vec![
                            ("n".into(), MlExpr::Var("n".into())),
                            ("_u".into(), MlExpr::Int(0)),
                        ],
                    )),
                )),
            ),
        }],
        ..MlModule::default()
    };
    // Differential mode: the engine's instances themselves check that the
    // RichWasm interpreter and the lowered Wasm agree.
    let mut inst = Engine::new()
        .instantiate(&ModuleSet::new().ml("m", m))
        .expect("full pipeline");
    assert_eq!(inst.invoke_entry().expect("agrees").i32(), Some(42));
}

#[test]
fn l3_program_through_full_pipeline() {
    let v = |x: &str| Box::new(L3Expr::Var(x.into()));
    let m = L3Module {
        funs: vec![L3Fun {
            name: "main".into(),
            export: true,
            params: vec![],
            ret: L3Ty::Int,
            body: L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(40)), 64)),
                Box::new(L3Expr::LetPair(
                    "p2".into(),
                    "old".into(),
                    Box::new(L3Expr::Swap(v("p"), Box::new(L3Expr::Int(2)))),
                    Box::new(L3Expr::Op(
                        L3Op::Add,
                        v("old"),
                        Box::new(L3Expr::Free(v("p2"))),
                    )),
                )),
            ),
        }],
        ..L3Module::default()
    };
    let mut inst = Engine::new()
        .instantiate(&ModuleSet::new().l3("m", m))
        .expect("full pipeline");
    assert_eq!(inst.invoke_entry().expect("agrees").i32(), Some(42));
}

#[test]
fn cross_language_interop_through_wasm() {
    // The Fig. 3 safe scenario, but the whole thing lowered to Wasm: the
    // ML stash module and the L3 client share one Wasm memory managed by
    // the generated allocator runtime.
    let mut inst = Engine::new()
        .instantiate(
            &ModuleSet::new()
                .ml("ml", workloads::stash_module(false))
                .l3("l3", workloads::stash_client())
                .entry("l3"),
        )
        .expect("full pipeline");
    assert_eq!(
        inst.invoke_entry().expect("agrees").i32(),
        Some(42),
        "shared-memory interop agrees across both backends"
    );
}

/// The E1 stash scenario with the *ML* module hosting `main`: ML imports
/// the linear cell operations from an L3 library, stashes a fresh cell in
/// its GC'd state, retrieves it, and hands it back to L3 for disposal.
fn e1_ml_main_modules() -> (L3Module, MlModule) {
    use richwasm_l3::translate_ty as l3_ty;
    use richwasm_ml::MlImport;
    let lin_l3 = workloads::lin_ref_l3();
    let lin_ml = MlTy::Foreign(l3_ty(&lin_l3));
    let cells = L3Module {
        funs: vec![
            L3Fun {
                name: "make".into(),
                export: true,
                params: vec![("v".into(), L3Ty::Int)],
                ret: lin_l3.clone(),
                body: L3Expr::Join(Box::new(L3Expr::New(Box::new(L3Expr::Var("v".into())), 64))),
            },
            L3Fun {
                name: "destroy".into(),
                export: true,
                params: vec![("r".into(), lin_l3)],
                ret: L3Ty::Int,
                body: L3Expr::Free(Box::new(L3Expr::Var("r".into()))),
            },
        ],
        ..L3Module::default()
    };
    let mut ml = workloads::stash_module(false);
    ml.imports = vec![
        MlImport {
            module: "cells".into(),
            name: "make".into(),
            params: vec![MlTy::Int],
            ret: lin_ml.clone(),
        },
        MlImport {
            module: "cells".into(),
            name: "destroy".into(),
            params: vec![lin_ml],
            ret: MlTy::Int,
        },
    ];
    ml.funs.push(richwasm_ml::MlFun {
        name: "main".into(),
        export: true,
        tyvars: 0,
        params: vec![],
        ret: MlTy::Int,
        body: MlExpr::Seq(
            Box::new(MlExpr::CallTop {
                name: "stash".into(),
                tyargs: vec![],
                args: vec![MlExpr::CallTop {
                    name: "make".into(),
                    tyargs: vec![],
                    args: vec![MlExpr::Int(42)],
                }],
            }),
            Box::new(MlExpr::CallTop {
                name: "destroy".into(),
                tyargs: vec![],
                args: vec![MlExpr::CallTop {
                    name: "get_stashed".into(),
                    tyargs: vec![],
                    args: vec![MlExpr::Unit],
                }],
            }),
        ),
    });
    (cells, ml)
}

#[test]
fn pipeline_round_trip_binaries_validate_and_agree() {
    // The round-trip check: every lowered module (including the generated
    // allocator runtime) encodes to standard `.wasm` bytes, and
    // differential mode agrees on the E1 interop scenario regardless of
    // which language hosts `main`.
    //
    // ML-main ordering: L3 provides the linear cells, ML stashes and
    // drives.
    let engine = Engine::new();
    let (cells, ml) = e1_ml_main_modules();
    let artifact = engine
        .compile(&ModuleSet::new().l3("cells", cells).ml("ml", ml).entry("ml"))
        .expect("ML-main ordering compiles");
    let mut inst = artifact.instantiate().unwrap();
    assert_eq!(inst.invoke_entry().expect("agrees").i32(), Some(42));
    for (name, bytes) in artifact.wasm_binaries() {
        assert_eq!(&bytes[..4], b"\0asm", "{name} is standard Wasm");
        assert_eq!(&bytes[4..8], &[1, 0, 0, 0], "{name} has version 1");
    }

    // The Fig. 9 counter, exercised invocation by invocation.
    let counter = engine
        .compile(
            &ModuleSet::new()
                .l3("gfx", workloads::counter_library())
                .ml("app", workloads::counter_client()),
        )
        .expect("counter scenario compiles");
    assert!(!counter.wasm_binaries().is_empty(), "encode stage ran");
    for (name, bytes) in counter.wasm_binaries() {
        assert_eq!(&bytes[..4], b"\0asm", "{name} is standard Wasm");
        assert_eq!(&bytes[4..8], &[1, 0, 0, 0], "{name} has version 1");
    }
    let mut prog = counter.instantiate().unwrap();
    prog.invoke("app", "setup", vec![Value::i32(21)])
        .expect("setup agrees");
    prog.invoke("app", "bump", vec![Value::Unit])
        .expect("bump agrees");
    let total = prog
        .invoke("app", "total", vec![Value::Unit])
        .expect("total agrees");
    assert_eq!(total.i32(), Some(21));

    // L3-main ordering: ML provides the stash, the L3 client drives.
    let l3_main = engine
        .compile(
            &ModuleSet::new()
                .ml("ml", workloads::stash_module(false))
                .l3("l3", workloads::stash_client())
                .entry("l3"),
        )
        .expect("L3-main ordering compiles");
    let mut inst = l3_main.instantiate().unwrap();
    assert_eq!(inst.invoke_entry().expect("agrees").i32(), Some(42));
    assert!(
        l3_main
            .wasm_binaries()
            .iter()
            .all(|(_, b)| b.starts_with(b"\0asm")),
        "all binaries carry the Wasm magic"
    );

    // Per-stage timings cover the whole five-stage static path on the
    // artifact; the instance records only dynamic stages.
    for stage in [
        Stage::Frontend,
        Stage::Typecheck,
        Stage::Lower,
        Stage::Validate,
        Stage::Encode,
    ] {
        assert!(
            l3_main.timings().entries().iter().any(|(s, _)| *s == stage),
            "stage {stage} was timed"
        );
    }
    assert!(
        inst.timings().no_static_stages(),
        "instantiation re-ran a static stage: {}",
        inst.timings()
    );
}

#[test]
fn lowered_allocator_reclaims_memory() {
    // The generated free-list allocator actually reclaims: run a loop of
    // alloc/free cycles through the lowered pipeline and check the live
    // counter returns to its baseline. Wasm-only mode: the allocator is an
    // artifact of lowering, so there is nothing to compare against.
    let v = |x: &str| Box::new(L3Expr::Var(x.into()));
    let m = L3Module {
        funs: vec![
            L3Fun {
                name: "cycle".into(),
                export: true,
                params: vec![("x".into(), L3Ty::Int)],
                ret: L3Ty::Int,
                body: L3Expr::Let(
                    "p".into(),
                    Box::new(L3Expr::New(v("x"), 64)),
                    Box::new(L3Expr::Free(v("p"))),
                ),
            },
            L3Fun {
                name: "main".into(),
                export: true,
                params: vec![],
                ret: L3Ty::Int,
                body: L3Expr::CallTop {
                    name: "cycle".into(),
                    args: vec![L3Expr::Int(42)],
                },
            },
        ],
        ..L3Module::default()
    };
    let engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
    let mut inst = engine
        .instantiate(&ModuleSet::new().l3("m", m))
        .expect("wasm-only build");
    for k in 0..100 {
        let out = inst.invoke("m", "cycle", vec![Value::i32(k)]).unwrap();
        assert_eq!(out.i32(), Some(k));
    }
    let live = inst.invoke("rw_runtime", "live", vec![]).unwrap();
    assert_eq!(
        live.i32(),
        Some(0),
        "every allocation was returned to the free list"
    );
    // After a reset the allocator is back at its data-segment baseline.
    inst.reset().unwrap();
    let live = inst.invoke("rw_runtime", "live", vec![]).unwrap();
    assert_eq!(live.i32(), Some(0), "reset restores the allocator state");
}

#[test]
fn polymorphic_call_chains_through_wasm() {
    // id2<a>(x) = id1<a>(x): instantiating a callee with the caller's own
    // type variable — exercises telescope composition in the checker and
    // RePad identity plans in the lowering.
    let id1 = MlFun {
        name: "id1".into(),
        export: false,
        tyvars: 1,
        params: vec![("x".into(), MlTy::Var(0))],
        ret: MlTy::Var(0),
        body: MlExpr::Var("x".into()),
    };
    let id2 = MlFun {
        name: "id2".into(),
        export: false,
        tyvars: 1,
        params: vec![("x".into(), MlTy::Var(0))],
        ret: MlTy::Var(0),
        body: MlExpr::CallTop {
            name: "id1".into(),
            tyargs: vec![MlTy::Var(0)],
            args: vec![MlExpr::Var("x".into())],
        },
    };
    let main = MlFun {
        name: "main".into(),
        export: true,
        tyvars: 0,
        params: vec![],
        ret: MlTy::Int,
        body: MlExpr::Binop(
            MlBinop::Add,
            Box::new(MlExpr::CallTop {
                name: "id2".into(),
                tyargs: vec![MlTy::Int],
                args: vec![MlExpr::Int(40)],
            }),
            Box::new(MlExpr::CallTop {
                name: "id2".into(),
                // A different instantiation of the same function: a boxed
                // tuple, projected after the round trip.
                tyargs: vec![MlTy::Int],
                args: vec![MlExpr::Int(2)],
            }),
        ),
    };
    let m = MlModule {
        funs: vec![id1, id2, main],
        ..MlModule::default()
    };
    let mut inst = Engine::new()
        .instantiate(&ModuleSet::new().ml("m", m))
        .expect("full pipeline");
    assert_eq!(inst.invoke_entry().expect("agrees").i32(), Some(42));
}

#[test]
fn gc_under_pressure_in_counter_scenario() {
    // Run the Fig. 9 counter with the collector firing every few steps:
    // results unchanged, and dead option cells get reclaimed. Interp-only:
    // the GC is a RichWasm-interpreter feature.
    let engine = Engine::with_config(EngineConfig::new().interp_only().auto_gc_every(7));
    let mut inst = engine
        .instantiate(
            &ModuleSet::new()
                .l3("gfx", workloads::counter_library())
                .ml("app", workloads::counter_client()),
        )
        .expect("counter builds");
    inst.invoke("app", "setup", vec![Value::i32(2)]).unwrap();
    for _ in 0..10 {
        inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    }
    let out = inst.invoke("app", "total", vec![Value::Unit]).unwrap();
    assert_eq!(out.i32(), Some(20));
}
