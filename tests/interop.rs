//! **Experiment E1** (paper Fig. 1 & Fig. 3): unsafe shared-memory
//! interoperability between a garbage-collected language (ML) and a
//! manually managed language (L3) is *statically rejected* by the
//! RichWasm type checker, while the corrected program type checks, links,
//! and runs safely — across both execution paths.
//!
//! The scenario: an ML module stashes a linear reference it receives from
//! L3 in module-level state. The buggy version *also returns* the
//! reference, so L3 frees it and later frees the stashed copy — a double
//! free. Compiled naively, RichWasm's checker rejects `stash` because it
//! duplicates a linear value (§2: "If compiled naively, RichWasm's type
//! system will first complain…").

use richwasm::interp::Runtime;
use richwasm::syntax::Value;
use richwasm::typecheck::check_module;
use richwasm::TypeError;
use richwasm_l3::{compile_module as compile_l3, translate_ty as l3_ty, L3Expr, L3Fun, L3Import, L3Module, L3Ty};
use richwasm_ml::{compile_module as compile_ml, MlExpr, MlFun, MlGlobal, MlImport, MlModule, MlTy};

/// The boundary type: L3's linear reference to an int cell, seen by ML as
/// the foreign linking type `(Ref Int)lin`.
fn lin_ref_l3() -> L3Ty {
    L3Ty::Ref(Box::new(L3Ty::Int), 64)
}

fn lin_ref_ml() -> MlTy {
    MlTy::Foreign(l3_ty(&lin_ref_l3()))
}

fn var(x: &str) -> Box<MlExpr> {
    Box::new(MlExpr::Var(x.into()))
}

/// The ML module of Fig. 3. When `buggy`, `stash` returns the reference
/// it has also stored — a duplication of a linear value.
fn ml_module(buggy: bool) -> MlModule {
    let stash_body = if buggy {
        // c := r; r  — uses the linear `r` twice.
        MlExpr::Seq(
            Box::new(MlExpr::Assign(var("c"), var("r"))),
            Box::new(MlExpr::Var("r".into())),
        )
    } else {
        // c := r  — the fixed version keeps exactly one copy.
        MlExpr::Assign(var("c"), var("r"))
    };
    let stash_ret = if buggy { lin_ref_ml() } else { MlTy::Unit };
    MlModule {
        globals: vec![MlGlobal {
            name: "c".into(),
            ty: MlTy::RefToLin(Box::new(lin_ref_ml())),
            init: MlExpr::NewRefToLin(lin_ref_ml()),
        }],
        funs: vec![
            MlFun {
                name: "stash".into(),
                export: true,
                tyvars: 0,
                params: vec![("r".into(), lin_ref_ml())],
                ret: stash_ret,
                body: stash_body,
            },
            MlFun {
                name: "get_stashed".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: lin_ref_ml(),
                body: MlExpr::Deref(var("c")),
            },
        ],
        ..MlModule::default()
    }
}

/// The safe L3 client: stores a fresh cell with `stash`, retrieves it with
/// `get_stashed`, frees it exactly once.
fn l3_client() -> L3Module {
    L3Module {
        imports: vec![
            L3Import {
                module: "ml".into(),
                name: "stash".into(),
                params: vec![lin_ref_l3()],
                ret: L3Ty::Unit,
            },
            L3Import {
                module: "ml".into(),
                name: "get_stashed".into(),
                params: vec![L3Ty::Unit],
                ret: lin_ref_l3(),
            },
        ],
        funs: vec![L3Fun {
            name: "main".into(),
            export: true,
            params: vec![],
            ret: L3Ty::Int,
            body: L3Expr::Seq(
                Box::new(L3Expr::CallTop {
                    name: "stash".into(),
                    args: vec![L3Expr::Join(Box::new(L3Expr::New(
                        Box::new(L3Expr::Int(42)),
                        64,
                    )))],
                }),
                Box::new(L3Expr::Free(Box::new(L3Expr::CallTop {
                    name: "get_stashed".into(),
                    args: vec![L3Expr::Unit],
                }))),
            ),
        }],
    }
}

#[test]
fn fig1_buggy_stash_is_rejected_by_richwasm() {
    // The ML compiler itself accepts the buggy program (it does not check
    // linearity, §5)…
    let rw = compile_ml(&ml_module(true)).expect("ML compiles the buggy program");
    // …but the RichWasm type checker rejects it: `stash` duplicates the
    // linear reference.
    let err = check_module(&rw).expect_err("RichWasm must reject the duplication");
    let msg = err.to_string();
    assert!(
        msg.contains("lin") || msg.contains("unit"),
        "rejection should mention the linear slot: {msg}"
    );
}

#[test]
fn fig3_safe_version_links_and_runs() {
    let ml = compile_ml(&ml_module(false)).unwrap();
    check_module(&ml).expect("safe ML module type checks");
    let l3 = compile_l3(&l3_client()).unwrap();
    check_module(&l3).expect("L3 client type checks");

    let mut rt = Runtime::new();
    rt.instantiate("ml", ml).expect("ml instantiates");
    let client = rt.instantiate("l3", l3).expect("client links against ml");
    let out = rt.invoke(client, "main", vec![]).expect("runs without traps");
    assert_eq!(out.values, vec![Value::i32(42)]);
    // No double free, no leak: the counter cell, the stash's initial
    // empty option, and the full option are each freed exactly once; the
    // only linear cell still alive is the empty option `get_stashed`
    // swapped in.
    let mem = &rt.store.mem;
    assert_eq!(mem.frees, 3, "counter + initial empty option + full option");
    assert_eq!(
        mem.lin.len(),
        1,
        "only the stash's empty-option cell remains linear-live"
    );
}

#[test]
fn double_free_attempt_traps_at_runtime_without_types() {
    // For contrast with static checking: replay the double free *in the
    // untyped interpreter* (checking disabled) — the linear memory
    // discipline catches it dynamically, like MSWasm's dynamic
    // capabilities (§7), but only *after* the fault exists.
    let ml = compile_ml(&ml_module(true)).unwrap();
    let l3_bad = {
        let mut c = l3_client();
        // The buggy client frees the returned reference too.
        c.imports[0].ret = lin_ref_l3();
        c.funs[0].body = L3Expr::Seq(
            Box::new(L3Expr::Free(Box::new(L3Expr::CallTop {
                name: "stash".into(),
                args: vec![L3Expr::Join(Box::new(L3Expr::New(
                    Box::new(L3Expr::Int(42)),
                    64,
                )))],
            }))),
            Box::new(L3Expr::Free(Box::new(L3Expr::CallTop {
                name: "get_stashed".into(),
                args: vec![L3Expr::Unit],
            }))),
        );
        c
    };
    let l3 = compile_l3(&l3_bad).unwrap();
    let mut rt = Runtime::new();
    rt.config.check_modules = false; // simulate a world without RichWasm types
    rt.instantiate("ml", ml).unwrap();
    let client = rt.instantiate("l3", l3).unwrap();
    let err = rt.invoke(client, "main", vec![]).unwrap_err();
    // Without static checking the fault still *manifests* — but only
    // dynamically, either as a memory trap or as a stuck configuration
    // (the type-safety contract is broken, so progress fails). The typed
    // pipeline rejects the same program before it can run at all.
    let msg = err.to_string();
    assert!(
        msg.contains("double free")
            || msg.contains("use after free")
            || msg.contains("stuck"),
        "the memory fault shows up only dynamically: {msg}"
    );
}

#[test]
fn lying_about_the_boundary_type_is_a_link_error() {
    // The client declares stash's parameter as an *unrestricted*
    // reference: the typed linker refuses (the FFI safety choke point).
    let ml = compile_ml(&ml_module(false)).unwrap();
    let mut client = l3_client();
    client.imports[0].params = vec![L3Ty::Foreign(richwasm::syntax::Pretype::ExistsLoc(
        Box::new(
            richwasm::syntax::Pretype::Ref(
                richwasm::syntax::MemPriv::ReadWrite,
                richwasm::syntax::Loc::Var(0),
                richwasm::syntax::HeapType::Struct(vec![(
                    richwasm::syntax::Type::num(richwasm::syntax::NumType::I32),
                    richwasm::syntax::Size::Const(64),
                )]),
            )
            .unr(),
        ),
    )
    .unr())];
    // (The L3 compiler happily produces the import declaration; the
    // boundary check fires at link time.)
    let l3m = {
        let mut m = client.clone();
        // Make the body consistent with the (wrong) declared type so the
        // L3 compiler does not reject it first: just call get_stashed.
        m.funs[0].body = L3Expr::Free(Box::new(L3Expr::CallTop {
            name: "get_stashed".into(),
            args: vec![L3Expr::Unit],
        }));
        m.imports.remove(0);
        m
    };
    let _ = l3m;
    let bad_import = richwasm::syntax::Func::Imported {
        exports: vec![],
        module: "ml".into(),
        name: "stash".into(),
        // Deliberately wrong: claims stash takes an unrestricted i32.
        ty: richwasm::syntax::FunType::mono(
            vec![richwasm::syntax::Type::num(richwasm::syntax::NumType::I32)],
            vec![richwasm::syntax::Type::unit()],
        ),
    };
    let bad_module = richwasm::syntax::Module {
        funcs: vec![bad_import],
        ..richwasm::syntax::Module::default()
    };
    let mut rt = Runtime::new();
    rt.instantiate("ml", ml).unwrap();
    let err = rt.instantiate("client", bad_module).unwrap_err();
    assert!(matches!(err, TypeError::LinkError { .. }), "{err}");
}

#[test]
fn stashing_linear_memory_in_gc_memory_is_collected_via_finalizer() {
    // §3's ownership story: if the stash cell (GC'd memory) holding the
    // linear reference becomes unreachable, the collector finalizes the
    // linear cell it owns.
    let ml = compile_ml(&ml_module(false)).unwrap();
    let l3 = compile_l3(&L3Module {
        imports: vec![L3Import {
            module: "ml".into(),
            name: "stash".into(),
            params: vec![lin_ref_l3()],
            ret: L3Ty::Unit,
        }],
        funs: vec![L3Fun {
            name: "main".into(),
            export: true,
            params: vec![],
            ret: L3Ty::Int,
            body: L3Expr::Seq(
                Box::new(L3Expr::CallTop {
                    name: "stash".into(),
                    args: vec![L3Expr::Join(Box::new(L3Expr::New(
                        Box::new(L3Expr::Int(7)),
                        64,
                    )))],
                }),
                Box::new(L3Expr::Int(0)),
            ),
        }],
    })
    .unwrap();
    let mut rt = Runtime::new();
    rt.instantiate("ml", ml).unwrap();
    let client = rt.instantiate("l3", l3).unwrap();
    rt.invoke(client, "main", vec![]).unwrap();
    let live_lin_before = rt.store.mem.lin.len();
    assert!(live_lin_before >= 1, "the stashed linear cell is alive");
    // The stash is still rooted through the module's global, so a GC
    // collects nothing linear.
    let stats = rt.gc();
    assert_eq!(stats.finalized_lin, 0);
    // Drop the module's root by clearing its globals (simulating the
    // client module itself becoming unreachable), then collect again.
    for inst in &mut rt.store.insts {
        inst.globals.clear();
    }
    let stats = rt.gc();
    assert!(
        stats.finalized_lin >= 1,
        "the GC finalizes linear memory it owns (paper §3): {stats:?}"
    );
}
