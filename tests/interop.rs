//! **Experiment E1** (paper Fig. 1 & Fig. 3): unsafe shared-memory
//! interoperability between a garbage-collected language (ML) and a
//! manually managed language (L3) is *statically rejected* by the
//! RichWasm type checker, while the corrected program type checks, links,
//! and runs safely — across both execution paths.
//!
//! The scenario: an ML module stashes a linear reference it receives from
//! L3 in module-level state. The buggy version *also returns* the
//! reference, so L3 frees it and later frees the stashed copy — a double
//! free. Compiled naively, RichWasm's checker rejects `stash` because it
//! duplicates a linear value (§2: "If compiled naively, RichWasm's type
//! system will first complain…").
//!
//! The stash/client modules are the shared E1 workload builders from
//! `richwasm_bench::workloads`; every path here runs through the
//! compile-once/run-many [`Engine`] API.

use richwasm::TypeError;
use richwasm_bench::workloads::{lin_ref_l3, stash_client, stash_module};
use richwasm_l3::{L3Expr, L3Fun, L3Import, L3Module};
use richwasm_repro::engine::{Engine, EngineConfig, ModuleSet, PipelineErrorKind, Stage};

#[test]
fn fig1_buggy_stash_is_rejected_by_richwasm() {
    // The ML compiler itself accepts the buggy program (it does not check
    // linearity, §5) — so the frontend stage succeeds — but the RichWasm
    // type checker rejects it: `stash` duplicates the linear reference.
    let err = Engine::new()
        .compile(&ModuleSet::new().ml("ml", stash_module(true)))
        .expect_err("RichWasm must reject the duplication");
    assert_eq!(
        err.stage,
        Stage::Typecheck,
        "rejected statically, before any execution"
    );
    assert_eq!(
        err.module.as_deref(),
        Some("ml"),
        "the diagnostic names the source module"
    );
    assert!(err.is_static_rejection());
    let msg = err.to_string();
    assert!(
        msg.contains("lin") || msg.contains("unit"),
        "rejection should mention the linear slot: {msg}"
    );
}

#[test]
fn fig3_safe_version_links_and_runs() {
    // Differential mode: the safe version also agrees with its lowering.
    let mut instance = Engine::new()
        .instantiate(
            &ModuleSet::new()
                .ml("ml", stash_module(false))
                .l3("l3", stash_client())
                .entry("l3"),
        )
        .expect("safe version type checks, links, and instantiates");
    let result = instance
        .invoke_entry()
        .expect("runs and agrees on both backends");
    assert_eq!(result.i32(), Some(42));
    // No double free, no leak: the counter cell, the stash's initial
    // empty option, and the full option are each freed exactly once; the
    // only linear cell still alive is the empty option `get_stashed`
    // swapped in.
    let mem = &instance.runtime().store.mem;
    assert_eq!(mem.frees, 3, "counter + initial empty option + full option");
    assert_eq!(
        mem.lin.len(),
        1,
        "only the stash's empty-option cell remains linear-live"
    );
}

#[test]
fn double_free_attempt_traps_at_runtime_without_types() {
    // For contrast with static checking: replay the double free *with the
    // type checker disabled* — the linear memory discipline catches it
    // dynamically, like MSWasm's dynamic capabilities (§7), but only
    // *after* the fault exists.
    let l3_bad = {
        let mut c = stash_client();
        // The buggy client frees the returned reference too.
        c.imports[0].ret = lin_ref_l3();
        c.funs[0].body = L3Expr::Seq(
            Box::new(L3Expr::Free(Box::new(L3Expr::CallTop {
                name: "stash".into(),
                args: vec![L3Expr::Join(Box::new(L3Expr::New(
                    Box::new(L3Expr::Int(42)),
                    64,
                )))],
            }))),
            Box::new(L3Expr::Free(Box::new(L3Expr::CallTop {
                name: "get_stashed".into(),
                args: vec![L3Expr::Unit],
            }))),
        );
        c
    };
    // Simulate a world without RichWasm types.
    let engine = Engine::with_config(EngineConfig::new().typecheck(false).interp_only());
    let mut instance = engine
        .instantiate(
            &ModuleSet::new()
                .ml("ml", stash_module(true))
                .l3("l3", l3_bad),
        )
        .expect("without the checker, the faulty program links fine");
    let err = instance.invoke("l3", "main", vec![]).unwrap_err();
    assert_eq!(err.stage, Stage::Execute);
    // Without static checking the fault still *manifests* — but only
    // dynamically, either as a memory trap or as a stuck configuration
    // (the type-safety contract is broken, so progress fails). The typed
    // pipeline rejects the same program before it can run at all.
    let msg = err.to_string();
    assert!(
        msg.contains("double free") || msg.contains("use after free") || msg.contains("stuck"),
        "the memory fault shows up only dynamically: {msg}"
    );
}

#[test]
fn lying_about_the_boundary_type_is_a_link_error() {
    // The client declares stash's parameter as an *unrestricted* i32: the
    // typed linker refuses (the FFI safety choke point). The lying import
    // is expressed directly in RichWasm — the engine accepts raw RichWasm
    // modules alongside frontend sources.
    let bad_import = richwasm::syntax::Func::Imported {
        exports: vec![],
        module: "ml".into(),
        name: "stash".into(),
        // Deliberately wrong: claims stash takes an unrestricted i32.
        ty: richwasm::syntax::FunType::mono(
            vec![richwasm::syntax::Type::num(richwasm::syntax::NumType::I32)],
            vec![richwasm::syntax::Type::unit()],
        ),
    };
    let bad_module = richwasm::syntax::Module {
        funcs: vec![bad_import],
        ..richwasm::syntax::Module::default()
    };
    let engine = Engine::with_config(EngineConfig::new().interp_only());
    let set = ModuleSet::new()
        .ml("ml", stash_module(false))
        .richwasm("client", bad_module);
    // Each module is fine *in isolation* — the artifact compiles…
    let artifact = engine.compile(&set).expect("modules check independently");
    // …but the boundary lie is caught the moment the modules are linked.
    let err = artifact
        .instantiate()
        .expect_err("the typed linker must reject the lie");
    assert_eq!(
        err.stage,
        Stage::Instantiate,
        "caught at link time, not check time"
    );
    assert_eq!(err.module.as_deref(), Some("client"));
    assert!(
        matches!(
            err.kind,
            PipelineErrorKind::Type(TypeError::LinkError { .. })
        ),
        "{err}"
    );
}

#[test]
fn stashing_linear_memory_in_gc_memory_is_collected_via_finalizer() {
    // §3's ownership story: if the stash cell (GC'd memory) holding the
    // linear reference becomes unreachable, the collector finalizes the
    // linear cell it owns.
    let l3 = L3Module {
        imports: vec![L3Import {
            module: "ml".into(),
            name: "stash".into(),
            params: vec![lin_ref_l3()],
            ret: richwasm_l3::L3Ty::Unit,
        }],
        funs: vec![L3Fun {
            name: "main".into(),
            export: true,
            params: vec![],
            ret: richwasm_l3::L3Ty::Int,
            body: L3Expr::Seq(
                Box::new(L3Expr::CallTop {
                    name: "stash".into(),
                    args: vec![L3Expr::Join(Box::new(L3Expr::New(
                        Box::new(L3Expr::Int(7)),
                        64,
                    )))],
                }),
                Box::new(L3Expr::Int(0)),
            ),
        }],
    };
    let engine = Engine::with_config(EngineConfig::new().interp_only());
    let mut instance = engine
        .instantiate(&ModuleSet::new().ml("ml", stash_module(false)).l3("l3", l3))
        .unwrap();
    instance.invoke("l3", "main", vec![]).unwrap();
    let rt = instance.runtime();
    let live_lin_before = rt.store.mem.lin.len();
    assert!(live_lin_before >= 1, "the stashed linear cell is alive");
    // The stash is still rooted through the module's global, so a GC
    // collects nothing linear.
    let stats = rt.gc();
    assert_eq!(stats.finalized_lin, 0);
    // Drop the module's root by clearing its globals (simulating the
    // client module itself becoming unreachable), then collect again.
    for inst in &mut rt.store.insts {
        inst.globals.clear();
    }
    let stats = rt.gc();
    assert!(
        stats.finalized_lin >= 1,
        "the GC finalizes linear memory it owns (paper §3): {stats:?}"
    );
}
