//! **Experiment E2** (paper Fig. 9 / §4.2): a performance-critical
//! *linear* library (a mutable counter with its configuration, written in
//! L3) used by *garbage-collected* client logic (ML) that hides the
//! linearity behind an interface — "the GC'd portion of the program can
//! configure and use the counter without any need to reason about
//! linearity at all".
//!
//! The heap layout mirrors Fig. 9: the client state is an unrestricted
//! (GC'd) cell referencing the linear Counter, which packages mutable
//! State together with its Config (the increment step).

use richwasm::interp::Runtime;
use richwasm::syntax::Value;
use richwasm::typecheck::check_module;
use richwasm_l3::{compile_module as compile_l3, translate_ty as l3_ty, L3Expr, L3Fun, L3Module, L3Op, L3Ty};
use richwasm_ml::{compile_module as compile_ml, MlExpr, MlFun, MlGlobal, MlImport, MlModule, MlTy};

/// The counter's contents: (count, step) — state and config in one linear
/// cell, 128 bits.
fn counter_l3() -> L3Ty {
    L3Ty::Ref(
        Box::new(L3Ty::Prod(Box::new(L3Ty::Int), Box::new(L3Ty::Int))),
        128,
    )
}

fn counter_ml() -> MlTy {
    MlTy::Foreign(l3_ty(&counter_l3()))
}

fn v(x: &str) -> Box<L3Expr> {
    Box::new(L3Expr::Var(x.into()))
}

/// The linear library (the "graphics library" of §4.2, simplified to a
/// counter per the paper).
fn library() -> L3Module {
    let pair_ty = L3Ty::Prod(Box::new(L3Ty::Int), Box::new(L3Ty::Int));
    L3Module {
        funs: vec![
            // make_counter(step) = join (new (0, step))
            L3Fun {
                name: "make_counter".into(),
                export: true,
                params: vec![("step".into(), L3Ty::Int)],
                ret: counter_l3(),
                body: L3Expr::Join(Box::new(L3Expr::New(
                    Box::new(L3Expr::Pair(Box::new(L3Expr::Int(0)), v("step"))),
                    128,
                ))),
            },
            // incr(r): strong-update the cell to (count+step, step).
            L3Fun {
                name: "incr".into(),
                export: true,
                params: vec![("r".into(), counter_l3())],
                ret: counter_l3(),
                body: L3Expr::LetPair(
                    "p2".into(),
                    "old".into(),
                    Box::new(L3Expr::Swap(
                        Box::new(L3Expr::Split(v("r"))),
                        Box::new(L3Expr::Pair(
                            Box::new(L3Expr::Int(0)),
                            Box::new(L3Expr::Int(0)),
                        )),
                    )),
                    Box::new(L3Expr::LetPair(
                        "count".into(),
                        "step".into(),
                        v("old"),
                        Box::new(L3Expr::LetPair(
                            "p3".into(),
                            "dummy".into(),
                            Box::new(L3Expr::Swap(
                                v("p2"),
                                Box::new(L3Expr::Pair(
                                    Box::new(L3Expr::Op(L3Op::Add, v("count"), v("step"))),
                                    v("step"),
                                )),
                            )),
                            Box::new(L3Expr::Seq(v("dummy"), Box::new(L3Expr::Join(v("p3"))))),
                        )),
                    )),
                ),
            },
            // finish(r): free the cell, returning the final count.
            L3Fun {
                name: "finish".into(),
                export: true,
                params: vec![("r".into(), counter_l3())],
                ret: L3Ty::Int,
                body: L3Expr::LetPair(
                    "count".into(),
                    "step".into(),
                    Box::new(L3Expr::Free(v("r"))),
                    Box::new(L3Expr::Seq(v("step"), v("count"))),
                ),
            },
        ],
        ..L3Module::default()
    }
}

/// The GC'd client: hides the linear counter in a `ref_to_lin` cell and
/// exposes a linearity-free interface.
fn client() -> MlModule {
    let var = |x: &str| Box::new(MlExpr::Var(x.into()));
    MlModule {
        imports: vec![
            MlImport {
                module: "gfx".into(),
                name: "make_counter".into(),
                params: vec![MlTy::Int],
                ret: counter_ml(),
            },
            MlImport {
                module: "gfx".into(),
                name: "incr".into(),
                params: vec![counter_ml()],
                ret: counter_ml(),
            },
            MlImport {
                module: "gfx".into(),
                name: "finish".into(),
                params: vec![counter_ml()],
                ret: MlTy::Int,
            },
        ],
        globals: vec![MlGlobal {
            name: "slot".into(),
            ty: MlTy::RefToLin(Box::new(counter_ml())),
            init: MlExpr::NewRefToLin(counter_ml()),
        }],
        funs: vec![
            // setup(step): slot := make_counter(step)
            MlFun {
                name: "setup".into(),
                export: true,
                tyvars: 0,
                params: vec![("step".into(), MlTy::Int)],
                ret: MlTy::Unit,
                body: MlExpr::Assign(
                    var("slot"),
                    Box::new(MlExpr::CallTop {
                        name: "make_counter".into(),
                        tyargs: vec![],
                        args: vec![MlExpr::Var("step".into())],
                    }),
                ),
            },
            // bump(): slot := incr(!slot) — no linearity reasoning here.
            MlFun {
                name: "bump".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: MlTy::Unit,
                body: MlExpr::Assign(
                    var("slot"),
                    Box::new(MlExpr::CallTop {
                        name: "incr".into(),
                        tyargs: vec![],
                        args: vec![MlExpr::Deref(var("slot"))],
                    }),
                ),
            },
            // total(): finish(!slot)
            MlFun {
                name: "total".into(),
                export: true,
                tyvars: 0,
                params: vec![("u".into(), MlTy::Unit)],
                ret: MlTy::Int,
                body: MlExpr::CallTop {
                    name: "finish".into(),
                    tyargs: vec![],
                    args: vec![MlExpr::Deref(var("slot"))],
                },
            },
        ],
    }
}

#[test]
fn counter_scenario_typechecks_and_runs() {
    let gfx = compile_l3(&library()).unwrap();
    check_module(&gfx).expect("library type checks");
    let app = compile_ml(&client()).unwrap();
    check_module(&app).expect("client type checks");

    let mut rt = Runtime::new();
    rt.instantiate("gfx", gfx).unwrap();
    let app_i = rt.instantiate("app", app).unwrap();

    rt.invoke(app_i, "setup", vec![Value::i32(5)]).unwrap();
    for _ in 0..4 {
        rt.invoke(app_i, "bump", vec![Value::Unit]).unwrap();
    }
    let out = rt.invoke(app_i, "total", vec![Value::Unit]).unwrap();
    assert_eq!(out.values, vec![Value::i32(20)], "4 bumps × step 5");
}

#[test]
fn double_setup_fails_at_runtime_not_memory() {
    // Configuring twice would overwrite (and leak) the linear counter —
    // the ref_to_lin discipline turns that into a clean runtime failure
    // (the paper's "fail at runtime" semantics for linking types, §2.2),
    // not a memory-safety violation.
    let gfx = compile_l3(&library()).unwrap();
    let app = compile_ml(&client()).unwrap();
    let mut rt = Runtime::new();
    rt.instantiate("gfx", gfx).unwrap();
    let app_i = rt.instantiate("app", app).unwrap();
    rt.invoke(app_i, "setup", vec![Value::i32(1)]).unwrap();
    let err = rt.invoke(app_i, "setup", vec![Value::i32(2)]).unwrap_err();
    assert!(err.to_string().contains("unreachable"), "{err}");
}

#[test]
fn counter_keeps_single_linear_cell() {
    // Throughout the client's life there is exactly one linear counter
    // cell (plus the option cell machinery), and `total` frees it.
    let gfx = compile_l3(&library()).unwrap();
    let app = compile_ml(&client()).unwrap();
    let mut rt = Runtime::new();
    rt.instantiate("gfx", gfx).unwrap();
    let app_i = rt.instantiate("app", app).unwrap();
    rt.invoke(app_i, "setup", vec![Value::i32(3)]).unwrap();
    let frees_before = rt.store.mem.frees;
    rt.invoke(app_i, "bump", vec![Value::Unit]).unwrap();
    let out = rt.invoke(app_i, "total", vec![Value::Unit]).unwrap();
    assert_eq!(out.values, vec![Value::i32(3)]);
    assert!(rt.store.mem.frees > frees_before, "the counter cell was freed");
}
