//! **Experiment E2** (paper Fig. 9 / §4.2): a performance-critical
//! *linear* library (a mutable counter with its configuration, written in
//! L3) used by *garbage-collected* client logic (ML) that hides the
//! linearity behind an interface — "the GC'd portion of the program can
//! configure and use the counter without any need to reason about
//! linearity at all".
//!
//! The heap layout mirrors Fig. 9: the client state is an unrestricted
//! (GC'd) cell referencing the linear Counter, which packages mutable
//! State together with its Config (the increment step).
//!
//! The library/client modules live in `richwasm_bench::workloads`
//! (shared with the E2 bench); every scenario here compiles once through
//! an [`Engine`] and runs through [`Instance`]s of the cached artifact.

use richwasm::syntax::Value;
use richwasm_bench::workloads::{counter_client, counter_library};
use richwasm_repro::engine::{Engine, EngineConfig, Instance, ModuleSet, Stage};

fn counter_set() -> ModuleSet {
    ModuleSet::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
}

#[test]
fn counter_scenario_typechecks_and_runs() {
    // Differential mode: the counter protocol agrees step for step
    // between the RichWasm interpreter and the lowered Wasm.
    let mut inst = Engine::new()
        .instantiate(&counter_set())
        .expect("library and client compile, type check, lower, and link");

    inst.invoke("app", "setup", vec![Value::i32(5)]).unwrap();
    for _ in 0..4 {
        inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    }
    let out = inst.invoke("app", "total", vec![Value::Unit]).unwrap();
    assert_eq!(out.i32(), Some(20), "4 bumps × step 5");
    assert_eq!(inst.invocations(), 6);
}

/// One engine, one compile, many runs: both failure-path scenarios below
/// share the cached artifact and get their own isolated instance.
fn fresh_interp_instance(engine: &Engine) -> Instance {
    engine.instantiate(&counter_set()).unwrap()
}

#[test]
fn double_setup_fails_at_runtime_not_memory() {
    // Configuring twice would overwrite (and leak) the linear counter —
    // the ref_to_lin discipline turns that into a clean runtime failure
    // (the paper's "fail at runtime" semantics for linking types, §2.2),
    // not a memory-safety violation.
    let engine = Engine::with_config(EngineConfig::new().interp_only());
    let mut inst = fresh_interp_instance(&engine);
    inst.invoke("app", "setup", vec![Value::i32(1)]).unwrap();
    let err = inst
        .invoke("app", "setup", vec![Value::i32(2)])
        .unwrap_err();
    assert_eq!(
        err.stage,
        Stage::Execute,
        "a dynamic failure, not a static rejection"
    );
    assert!(!err.is_static_rejection());
    assert!(err.to_string().contains("unreachable"), "{err}");

    // The failed instance is poisoned state-wise, but the artifact is
    // not: a second instance (same compile — the cache hit) starts clean.
    let mut retry = fresh_interp_instance(&engine);
    retry.invoke("app", "setup", vec![Value::i32(2)]).unwrap();
    let out = retry.invoke("app", "total", vec![Value::Unit]).unwrap();
    assert_eq!(out.i32(), Some(0), "fresh counter, no bumps yet");
    assert_eq!(engine.cache_stats().misses, 1, "compiled exactly once");
    assert_eq!(engine.cache_stats().hits, 1, "second instance was cached");
}

#[test]
fn counter_keeps_single_linear_cell() {
    // Throughout the client's life there is exactly one linear counter
    // cell (plus the option cell machinery), and `total` frees it.
    let engine = Engine::with_config(EngineConfig::new().interp_only());
    let mut inst = fresh_interp_instance(&engine);
    inst.invoke("app", "setup", vec![Value::i32(3)]).unwrap();
    let frees_before = inst.runtime().store.mem.frees;
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    let out = inst.invoke("app", "total", vec![Value::Unit]).unwrap();
    assert_eq!(out.i32(), Some(3));
    assert!(
        inst.runtime().store.mem.frees > frees_before,
        "the counter cell was freed"
    );
}
