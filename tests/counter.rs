//! **Experiment E2** (paper Fig. 9 / §4.2): a performance-critical
//! *linear* library (a mutable counter with its configuration, written in
//! L3) used by *garbage-collected* client logic (ML) that hides the
//! linearity behind an interface — "the GC'd portion of the program can
//! configure and use the counter without any need to reason about
//! linearity at all".
//!
//! The heap layout mirrors Fig. 9: the client state is an unrestricted
//! (GC'd) cell referencing the linear Counter, which packages mutable
//! State together with its Config (the increment step).
//!
//! The library/client modules live in `richwasm_bench::workloads`
//! (shared with the E2 bench); every scenario here drives them through
//! the unified [`Pipeline`].

use richwasm::syntax::Value;
use richwasm_bench::workloads::{counter_client, counter_library};
use richwasm_repro::pipeline::{Pipeline, Stage};

#[test]
fn counter_scenario_typechecks_and_runs() {
    // Differential mode: the counter protocol agrees step for step
    // between the RichWasm interpreter and the lowered Wasm.
    let mut prog = Pipeline::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
        .build()
        .expect("library and client compile, type check, lower, and link");

    prog.invoke("app", "setup", vec![Value::i32(5)]).unwrap();
    for _ in 0..4 {
        prog.invoke("app", "bump", vec![Value::Unit]).unwrap();
    }
    let out = prog.invoke("app", "total", vec![Value::Unit]).unwrap();
    assert_eq!(out.i32(), Some(20), "4 bumps × step 5");
}

#[test]
fn double_setup_fails_at_runtime_not_memory() {
    // Configuring twice would overwrite (and leak) the linear counter —
    // the ref_to_lin discipline turns that into a clean runtime failure
    // (the paper's "fail at runtime" semantics for linking types, §2.2),
    // not a memory-safety violation.
    let mut prog = Pipeline::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
        .interp_only()
        .build()
        .unwrap();
    prog.invoke("app", "setup", vec![Value::i32(1)]).unwrap();
    let err = prog
        .invoke("app", "setup", vec![Value::i32(2)])
        .unwrap_err();
    assert_eq!(
        err.stage,
        Stage::Execute,
        "a dynamic failure, not a static rejection"
    );
    assert!(!err.is_static_rejection());
    assert!(err.to_string().contains("unreachable"), "{err}");
}

#[test]
fn counter_keeps_single_linear_cell() {
    // Throughout the client's life there is exactly one linear counter
    // cell (plus the option cell machinery), and `total` frees it.
    let mut prog = Pipeline::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
        .interp_only()
        .build()
        .unwrap();
    prog.invoke("app", "setup", vec![Value::i32(3)]).unwrap();
    let frees_before = prog.runtime().store.mem.frees;
    prog.invoke("app", "bump", vec![Value::Unit]).unwrap();
    let out = prog.invoke("app", "total", vec![Value::Unit]).unwrap();
    assert_eq!(out.i32(), Some(3));
    assert!(
        prog.runtime().store.mem.frees > frees_before,
        "the counter cell was freed"
    );
}
