//! **Experiment E3** (paper §4.1): type safety, made executable.
//!
//! The paper proves progress and preservation in Coq (14k spec / 52k
//! proof LoC). This reproduction tests the same statements end to end:
//!
//! * **Type preservation of compilation** (§5): every well-typed ML
//!   program compiles to a RichWasm module the checker accepts.
//! * **Progress**: well-typed configurations never get *stuck* — they
//!   step to completion or trap for a legitimate dynamic reason.
//! * **Memory safety**: every linear allocation is freed at most once and
//!   use-after-free cannot occur silently (the interpreter would trap).
//! * **Erasure correctness** (§6): the lowered Wasm agrees with the
//!   RichWasm semantics on every generated program — checked by the
//!   [`Engine`]'s differential mode.

use proptest::prelude::*;
use richwasm::error::RuntimeError;
use richwasm_ml::{MlBinop, MlExpr, MlFun, MlModule, MlTy};
use richwasm_repro::engine::{Engine, EngineConfig, ModuleSet, PipelineErrorKind, Stage};

/// A generator for *well-typed* ML expressions of type `Int`, with `vars`
/// integer variables in scope (named v0..v{vars-1}).
fn arb_int_expr(depth: u32, vars: u32) -> BoxedStrategy<MlExpr> {
    if depth == 0 {
        let mut leaves: Vec<BoxedStrategy<MlExpr>> =
            vec![(-100i32..100).prop_map(MlExpr::Int).boxed()];
        if vars > 0 {
            leaves.push((0..vars).prop_map(|i| MlExpr::Var(format!("v{i}"))).boxed());
        }
        return proptest::strategy::Union::new(leaves).boxed();
    }
    let sub = arb_int_expr(depth - 1, vars);
    let sub2 = arb_int_expr(depth - 1, vars);
    let sub3 = arb_int_expr(depth - 1, vars);
    let let_sub = arb_int_expr(depth - 1, vars + 1);
    prop_oneof![
        // Arithmetic (no division: we want trap-free programs here so any
        // trap is a soundness signal).
        (
            sub.clone(),
            sub2.clone(),
            prop_oneof![
                Just(MlBinop::Add),
                Just(MlBinop::Sub),
                Just(MlBinop::Mul),
                Just(MlBinop::Eq),
                Just(MlBinop::Lt),
            ]
        )
            .prop_map(|(a, b, op)| MlExpr::Binop(op, Box::new(a), Box::new(b))),
        // let vN = e in e' (the new variable is the highest index).
        (sub.clone(), let_sub)
            .prop_map(move |(a, b)| { MlExpr::Let(format!("v{vars}"), Box::new(a), Box::new(b)) }),
        // if e then e1 else e2
        (sub.clone(), sub2.clone(), sub3)
            .prop_map(|(c, a, b)| { MlExpr::If(Box::new(c), Box::new(a), Box::new(b)) }),
        // Tuples and projection.
        (sub.clone(), sub2.clone(), 0usize..2)
            .prop_map(|(a, b, i)| { MlExpr::Proj(i, Box::new(MlExpr::Tuple(vec![a, b]))) }),
        // References: let r = ref a in (r := b; !r)
        (sub.clone(), sub2.clone()).prop_map(move |(a, b)| {
            let r = format!("v{vars}_r");
            MlExpr::Let(
                r.clone(),
                Box::new(MlExpr::NewRef(Box::new(a))),
                Box::new(MlExpr::Seq(
                    Box::new(MlExpr::Assign(
                        Box::new(MlExpr::Var(r.clone())),
                        Box::new(b),
                    )),
                    Box::new(MlExpr::Deref(Box::new(MlExpr::Var(r)))),
                )),
            )
        }),
        // Sums: case (inj_i e) …
        (sub.clone(), sub2.clone(), 0usize..2).prop_map(|(a, b, tag)| {
            let sum = MlTy::Sum(vec![MlTy::Int, MlTy::Int]);
            MlExpr::Case(
                Box::new(MlExpr::Inj {
                    sum,
                    tag,
                    e: Box::new(a),
                }),
                vec![
                    ("x".into(), MlExpr::Var("x".into())),
                    (
                        "y".into(),
                        MlExpr::Binop(MlBinop::Add, Box::new(MlExpr::Var("y".into())), Box::new(b)),
                    ),
                ],
            )
        }),
        // Closures: (fun x -> x + captured) arg
        (sub, sub2).prop_map(move |(captured, arg)| {
            let c = format!("v{vars}_c");
            MlExpr::Let(
                c.clone(),
                Box::new(captured),
                Box::new(MlExpr::App(
                    Box::new(MlExpr::Lam {
                        param: "x".into(),
                        param_ty: MlTy::Int,
                        ret_ty: MlTy::Int,
                        body: Box::new(MlExpr::Binop(
                            MlBinop::Add,
                            Box::new(MlExpr::Var("x".into())),
                            Box::new(MlExpr::Var(c)),
                        )),
                    }),
                    Box::new(arg),
                )),
            )
        }),
    ]
    .boxed()
}

fn module_of(body: MlExpr) -> MlModule {
    MlModule {
        funs: vec![MlFun {
            name: "main".into(),
            export: true,
            tyvars: 0,
            params: vec![],
            ret: MlTy::Int,
            body,
        }],
        ..MlModule::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Type preservation + progress + memory safety, in one sweep.
    #[test]
    fn well_typed_programs_are_safe(body in arb_int_expr(3, 0)) {
        // Frontend + typecheck: the ML compiler accepts its own
        // well-typed output, and compilation is type preserving (§5) —
        // a `Typecheck`-stage failure here would falsify preservation.
        let engine = Engine::with_config(EngineConfig::new().interp_only());
        let mut prog = engine
            .instantiate(&ModuleSet::new().ml("m", module_of(body)))
            .expect("compilation must be type preserving");

        // Progress: the program runs to completion without getting stuck.
        match prog.invoke("m", "main", vec![]) {
            Ok(out) => {
                let values = &out.richwasm.as_ref().expect("interp ran").values;
                prop_assert_eq!(values.len(), 1);
                // Memory safety accounting: allocations and frees balance
                // against the live count.
                let mem = &prog.runtime().store.mem;
                prop_assert_eq!(
                    mem.allocs,
                    mem.frees + mem.collected + mem.finalized + mem.live() as u64
                );
            }
            Err(e) => match e.kind {
                PipelineErrorKind::Runtime(RuntimeError::Stuck { reason }) => {
                    prop_assert!(false, "progress violated: stuck at {}", reason);
                }
                PipelineErrorKind::Runtime(RuntimeError::Trap { reason }) => {
                    prop_assert!(false, "trap-free generator trapped: {}", reason);
                }
                other => prop_assert!(false, "unexpected failure: {}", other),
            },
        }
    }

    /// Erasure correctness (§6): the lowered Wasm computes the same value
    /// as the RichWasm interpreter on every generated program. The
    /// pipeline's differential mode performs the comparison itself.
    #[test]
    fn lowering_preserves_behaviour(body in arb_int_expr(3, 0)) {
        let mut inst = Engine::new()
            .instantiate(&ModuleSet::new().ml("m", module_of(body)))
            .expect("the full static pipeline succeeds");
        let result = inst.invoke_entry().expect("both backends run and agree");
        prop_assert!(result.i32().is_some(), "a single i32 result on both backends");
    }

    /// GC safety: collecting at any point during execution never breaks a
    /// running program (the collector only reclaims unreachable cells).
    #[test]
    fn gc_is_transparent(body in arb_int_expr(3, 0), every in 1u64..40) {
        let set = ModuleSet::new().ml("m", module_of(body));
        // Reference run, no GC.
        let calm = Engine::with_config(EngineConfig::new().interp_only());
        let r1 = calm.instantiate(&set).expect("no-GC build")
            .invoke_entry().expect("no-GC run");
        // Aggressive-GC run (a different config, hence a different engine:
        // the config is part of the artifact's identity).
        let pressured = Engine::with_config(
            EngineConfig::new().interp_only().auto_gc_every(every));
        let r2 = pressured.instantiate(&set).expect("GC build")
            .invoke_entry().expect("GC run must not fail");
        let v1 = r1.richwasm.expect("interp ran").values;
        let v2 = r2.richwasm.expect("interp ran").values;
        prop_assert_eq!(v1, v2);
    }
}

/// A fixed regression corpus distilled from past generator finds (kept
/// deterministic so CI failures are reproducible). Runs in differential
/// mode, so each program is also lowered, validated, and cross-checked.
#[test]
fn regression_corpus() {
    let programs = vec![
        // Nested closures capturing refs.
        MlExpr::Let(
            "r".into(),
            Box::new(MlExpr::NewRef(Box::new(MlExpr::Int(1)))),
            Box::new(MlExpr::App(
                Box::new(MlExpr::Lam {
                    param: "x".into(),
                    param_ty: MlTy::Int,
                    ret_ty: MlTy::Int,
                    body: Box::new(MlExpr::Binop(
                        MlBinop::Add,
                        Box::new(MlExpr::Deref(Box::new(MlExpr::Var("r".into())))),
                        Box::new(MlExpr::Var("x".into())),
                    )),
                }),
                Box::new(MlExpr::Deref(Box::new(MlExpr::Var("r".into())))),
            )),
        ),
        // Case over a sum of sums.
        MlExpr::Case(
            Box::new(MlExpr::Inj {
                sum: MlTy::Sum(vec![MlTy::Int, MlTy::Int]),
                tag: 1,
                e: Box::new(MlExpr::Int(21)),
            }),
            vec![
                ("a".into(), MlExpr::Var("a".into())),
                (
                    "b".into(),
                    MlExpr::Binop(
                        MlBinop::Mul,
                        Box::new(MlExpr::Var("b".into())),
                        Box::new(MlExpr::Int(2)),
                    ),
                ),
            ],
        ),
    ];
    let engine = Engine::new();
    for body in programs {
        let result = engine
            .instantiate(&ModuleSet::new().ml("m", module_of(body)))
            .unwrap()
            .invoke_entry()
            .unwrap();
        assert!(result.i32().is_some());
    }
    // The corpus must keep failing loudly if a stage is silently skipped.
    let stages = [
        Stage::Frontend,
        Stage::Typecheck,
        Stage::Lower,
        Stage::Validate,
    ];
    let artifact = engine
        .compile(&ModuleSet::new().ml("m", module_of(MlExpr::Int(7))))
        .unwrap();
    for stage in stages {
        assert!(
            artifact
                .timings()
                .entries()
                .iter()
                .any(|(s, _)| *s == stage),
            "stage {stage} must have run"
        );
    }
}
