//! **Experiment E3** (paper §4.1): type safety, made executable.
//!
//! The paper proves progress and preservation in Coq (14k spec / 52k
//! proof LoC). This reproduction tests the same statements end to end:
//!
//! * **Type preservation of compilation** (§5): every well-typed ML
//!   program compiles to a RichWasm module the checker accepts.
//! * **Progress**: well-typed configurations never get *stuck* — they
//!   step to completion or trap for a legitimate dynamic reason.
//! * **Memory safety**: every linear allocation is freed at most once and
//!   use-after-free cannot occur silently (the interpreter would trap).
//! * **Erasure correctness** (§6): the lowered Wasm agrees with the
//!   RichWasm semantics on every generated program.

use proptest::prelude::*;
use richwasm::error::RuntimeError;
use richwasm::interp::Runtime;
use richwasm::syntax::Value;
use richwasm::typecheck::check_module;
use richwasm_lower::lower_modules;
use richwasm_ml::{compile_module as compile_ml, MlBinop, MlExpr, MlFun, MlModule, MlTy};
use richwasm_wasm::exec::{Val, WasmLinker};

/// A generator for *well-typed* ML expressions of type `Int`, with `vars`
/// integer variables in scope (named v0..v{vars-1}).
fn arb_int_expr(depth: u32, vars: u32) -> BoxedStrategy<MlExpr> {
    if depth == 0 {
        let mut leaves: Vec<BoxedStrategy<MlExpr>> =
            vec![(-100i32..100).prop_map(MlExpr::Int).boxed()];
        if vars > 0 {
            leaves.push(
                (0..vars)
                    .prop_map(|i| MlExpr::Var(format!("v{i}")))
                    .boxed(),
            );
        }
        return proptest::strategy::Union::new(leaves).boxed();
    }
    let sub = arb_int_expr(depth - 1, vars);
    let sub2 = arb_int_expr(depth - 1, vars);
    let sub3 = arb_int_expr(depth - 1, vars);
    let let_sub = arb_int_expr(depth - 1, vars + 1);
    prop_oneof![
        // Arithmetic (no division: we want trap-free programs here so any
        // trap is a soundness signal).
        (sub.clone(), sub2.clone(), prop_oneof![
            Just(MlBinop::Add),
            Just(MlBinop::Sub),
            Just(MlBinop::Mul),
            Just(MlBinop::Eq),
            Just(MlBinop::Lt),
        ])
            .prop_map(|(a, b, op)| MlExpr::Binop(op, Box::new(a), Box::new(b))),
        // let vN = e in e' (the new variable is the highest index).
        (sub.clone(), let_sub).prop_map(move |(a, b)| {
            MlExpr::Let(format!("v{vars}"), Box::new(a), Box::new(b))
        }),
        // if e then e1 else e2
        (sub.clone(), sub2.clone(), sub3).prop_map(|(c, a, b)| {
            MlExpr::If(Box::new(c), Box::new(a), Box::new(b))
        }),
        // Tuples and projection.
        (sub.clone(), sub2.clone(), 0usize..2).prop_map(|(a, b, i)| {
            MlExpr::Proj(i, Box::new(MlExpr::Tuple(vec![a, b])))
        }),
        // References: let r = ref a in (r := b; !r)
        (sub.clone(), sub2.clone()).prop_map(move |(a, b)| {
            let r = format!("v{vars}_r");
            MlExpr::Let(
                r.clone(),
                Box::new(MlExpr::NewRef(Box::new(a))),
                Box::new(MlExpr::Seq(
                    Box::new(MlExpr::Assign(
                        Box::new(MlExpr::Var(r.clone())),
                        Box::new(b),
                    )),
                    Box::new(MlExpr::Deref(Box::new(MlExpr::Var(r)))),
                )),
            )
        }),
        // Sums: case (inj_i e) …
        (sub.clone(), sub2.clone(), 0usize..2).prop_map(|(a, b, tag)| {
            let sum = MlTy::Sum(vec![MlTy::Int, MlTy::Int]);
            MlExpr::Case(
                Box::new(MlExpr::Inj { sum, tag, e: Box::new(a) }),
                vec![
                    ("x".into(), MlExpr::Var("x".into())),
                    (
                        "y".into(),
                        MlExpr::Binop(MlBinop::Add, Box::new(MlExpr::Var("y".into())), Box::new(b)),
                    ),
                ],
            )
        }),
        // Closures: (fun x -> x + captured) arg
        (sub.clone(), sub2).prop_map(move |(captured, arg)| {
            let c = format!("v{vars}_c");
            MlExpr::Let(
                c.clone(),
                Box::new(captured),
                Box::new(MlExpr::App(
                    Box::new(MlExpr::Lam {
                        param: "x".into(),
                        param_ty: MlTy::Int,
                        ret_ty: MlTy::Int,
                        body: Box::new(MlExpr::Binop(
                            MlBinop::Add,
                            Box::new(MlExpr::Var("x".into())),
                            Box::new(MlExpr::Var(c)),
                        )),
                    }),
                    Box::new(arg),
                )),
            )
        }),
    ]
    .boxed()
}

fn module_of(body: MlExpr) -> MlModule {
    MlModule {
        funs: vec![MlFun {
            name: "main".into(),
            export: true,
            tyvars: 0,
            params: vec![],
            ret: MlTy::Int,
            body,
        }],
        ..MlModule::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Type preservation + progress + memory safety, in one sweep.
    #[test]
    fn well_typed_programs_are_safe(body in arb_int_expr(3, 0)) {
        let m = module_of(body);
        // The ML compiler accepts its own well-typed output…
        let rw = compile_ml(&m).expect("generator produces well-typed ML");
        // …and compilation is type preserving (§5).
        check_module(&rw).expect("compiled module must type check");

        // Progress: the program runs to completion without getting stuck.
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", rw).unwrap();
        match rt.invoke(idx, "main", vec![]) {
            Ok(out) => {
                prop_assert_eq!(out.values.len(), 1);
                // Memory safety accounting: allocations and frees balance
                // against the live count.
                let mem = &rt.store.mem;
                prop_assert_eq!(
                    mem.allocs,
                    mem.frees + mem.collected + mem.finalized + mem.live() as u64
                );
            }
            Err(RuntimeError::Stuck { reason }) => {
                prop_assert!(false, "progress violated: stuck at {}", reason);
            }
            Err(RuntimeError::Trap { reason }) => {
                prop_assert!(false, "trap-free generator trapped: {}", reason);
            }
            Err(e) => prop_assert!(false, "unexpected failure: {}", e),
        }
    }

    /// Erasure correctness (§6): the lowered Wasm computes the same value
    /// as the RichWasm interpreter on every generated program.
    #[test]
    fn lowering_preserves_behaviour(body in arb_int_expr(3, 0)) {
        let m = module_of(body);
        let rw = compile_ml(&m).expect("well-typed ML");
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", rw.clone()).unwrap();
        let direct = rt.invoke(idx, "main", vec![]).expect("richwasm run");
        let Value::Num(_, bits) = direct.values[0] else { panic!("non-numeric") };
        let expect = bits as u32 as i32;

        let lowered = lower_modules(&[("m".to_string(), rw)]).expect("lowering");
        let mut linker = WasmLinker::new();
        let mut mi = 0;
        for (name, wm) in &lowered {
            richwasm_wasm::validate_module(wm).expect("lowered module validates");
            let i = linker.instantiate(name, wm.clone()).expect("wasm instantiation");
            if name == "m" {
                mi = i;
            }
        }
        let out = linker.invoke(mi, "main", &[]).expect("wasm run");
        let Val::I32(w) = out[0] else { panic!("non-i32 wasm result") };
        prop_assert_eq!(w as i32, expect);
    }

    /// GC safety: collecting at any point during execution never breaks a
    /// running program (the collector only reclaims unreachable cells).
    #[test]
    fn gc_is_transparent(body in arb_int_expr(3, 0), every in 1u64..40) {
        let m = module_of(body);
        let rw = compile_ml(&m).expect("well-typed ML");
        // Reference run, no GC.
        let mut rt1 = Runtime::new();
        let i1 = rt1.instantiate("m", rw.clone()).unwrap();
        let r1 = rt1.invoke(i1, "main", vec![]).expect("no-GC run");
        // Aggressive-GC run.
        let mut rt2 = Runtime::new();
        rt2.config.auto_gc_every = Some(every);
        let i2 = rt2.instantiate("m", rw).unwrap();
        let r2 = rt2.invoke(i2, "main", vec![]).expect("GC run must not fail");
        prop_assert_eq!(r1.values, r2.values);
    }
}

/// A fixed regression corpus distilled from past generator finds (kept
/// deterministic so CI failures are reproducible).
#[test]
fn regression_corpus() {
    let programs = vec![
        // Nested closures capturing refs.
        MlExpr::Let(
            "r".into(),
            Box::new(MlExpr::NewRef(Box::new(MlExpr::Int(1)))),
            Box::new(MlExpr::App(
                Box::new(MlExpr::Lam {
                    param: "x".into(),
                    param_ty: MlTy::Int,
                    ret_ty: MlTy::Int,
                    body: Box::new(MlExpr::Binop(
                        MlBinop::Add,
                        Box::new(MlExpr::Deref(Box::new(MlExpr::Var("r".into())))),
                        Box::new(MlExpr::Var("x".into())),
                    )),
                }),
                Box::new(MlExpr::Deref(Box::new(MlExpr::Var("r".into())))),
            )),
        ),
        // Case over a sum of sums.
        MlExpr::Case(
            Box::new(MlExpr::Inj {
                sum: MlTy::Sum(vec![MlTy::Int, MlTy::Int]),
                tag: 1,
                e: Box::new(MlExpr::Int(21)),
            }),
            vec![
                ("a".into(), MlExpr::Var("a".into())),
                (
                    "b".into(),
                    MlExpr::Binop(
                        MlBinop::Mul,
                        Box::new(MlExpr::Var("b".into())),
                        Box::new(MlExpr::Int(2)),
                    ),
                ),
            ],
        ),
    ];
    for body in programs {
        let m = module_of(body);
        let rw = compile_ml(&m).unwrap();
        check_module(&rw).unwrap();
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", rw).unwrap();
        rt.invoke(idx, "main", vec![]).unwrap();
    }
}
