//! The compile-once / run-many contract of the [`Engine`] →
//! [`Artifact`] → [`Instance`] API:
//!
//! * cache hits are **content-addressed** and byte-identical to a cold
//!   compile (same `.wasm` bytes, same artifact);
//! * N invocations through one long-lived [`Instance`] agree with N
//!   fresh one-shot [`Pipeline`] runs in differential mode;
//! * two instances of one artifact share no mutable state;
//! * no cached or instantiated path ever re-runs a static stage
//!   (observable through [`Timings`]);
//! * [`PipelineError::source`] chains every wrapped error kind;
//! * the concurrency contract: one `Engine` + one `InstancePool` shared
//!   by many threads keep the cache counters consistent and every agreed
//!   result equal to the sequential oracle; pool recycling (checkin →
//!   `reset`) rewinds guest state, host record/replay queues, *and*
//!   stateful host closures registered with a reset hook.

use std::error::Error as _;
use std::sync::atomic::{AtomicI32, AtomicU32, Ordering};
use std::sync::Arc;

use richwasm::error::{RuntimeError, TypeError};
use richwasm::syntax::{self, instr, FunType, Instr, NumInstr, NumType, Qual, Type, Value};
use richwasm_analyze::{AnalyzeError, Diagnostic, Pass as AnalysisPass, Severity};
use richwasm_bench::workloads::{counter_client, counter_library, stash_client, stash_module};
use richwasm_l3::L3Error;
use richwasm_lower::LowerError;
use richwasm_ml::MlError;
use richwasm_repro::engine::{Engine, Job, ModuleSet, PipelineError, PipelineErrorKind, Stage};
use richwasm_repro::pipeline::Pipeline;
use richwasm_repro::{HostSig, HostVal, HostValType};
use richwasm_wasm::exec::WasmTrap;
use richwasm_wasm::validate::ValidationError;

fn stash_set() -> ModuleSet {
    ModuleSet::new()
        .ml("ml", stash_module(false))
        .l3("l3", stash_client())
        .entry("l3")
}

fn counter_set() -> ModuleSet {
    ModuleSet::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
}

#[test]
fn cache_hit_returns_byte_identical_wasm() {
    // Two independent engines: two *cold* compiles must already agree
    // byte for byte (the static pipeline is deterministic, parallel
    // frontends notwithstanding).
    let a = Engine::new();
    let b = Engine::new();
    let cold_a = a.compile(&stash_set()).unwrap();
    let cold_b = b.compile(&stash_set()).unwrap();
    assert!(!cold_a.wasm_binaries().is_empty());
    assert_eq!(
        cold_a.wasm_binaries(),
        cold_b.wasm_binaries(),
        "cold compiles are deterministic"
    );
    assert_eq!(cold_a.key(), cold_b.key(), "content hash is stable");

    // A warm compile on engine `a` is a cache hit: the very same artifact
    // (pointer identity), hence trivially byte-identical `.wasm`.
    let warm = a.compile(&stash_set()).unwrap();
    assert!(warm.same_as(&cold_a), "hit returns the cached artifact");
    assert_eq!(warm.wasm_binaries(), cold_a.wasm_binaries());
    assert_eq!(a.cache_stats().misses, 1);
    assert_eq!(a.cache_stats().hits, 1);
    assert_eq!(a.cache_len(), 1);

    // Different content, different slot: the buggy stash never compiles,
    // and failures are not cached.
    let bad = ModuleSet::new().ml("ml", stash_module(true));
    assert!(a.compile(&bad).is_err());
    assert_eq!(a.cache_len(), 1, "failed compiles are not cached");
}

#[test]
fn instance_invocations_match_fresh_pipeline_runs() {
    // N invocations through ONE instance vs N one-shot Pipeline runs,
    // both in differential mode (so each side is additionally
    // cross-checked against its own lowering).
    const N: usize = 5;
    let engine = Engine::new();
    let mut instance = engine.instantiate(&stash_set()).unwrap();
    let through_instance: Vec<Option<i32>> = (0..N)
        .map(|_| instance.invoke_entry().expect("instance run").i32())
        .collect();

    let through_pipeline: Vec<Option<i32>> = (0..N)
        .map(|_| {
            Pipeline::new()
                .ml("ml", stash_module(false))
                .l3("l3", stash_client())
                .entry("l3")
                .run()
                .expect("one-shot run")
                .result
                .i32()
        })
        .collect();

    assert_eq!(through_instance, through_pipeline);
    assert_eq!(instance.invocations(), N as u64);
    // The engine compiled exactly once for all N instance invocations.
    assert_eq!(engine.cache_stats().misses, 1);
    // And no invocation ever re-ran a static stage.
    assert!(instance.timings().no_static_stages());
    assert!(instance.artifact().timings().of(Stage::Frontend) > std::time::Duration::ZERO);
}

#[test]
fn instances_of_one_artifact_do_not_share_state() {
    let engine = Engine::new();
    let artifact = engine.compile(&counter_set()).unwrap();
    let mut one = artifact.instantiate().unwrap();
    let mut two = artifact.instantiate().unwrap();

    // Interleave mutations: each instance keeps its own counter.
    one.invoke("app", "setup", vec![Value::i32(5)]).unwrap();
    two.invoke("app", "setup", vec![Value::i32(3)]).unwrap();
    one.invoke("app", "bump", vec![Value::Unit]).unwrap();
    one.invoke("app", "bump", vec![Value::Unit]).unwrap();
    two.invoke("app", "bump", vec![Value::Unit]).unwrap();

    let t1 = one.invoke("app", "total", vec![Value::Unit]).unwrap();
    let t2 = two.invoke("app", "total", vec![Value::Unit]).unwrap();
    assert_eq!(t1.i32(), Some(10), "instance one: 2 bumps × step 5");
    assert_eq!(t2.i32(), Some(3), "instance two: 1 bump × step 3");
}

#[test]
fn instance_reset_restores_fresh_state() {
    let engine = Engine::new();
    let mut inst = engine.instantiate(&counter_set()).unwrap();
    inst.invoke("app", "setup", vec![Value::i32(7)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(7)
    );

    // After reset the instance behaves like a fresh instantiation —
    // `setup` succeeds again (it would trap on a configured counter).
    inst.reset().unwrap();
    assert_eq!(inst.invocations(), 0);
    inst.invoke("app", "setup", vec![Value::i32(2)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(2)
    );
    assert!(inst.timings().no_static_stages());
}

#[test]
fn facade_and_engine_produce_identical_binaries() {
    // The one-shot Pipeline is a facade over the engine: same module set,
    // same bytes.
    let engine_bytes = Engine::new()
        .compile(&counter_set())
        .unwrap()
        .wasm_binaries()
        .to_vec();
    let facade = Pipeline::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
        .build()
        .unwrap();
    assert_eq!(engine_bytes, facade.report.binaries);
}

/// `add : [i32, i32] -> [i32]`, plus a `main` returning 7 so the set has
/// an entry for oracle runs.
fn arith_module() -> syntax::Module {
    let i32t = || Type::num(NumType::I32);
    syntax::Module {
        funcs: vec![
            syntax::Func::Defined {
                exports: vec!["add".into()],
                ty: FunType::mono(vec![i32t(), i32t()], vec![i32t()]),
                locals: vec![],
                body: vec![
                    Instr::GetLocal(0, Qual::Unr),
                    Instr::GetLocal(1, Qual::Unr),
                    Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
                ],
            },
            syntax::Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![i32t()]),
                locals: vec![],
                body: vec![Instr::i32(7)],
            },
        ],
        ..syntax::Module::default()
    }
}

/// A guest whose `main` calls `host.tick(0)` and returns the result.
fn ticker_module() -> syntax::Module {
    syntax::Module {
        funcs: vec![
            syntax::Func::Imported {
                exports: vec![],
                module: "host".into(),
                name: "tick".into(),
                ty: FunType::mono(vec![Type::num(NumType::I32)], vec![Type::num(NumType::I32)]),
            },
            syntax::Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body: vec![Instr::i32(0), Instr::Call(0, vec![])],
            },
        ],
        ..syntax::Module::default()
    }
}

// The headline concurrency stress: many threads share ONE engine and ONE
// pool, hammering the artifact cache and the instance pool at once. The
// cache counters must stay consistent (every compile is exactly one hit
// or one miss), every compile must resolve to the same content hash, and
// every agreed result must equal the sequential oracle.
#[test]
fn threaded_stress_shared_engine_cache_and_pool() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 4;
    const POOL: usize = 3;

    let engine = Engine::new();

    // Sequential oracle, through the same engine (1 compile).
    let mut oracle_inst = engine.instantiate(&stash_set()).unwrap();
    let oracle = oracle_inst.invoke_entry().unwrap().results().to_vec();
    assert!(!oracle.is_empty());
    drop(oracle_inst);

    // Shared pool (1 more compile — a cache hit).
    let artifact = engine.compile(&stash_set()).unwrap();
    let pool = artifact.pool(POOL).unwrap();
    let expected_key = artifact.key();

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    // Hammer the cache: every compile must come back as
                    // the same content-addressed artifact.
                    let a = engine.compile(&stash_set()).unwrap();
                    assert_eq!(a.key(), expected_key);
                    // Hammer the pool: checkout, invoke, compare to the
                    // oracle, checkin (drop).
                    let mut inst = pool.checkout();
                    let inv = inst.invoke_entry().unwrap();
                    assert_eq!(inv.results(), &oracle[..]);
                }
            });
        }
    });

    let stats = engine.cache_stats();
    let requests = (2 + THREADS * PER_THREAD) as u64;
    assert_eq!(
        stats.hits + stats.misses,
        requests,
        "every compile is exactly one hit or one miss: {stats:?}"
    );
    assert_eq!(stats.misses, 1, "one cold compile, all the rest cache hits");

    let pstats = pool.stats();
    assert_eq!(pstats.checkouts, (THREADS * PER_THREAD) as u64);
    assert_eq!(pstats.recycled, pstats.checkouts, "every checkin recycled");
    assert_eq!(pstats.lost, 0);
    assert_eq!(pool.idle(), POOL, "all instances returned");
}

// `Engine::invoke_parallel` must hand back outcomes in job order — here
// every job has distinct arguments, so a transposed result is visible —
// and agree with the sequential baseline.
#[test]
fn invoke_parallel_preserves_job_order_with_distinct_args() {
    let set = ModuleSet::new().richwasm("m", arith_module());
    let jobs: Vec<Job> = (0..24)
        .map(|i| Job::new("m", "add", vec![Value::i32(i), Value::i32(2 * i)]))
        .collect();

    let engine = Engine::new();
    let results = engine.invoke_parallel(&set, 4, &jobs).unwrap();
    assert_eq!(results.len(), jobs.len());
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            r.as_ref().unwrap().i32(),
            Some(3 * i as i32),
            "job {i} out of order or wrong"
        );
    }

    // Per-job failures stay per-job: an unknown export fails its slot,
    // the rest of the batch is unaffected.
    let mut jobs = jobs;
    jobs[5] = Job::new("m", "nope", vec![]);
    let results = engine.invoke_parallel(&set, 4, &jobs).unwrap();
    assert!(results[5].is_err());
    assert_eq!(results[6].as_ref().unwrap().i32(), Some(18));
}

// In differential mode the host closure runs once per invocation (the
// RichWasm backend records, the Wasm backend replays) — and the replay
// queues are per-instance, so this stays true when a batch fans out
// across 4 worker threads.
#[test]
fn parallel_batch_keeps_host_record_replay_per_instance() {
    let calls = Arc::new(AtomicU32::new(0));
    let counted = Arc::clone(&calls);
    let set = ModuleSet::new().richwasm("m", ticker_module()).host_fn(
        "host",
        "tick",
        HostSig::new([HostValType::I32], [HostValType::I32]),
        move |_args| {
            counted.fetch_add(1, Ordering::Relaxed);
            // Pure in its *result* (so parallel results are deterministic);
            // the side effect is what the test counts.
            Ok(vec![HostVal::I32(40)])
        },
    );

    const JOBS: usize = 20;
    let engine = Engine::new();
    let artifact = engine.compile(&set).unwrap();
    let jobs: Vec<Job> = (0..JOBS).map(|_| artifact.entry_job().unwrap()).collect();
    let pool = artifact.pool(4).unwrap();
    let results = pool.invoke_batch(4, &jobs);
    for r in &results {
        assert_eq!(r.as_ref().unwrap().i32(), Some(40));
    }
    assert_eq!(
        calls.load(Ordering::Relaxed),
        JOBS as u32,
        "host closure must run exactly once per invocation — a cross-instance \
         replay mixup would double-run or skip it"
    );
}

// Regression (PR 4): recycling must rewind stateful host closures too.
// A counter host registered with a reset hook starts from scratch after
// `Instance::reset` — and therefore after every pool checkin.
#[test]
fn reset_rewinds_stateful_hosts_via_hook() {
    let counter = Arc::new(AtomicI32::new(0));
    let bump = Arc::clone(&counter);
    let rewind = Arc::clone(&counter);
    let set = ModuleSet::new()
        .richwasm("m", ticker_module())
        .host_fn_with_reset(
            "host",
            "tick",
            HostSig::new([HostValType::I32], [HostValType::I32]),
            move |_args| Ok(vec![HostVal::I32(bump.fetch_add(1, Ordering::SeqCst) + 1)]),
            move || rewind.store(0, Ordering::SeqCst),
        );

    let engine = Engine::new();
    let mut inst = engine.instantiate(&set).unwrap();
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(1));
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(2));

    inst.reset().unwrap();
    assert_eq!(
        inst.invoke_entry().unwrap().i32(),
        Some(1),
        "reset must rewind host state through the hook"
    );
    drop(inst);

    // The same invariant through pool recycling: capacity 1, so the
    // second checkout observes exactly what checkin left behind.
    counter.store(0, Ordering::SeqCst);
    let pool = engine.compile(&set).unwrap().pool(1).unwrap();
    {
        let mut one = pool.checkout();
        assert_eq!(one.invoke_entry().unwrap().i32(), Some(1));
        assert_eq!(one.invoke_entry().unwrap().i32(), Some(2));
    }
    let mut two = pool.checkout();
    assert_eq!(
        two.invoke_entry().unwrap().i32(),
        Some(1),
        "a recycled pooled instance must not observe the previous checkout's host state"
    );
}

#[test]
fn error_sources_chain_every_kind() {
    // `PipelineError::source()` must expose the wrapped layer error for
    // every kind that has one — the error-reporting contract downstream
    // services rely on (anyhow-style chain printing).
    let chained: Vec<(PipelineErrorKind, bool)> = vec![
        (PipelineErrorKind::Ml(MlError::Type("t".into())), true),
        (PipelineErrorKind::L3(L3Error::Linearity("l".into())), true),
        (
            PipelineErrorKind::Type(TypeError::LinkError { reason: "r".into() }),
            true,
        ),
        (
            PipelineErrorKind::Lower(LowerError::Internal("i".into())),
            true,
        ),
        (
            PipelineErrorKind::Validation(ValidationError("v".into())),
            true,
        ),
        (
            PipelineErrorKind::Runtime(RuntimeError::Trap { reason: "t".into() }),
            true,
        ),
        (PipelineErrorKind::Wasm(WasmTrap("w".into())), true),
        (
            PipelineErrorKind::Analysis(AnalyzeError {
                diagnostics: vec![Diagnostic {
                    func: 0,
                    offset: 0,
                    pass: AnalysisPass::Verify,
                    severity: Severity::Deny,
                    message: "checker disagreement".into(),
                }],
            }),
            true,
        ),
        (
            PipelineErrorKind::Decode(richwasm_wasm::decode::decode_module(b"junk").unwrap_err()),
            true,
        ),
        (PipelineErrorKind::Artifact("stale".into()), false),
        (
            PipelineErrorKind::Mismatch {
                richwasm: "a".into(),
                wasm: "b".into(),
            },
            false,
        ),
        (PipelineErrorKind::Unsupported("u".into()), false),
    ];
    for (kind, has_source) in chained {
        let label = format!("{kind:?}");
        let err = PipelineError {
            stage: Stage::Execute,
            module: None,
            kind,
        };
        assert_eq!(
            err.source().is_some(),
            has_source,
            "source() chain for {label}"
        );
        if let Some(src) = err.source() {
            // The chained error's Display is part of the wrapper's
            // message, so chain printers do not lose information.
            assert!(
                err.to_string().contains(&src.to_string()),
                "wrapper message embeds the source: {err}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// PR 5: the decoder + persistent artifact cache.

use std::path::PathBuf;

use richwasm_bench::workloads::{arith_chain, churn, ml_tower};
use richwasm_repro::engine::{EngineConfig, Exec};
use richwasm_wasm::ast as w;
use richwasm_wasm::binary::encode_module;

/// A fresh, empty scratch directory under the system temp dir.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "richwasm_engine_test_{}_{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A standalone Wasm module (no RichWasm pedigree at all): `main`
/// returns 40 + 2 through a helper call — what an *external* producer
/// would hand `Engine::load_wasm`.
fn external_wasm_bytes() -> Vec<u8> {
    let mut m = w::Module::default();
    let t = m.intern_type(w::FuncType {
        params: vec![],
        results: vec![w::ValType::I32],
    });
    m.funcs.push(w::FuncDef {
        type_idx: t,
        locals: vec![],
        body: vec![w::WInstr::I32Const(40)],
    });
    m.funcs.push(w::FuncDef {
        type_idx: t,
        locals: vec![],
        body: vec![
            w::WInstr::Call(0),
            w::WInstr::I32Const(2),
            w::WInstr::IBin(w::Width::W32, w::IBinOp::Add),
        ],
    });
    m.exports.push(w::Export {
        name: "main".into(),
        kind: w::ExportKind::Func(1),
    });
    encode_module(&m)
}

// The differential-load pin (E1–E5): for every scenario, re-decoding the
// artifact's `.wasm` bytes through `ModuleSet::wasm_module` and running
// them Wasm-only must reproduce exactly the results the in-memory
// differential pipeline agreed on.
#[test]
fn differential_load_reproduces_agreed_results() {
    let scenarios: Vec<(&str, ModuleSet, Vec<Job>)> = vec![
        (
            "e1_interop",
            stash_set(),
            vec![Job::new("l3", "main", vec![])],
        ),
        (
            "e2_counter",
            counter_set(),
            vec![
                Job::new("app", "setup", vec![Value::i32(5)]),
                Job::new("app", "bump", vec![Value::Unit]),
                Job::new("app", "bump", vec![Value::Unit]),
                Job::new("app", "total", vec![Value::Unit]),
            ],
        ),
        (
            "e3_arith",
            ModuleSet::new().richwasm("chain", arith_chain(10)),
            vec![Job::new("chain", "main", vec![Value::i32(7)])],
        ),
        (
            "e4_compilers",
            ModuleSet::new().ml("tower", ml_tower(3)),
            vec![Job::new("tower", "main", vec![])],
        ),
        (
            "e5_lowering",
            ModuleSet::new()
                .richwasm("chain", arith_chain(6))
                .richwasm("churn", churn(5)),
            vec![
                Job::new("chain", "main", vec![Value::i32(3)]),
                Job::new("churn", "main", vec![]),
            ],
        ),
    ];

    for (label, set, jobs) in scenarios {
        // In-memory differential run: both backends must agree, and the
        // agreed scalar view is the oracle.
        let engine = Engine::new();
        let artifact = engine.compile(&set).unwrap();
        let mut inst = artifact.instantiate().unwrap();
        let oracle: Vec<Vec<HostVal>> = jobs
            .iter()
            .map(|j| {
                inst.invoke(&j.module, &j.func, j.args.clone())
                    .unwrap_or_else(|e| panic!("{label}: differential run failed: {e}"))
                    .results()
                    .to_vec()
            })
            .collect();

        // Re-enter through the decoder: the artifact's bytes, byte for
        // byte, as a wasm-only module set (same names, same order).
        let mut reloaded = ModuleSet::new();
        for (name, bytes) in artifact.wasm_binaries() {
            reloaded = reloaded.wasm_module(name, bytes.clone());
        }
        let wasm_engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
        let decoded_artifact = wasm_engine
            .compile(&reloaded)
            .unwrap_or_else(|e| panic!("{label}: decode-compile failed: {e}"));
        // Decoded bytes re-encode canonically: byte-identical artifact.
        assert_eq!(
            decoded_artifact.wasm_binaries(),
            artifact.wasm_binaries(),
            "{label}: re-encoded bytes diverge"
        );
        let mut winst = decoded_artifact.instantiate().unwrap();
        for (j, expect) in jobs.iter().zip(&oracle) {
            let got = winst
                .invoke(&j.module, &j.func, j.args.clone())
                .unwrap_or_else(|e| panic!("{label}: wasm-only run failed: {e}"));
            assert_eq!(
                got.results(),
                &expect[..],
                "{label}: {}/{} disagrees after decode",
                j.module,
                j.func
            );
        }
    }
}

#[test]
fn load_wasm_runs_external_modules_and_rejects_differential() {
    let bytes = external_wasm_bytes();

    let wasm_engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
    let artifact = wasm_engine.load_wasm(bytes.clone()).unwrap();
    let mut inst = artifact.instantiate().unwrap();
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(42));
    assert!(inst.timings().no_static_stages());

    // Differential (default) and Interp modes must reject cleanly at the
    // decode stage — no trap, no half-configured instance.
    for config in [EngineConfig::new(), EngineConfig::new().interp_only()] {
        let engine = Engine::with_config(config);
        let err = engine.load_wasm(bytes.clone()).unwrap_err();
        assert_eq!(err.stage, Stage::Decode);
        assert!(
            matches!(err.kind, PipelineErrorKind::Unsupported(_)),
            "{err}"
        );
    }

    // Corrupt bytes fail with a structured decode error naming the stage.
    let mut bad = bytes;
    let len = bad.len();
    bad.truncate(len - 3);
    let err = wasm_engine.load_wasm(bad).unwrap_err();
    assert_eq!(err.stage, Stage::Decode);
    assert!(matches!(err.kind, PipelineErrorKind::Decode(_)), "{err}");
}

#[test]
fn persistent_cache_survives_engine_restart() {
    let dir = scratch_dir("disk_hit");
    let config = || EngineConfig::new().exec(Exec::Wasm).cache_dir(&dir);

    // Engine A: cold compile, written to disk.
    let a = Engine::with_config(config());
    let cold = a.compile(&stash_set()).unwrap();
    let mut cold_inst = cold.instantiate().unwrap();
    let cold_result = cold_inst.invoke_entry().unwrap().results().to_vec();
    assert_eq!(a.cache_stats().misses, 1);
    assert_eq!(a.cache_stats().disk_hits, 0);

    // Engine B — a "process restart": same directory, fresh in-memory
    // cache. The compile is a disk hit: byte-identical artifact, same
    // key, and *no static stage ran* (the acceptance invariant).
    let b = Engine::with_config(config());
    let warm = b.compile(&stash_set()).unwrap();
    let stats = b.cache_stats();
    assert_eq!(stats.disk_hits, 1, "{stats:?}");
    assert_eq!(stats.misses, 0, "{stats:?}");
    assert_eq!(stats.disk_misses, 0, "{stats:?}");
    assert_eq!(warm.key(), cold.key());
    assert_eq!(warm.wasm_binaries(), cold.wasm_binaries());
    assert!(
        warm.timings().no_static_stages(),
        "disk hit re-ran a static stage: {}",
        warm.timings()
    );
    assert_eq!(warm.entry(), cold.entry());

    // And it actually runs, agreeing with the cold artifact.
    let mut warm_inst = warm.instantiate().unwrap();
    assert_eq!(
        warm_inst.invoke_entry().unwrap().results(),
        &cold_result[..]
    );
    assert!(warm_inst.timings().no_static_stages());

    // A third engine hits the in-memory cache of B? No — fresh engine,
    // disk again; its *second* compile is the memory hit.
    let c = Engine::with_config(config());
    c.compile(&stash_set()).unwrap();
    c.compile(&stash_set()).unwrap();
    let stats = c.cache_stats();
    assert_eq!((stats.disk_hits, stats.hits, stats.misses), (1, 1, 0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entries_fall_back_to_cold_compile() {
    let dir = scratch_dir("corrupt");
    let config = || EngineConfig::new().exec(Exec::Wasm).cache_dir(&dir);

    let a = Engine::with_config(config());
    let cold = a.compile(&stash_set()).unwrap();
    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "one hash-keyed cache file");

    // Flip bytes in the middle of the stored artifact: the checksum (or
    // the module re-validation) must reject it, the compile must fall
    // back to cold — recorded as both a disk miss and a compile miss —
    // and the entry must be rewritten intact.
    let path = &entries[0];
    let mut bytes = std::fs::read(path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    bytes[mid + 1] ^= 0xff;
    std::fs::write(path, &bytes).unwrap();

    let b = Engine::with_config(config());
    let refreshed = b.compile(&stash_set()).unwrap();
    let stats = b.cache_stats();
    assert_eq!(stats.disk_misses, 1, "{stats:?}");
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.disk_hits, 0, "{stats:?}");
    assert_eq!(refreshed.wasm_binaries(), cold.wasm_binaries());

    // The rewrite healed the entry: the next fresh engine disk-hits.
    let c = Engine::with_config(config());
    c.compile(&stash_set()).unwrap();
    assert_eq!(c.cache_stats().disk_hits, 1);

    // Total garbage (wrong magic) is also just a recorded miss.
    std::fs::write(path, b"definitely not an artifact").unwrap();
    let d = Engine::with_config(config());
    d.compile(&stash_set()).unwrap();
    assert_eq!(d.cache_stats().disk_misses, 1);
    assert_eq!(d.cache_stats().misses, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_serialize_round_trips_and_rejects_tampering() {
    let engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
    let artifact = engine.compile(&counter_set()).unwrap();
    let bytes = artifact
        .serialize()
        .expect("Exec::Wasm artifact serializes");

    let loaded = richwasm_repro::Artifact::deserialize(&bytes).unwrap();
    assert_eq!(loaded.key(), artifact.key());
    assert_eq!(loaded.entry(), artifact.entry());
    assert_eq!(loaded.entry_func(), artifact.entry_func());
    assert_eq!(loaded.wasm_binaries(), artifact.wasm_binaries());
    assert!(loaded.timings().no_static_stages());

    // The loaded artifact serves real traffic.
    let mut inst = loaded.instantiate().unwrap();
    inst.invoke("app", "setup", vec![Value::i32(4)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(4)
    );

    // Any single-byte corruption is caught (checksum, or strict decode
    // of the embedded modules for a byte the checksum covers... the
    // checksum covers everything, so: always caught).
    for idx in [0, 7, bytes.len() / 2, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[idx] ^= 0x01;
        assert!(
            richwasm_repro::Artifact::deserialize(&bad).is_err(),
            "corruption at byte {idx} accepted"
        );
    }
    assert!(richwasm_repro::Artifact::deserialize(&bytes[..20]).is_err());

    // Non-persistable artifacts say so instead of lying on disk:
    // differential artifacts need sources, host closures live in memory.
    let differential = Engine::new().compile(&counter_set()).unwrap();
    assert!(differential.serialize().is_none());
    let hosted = Engine::with_config(EngineConfig::new().exec(Exec::Wasm))
        .compile(&ModuleSet::new().richwasm("m", ticker_module()).host_fn(
            "host",
            "tick",
            HostSig::new([HostValType::I32], [HostValType::I32]),
            |_| Ok(vec![HostVal::I32(1)]),
        ))
        .unwrap();
    assert!(hosted.serialize().is_none());
}

// PR 10: the flat-bytecode tier — `.rwart` v3 persistence, the
// tree-walker oracle (`WasmTier::Check`), and stale-format fallbacks.

/// The engine-side FNV-1a-128 the artifact checksum uses, replicated so
/// tests can re-seal deliberately tampered payloads and reach the
/// *post*-checksum fallback paths.
fn fnv128(bytes: &[u8]) -> u128 {
    let mut h: u128 = 0x6c62272e07bb014262b821756295c58d;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(0x0000000001000000000000000000013b);
    }
    h
}

#[test]
fn bytecode_artifact_v3_round_trips_byte_exact() {
    let engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
    let artifact = engine.compile(&counter_set()).unwrap();
    let bytes = artifact.serialize().expect("v3 artifact serializes");
    assert_eq!(&bytes[..6], b"RWART\x03", "v3 magic");

    // deserialize ∘ serialize is byte-identical: the embedded bytecode
    // section survives the round trip exactly.
    let loaded = richwasm_repro::Artifact::deserialize(&bytes).unwrap();
    let again = loaded.serialize().expect("loaded artifact re-serializes");
    assert_eq!(bytes, again, "serialize∘deserialize∘serialize must fix");

    // And the loaded artifact executes on the bytecode tier.
    assert_eq!(
        loaded.config().wasm_tier,
        richwasm_repro::WasmTier::Bytecode
    );
    let mut inst = loaded.instantiate().unwrap();
    inst.invoke("app", "setup", vec![Value::i32(3)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(6)
    );
}

#[test]
fn v2_cache_files_fall_back_to_a_cold_recompile() {
    let dir = scratch_dir("v2_fallback");
    let config = || EngineConfig::new().exec(Exec::Wasm).cache_dir(&dir);

    // Warm the disk cache, then rewrite the entry as a v2-era file:
    // same payload, old magic, checksum re-sealed (so only the version
    // byte distinguishes it from a genuine stale-format file).
    let a = Engine::with_config(config());
    let artifact = a.compile(&counter_set()).unwrap();
    let path = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "rwart"))
        .expect("cache entry written");
    let mut v2 = std::fs::read(&path).unwrap();
    v2[5] = 0x02;
    let body_len = v2.len() - 16;
    let sum = fnv128(&v2[..body_len]).to_le_bytes();
    v2[body_len..].copy_from_slice(&sum);
    std::fs::write(&path, &v2).unwrap();
    assert!(
        richwasm_repro::Artifact::deserialize(&v2).is_err(),
        "a v2 file must not deserialize as v3"
    );

    // A fresh engine sees the stale file, counts a disk miss, recompiles
    // cold, and still produces the identical artifact.
    let b = Engine::with_config(config());
    let recompiled = b.compile(&counter_set()).unwrap();
    assert_eq!(b.cache_stats().disk_misses, 1, "stale v2 file is a miss");
    assert_eq!(recompiled.key(), artifact.key());
    assert_eq!(recompiled.wasm_binaries(), artifact.wasm_binaries());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_bytecode_payload_recompiles_without_a_cold_compile() {
    // Bump the self-versioned bytecode payload inside a valid v3 file
    // (re-sealing the checksum): deserialize must succeed by
    // recompiling the bytecode from the still-good `.wasm` bytes.
    let engine = Engine::with_config(EngineConfig::new().exec(Exec::Wasm));
    let artifact = engine.compile(&counter_set()).unwrap();
    let bytes = artifact.serialize().unwrap();
    let good = richwasm_repro::Artifact::deserialize(&bytes).unwrap();

    // Each bytecode payload begins with its u16 format version. Rather
    // than parse section offsets, locate each payload by re-encoding the
    // known-good bytecode and searching for the exact bytes.
    let mut stale = bytes;
    let body_len = stale.len() - 16;
    let n = artifact.wasm_binaries().len();
    let mut patched = 0;
    use richwasm_wasm::compile::{compile_module, encode_compiled};
    for (_, wm) in good.lowered_modules() {
        let mut payload = Vec::new();
        encode_compiled(&compile_module(wm), &mut payload);
        if let Some(pos) = stale[..body_len]
            .windows(payload.len())
            .position(|w| w == payload.as_slice())
        {
            // u16 LE version is the payload's first two bytes.
            stale[pos] = 0xFF;
            stale[pos + 1] = 0xFF;
            patched += 1;
        }
    }
    assert_eq!(patched, n, "every bytecode payload located and staled");
    let sum = fnv128(&stale[..body_len]).to_le_bytes();
    stale[body_len..].copy_from_slice(&sum);

    let fell_back = richwasm_repro::Artifact::deserialize(&stale)
        .expect("stale bytecode must fall back to recompile, not fail");
    let mut inst = fell_back.instantiate().unwrap();
    inst.invoke("app", "setup", vec![Value::i32(2)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(2)
    );
}

#[test]
fn check_tier_pins_bytecode_against_the_tree_walker() {
    use richwasm_repro::WasmTier;

    // Host-free sets run with the oracle cross-checking every invoke.
    let engine = Engine::with_config(
        EngineConfig::new()
            .exec(Exec::Wasm)
            .wasm_tier(WasmTier::Check),
    );
    let mut inst = engine.instantiate(&counter_set()).unwrap();
    assert!(inst.wasm_oracle.is_some(), "Check tier builds the oracle");
    inst.invoke("app", "setup", vec![Value::i32(5)]).unwrap();
    for _ in 0..10 {
        inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    }
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(50)
    );

    // Reset rewinds the oracle with the main store.
    inst.reset().unwrap();
    inst.invoke("app", "setup", vec![Value::i32(1)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(1)
    );

    // Tier choice is part of the fingerprint, hence the cache key.
    let tiered = EngineConfig::new().wasm_tier(WasmTier::Check);
    assert_ne!(
        tiered.fingerprint(),
        EngineConfig::new().fingerprint(),
        "tier must contribute to the configuration fingerprint"
    );

    // With host functions, Check refuses instead of doubling effects.
    let hosted = ModuleSet::new().richwasm("m", ticker_module()).host_fn(
        "host",
        "tick",
        HostSig::new([HostValType::I32], [HostValType::I32]),
        |_| Ok(vec![HostVal::I32(1)]),
    );
    let err = Engine::with_config(
        EngineConfig::new()
            .exec(Exec::Wasm)
            .wasm_tier(WasmTier::Check),
    )
    .instantiate(&hosted)
    .expect_err("Check tier with hosts must refuse");
    assert!(
        matches!(err.kind, PipelineErrorKind::Unsupported(_)),
        "{err}"
    );
}

#[test]
fn tree_tier_still_serves_and_caches_separately() {
    use richwasm_repro::WasmTier;
    let tree = Engine::with_config(EngineConfig::new().wasm_tier(WasmTier::Tree));
    let mut inst = tree.instantiate(&counter_set()).unwrap();
    inst.invoke("app", "setup", vec![Value::i32(4)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(4)
    );
    // Tree-tier artifacts carry no bytecode section but still serialize.
    let wasm_tree = Engine::with_config(
        EngineConfig::new()
            .exec(Exec::Wasm)
            .wasm_tier(WasmTier::Tree),
    );
    let artifact = wasm_tree.compile(&counter_set()).unwrap();
    let bytes = artifact.serialize().expect("tree-tier artifact serializes");
    let loaded = richwasm_repro::Artifact::deserialize(&bytes).unwrap();
    assert_eq!(loaded.config().wasm_tier, WasmTier::Tree);
    let mut inst = loaded.instantiate().unwrap();
    inst.invoke("app", "setup", vec![Value::i32(2)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(2)
    );
}

// PR 6: pool contention must be observable. `checkout_timeout` bounds
// the wait and both the bounded and unbounded paths account their
// blocked time in `PoolStats`.
#[test]
fn pool_checkout_timeout_bounds_and_accounts_the_wait() {
    use std::time::{Duration, Instant};

    let artifact = Engine::new().compile(&stash_set()).unwrap();
    let pool = artifact.pool(1).unwrap();

    // Uncontended: immediate success, no blocked wait recorded.
    let held = pool.checkout_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(pool.stats().blocked_waits, 0);

    // Contended: the only instance is out, so the bounded wait elapses
    // and returns None — and the wait is visible in the stats.
    let start = Instant::now();
    assert!(pool.checkout_timeout(Duration::from_millis(30)).is_none());
    let waited = start.elapsed();
    assert!(
        waited >= Duration::from_millis(30),
        "returned early: {waited:?}"
    );
    let stats = pool.stats();
    assert_eq!(stats.blocked_waits, 1);
    assert!(
        stats.blocked_wait_time() >= Duration::from_millis(25),
        "blocked time unaccounted: {stats}"
    );

    // Checkin wakes a bounded waiter just like an unbounded one.
    let pool2 = &pool;
    std::thread::scope(|scope| {
        let waiter = scope.spawn(move || {
            pool2
                .checkout_timeout(Duration::from_secs(30))
                .map(|mut inst| inst.invoke("l3", "main", vec![]).is_ok())
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(held);
        assert_eq!(waiter.join().unwrap(), Some(true));
    });
    let stats = pool.stats();
    assert_eq!(stats.checkouts, 2, "timed-out attempts are not checkouts");
    assert_eq!(stats.blocked_waits, 2, "{stats}");
}
