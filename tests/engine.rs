//! The compile-once / run-many contract of the [`Engine`] →
//! [`Artifact`] → [`Instance`] API:
//!
//! * cache hits are **content-addressed** and byte-identical to a cold
//!   compile (same `.wasm` bytes, same artifact);
//! * N invocations through one long-lived [`Instance`] agree with N
//!   fresh one-shot [`Pipeline`] runs in differential mode;
//! * two instances of one artifact share no mutable state;
//! * no cached or instantiated path ever re-runs a static stage
//!   (observable through [`Timings`]);
//! * [`PipelineError::source`] chains every wrapped error kind.

use std::error::Error as _;

use richwasm::error::{RuntimeError, TypeError};
use richwasm::syntax::Value;
use richwasm_bench::workloads::{counter_client, counter_library, stash_client, stash_module};
use richwasm_l3::L3Error;
use richwasm_lower::LowerError;
use richwasm_ml::MlError;
use richwasm_repro::engine::{Engine, ModuleSet, PipelineError, PipelineErrorKind, Stage};
use richwasm_repro::pipeline::Pipeline;
use richwasm_wasm::exec::WasmTrap;
use richwasm_wasm::validate::ValidationError;

fn stash_set() -> ModuleSet {
    ModuleSet::new()
        .ml("ml", stash_module(false))
        .l3("l3", stash_client())
        .entry("l3")
}

fn counter_set() -> ModuleSet {
    ModuleSet::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
}

#[test]
fn cache_hit_returns_byte_identical_wasm() {
    // Two independent engines: two *cold* compiles must already agree
    // byte for byte (the static pipeline is deterministic, parallel
    // frontends notwithstanding).
    let a = Engine::new();
    let b = Engine::new();
    let cold_a = a.compile(&stash_set()).unwrap();
    let cold_b = b.compile(&stash_set()).unwrap();
    assert!(!cold_a.wasm_binaries().is_empty());
    assert_eq!(
        cold_a.wasm_binaries(),
        cold_b.wasm_binaries(),
        "cold compiles are deterministic"
    );
    assert_eq!(cold_a.key(), cold_b.key(), "content hash is stable");

    // A warm compile on engine `a` is a cache hit: the very same artifact
    // (pointer identity), hence trivially byte-identical `.wasm`.
    let warm = a.compile(&stash_set()).unwrap();
    assert!(warm.same_as(&cold_a), "hit returns the cached artifact");
    assert_eq!(warm.wasm_binaries(), cold_a.wasm_binaries());
    assert_eq!(a.cache_stats().misses, 1);
    assert_eq!(a.cache_stats().hits, 1);
    assert_eq!(a.cache_len(), 1);

    // Different content, different slot: the buggy stash never compiles,
    // and failures are not cached.
    let bad = ModuleSet::new().ml("ml", stash_module(true));
    assert!(a.compile(&bad).is_err());
    assert_eq!(a.cache_len(), 1, "failed compiles are not cached");
}

#[test]
fn instance_invocations_match_fresh_pipeline_runs() {
    // N invocations through ONE instance vs N one-shot Pipeline runs,
    // both in differential mode (so each side is additionally
    // cross-checked against its own lowering).
    const N: usize = 5;
    let engine = Engine::new();
    let mut instance = engine.instantiate(&stash_set()).unwrap();
    let through_instance: Vec<Option<i32>> = (0..N)
        .map(|_| instance.invoke_entry().expect("instance run").i32())
        .collect();

    let through_pipeline: Vec<Option<i32>> = (0..N)
        .map(|_| {
            Pipeline::new()
                .ml("ml", stash_module(false))
                .l3("l3", stash_client())
                .entry("l3")
                .run()
                .expect("one-shot run")
                .result
                .i32()
        })
        .collect();

    assert_eq!(through_instance, through_pipeline);
    assert_eq!(instance.invocations(), N as u64);
    // The engine compiled exactly once for all N instance invocations.
    assert_eq!(engine.cache_stats().misses, 1);
    // And no invocation ever re-ran a static stage.
    assert!(instance.timings().no_static_stages());
    assert!(instance.artifact().timings().of(Stage::Frontend) > std::time::Duration::ZERO);
}

#[test]
fn instances_of_one_artifact_do_not_share_state() {
    let engine = Engine::new();
    let artifact = engine.compile(&counter_set()).unwrap();
    let mut one = artifact.instantiate().unwrap();
    let mut two = artifact.instantiate().unwrap();

    // Interleave mutations: each instance keeps its own counter.
    one.invoke("app", "setup", vec![Value::i32(5)]).unwrap();
    two.invoke("app", "setup", vec![Value::i32(3)]).unwrap();
    one.invoke("app", "bump", vec![Value::Unit]).unwrap();
    one.invoke("app", "bump", vec![Value::Unit]).unwrap();
    two.invoke("app", "bump", vec![Value::Unit]).unwrap();

    let t1 = one.invoke("app", "total", vec![Value::Unit]).unwrap();
    let t2 = two.invoke("app", "total", vec![Value::Unit]).unwrap();
    assert_eq!(t1.i32(), Some(10), "instance one: 2 bumps × step 5");
    assert_eq!(t2.i32(), Some(3), "instance two: 1 bump × step 3");
}

#[test]
fn instance_reset_restores_fresh_state() {
    let engine = Engine::new();
    let mut inst = engine.instantiate(&counter_set()).unwrap();
    inst.invoke("app", "setup", vec![Value::i32(7)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(7)
    );

    // After reset the instance behaves like a fresh instantiation —
    // `setup` succeeds again (it would trap on a configured counter).
    inst.reset().unwrap();
    assert_eq!(inst.invocations(), 0);
    inst.invoke("app", "setup", vec![Value::i32(2)]).unwrap();
    inst.invoke("app", "bump", vec![Value::Unit]).unwrap();
    assert_eq!(
        inst.invoke("app", "total", vec![Value::Unit])
            .unwrap()
            .i32(),
        Some(2)
    );
    assert!(inst.timings().no_static_stages());
}

#[test]
fn facade_and_engine_produce_identical_binaries() {
    // The one-shot Pipeline is a facade over the engine: same module set,
    // same bytes.
    let engine_bytes = Engine::new()
        .compile(&counter_set())
        .unwrap()
        .wasm_binaries()
        .to_vec();
    let facade = Pipeline::new()
        .l3("gfx", counter_library())
        .ml("app", counter_client())
        .build()
        .unwrap();
    assert_eq!(engine_bytes, facade.report.binaries);
}

#[test]
fn error_sources_chain_every_kind() {
    // `PipelineError::source()` must expose the wrapped layer error for
    // every kind that has one — the error-reporting contract downstream
    // services rely on (anyhow-style chain printing).
    let chained: Vec<(PipelineErrorKind, bool)> = vec![
        (PipelineErrorKind::Ml(MlError::Type("t".into())), true),
        (PipelineErrorKind::L3(L3Error::Linearity("l".into())), true),
        (
            PipelineErrorKind::Type(TypeError::LinkError { reason: "r".into() }),
            true,
        ),
        (
            PipelineErrorKind::Lower(LowerError::Internal("i".into())),
            true,
        ),
        (
            PipelineErrorKind::Validation(ValidationError("v".into())),
            true,
        ),
        (
            PipelineErrorKind::Runtime(RuntimeError::Trap { reason: "t".into() }),
            true,
        ),
        (PipelineErrorKind::Wasm(WasmTrap("w".into())), true),
        (
            PipelineErrorKind::Mismatch {
                richwasm: "a".into(),
                wasm: "b".into(),
            },
            false,
        ),
        (PipelineErrorKind::Unsupported("u".into()), false),
    ];
    for (kind, has_source) in chained {
        let label = format!("{kind:?}");
        let err = PipelineError {
            stage: Stage::Execute,
            module: None,
            kind,
        };
        assert_eq!(
            err.source().is_some(),
            has_source,
            "source() chain for {label}"
        );
        if let Some(src) = err.source() {
            // The chained error's Display is part of the wrapper's
            // message, so chain printers do not lose information.
            assert!(
                err.to_string().contains(&src.to_string()),
                "wrapper message embeds the source: {err}"
            );
        }
    }
}
