//! Golden static-analysis runs over the E1–E12 scenario module sets
//! (DESIGN.md §11): on every checker-accepted program the analyze stage
//! must produce **zero `Deny` findings** — the independent re-verifier
//! agrees with `validate.rs` on every lowered module — and the cached
//! fuel-cost summary must be a usable, sound lower bound for the entry
//! export.

use richwasm_analyze::{reverify_module, Severity};
use richwasm_bench::workloads::{
    arith_chain, churn, counter_client, counter_library, ml_tower, stash_client, stash_module,
};
use richwasm_repro::engine::{Analysis, Engine, EngineConfig, ModuleSet};
use richwasm_repro::Pipeline;

/// Every scenario module set the test-suite scenarios (E1–E12) compile,
/// under its scenario label.
fn scenario_sets() -> Vec<(&'static str, ModuleSet)> {
    vec![
        (
            "e1_interop",
            ModuleSet::new()
                .ml("ml", stash_module(false))
                .l3("l3", stash_client())
                .entry("l3"),
        ),
        (
            "e2_counter",
            ModuleSet::new()
                .l3("gfx", counter_library())
                .ml("app", counter_client())
                .entry("app"),
        ),
        ("e4_tower", ModuleSet::new().ml("tower", ml_tower(4))),
        (
            "e5_chain",
            ModuleSet::new().richwasm("chain", arith_chain(64)),
        ),
        ("e12_churn", ModuleSet::new().richwasm("m", churn(50))),
    ]
}

#[test]
fn checker_accepted_scenarios_have_zero_deny_findings() {
    let engine = Engine::new();
    for (label, set) in scenario_sets() {
        let artifact = engine.compile(&set).unwrap();
        assert!(
            !artifact.analysis().is_empty(),
            "{label}: differential compile lowers to Wasm, so analysis must run"
        );
        assert_eq!(
            artifact.analysis().len(),
            artifact.lowered_modules().len(),
            "{label}: one report per lowered module"
        );
        for (name, report) in artifact.analysis() {
            let deny: Vec<_> = report
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Deny)
                .collect();
            assert!(
                deny.is_empty(),
                "{label}/{name}: Deny finding on a checker-accepted module: {deny:?}"
            );
        }
    }
}

#[test]
fn reverifier_accepts_every_lowered_scenario_module() {
    let engine = Engine::new();
    for (label, set) in scenario_sets() {
        let artifact = engine.compile(&set).unwrap();
        for (name, wm) in artifact.lowered_modules() {
            reverify_module(wm).unwrap_or_else(|e| {
                panic!("{label}/{name}: independent re-verifier rejected a validated module: {e}")
            });
        }
    }
}

#[test]
fn deny_policy_compiles_every_scenario() {
    // `Analysis::Deny` is the strict gate: it must not reject any
    // checker-accepted scenario program.
    let engine = Engine::with_config(EngineConfig::new().analysis(Analysis::Deny));
    for (label, set) in scenario_sets() {
        engine
            .compile(&set)
            .unwrap_or_else(|e| panic!("{label}: Deny-level analysis rejected the build: {e}"));
    }
}

#[test]
fn cost_reports_cover_every_function_with_sound_bounds() {
    let engine = Engine::new();
    for (label, set) in scenario_sets() {
        let artifact = engine.compile(&set).unwrap();
        for ((name, report), (_, wm)) in artifact.analysis().iter().zip(artifact.lowered_modules())
        {
            assert_eq!(
                report.cost.funcs.len(),
                wm.funcs.len(),
                "{label}/{name}: one cost summary per defined function"
            );
            for fc in &report.cost.funcs {
                assert!(fc.min_steps >= 1, "{label}/{name}: every call costs a step");
                if let richwasm_analyze::Bound::Finite(max) = fc.max_steps {
                    assert!(
                        fc.min_steps <= max,
                        "{label}/{name}: min {} exceeds max {max}",
                        fc.min_steps
                    );
                }
            }
        }
    }
}

#[test]
fn entry_min_steps_is_a_true_interpreter_lower_bound() {
    // The serving-layer contract end to end: the cached static minimum
    // for churn's entry must under-approximate the metered Wasm
    // interpreter — a budget of exactly `min - 1` exhausts, and a
    // generous budget completes.
    let engine = Engine::new();
    let artifact = engine
        .compile(&ModuleSet::new().richwasm("m", churn(25)))
        .unwrap();
    let min = artifact
        .static_min_steps("m", "main")
        .expect("churn's entry has a finite static minimum");
    assert!(min > 1);
    assert!(
        artifact.static_min_steps("m", "no_such_export").is_none(),
        "unknown exports have no bound"
    );

    let infeasible = Pipeline::new().richwasm("m", churn(25)).fuel(min - 1).run();
    let err = infeasible.expect_err("a budget below the static minimum cannot complete");
    assert!(
        err.is_fuel_exhausted(),
        "expected fuel exhaustion, got: {err}"
    );

    let feasible = Pipeline::new()
        .richwasm("m", churn(25))
        .fuel(10_000_000)
        .run()
        .expect("a generous budget completes");
    assert_eq!(feasible.result.i32(), Some(25));
}

#[test]
fn off_policy_skips_the_stage_entirely() {
    let engine = Engine::with_config(EngineConfig::new().analysis(Analysis::Off));
    let artifact = engine
        .compile(&ModuleSet::new().richwasm("m", churn(5)))
        .unwrap();
    assert!(artifact.analysis().is_empty());
    assert!(artifact.static_min_steps("m", "main").is_none());
}
