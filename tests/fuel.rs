//! Fuel parity across the two backends (DESIGN.md §10).
//!
//! Fuel is embedder resource policy, metered in each backend's native
//! unit — RichWasm *reduction steps* vs executed *Wasm instructions* —
//! so the two backends cannot trap at the same program point under the
//! same numeric budget. The contract pinned here is the one the serving
//! layer relies on instead:
//!
//! * a budget too small for the work exhausts on **every** execution
//!   mode, and the failure classifies as fuel on every mode
//!   ([`PipelineError::is_fuel_exhausted`]);
//! * in differential mode fuel exhaustion (even one-sided) is an
//!   **agreed** outcome, never a `Mismatch`;
//! * a generous budget runs to completion on every mode with the same
//!   result;
//! * each backend's metering is exact to within one administrative
//!   step (monotone: one budget below the minimum fails, the minimum
//!   succeeds);
//! * fuel exhaustion does not poison an instance: reset, and the next
//!   invocation under a sufficient budget succeeds.

use richwasm_bench::workloads::churn;
use richwasm_repro::engine::{
    Engine, EngineConfig, Exec, ModuleSet, PipelineError, PipelineErrorKind,
};

fn churn_set(n: u32) -> ModuleSet {
    ModuleSet::new().richwasm("m", churn(n))
}

fn run_with_fuel(exec: Exec, fuel: u64, n: u32) -> Result<Option<i32>, PipelineError> {
    let engine = Engine::with_config(EngineConfig::new().exec(exec).fuel(fuel));
    let artifact = engine.compile(&churn_set(n)).unwrap();
    let mut inst = artifact.instantiate().unwrap();
    inst.invoke_entry().map(|inv| inv.i32())
}

#[test]
fn small_budgets_exhaust_on_every_mode() {
    // 100k allocate/update/free iterations dwarf any of these budgets
    // in both metering units.
    for fuel in [50u64, 500, 5_000] {
        for exec in [Exec::Interp, Exec::Wasm, Exec::Differential] {
            let err =
                run_with_fuel(exec, fuel, 100_000).expect_err("a starved run must not complete");
            assert!(
                err.is_fuel_exhausted(),
                "mode {exec:?} at fuel {fuel}: expected fuel exhaustion, got {err}"
            );
            assert!(
                !matches!(err.kind, PipelineErrorKind::Mismatch { .. }),
                "fuel exhaustion must never read as a backend mismatch (fuel {fuel}): {err}"
            );
        }
    }
}

#[test]
fn generous_budget_completes_on_every_mode_with_the_same_result() {
    for exec in [Exec::Interp, Exec::Wasm, Exec::Differential] {
        let result = run_with_fuel(exec, 10_000_000, 500)
            .unwrap_or_else(|e| panic!("mode {exec:?} failed under a generous budget: {e}"));
        assert_eq!(result, Some(500), "mode {exec:?} result");
    }
}

/// Locates each backend's minimal sufficient budget by direct probing
/// (the backend fuel knobs are public on [`Instance`]) and pins the
/// boundary: `minimal` succeeds, `minimal - 1` classifies as fuel.
#[test]
fn metering_boundary_is_exact_per_backend() {
    let engine = Engine::new(); // differential, default (ample) fuel
    let artifact = engine.compile(&churn_set(50)).unwrap();
    let mut inst = artifact.instantiate().unwrap();

    // Probe the RichWasm side's exact step count from a successful run.
    let interp_steps = inst
        .invoke_entry()
        .expect("unfueled probe run")
        .richwasm
        .as_ref()
        .expect("differential mode ran the interpreter")
        .steps;
    assert!(interp_steps > 0);

    // The Wasm side does not report its count; binary-search the minimal
    // sufficient instruction budget.
    let mut lo = 1u64; // fails
    let mut hi = 100_000_000u64; // succeeds
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        inst.reset().unwrap();
        inst.wasm.as_mut().unwrap().max_steps = mid;
        if inst.invoke_entry().is_ok() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let wasm_minimal = hi;

    // RichWasm boundary: one step below the recorded count must starve,
    // and a budget of exactly the recorded count (+1 slack for the
    // final administrative check) must succeed.
    inst.reset().unwrap();
    inst.runtime().config.fuel = interp_steps - 1;
    let err = inst.invoke_entry().expect_err("one step short must starve");
    assert!(err.is_fuel_exhausted(), "interp boundary failure: {err}");
    inst.reset().unwrap();
    inst.runtime().config.fuel = interp_steps + 1;
    inst.invoke_entry()
        .expect("the probed step count plus one must suffice");

    // Wasm boundary, from the binary search.
    inst.reset().unwrap();
    inst.wasm.as_mut().unwrap().max_steps = wasm_minimal - 1;
    let err = inst.invoke_entry().expect_err("below minimal must trap");
    assert!(err.is_fuel_exhausted(), "wasm boundary failure: {err}");
    inst.reset().unwrap();
    inst.wasm.as_mut().unwrap().max_steps = wasm_minimal;
    inst.invoke_entry()
        .expect("the minimal budget must suffice");

    // The two backends meter in different units; both boundaries exist
    // but they need not be equal. Record the relationship the lowering
    // makes plausible: executing compiled Wasm takes at least as many
    // instructions as the interpreter takes reduction steps is NOT
    // guaranteed — only positivity is.
    assert!(wasm_minimal > 0);
}

#[test]
fn one_sided_exhaustion_is_agreed_not_mismatch() {
    // Starve exactly one backend of a differential instance: the other
    // completes, and the reconciled outcome must still classify as fuel
    // (the differential-mode agreement rule for resource policy).
    let engine = Engine::new();
    let artifact = engine.compile(&churn_set(50)).unwrap();

    let mut inst = artifact.instantiate().unwrap();
    inst.runtime().config.fuel = 10; // interpreter starves, Wasm completes
    let err = inst.invoke_entry().expect_err("starved interp side");
    assert!(err.is_fuel_exhausted(), "interp-side: {err}");
    assert!(!matches!(err.kind, PipelineErrorKind::Mismatch { .. }));

    let mut inst = artifact.instantiate().unwrap();
    inst.wasm.as_mut().unwrap().max_steps = 10; // Wasm starves
    let err = inst.invoke_entry().expect_err("starved wasm side");
    assert!(err.is_fuel_exhausted(), "wasm-side: {err}");
    assert!(!matches!(err.kind, PipelineErrorKind::Mismatch { .. }));
}

/// A host call costs exactly **1** step of the instruction budget on
/// both Wasm engines — the `call` instruction's dispatch charge, with no
/// extra charge inside the host arm (the double-charging bug this pins
/// against). Verified three ways: an exact step count through a guest
/// `call` to a host import on the tree-walker and on the bytecode VM,
/// the ±1 fuel boundary on both, and a *top-level* host invocation
/// (which no instruction dispatched) costing exactly 1.
#[test]
fn host_call_costs_exactly_one_step_on_both_engines() {
    use richwasm_wasm::ast::{
        Export, ExportKind, FuncDef, FuncType, Import, ImportKind, Module, ValType, WInstr,
    };
    use richwasm_wasm::compile::compile_module;
    use richwasm_wasm::exec::{Val, WasmLinker};
    use std::sync::Arc;

    // Guest: `f(x) = host.id(x)` — body is [local.get 0, call 0].
    let mut m = Module::default();
    let t = m.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    m.imports.push(Import {
        module: "h".into(),
        name: "id".into(),
        kind: ImportKind::Func(t),
    });
    m.funcs.push(FuncDef {
        type_idx: t,
        locals: vec![],
        body: vec![WInstr::LocalGet(0), WInstr::Call(0)],
    });
    m.exports.push(Export {
        name: "f".into(),
        kind: ExportKind::Func(1),
    });
    let compiled = compile_module(&m);
    assert_eq!(compiled.compiled_count(), 1, "guest must compile");

    let build = |attach: bool| {
        let mut l = WasmLinker::new();
        l.register_host_module(
            "h",
            vec![(
                "id".into(),
                FuncType {
                    params: vec![ValType::I32],
                    results: vec![ValType::I32],
                },
                Arc::new(|args: &[Val]| Ok(args.to_vec())) as _,
            )],
        );
        let i = l.instantiate("m", m.clone()).unwrap();
        if attach {
            l.attach_compiled(i, &compiled).unwrap();
        }
        (l, i)
    };

    for (attach, label) in [(false, "tree-walker"), (true, "bytecode")] {
        let (mut l, i) = build(attach);
        // local.get (1) + call dispatching the host (1) = exactly 2.
        assert_eq!(l.invoke(i, "f", &[Val::I32(7)]).unwrap(), vec![Val::I32(7)]);
        assert_eq!(l.last_steps(), 2, "{label}: guest body through a host call");

        // The ±1 boundary through the host call.
        l.max_steps = 2;
        l.invoke(i, "f", &[Val::I32(7)])
            .unwrap_or_else(|e| panic!("{label}: budget 2 must suffice: {e}"));
        l.max_steps = 1;
        let err = l.invoke(i, "f", &[Val::I32(7)]).unwrap_err();
        assert!(
            err.is_fuel_exhausted(),
            "{label}: budget 1 must starve, got {err}"
        );

        // A top-level host invocation (no dispatching instruction)
        // charges its single step in the host arm itself.
        l.max_steps = u64::MAX;
        let h = l.instance_by_name("h").unwrap();
        assert_eq!(
            l.invoke(h, "id", &[Val::I32(3)]).unwrap(),
            vec![Val::I32(3)]
        );
        assert_eq!(l.last_steps(), 1, "{label}: top-level host call");
    }
}

#[test]
fn exhaustion_does_not_poison_the_instance() {
    let engine = Engine::with_config(EngineConfig::new().fuel(100));
    let artifact = engine.compile(&churn_set(2_000)).unwrap();
    let mut inst = artifact.instantiate().unwrap();
    let err = inst.invoke_entry().expect_err("starved run");
    assert!(err.is_fuel_exhausted());

    // Reset rewinds the stores; a sufficient budget then succeeds on the
    // same instance (the pool's checkin path is exactly this sequence).
    inst.reset().unwrap();
    inst.runtime().config.fuel = 100_000_000;
    inst.wasm.as_mut().unwrap().max_steps = 100_000_000;
    let result = inst.invoke_entry().expect("recovered after preemption");
    assert_eq!(result.i32(), Some(2_000));
}
