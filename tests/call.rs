//! The typed host↔guest call boundary: `TypedFunc` handles, the
//! `WasmParams`/`WasmResults` conversion layer, and host functions
//! installed into both backends.
//!
//! Host functions extend the paper's typed-interop story *down to the
//! embedder*: the same FFI type check that guards ML↔L3 linking guards a
//! Rust closure exposed to guests, and differential checking keeps
//! running across host calls via per-invocation record/replay.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use richwasm::syntax::*;
use richwasm_repro::engine::{Engine, EngineConfig, Exec, ModuleSet, PipelineErrorKind, Stage};
use richwasm_repro::{HostSig, HostVal, HostValType, WasmParams, WasmResults, WasmTy};

/// A module with `add : [i32, i32] -> [i32]` and `answer : [] -> [i32]`.
fn arith_module() -> Module {
    Module {
        funcs: vec![
            Func::Defined {
                exports: vec!["add".into()],
                ty: FunType::mono(
                    vec![Type::num(NumType::I32), Type::num(NumType::I32)],
                    vec![Type::num(NumType::I32)],
                ),
                locals: vec![],
                body: vec![
                    Instr::GetLocal(0, Qual::Unr),
                    Instr::GetLocal(1, Qual::Unr),
                    Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
                ],
            },
            Func::Defined {
                exports: vec!["answer".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body: vec![Instr::i32(42)],
            },
            Func::Defined {
                exports: vec!["wide".into()],
                ty: FunType::mono(vec![Type::num(NumType::I64)], vec![Type::num(NumType::I64)]),
                locals: vec![],
                body: vec![
                    Instr::GetLocal(0, Qual::Unr),
                    Instr::Val(Value::i64(1)),
                    Instr::Num(NumInstr::IntBinop(NumType::I64, instr::IntBinop::Add)),
                ],
            },
        ],
        ..Module::default()
    }
}

/// A guest importing `host.tick : [i32] -> [i32]` and exporting
/// `main : [] -> [i32]` that returns `tick(5) + 1`.
fn host_client() -> Module {
    Module {
        funcs: vec![
            Func::Imported {
                exports: vec![],
                module: "host".into(),
                name: "tick".into(),
                ty: FunType::mono(vec![Type::num(NumType::I32)], vec![Type::num(NumType::I32)]),
            },
            Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body: vec![
                    Instr::i32(5),
                    Instr::Call(0, vec![]),
                    Instr::i32(1),
                    Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
                ],
            },
        ],
        ..Module::default()
    }
}

#[test]
fn typed_func_calls_across_all_exec_modes() {
    for exec in [Exec::Differential, Exec::Interp, Exec::Wasm] {
        let engine = Engine::with_config(EngineConfig::new().exec(exec));
        let mut inst = engine
            .instantiate(&ModuleSet::new().richwasm("m", arith_module()))
            .unwrap();
        let add = inst.get_typed_func::<(i32, i32), i32>("m", "add").unwrap();
        assert_eq!(add.call(&mut inst, (20, 22)).unwrap(), 42, "{exec:?}");
        assert_eq!(add.call(&mut inst, (-5, 3)).unwrap(), -2, "{exec:?}");

        let answer = inst.get_typed_func::<(), i32>("m", "answer").unwrap();
        assert_eq!(answer.call(&mut inst, ()).unwrap(), 42, "{exec:?}");

        let wide = inst.get_typed_func::<i64, i64>("m", "wide").unwrap();
        assert_eq!(
            wide.call(&mut inst, i64::MAX - 1).unwrap(),
            i64::MAX,
            "{exec:?}"
        );
    }
}

#[test]
fn typed_func_survives_reset_and_counts_invocations() {
    let engine = Engine::new();
    let mut inst = engine
        .instantiate(&ModuleSet::new().richwasm("m", arith_module()))
        .unwrap();
    let add = inst.get_typed_func::<(i32, i32), i32>("m", "add").unwrap();
    assert_eq!(add.call(&mut inst, (1, 2)).unwrap(), 3);
    assert_eq!(inst.invocations(), 1);
    inst.reset().unwrap();
    assert_eq!(inst.invocations(), 0);
    // The handle stays valid: instantiation is deterministic, so the
    // pre-resolved indices transfer to the fresh stores.
    assert_eq!(add.call(&mut inst, (2, 3)).unwrap(), 5);
    assert_eq!(inst.invocations(), 1);
}

#[test]
fn typed_func_signature_mismatches_rejected_at_handle_creation() {
    let engine = Engine::new();
    let inst = engine
        .instantiate(&ModuleSet::new().richwasm("m", arith_module()))
        .unwrap();

    // Wrong arity.
    let err = inst.get_typed_func::<i32, i32>("m", "add").unwrap_err();
    assert_eq!(err.stage, Stage::Execute);
    let msg = err.to_string();
    assert!(msg.contains("(i32)"), "names the Rust-side type: {msg}");
    assert!(
        msg.contains("i32^unr") || msg.contains("->"),
        "names the checked guest type: {msg}"
    );

    // Wrong width (i64 where the guest declares i32).
    let err = inst
        .get_typed_func::<(i64, i32), i32>("m", "add")
        .unwrap_err();
    assert_eq!(err.stage, Stage::Execute);
    assert!(err.to_string().contains("signature mismatch"), "{err}");

    // Wrong result type.
    let err = inst.get_typed_func::<(), i64>("m", "answer").unwrap_err();
    assert!(err.to_string().contains("results"), "{err}");

    // Wrong result arity.
    let err = inst.get_typed_func::<(), ()>("m", "answer").unwrap_err();
    assert!(err.to_string().contains("signature mismatch"), "{err}");

    // Unknown module / export.
    assert!(inst.get_typed_func::<(), i32>("ghost", "answer").is_err());
    assert!(inst.get_typed_func::<(), i32>("m", "ghost").is_err());

    // Same-width signedness interchange is allowed (no backend can
    // observe it on a bit pattern).
    let addu = inst.get_typed_func::<(u32, u32), u32>("m", "add").unwrap();
    let mut inst = inst;
    assert_eq!(addu.call(&mut inst, (u32::MAX, 3)).unwrap(), 2);
}

#[test]
fn typed_func_rejects_instances_of_other_artifacts() {
    let engine = Engine::new();
    let mut a = engine
        .instantiate(&ModuleSet::new().richwasm("m", arith_module()))
        .unwrap();
    let mut b = engine
        .instantiate(&ModuleSet::new().richwasm("m", host_client()).host_fn(
            "host",
            "tick",
            HostSig::new([HostValType::I32], [HostValType::I32]),
            |args| Ok(vec![args[0]]),
        ))
        .unwrap();
    let add = a.get_typed_func::<(i32, i32), i32>("m", "add").unwrap();
    let err = add.call(&mut b, (1, 2)).unwrap_err();
    assert!(
        err.to_string()
            .contains("used with an instance of artifact"),
        "{err}"
    );
    // …and still works on the right instance.
    assert_eq!(add.call(&mut a, (1, 2)).unwrap(), 3);
}

#[test]
fn typed_func_unit_params_erase() {
    // A guest taking `[unit, i32]` — the unit slot erases at the boundary,
    // exactly as the compiler erases it.
    let m = Module {
        funcs: vec![Func::Defined {
            exports: vec!["snd".into()],
            ty: FunType::mono(
                vec![Type::unit(), Type::num(NumType::I32)],
                vec![Type::num(NumType::I32)],
            ),
            locals: vec![],
            body: vec![Instr::GetLocal(1, Qual::Unr)],
        }],
        ..Module::default()
    };
    let engine = Engine::new();
    let mut inst = engine
        .instantiate(&ModuleSet::new().richwasm("m", m))
        .unwrap();
    let snd = inst.get_typed_func::<i32, i32>("m", "snd").unwrap();
    assert_eq!(snd.call(&mut inst, 9).unwrap(), 9);
}

#[test]
fn invocation_agreed_view_consults_both_backends() {
    // The `Invocation::i32` bug this redesign fixes: a `[unit, i32]`
    // RichWasm result used to defeat `i32()` even though the Wasm backend
    // produced a single usable `I32`. The agreed view flattens the way
    // the compiler flattens types, so both backends line up.
    let m = Module {
        funcs: vec![Func::Defined {
            exports: vec!["main".into()],
            ty: FunType::mono(vec![], vec![Type::unit(), Type::num(NumType::I32)]),
            locals: vec![],
            body: vec![Instr::Val(Value::Unit), Instr::i32(42)],
        }],
        ..Module::default()
    };
    let engine = Engine::new();
    let mut inst = engine
        .instantiate(&ModuleSet::new().richwasm("m", m))
        .unwrap();
    let run = inst.invoke_entry().unwrap();
    assert_eq!(
        run.richwasm.as_ref().unwrap().values,
        vec![Value::Unit, Value::i32(42)],
        "the raw RichWasm result keeps its unit"
    );
    assert_eq!(run.i32(), Some(42), "the agreed view erases it");
    assert_eq!(run.results(), &[HostVal::I32(42)]);
    assert_eq!(run.returned::<i32>(), Some(42));
    assert_eq!(run.returned::<u32>(), Some(42), "same-width view");
    assert_eq!(run.returned::<i64>(), None, "width mismatch");
    assert_eq!(run.returned::<(i32, i32)>(), None, "arity mismatch");
}

#[test]
fn invocation_multi_value_returned() {
    let m = Module {
        funcs: vec![Func::Defined {
            exports: vec!["pair".into()],
            ty: FunType::mono(
                vec![],
                vec![Type::num(NumType::I32), Type::num(NumType::I64)],
            ),
            locals: vec![],
            body: vec![Instr::i32(7), Instr::Val(Value::i64(-9))],
        }],
        ..Module::default()
    };
    let engine = Engine::new();
    let mut inst = engine
        .instantiate(&ModuleSet::new().richwasm("m", m))
        .unwrap();
    let run = inst.invoke("m", "pair", vec![]).unwrap();
    assert_eq!(run.returned::<(i32, i64)>(), Some((7, -9)));
    assert_eq!(run.i32(), None, "two results, no single i32");
    // And through the typed handle.
    let pair = inst.get_typed_func::<(), (i32, i64)>("m", "pair").unwrap();
    assert_eq!(pair.call(&mut inst, ()).unwrap(), (7, -9));
}

#[test]
fn host_fn_runs_under_differential_with_side_effects_once() {
    let calls = Arc::new(AtomicU32::new(0));
    let seen = calls.clone();
    let set = ModuleSet::new().richwasm("client", host_client()).host_fn(
        "host",
        "tick",
        HostSig::new([HostValType::I32], [HostValType::I32]),
        move |args| {
            seen.fetch_add(1, Ordering::SeqCst);
            let HostVal::I32(x) = args[0] else {
                return Err("expected i32".into());
            };
            Ok(vec![HostVal::I32(x * 2)])
        },
    );
    let engine = Engine::new(); // differential by default
    let mut inst = engine.instantiate(&set).unwrap();
    // tick(5)*? → 5*2 + 1 = 11, both backends agreeing.
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(11));
    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "record/replay: the closure ran once, not once per backend"
    );
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(11));
    assert_eq!(calls.load(Ordering::SeqCst), 2);

    // A *stateful* host stays differentially consistent: the Wasm
    // backend replays the recorded outcome instead of re-advancing the
    // state.
    let counter = Arc::new(AtomicU32::new(0));
    let c = counter.clone();
    let set = ModuleSet::new().richwasm("client", host_client()).host_fn(
        "host",
        "tick",
        HostSig::new([HostValType::I32], [HostValType::I32]),
        move |args| {
            let HostVal::I32(x) = args[0] else {
                return Err("expected i32".into());
            };
            let total = c.fetch_add(x as u32, Ordering::SeqCst) + x as u32;
            Ok(vec![HostVal::I32(total as i32)])
        },
    );
    let mut inst = engine.instantiate(&set).unwrap();
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(6)); // 5 + 1
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(11)); // 10 + 1
    assert_eq!(counter.load(Ordering::SeqCst), 10, "5 per invocation, once");
}

#[test]
fn host_fn_works_on_each_single_backend() {
    for exec in [Exec::Interp, Exec::Wasm] {
        let calls = Arc::new(AtomicU32::new(0));
        let seen = calls.clone();
        let set = ModuleSet::new().richwasm("client", host_client()).host_fn(
            "host",
            "tick",
            HostSig::new([HostValType::I32], [HostValType::I32]),
            move |args| {
                seen.fetch_add(1, Ordering::SeqCst);
                Ok(vec![args[0]])
            },
        );
        let engine = Engine::with_config(EngineConfig::new().exec(exec));
        let mut inst = engine.instantiate(&set).unwrap();
        assert_eq!(inst.invoke_entry().unwrap().i32(), Some(6), "{exec:?}");
        assert_eq!(calls.load(Ordering::SeqCst), 1, "{exec:?}");
    }
}

#[test]
fn host_fn_through_the_pipeline_facade() {
    // The one-shot facade carries the record/replay channels too: host
    // side effects stay once-per-invocation across repeated
    // `Program::invoke` calls.
    let calls = Arc::new(AtomicU32::new(0));
    let seen = calls.clone();
    let run = richwasm_repro::Pipeline::new()
        .richwasm("client", host_client())
        .host_fn(
            "host",
            "tick",
            HostSig::new([HostValType::I32], [HostValType::I32]),
            move |args| {
                seen.fetch_add(1, Ordering::SeqCst);
                Ok(vec![args[0]])
            },
        )
        .run()
        .unwrap();
    assert_eq!(run.result.i32(), Some(6));
    assert_eq!(calls.load(Ordering::SeqCst), 1, "recorded once, replayed");
    let mut program = run.program;
    assert_eq!(
        program.invoke("client", "main", vec![]).unwrap().i32(),
        Some(6)
    );
    assert_eq!(calls.load(Ordering::SeqCst), 2);
}

#[test]
fn host_fn_error_traps_on_both_backends() {
    let set = ModuleSet::new().richwasm("client", host_client()).host_fn(
        "host",
        "tick",
        HostSig::new([HostValType::I32], [HostValType::I32]),
        |_| Err("quota exceeded".into()),
    );
    let engine = Engine::new();
    let mut inst = engine.instantiate(&set).unwrap();
    let err = inst.invoke_entry().unwrap_err();
    // Both backends trapped identically, so this is an agreed dynamic
    // fault (Execute), not a differential mismatch.
    assert_eq!(err.stage, Stage::Execute, "{err}");
    assert!(
        err.to_string()
            .contains("host function error: quota exceeded"),
        "{err}"
    );
}

#[test]
fn host_fn_import_type_mismatch_is_a_link_error() {
    // The guest lies about the host signature: [i64] -> [i32] against a
    // host declaring [i32] -> [i32]. The typed linker rejects it at
    // instantiation — the same FFI check that guards guest↔guest links.
    let mut client = host_client();
    let Func::Imported { ty, .. } = &mut client.funcs[0] else {
        unreachable!()
    };
    *ty = FunType::mono(vec![Type::num(NumType::I64)], vec![Type::num(NumType::I32)]);
    let Func::Defined { body, .. } = &mut client.funcs[1] else {
        unreachable!()
    };
    body[0] = Instr::Val(Value::i64(5));

    let set = ModuleSet::new().richwasm("client", client).host_fn(
        "host",
        "tick",
        HostSig::new([HostValType::I32], [HostValType::I32]),
        |args| Ok(vec![args[0]]),
    );
    let err = Engine::new().instantiate(&set).unwrap_err();
    assert_eq!(err.stage, Stage::Instantiate);
    assert!(
        matches!(err.kind, PipelineErrorKind::Type(_)),
        "a typed link error: {err}"
    );
}

#[test]
fn host_module_name_clashes_rejected() {
    let set = ModuleSet::new()
        .richwasm("host", Module::default())
        .host_fn("host", "f", HostSig::new([], []), |_| Ok(vec![]));
    let err = Engine::new().compile(&set).unwrap_err();
    assert!(err.to_string().contains("clashes"), "{err}");

    let set = ModuleSet::new().richwasm("m", arith_module()).host_fn(
        "rw_runtime",
        "f",
        HostSig::new([], []),
        |_| Ok(vec![]),
    );
    let err = Engine::new().compile(&set).unwrap_err();
    assert!(err.to_string().contains("reserved"), "{err}");

    // Registering the same (module, name) twice would make the two
    // backends resolve to different closures — rejected up front.
    let set = ModuleSet::new()
        .richwasm("m", arith_module())
        .host_fn("h", "f", HostSig::new([], []), |_| Ok(vec![]))
        .host_fn("h", "f", HostSig::new([], []), |_| Ok(vec![]));
    let err = Engine::new().compile(&set).unwrap_err();
    assert!(err.to_string().contains("twice"), "{err}");
}

#[test]
fn cache_key_covers_host_signatures_and_closures() {
    let engine = Engine::new();
    let sig32 = HostSig::new([HostValType::I32], [HostValType::I32]);

    let set_a = ModuleSet::new().richwasm("client", host_client()).host_fn(
        "host",
        "tick",
        sig32.clone(),
        |args| Ok(vec![args[0]]),
    );
    let a = engine.compile(&set_a).unwrap();
    // The same set value (same closure Arcs) hits.
    let a2 = engine.compile(&set_a).unwrap();
    assert!(a.same_as(&a2));
    assert_eq!(engine.cache_stats().hits, 1);

    // A behaviourally different closure under the *same* signature must
    // not resurrect the cached artifact (closure identity is keyed).
    let set_b =
        ModuleSet::new()
            .richwasm("client", host_client())
            .host_fn("host", "tick", sig32, |args| {
                let HostVal::I32(x) = args[0] else {
                    return Err("expected i32".into());
                };
                Ok(vec![HostVal::I32(x + 100)])
            });
    let b = engine.compile(&set_b).unwrap();
    assert!(
        !a.same_as(&b),
        "different host behaviour, different artifact"
    );
    let mut inst = b.instantiate().unwrap();
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(106));
}

#[test]
fn entry_func_is_configurable() {
    let m = Module {
        funcs: vec![Func::Defined {
            exports: vec!["start".into()],
            ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
            locals: vec![],
            body: vec![Instr::i32(7)],
        }],
        ..Module::default()
    };
    // Default "main" fails against a module that only exports "start"…
    let engine = Engine::new();
    let mut inst = engine
        .instantiate(&ModuleSet::new().richwasm("m", m.clone()))
        .unwrap();
    assert!(inst.invoke_entry().is_err());
    // …and the configured entry function succeeds, through both the
    // engine and the one-shot facade.
    let mut inst = engine
        .instantiate(
            &ModuleSet::new()
                .richwasm("m", m.clone())
                .entry_func("start"),
        )
        .unwrap();
    assert_eq!(inst.invoke_entry().unwrap().i32(), Some(7));
    assert_eq!(inst.artifact().entry_func(), "start");

    let run = richwasm_repro::Pipeline::new()
        .richwasm("m", m)
        .entry_func("start")
        .run()
        .unwrap();
    assert_eq!(run.result.i32(), Some(7));
}

#[test]
fn cache_stats_hit_rate_and_display() {
    let engine = Engine::new();
    let set = ModuleSet::new().richwasm("m", arith_module());
    assert_eq!(engine.cache_stats().hit_rate(), 0.0, "no compiles yet");
    engine.compile(&set).unwrap();
    engine.compile(&set).unwrap();
    engine.compile(&set).unwrap();
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 1);
    assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    let shown = stats.to_string();
    assert!(
        shown.contains("2 hits") && shown.contains("1 misses") && shown.contains("66.7%"),
        "{shown}"
    );
}

// ---------------------------------------------------------------------
// Conversion-layer properties (satellite: proptest via crates/shims).
// ---------------------------------------------------------------------

proptest! {
    /// Every scalar round-trips through its boundary value.
    #[test]
    fn scalar_roundtrips(a in i32::MIN..=i32::MAX, b in u32::MIN..=u32::MAX,
                         c in i64::MIN..=i64::MAX, d in u64::MIN..=u64::MAX) {
        prop_assert_eq!(i32::from_host(a.into_host()), Some(a));
        prop_assert_eq!(u32::from_host(b.into_host()), Some(b));
        prop_assert_eq!(i64::from_host(c.into_host()), Some(c));
        prop_assert_eq!(u64::from_host(d.into_host()), Some(d));
    }

    /// Same-width signedness reinterprets bit-exactly; width mismatches
    /// are rejected.
    #[test]
    fn width_discipline(a in i32::MIN..=i32::MAX, c in i64::MIN..=i64::MAX) {
        prop_assert_eq!(u32::from_host(a.into_host()), Some(a as u32));
        prop_assert_eq!(i32::from_host(HostVal::U32(a as u32)), Some(a));
        prop_assert_eq!(u64::from_host(c.into_host()), Some(c as u64));
        // Cross-width is always rejected, in both directions.
        prop_assert_eq!(i32::from_host(HostVal::I64(c)), None);
        prop_assert_eq!(i64::from_host(HostVal::I32(a)), None);
        prop_assert_eq!(u32::from_host(HostVal::U64(c as u64)), None);
        prop_assert_eq!(u64::from_host(HostVal::U32(a as u32)), None);
        // Casts agree with the trait-level rules.
        prop_assert_eq!(HostVal::I32(a).cast(HostValType::U32), Some(HostVal::U32(a as u32)));
        prop_assert_eq!(HostVal::I32(a).cast(HostValType::I64), None);
    }

    /// Tuples round-trip through the aggregate traits, and arity
    /// mismatches are rejected.
    #[test]
    fn tuple_roundtrips(a in i32::MIN..=i32::MAX, b in u32::MIN..=u32::MAX,
                        c in i64::MIN..=i64::MAX, d in u64::MIN..=u64::MAX) {
        let mut buf = richwasm_repro::call::HostValBuf::new();
        (a, b, c, d).into_host_vals(&mut buf);
        let vals = buf.as_slice().to_vec();
        prop_assert_eq!(vals.len(), 4);
        prop_assert_eq!(
            <(i32, u32, i64, u64) as WasmParams>::valtypes(),
            vec![HostValType::I32, HostValType::U32, HostValType::I64, HostValType::U64]
        );
        prop_assert_eq!(<(i32, u32, i64, u64) as WasmResults>::from_host_vals(&vals), Some((a, b, c, d)));
        // Arity mismatches reject.
        prop_assert_eq!(<(i32, u32, i64) as WasmResults>::from_host_vals(&vals), None);
        prop_assert_eq!(<(i32, u32) as WasmResults>::from_host_vals(&vals[..2]), Some((a, b)));
        prop_assert_eq!(<i32 as WasmResults>::from_host_vals(&vals), None);
        prop_assert_eq!(<() as WasmResults>::from_host_vals(&vals), None);
        prop_assert_eq!(<() as WasmResults>::from_host_vals(&[]), Some(()));
        // Type mismatches inside a tuple reject.
        prop_assert_eq!(<(i64, u32, i64, u64) as WasmResults>::from_host_vals(&vals), None);
    }

    /// The typed handle agrees with the string-keyed path on every input
    /// (differential mode underneath both).
    #[test]
    fn typed_call_agrees_with_string_invoke(x in -1000i32..1000, y in -1000i32..1000) {
        let engine = Engine::new();
        let mut inst = engine
            .instantiate(&ModuleSet::new().richwasm("m", arith_module()))
            .unwrap();
        let add = inst.get_typed_func::<(i32, i32), i32>("m", "add").unwrap();
        let typed = add.call(&mut inst, (x, y)).unwrap();
        let stringly = inst
            .invoke("m", "add", vec![Value::i32(x), Value::i32(y)])
            .unwrap()
            .returned::<i32>()
            .unwrap();
        prop_assert_eq!(typed, stringly);
        prop_assert_eq!(typed, x.wrapping_add(y));
    }
}
