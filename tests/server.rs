//! The serving contract of [`EngineServer`] (DESIGN.md §10):
//!
//! * every accepted job's agreed result equals the sequential oracle;
//! * admission is deny-by-default and bounded — unknown tenants are
//!   rejected, a full tenant queue sheds with `Backpressure`;
//! * fuel preemption fails the one hot job, not the server: the next
//!   job on the same (recycled) instance succeeds;
//! * `drain` under concurrent submitters resolves **every** accepted
//!   ticket (zero dropped) and rejects everything after;
//! * the telemetry counters account for exactly what happened.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use richwasm::syntax::{self, NumType};
use richwasm_bench::workloads::churn;
use richwasm_repro::engine::{Artifact, Engine, Job, ModuleSet};
use richwasm_repro::server::{EngineServer, JobError, ServerConfig, SubmitError, TenantConfig};
use richwasm_repro::{HostSig, HostVal, HostValType};

fn churn_artifact(n: u32) -> Artifact {
    Engine::new()
        .compile(&ModuleSet::new().richwasm("m", churn(n)))
        .unwrap()
}

fn churn_job() -> Job {
    Job::new("m", "main", vec![])
}

#[test]
fn accepted_jobs_agree_with_the_sequential_oracle() {
    let artifact = churn_artifact(100);
    let oracle = artifact
        .instantiate()
        .unwrap()
        .invoke_entry()
        .unwrap()
        .i32();
    assert_eq!(oracle, Some(100));

    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(2)
            .tenant("t", TenantConfig::new().queue_depth(64)),
    )
    .unwrap();
    let tickets: Vec<_> = (0..40)
        .map(|_| server.submit("t", churn_job()).expect("within queue depth"))
        .collect();
    for ticket in &tickets {
        let outcome = ticket.wait();
        assert_eq!(
            outcome.result.expect("job succeeded").i32(),
            oracle,
            "a served result diverged from the sequential oracle"
        );
        assert!(outcome.timing.service > Duration::ZERO);
    }
    server.drain();

    let stats = server.stats();
    assert_eq!(stats.completed, 40);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.queued, 0, "drained server holds no queued jobs");
    assert_eq!(stats.in_flight, 0);
    assert!(stats.p50 > Duration::ZERO, "histogram recorded latencies");
    assert!(stats.p50 <= stats.p90 && stats.p90 <= stats.p99);
    assert!(stats.throughput > 0.0);
    // The Display impls render one coherent stats block.
    assert!(format!("{stats}").contains("completed"));
    assert!(format!("{}", server.pool_stats()).contains("checkouts"));
}

#[test]
fn unknown_tenants_are_denied_by_default() {
    let artifact = churn_artifact(10);
    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(1)
            .tenant("known", TenantConfig::new()),
    )
    .unwrap();
    assert_eq!(
        server.submit("nobody", churn_job()).unwrap_err(),
        SubmitError::UnknownTenant
    );
    // And a server configured with no tenants at all denies everyone.
    let closed = EngineServer::start(&artifact, ServerConfig::new().workers(1)).unwrap();
    assert_eq!(
        closed.submit("known", churn_job()).unwrap_err(),
        SubmitError::UnknownTenant
    );
}

/// A guest whose `main` calls `host.hold(0)` — the host blocks until the
/// test releases `gate`, pinning the worker mid-job deterministically.
fn gated_set(gate: Arc<AtomicBool>) -> ModuleSet {
    let i32t = syntax::Type::num(NumType::I32);
    let m = syntax::Module {
        funcs: vec![
            syntax::Func::Imported {
                exports: vec![],
                module: "host".into(),
                name: "hold".into(),
                ty: syntax::FunType::mono(vec![i32t.clone()], vec![i32t.clone()]),
            },
            syntax::Func::Defined {
                exports: vec!["main".into()],
                ty: syntax::FunType::mono(vec![], vec![i32t]),
                locals: vec![],
                body: vec![syntax::Instr::i32(0), syntax::Instr::Call(0, vec![])],
            },
        ],
        ..syntax::Module::default()
    };
    ModuleSet::new().richwasm("m", m).host_fn(
        "host",
        "hold",
        HostSig::new([HostValType::I32], [HostValType::I32]),
        move |_args| {
            while !gate.load(Ordering::Acquire) {
                thread::sleep(Duration::from_millis(1));
            }
            Ok(vec![HostVal::I32(7)])
        },
    )
}

#[test]
fn full_tenant_queue_sheds_with_backpressure() {
    let gate = Arc::new(AtomicBool::new(false));
    let artifact = Engine::new()
        .compile(&gated_set(Arc::clone(&gate)))
        .unwrap();
    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(1)
            .tenant("t", TenantConfig::new().queue_depth(2)),
    )
    .unwrap();

    // The single worker picks this job up and blocks in the host call.
    let blocked = server.submit("t", churn_job()).unwrap();
    while {
        let s = server.stats();
        s.in_flight == 0 || s.queued > 0
    } {
        thread::sleep(Duration::from_millis(1));
    }

    // Two more fill the queue to its configured depth...
    let queued_a = server.submit("t", churn_job()).unwrap();
    let queued_b = server.submit("t", churn_job()).unwrap();
    // ...and the next submission is shed, non-blockingly.
    assert_eq!(
        server.submit("t", churn_job()).unwrap_err(),
        SubmitError::Backpressure
    );
    assert_eq!(server.tenant_shed("t"), Some(1));

    // Release the gate: everything accepted completes with the host's 7.
    gate.store(true, Ordering::Release);
    for ticket in [&blocked, &queued_a, &queued_b] {
        assert_eq!(
            ticket.wait().result.expect("accepted job ran").i32(),
            Some(7)
        );
    }
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.shed, 1);
}

#[test]
fn fuel_preemption_fails_the_job_not_the_server() {
    // One artifact, two exports: a hog that cannot finish under the
    // budget and a quick job that comfortably can.
    let set = ModuleSet::new()
        .richwasm("hog", churn(100_000))
        .richwasm("quick", churn(10));
    let artifact = Engine::new().compile(&set).unwrap();
    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(1)
            .job_fuel(50_000)
            .tenant("t", TenantConfig::new()),
    )
    .unwrap();

    let hog = server.submit("t", Job::new("hog", "main", vec![])).unwrap();
    let quick = server
        .submit("t", Job::new("quick", "main", vec![]))
        .unwrap();

    assert_eq!(
        hog.wait().result.expect_err("the hog must be preempted"),
        JobError::FuelExhausted
    );
    // Same worker, same (recycled) instance: the preemption did not
    // poison it.
    assert_eq!(quick.wait().result.expect("quick job ran").i32(), Some(10));
    server.drain();
}

#[test]
fn drain_resolves_every_accepted_ticket_under_concurrent_submit() {
    let artifact = churn_artifact(50);
    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(2)
            .tenant("t", TenantConfig::new().queue_depth(256)),
    )
    .unwrap();

    let accepted: Vec<_> = thread::scope(|scope| {
        let server = &server;
        let submitters: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        match server.submit("t", churn_job()) {
                            Ok(ticket) => mine.push(ticket),
                            Err(SubmitError::Backpressure) => thread::yield_now(),
                            Err(SubmitError::Draining) => break,
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                    mine
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(30));
        server.drain();
        submitters
            .into_iter()
            .flat_map(|h| h.join().expect("submitter panicked"))
            .collect()
    });

    assert!(!accepted.is_empty(), "some jobs were accepted mid-stream");
    // The acceptance criterion: zero dropped in-flight jobs — every
    // accepted ticket resolved by the time drain returned.
    for (i, ticket) in accepted.iter().enumerate() {
        assert!(ticket.is_done(), "accepted ticket {i} was dropped by drain");
    }
    let stats = server.stats();
    assert_eq!(
        stats.completed as usize,
        accepted.len(),
        "completed count != accepted count"
    );
    assert_eq!(stats.queued, 0);
    // Post-drain submissions are rejected, idempotently.
    assert_eq!(
        server.submit("t", churn_job()).unwrap_err(),
        SubmitError::Draining
    );
    server.drain();
    assert_eq!(
        server.submit("t", churn_job()).unwrap_err(),
        SubmitError::Draining
    );
}

#[test]
fn wait_timeout_and_poll_observe_completion() {
    let artifact = churn_artifact(10);
    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(1)
            .tenant("t", TenantConfig::new()),
    )
    .unwrap();
    let ticket = server.submit("t", churn_job()).unwrap();
    let outcome = ticket
        .wait_timeout(Duration::from_secs(30))
        .expect("a 10-iteration job finishes well inside 30s");
    assert_eq!(outcome.result.unwrap().i32(), Some(10));
    assert!(ticket.is_done());
    assert!(ticket.poll().is_some(), "poll observes the same outcome");
    server.drain();
}

#[test]
fn infeasible_budget_is_rejected_before_an_instance_checkout() {
    let artifact = churn_artifact(10);
    let required = artifact
        .static_min_steps("m", "main")
        .expect("analysis cached a finite minimum for the entry");
    assert!(required > 1, "churn(10) takes more than one step");

    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(1)
            .job_fuel(required - 1)
            .tenant("t", TenantConfig::new()),
    )
    .unwrap();
    let outcome = server.submit("t", churn_job()).unwrap().wait();
    match outcome.result {
        Err(JobError::BudgetInfeasible {
            budget,
            required: r,
        }) => {
            assert_eq!(budget, required - 1);
            assert_eq!(r, required);
        }
        other => panic!("expected BudgetInfeasible, got {other:?}"),
    }
    assert_eq!(
        server.pool_stats().checkouts,
        0,
        "a provably infeasible job must not consume a pool checkout"
    );
    assert_eq!(server.stats().completed, 1, "the ticket still resolved");
    server.drain();

    // A feasible budget on the same artifact executes normally (the
    // static minimum is a true lower bound, not an over-estimate).
    let server = EngineServer::start(
        &artifact,
        ServerConfig::new()
            .workers(1)
            .job_fuel(required * 1000)
            .tenant("t", TenantConfig::new()),
    )
    .unwrap();
    let outcome = server.submit("t", churn_job()).unwrap().wait();
    assert_eq!(outcome.result.expect("feasible job").i32(), Some(10));
    assert_eq!(server.pool_stats().checkouts, 1);
    server.drain();
}
