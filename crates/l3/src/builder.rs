//! Ergonomic program builders for L3.
//!
//! Mirrors `richwasm_ml::builder`: plain constructors that remove the
//! `Box::new` noise so generators (`richwasm-fuzz`) and tests can build
//! whole modules tersely. No typing logic lives here — the L3 compiler
//! still enforces linearity, and the RichWasm checker re-establishes it.

use crate::ast::{L3Expr, L3Fun, L3Import, L3Module, L3Op, L3Ty};

/// `!n`.
pub fn int(n: i32) -> L3Expr {
    L3Expr::Int(n)
}

/// A variable reference.
pub fn var(name: impl Into<String>) -> L3Expr {
    L3Expr::Var(name.into())
}

/// `let name = bound in body`.
pub fn let_(name: impl Into<String>, bound: L3Expr, body: L3Expr) -> L3Expr {
    L3Expr::Let(name.into(), Box::new(bound), Box::new(body))
}

/// `let (a, b) = pair in body`.
pub fn let_pair(a: impl Into<String>, b: impl Into<String>, pair: L3Expr, body: L3Expr) -> L3Expr {
    L3Expr::LetPair(a.into(), b.into(), Box::new(pair), Box::new(body))
}

/// Pair construction.
pub fn pair(a: L3Expr, b: L3Expr) -> L3Expr {
    L3Expr::Pair(Box::new(a), Box::new(b))
}

/// `a; b`.
pub fn seq(a: L3Expr, b: L3Expr) -> L3Expr {
    L3Expr::Seq(Box::new(a), Box::new(b))
}

/// `new e sz` — allocate a linear cell.
pub fn new(e: L3Expr, sz: u64) -> L3Expr {
    L3Expr::New(Box::new(e), sz)
}

/// `free e` — deallocate, returning the contents.
pub fn free(e: L3Expr) -> L3Expr {
    L3Expr::Free(Box::new(e))
}

/// `swap cell value` — strong update, yielding `(cell', old)`.
pub fn swap(cell: L3Expr, value: L3Expr) -> L3Expr {
    L3Expr::Swap(Box::new(cell), Box::new(value))
}

/// `join e` — package → reference.
pub fn join(e: L3Expr) -> L3Expr {
    L3Expr::Join(Box::new(e))
}

/// `split e` — reference → package.
pub fn split(e: L3Expr) -> L3Expr {
    L3Expr::Split(Box::new(e))
}

/// A primitive operation on ints.
pub fn op(o: L3Op, a: L3Expr, b: L3Expr) -> L3Expr {
    L3Expr::Op(o, Box::new(a), Box::new(b))
}

/// `a + b`.
pub fn add(a: L3Expr, b: L3Expr) -> L3Expr {
    op(L3Op::Add, a, b)
}

/// `if c != 0 then t else e`.
pub fn if_(c: L3Expr, t: L3Expr, e: L3Expr) -> L3Expr {
    L3Expr::If(Box::new(c), Box::new(t), Box::new(e))
}

/// Direct call of a top-level function or import.
pub fn call(name: impl Into<String>, args: Vec<L3Expr>) -> L3Expr {
    L3Expr::CallTop {
        name: name.into(),
        args,
    }
}

/// Incremental [`L3Module`] construction.
#[derive(Debug, Clone, Default)]
pub struct L3ModuleBuilder {
    module: L3Module,
}

impl L3ModuleBuilder {
    /// An empty module.
    pub fn new() -> L3ModuleBuilder {
        L3ModuleBuilder::default()
    }

    /// Declares an import from `module`'s export `name`.
    pub fn import(
        mut self,
        module: impl Into<String>,
        name: impl Into<String>,
        params: Vec<L3Ty>,
        ret: L3Ty,
    ) -> Self {
        self.module.imports.push(L3Import {
            module: module.into(),
            name: name.into(),
            params,
            ret,
        });
        self
    }

    /// Adds a function.
    pub fn fun(
        mut self,
        name: impl Into<String>,
        export: bool,
        params: Vec<(&str, L3Ty)>,
        ret: L3Ty,
        body: L3Expr,
    ) -> Self {
        self.module.funs.push(L3Fun {
            name: name.into(),
            export,
            params: params
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
            ret,
            body,
        });
        self
    }

    /// Finishes the module.
    pub fn build(self) -> L3Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_module;

    #[test]
    fn built_modules_compile_and_check() {
        // A swap round trip through a linear cell, then a join/split
        // detour, all freed exactly once.
        let body = let_(
            "c",
            new(int(5), 64),
            let_pair(
                "c2",
                "old",
                swap(var("c"), int(37)),
                add(var("old"), free(split(join(var("c2"))))),
            ),
        );
        let m = L3ModuleBuilder::new()
            .fun("main", true, vec![], L3Ty::Int, body)
            .build();
        let rw = compile_module(&m).expect("builder output compiles");
        richwasm::typecheck::check_module(&rw).expect("and typechecks");
    }

    #[test]
    fn linearity_still_enforced_on_built_modules() {
        // Double free: the L3 compiler must reject (builders add no
        // laundering).
        let body = let_("c", new(int(1), 64), add(free(var("c")), free(var("c"))));
        let m = L3ModuleBuilder::new()
            .fun("main", true, vec![], L3Ty::Int, body)
            .build();
        assert!(compile_module(&m).is_err());
    }
}
