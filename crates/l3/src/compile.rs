//! The L3 → RichWasm compiler: linear type checking and one-phase code
//! generation (paper §5).

use std::collections::BTreeMap;

use richwasm::syntax::instr::LocalEffect;
use richwasm::syntax::{
    ArrowType, FunType, Func, HeapType, Instr, Loc, MemPriv, Pretype, Qual, Size, Table, Type,
    Value,
};

use crate::ast::{L3Expr, L3Module, L3Op, L3Ty};

/// An error from the L3 compiler. Unlike ML, L3 *does* check linearity
/// itself: misuse of a capability is caught here (and would also be
/// caught by RichWasm).
#[derive(Debug, Clone, PartialEq)]
pub enum L3Error {
    /// An L3 type error.
    Type(String),
    /// A linearity violation (variable used twice / never used).
    Linearity(String),
    /// Outside the supported fragment.
    Unsupported(String),
}

impl std::fmt::Display for L3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            L3Error::Type(s) => write!(f, "L3 type error: {s}"),
            L3Error::Linearity(s) => write!(f, "L3 linearity error: {s}"),
            L3Error::Unsupported(s) => write!(f, "unsupported L3 construct: {s}"),
        }
    }
}

impl std::error::Error for L3Error {}

fn terr<T>(m: impl Into<String>) -> Result<T, L3Error> {
    Err(L3Error::Type(m.into()))
}

/// Translates an L3 type to RichWasm.
pub fn translate_ty(t: &L3Ty) -> Type {
    match t {
        L3Ty::Unit => Type::unit(),
        L3Ty::Int => Type::num(richwasm::syntax::NumType::I32),
        L3Ty::Prod(a, b) => {
            let (ra, rb) = (translate_ty(a), translate_ty(b));
            let q = if t.is_linear() { Qual::Lin } else { Qual::Unr };
            Pretype::Prod(vec![ra, rb]).with_qual(q)
        }
        L3Ty::PtrCap(inner, bits) => {
            // ∃ρ. (Cap ρ τ ⊗ !Ptr ρ): the linear capability paired with an
            // unrestricted pointer (§2: "an unrestricted (copyable)
            // pointer … and a linear capability").
            let psi = cell_heap(inner, *bits);
            let pair = Pretype::Prod(vec![
                Pretype::Cap(MemPriv::ReadWrite, Loc::Var(0), psi).lin(),
                Pretype::Ptr(Loc::Var(0)).unr(),
            ])
            .lin();
            Pretype::ExistsLoc(Box::new(pair)).lin()
        }
        L3Ty::Ref(inner, bits) => {
            let psi = cell_heap(inner, *bits);
            Pretype::ExistsLoc(Box::new(
                Pretype::Ref(MemPriv::ReadWrite, Loc::Var(0), psi).lin(),
            ))
            .lin()
        }
        L3Ty::Foreign(t) => t.clone(),
    }
}

/// The heap type of an L3 cell: a one-field struct with the tracked slot
/// size.
fn cell_heap(inner: &L3Ty, bits: u64) -> HeapType {
    HeapType::Struct(vec![(translate_ty(inner), Size::Const(bits))])
}

/// A callable signature.
#[derive(Debug, Clone)]
struct Sig {
    idx: u32,
    params: Vec<L3Ty>,
    ret: L3Ty,
}

/// A bound variable.
struct Binding {
    name: String,
    slot: u32,
    ty: L3Ty,
    used: bool,
    def_depth: usize,
}

struct Compiler<'m> {
    sigs: &'m BTreeMap<String, Sig>,
    vars: Vec<Binding>,
    n_slots: u32,
    n_params: u32,
    /// Per-block sets of outer linear slots consumed within (block local
    /// effects).
    scopes: Vec<Vec<u32>>,
}

impl<'m> Compiler<'m> {
    fn fresh(&mut self) -> u32 {
        let s = self.n_slots;
        self.n_slots += 1;
        s
    }

    fn depth(&self) -> usize {
        self.scopes.len() - 1
    }

    fn enter(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn exit(&mut self) -> Vec<LocalEffect> {
        let mut slots = self.scopes.pop().expect("scope");
        slots.sort_unstable();
        slots.dedup();
        slots
            .into_iter()
            .map(|s| LocalEffect::new(s, Type::unit()))
            .collect()
    }

    fn bind(&mut self, name: &str, ty: L3Ty) -> u32 {
        let slot = self.fresh();
        self.vars.push(Binding {
            name: name.to_string(),
            slot,
            ty,
            used: false,
            def_depth: self.depth(),
        });
        slot
    }

    /// Unbinds the most recent binding, enforcing that linear variables
    /// were consumed.
    fn unbind(&mut self, out: &mut Vec<Instr>) -> Result<(), L3Error> {
        let b = self.vars.pop().expect("binding");
        if b.ty.is_linear() && !b.used {
            return Err(L3Error::Linearity(format!(
                "linear variable {} never used",
                b.name
            )));
        }
        // Reset unrestricted slots so enclosing blocks stay effect-free.
        if !b.ty.is_linear() {
            out.push(Instr::Val(Value::Unit));
            out.push(Instr::SetLocal(b.slot));
        }
        Ok(())
    }

    fn use_var(&mut self, name: &str) -> Result<(u32, L3Ty, usize), L3Error> {
        let depth = self.depth();
        let Some(b) = self.vars.iter_mut().rev().find(|b| b.name == name) else {
            return terr(format!("unbound variable {name}"));
        };
        if b.ty.is_linear() {
            if b.used {
                return Err(L3Error::Linearity(format!(
                    "linear variable {name} used twice"
                )));
            }
            b.used = true;
        }
        let _ = depth;
        Ok((b.slot, b.ty.clone(), b.def_depth))
    }

    fn read_var(&mut self, out: &mut Vec<Instr>, name: &str) -> Result<L3Ty, L3Error> {
        let (slot, ty, def_depth) = self.use_var(name)?;
        let q = if ty.is_linear() { Qual::Lin } else { Qual::Unr };
        out.push(Instr::GetLocal(slot, q));
        if q == Qual::Lin {
            for level in (def_depth + 1)..self.scopes.len() {
                self.scopes[level].push(slot);
            }
        }
        Ok(ty)
    }

    #[allow(clippy::too_many_lines)]
    fn gen(&mut self, e: &L3Expr, out: &mut Vec<Instr>) -> Result<L3Ty, L3Error> {
        match e {
            L3Expr::Unit => {
                out.push(Instr::Val(Value::Unit));
                Ok(L3Ty::Unit)
            }
            L3Expr::Int(v) => {
                out.push(Instr::i32(*v));
                Ok(L3Ty::Int)
            }
            L3Expr::Var(x) => self.read_var(out, x),
            L3Expr::Let(x, e1, e2) => {
                let t1 = self.gen(e1, out)?;
                let slot = self.bind(x, t1);
                out.push(Instr::SetLocal(slot));
                let t2 = self.gen(e2, out)?;
                self.unbind(out)?;
                Ok(t2)
            }
            L3Expr::LetPair(x, y, e1, e2) => {
                let t1 = self.gen(e1, out)?;
                let L3Ty::Prod(a, b) = t1 else {
                    return terr(format!("let-pair of non-pair {t1:?}"));
                };
                out.push(Instr::Ungroup);
                // Stack: [a, b]; bind y (top) first.
                let sy = self.bind(y, (*b).clone());
                // Rebind order: x below y in the vars stack, but we must
                // pop y's value first.
                out.push(Instr::SetLocal(sy));
                let sx = self.bind(x, (*a).clone());
                out.push(Instr::SetLocal(sx));
                let t2 = self.gen(e2, out)?;
                self.unbind(out)?; // x
                                   // y was pushed before x in `vars`… unbind pops the most
                                   // recent, which is x; now y.
                self.unbind(out)?;
                Ok(t2)
            }
            L3Expr::Pair(e1, e2) => {
                let t1 = self.gen(e1, out)?;
                let t2 = self.gen(e2, out)?;
                let pair = L3Ty::Prod(Box::new(t1), Box::new(t2));
                let q = if pair.is_linear() {
                    Qual::Lin
                } else {
                    Qual::Unr
                };
                out.push(Instr::Group(2, q));
                Ok(pair)
            }
            L3Expr::Seq(e1, e2) => {
                let t1 = self.gen(e1, out)?;
                if t1.is_linear() {
                    return Err(L3Error::Linearity("sequencing drops a linear value".into()));
                }
                out.push(Instr::Drop);
                self.gen(e2, out)
            }
            L3Expr::Op(op, e1, e2) => {
                let t1 = self.gen(e1, out)?;
                let t2 = self.gen(e2, out)?;
                if t1 != L3Ty::Int || t2 != L3Ty::Int {
                    return terr("arithmetic on non-int");
                }
                use richwasm::syntax::instr::{IntBinop, IntRelop, NumInstr, Sign};
                use richwasm::syntax::NumType;
                let n = match op {
                    L3Op::Add => NumInstr::IntBinop(NumType::I32, IntBinop::Add),
                    L3Op::Sub => NumInstr::IntBinop(NumType::I32, IntBinop::Sub),
                    L3Op::Mul => NumInstr::IntBinop(NumType::I32, IntBinop::Mul),
                    L3Op::Eq => NumInstr::IntRelop(NumType::I32, IntRelop::Eq),
                    L3Op::Lt => NumInstr::IntRelop(NumType::I32, IntRelop::Lt(Sign::S)),
                };
                out.push(Instr::Num(n));
                Ok(L3Ty::Int)
            }
            L3Expr::If(c, a, b) => {
                let tc = self.gen(c, out)?;
                if tc != L3Ty::Int {
                    return terr("if condition must be !Int");
                }
                self.enter();
                // Each arm checks against the *same* entry usage state, and
                // both arms must consume exactly the same linear variables
                // (additive elimination).
                let saved: Vec<bool> = self.vars.iter().map(|v| v.used).collect();
                let mut ta_out = Vec::new();
                let ta = self.gen(a, &mut ta_out)?;
                let after_a: Vec<bool> = self.vars.iter().map(|v| v.used).collect();
                for (v, s) in self.vars.iter_mut().zip(&saved) {
                    v.used = *s;
                }
                let mut tb_out = Vec::new();
                let tb = self.gen(b, &mut tb_out)?;
                let after_b: Vec<bool> = self.vars.iter().map(|v| v.used).collect();
                if after_a != after_b {
                    let name = self
                        .vars
                        .iter()
                        .zip(after_a.iter().zip(&after_b))
                        .find(|(_, (x, y))| x != y)
                        .map(|(v, _)| v.name.clone())
                        .unwrap_or_default();
                    return Err(L3Error::Linearity(format!(
                        "if arms consume different linear variables ({name})"
                    )));
                }
                let effects = self.exit();
                if ta != tb {
                    return terr(format!("if arms disagree: {ta:?} vs {tb:?}"));
                }
                out.push(Instr::IfI(
                    richwasm::syntax::instr::Block::new(
                        ArrowType::new(vec![], vec![translate_ty(&ta)]),
                        effects,
                    ),
                    ta_out,
                    tb_out,
                ));
                Ok(ta)
            }
            L3Expr::New(e, bits) => {
                let t = self.gen(e, out)?;
                let ctx = richwasm::env::KindCtx::new();
                let vsz = richwasm::sizing::size_of_type(&ctx, &translate_ty(&t))
                    .map_err(|e| L3Error::Type(e.to_string()))?;
                if !richwasm::solver::size_leq(&ctx, &vsz, &Size::Const(*bits)) {
                    return terr(format!("value of type {t:?} does not fit {bits}-bit cell"));
                }
                out.push(Instr::StructMalloc(vec![Size::Const(*bits)], Qual::Lin));
                // ∃ρ.ref → ∃ρ.(cap ⊗ ptr)
                let result = L3Ty::PtrCap(Box::new(t), *bits);
                let body = vec![
                    Instr::RefSplit,
                    Instr::Group(2, Qual::Lin),
                    Instr::MemPack(Loc::Var(0)),
                ];
                out.push(Instr::MemUnpack(
                    richwasm::syntax::instr::Block::new(
                        ArrowType::new(vec![], vec![translate_ty(&result)]),
                        vec![],
                    ),
                    body,
                ));
                Ok(result)
            }
            L3Expr::Free(e) => {
                let t = self.gen(e, out)?;
                let (inner, _bits) = match &t {
                    L3Ty::PtrCap(i, b) => (i.clone(), *b),
                    L3Ty::Ref(i, b) => (i.clone(), *b),
                    other => return terr(format!("free of non-cell {other:?}")),
                };
                let is_ref = matches!(t, L3Ty::Ref(..));
                let rt = translate_ty(&inner);
                let q = rt.qual;
                let tmp = self.fresh();
                let mut body = Vec::new();
                if !is_ref {
                    body.push(Instr::Ungroup);
                    body.push(Instr::RefJoin);
                }
                body.push(Instr::Val(Value::Unit));
                body.push(Instr::StructSwap(0));
                body.push(Instr::SetLocal(tmp));
                body.push(Instr::StructFree);
                body.push(Instr::GetLocal(tmp, q));
                if q == Qual::Unr {
                    body.push(Instr::Val(Value::Unit));
                    body.push(Instr::SetLocal(tmp));
                }
                out.push(Instr::MemUnpack(
                    richwasm::syntax::instr::Block::new(ArrowType::new(vec![], vec![rt]), vec![]),
                    body,
                ));
                Ok(*inner)
            }
            L3Expr::Swap(e1, e2) => {
                let tv = self.gen(e2, out)?;
                let tmp_v = self.fresh();
                out.push(Instr::SetLocal(tmp_v));
                let t1 = self.gen(e1, out)?;
                let L3Ty::PtrCap(old, bits) = t1 else {
                    return terr(format!("swap on non-capability {t1:?}"));
                };
                let ctx = richwasm::env::KindCtx::new();
                let vsz = richwasm::sizing::size_of_type(&ctx, &translate_ty(&tv))
                    .map_err(|e| L3Error::Type(e.to_string()))?;
                if !richwasm::solver::size_leq(&ctx, &vsz, &Size::Const(bits)) {
                    return terr(format!(
                        "swap value {tv:?} does not fit the {bits}-bit slot (sizes are \
                         tracked, §5)"
                    ));
                }
                let new_pkg = L3Ty::PtrCap(Box::new(tv.clone()), bits);
                let result = L3Ty::Prod(Box::new(new_pkg.clone()), Box::new((*old).clone()));
                let q_old = translate_ty(&old).qual;
                let q_v = translate_ty(&tv).qual;
                let tmp_old = self.fresh();
                let mut body = vec![
                    Instr::Ungroup,
                    Instr::RefJoin,
                    Instr::GetLocal(tmp_v, q_v),
                    Instr::StructSwap(0),
                    Instr::SetLocal(tmp_old),
                    Instr::RefSplit,
                    Instr::Group(2, Qual::Lin),
                    Instr::MemPack(Loc::Var(0)),
                    Instr::GetLocal(tmp_old, q_old),
                ];
                if q_old == Qual::Unr {
                    body.push(Instr::Val(Value::Unit));
                    body.push(Instr::SetLocal(tmp_old));
                }
                let mut effects = vec![];
                if q_v == Qual::Lin {
                    effects.push(LocalEffect::new(tmp_v, Type::unit()));
                }
                out.push(Instr::MemUnpack(
                    richwasm::syntax::instr::Block::new(
                        ArrowType::new(vec![], vec![translate_ty(&new_pkg), translate_ty(&old)]),
                        effects,
                    ),
                    body,
                ));
                if q_v == Qual::Unr {
                    out.push(Instr::Val(Value::Unit));
                    out.push(Instr::SetLocal(tmp_v));
                }
                out.push(Instr::Group(2, Qual::Lin));
                Ok(result)
            }
            L3Expr::Join(e) => {
                let t = self.gen(e, out)?;
                let L3Ty::PtrCap(inner, bits) = t else {
                    return terr(format!("join of non-capability {t:?}"));
                };
                let result = L3Ty::Ref(inner, bits);
                let body = vec![Instr::Ungroup, Instr::RefJoin, Instr::MemPack(Loc::Var(0))];
                out.push(Instr::MemUnpack(
                    richwasm::syntax::instr::Block::new(
                        ArrowType::new(vec![], vec![translate_ty(&result)]),
                        vec![],
                    ),
                    body,
                ));
                Ok(result)
            }
            L3Expr::Split(e) => {
                let t = self.gen(e, out)?;
                let L3Ty::Ref(inner, bits) = t else {
                    return terr(format!("split of non-reference {t:?}"));
                };
                let result = L3Ty::PtrCap(inner, bits);
                let body = vec![
                    Instr::RefSplit,
                    Instr::Group(2, Qual::Lin),
                    Instr::MemPack(Loc::Var(0)),
                ];
                out.push(Instr::MemUnpack(
                    richwasm::syntax::instr::Block::new(
                        ArrowType::new(vec![], vec![translate_ty(&result)]),
                        vec![],
                    ),
                    body,
                ));
                Ok(result)
            }
            L3Expr::CallTop { name, args } => {
                let sig = self
                    .sigs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| L3Error::Type(format!("unknown function {name}")))?;
                if args.len() != sig.params.len() {
                    return terr(format!(
                        "{name} expects {} arguments, got {}",
                        sig.params.len(),
                        args.len()
                    ));
                }
                for (a, p) in args.iter().zip(&sig.params) {
                    let t = self.gen(a, out)?;
                    if &t != p {
                        return terr(format!("argument {t:?} vs parameter {p:?}"));
                    }
                }
                out.push(Instr::Call(sig.idx, vec![]));
                Ok(sig.ret)
            }
        }
    }
}

/// Compiles an L3 module to RichWasm.
///
/// # Errors
///
/// L3 type errors *and* linearity violations are reported as [`L3Error`]
/// — L3's own type system is linear (contrast with the ML compiler).
pub fn compile_module(m: &L3Module) -> Result<richwasm::syntax::Module, L3Error> {
    let mut sigs = BTreeMap::new();
    for (i, im) in m.imports.iter().enumerate() {
        sigs.insert(
            im.name.clone(),
            Sig {
                idx: i as u32,
                params: im.params.clone(),
                ret: im.ret.clone(),
            },
        );
    }
    let n_imports = m.imports.len() as u32;
    for (i, f) in m.funs.iter().enumerate() {
        sigs.insert(
            f.name.clone(),
            Sig {
                idx: n_imports + i as u32,
                params: f.params.iter().map(|(_, t)| t.clone()).collect(),
                ret: f.ret.clone(),
            },
        );
    }

    let mut funcs = Vec::new();
    for im in &m.imports {
        funcs.push(Func::Imported {
            exports: vec![],
            module: im.module.clone(),
            name: im.name.clone(),
            ty: import_funtype(im),
        });
    }
    for f in m.funs.iter() {
        let mut c = Compiler {
            sigs: &sigs,
            vars: Vec::new(),
            n_slots: f.params.len() as u32,
            n_params: f.params.len() as u32,
            scopes: vec![Vec::new()],
        };
        for (i, (n, t)) in f.params.iter().enumerate() {
            c.vars.push(Binding {
                name: n.clone(),
                slot: i as u32,
                ty: t.clone(),
                used: false,
                def_depth: 0,
            });
        }
        let mut body = Vec::new();
        let rt = c.gen(&f.body, &mut body)?;
        if rt != f.ret {
            return terr(format!(
                "{}: body has type {rt:?}, declared {:?}",
                f.name, f.ret
            ));
        }
        // Every linear parameter must have been consumed.
        for b in &c.vars {
            if b.ty.is_linear() && !b.used {
                return Err(L3Error::Linearity(format!(
                    "{}: linear parameter {} never used",
                    f.name, b.name
                )));
            }
        }
        let ty = FunType::mono(
            f.params.iter().map(|(_, t)| translate_ty(t)).collect(),
            vec![translate_ty(&f.ret)],
        );
        let extra = c.n_slots - c.n_params;
        funcs.push(Func::Defined {
            exports: if f.export {
                vec![f.name.clone()]
            } else {
                vec![]
            },
            ty,
            locals: vec![Size::Const(64); extra as usize],
            body,
        });
    }
    Ok(richwasm::syntax::Module {
        funcs,
        globals: vec![],
        table: Table::default(),
    })
}

/// The RichWasm type of an L3 import declaration (the linking boundary).
pub fn import_funtype(im: &crate::ast::L3Import) -> FunType {
    FunType::mono(
        im.params.iter().map(translate_ty).collect(),
        vec![translate_ty(&im.ret)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::L3Fun;
    use richwasm::interp::Runtime;
    use richwasm::typecheck::check_module;

    fn run_main(m: &L3Module) -> Result<Value, String> {
        let rw = compile_module(m).map_err(|e| e.to_string())?;
        check_module(&rw).map_err(|e| format!("richwasm: {e}"))?;
        let mut rt = Runtime::new();
        let idx = rt.instantiate("l3", rw).map_err(|e| e.to_string())?;
        let r = rt.invoke(idx, "main", vec![]).map_err(|e| e.to_string())?;
        Ok(r.values[0].clone())
    }

    fn main_fn(body: L3Expr, ret: L3Ty) -> L3Module {
        L3Module {
            funs: vec![L3Fun {
                name: "main".into(),
                export: true,
                params: vec![],
                ret,
                body,
            }],
            ..L3Module::default()
        }
    }

    fn var(x: &str) -> Box<L3Expr> {
        Box::new(L3Expr::Var(x.into()))
    }

    #[test]
    fn new_free_roundtrip() {
        // let p = new 42 in free p
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(42)), 64)),
                Box::new(L3Expr::Free(var("p"))),
            ),
            L3Ty::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn swap_strong_update() {
        // let p = new 1 in let (p2, old) = swap p 42 in old + free p2
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(1)), 64)),
                Box::new(L3Expr::LetPair(
                    "p2".into(),
                    "old".into(),
                    Box::new(L3Expr::Swap(var("p"), Box::new(L3Expr::Int(42)))),
                    Box::new(L3Expr::Op(
                        L3Op::Add,
                        var("old"),
                        Box::new(L3Expr::Free(var("p2"))),
                    )),
                )),
            ),
            L3Ty::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(43));
    }

    #[test]
    fn swap_changes_type() {
        // Strong update: an int cell becomes a unit cell.
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(7)), 64)),
                Box::new(L3Expr::LetPair(
                    "p2".into(),
                    "old".into(),
                    Box::new(L3Expr::Swap(var("p"), Box::new(L3Expr::Unit))),
                    Box::new(L3Expr::Seq(Box::new(L3Expr::Free(var("p2"))), var("old"))),
                )),
            ),
            L3Ty::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(7));
    }

    #[test]
    fn swap_too_big_rejected_statically() {
        // A pair of two ints (64 bits each slot… the pair is 64 bits) into
        // a 32-bit cell: the size-tracking check rejects it.
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(7)), 32)),
                Box::new(L3Expr::LetPair(
                    "p2".into(),
                    "old".into(),
                    Box::new(L3Expr::Swap(
                        var("p"),
                        Box::new(L3Expr::Pair(
                            Box::new(L3Expr::Int(1)),
                            Box::new(L3Expr::Int(2)),
                        )),
                    )),
                    Box::new(L3Expr::Seq(
                        Box::new(L3Expr::Seq(Box::new(L3Expr::Free(var("p2"))), var("old"))),
                        Box::new(L3Expr::Int(0)),
                    )),
                )),
            ),
            L3Ty::Int,
        );
        let err = compile_module(&m).unwrap_err();
        assert!(matches!(err, L3Error::Type(_)), "{err}");
    }

    #[test]
    fn join_split_roundtrip() {
        let m = main_fn(
            L3Expr::Free(Box::new(L3Expr::Split(Box::new(L3Expr::Join(Box::new(
                L3Expr::New(Box::new(L3Expr::Int(42)), 64),
            )))))),
            L3Ty::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }

    #[test]
    fn free_of_ref_directly() {
        let m = main_fn(
            L3Expr::Free(Box::new(L3Expr::Join(Box::new(L3Expr::New(
                Box::new(L3Expr::Int(9)),
                64,
            ))))),
            L3Ty::Int,
        );
        assert_eq!(run_main(&m).unwrap(), Value::i32(9));
    }

    #[test]
    fn use_capability_twice_is_l3_error() {
        // free p; free p — L3's own linear type system catches this.
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(1)), 64)),
                Box::new(L3Expr::Seq(
                    Box::new(L3Expr::Free(var("p"))),
                    Box::new(L3Expr::Free(var("p"))),
                )),
            ),
            L3Ty::Int,
        );
        // (Seq of Int then … also fails; use the right shape anyway.)
        let err = compile_module(&m).unwrap_err();
        assert!(matches!(err, L3Error::Linearity(_)), "{err:?}");
    }

    #[test]
    fn leaking_capability_is_l3_error() {
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(1)), 64)),
                Box::new(L3Expr::Int(0)),
            ),
            L3Ty::Int,
        );
        let err = compile_module(&m).unwrap_err();
        assert!(matches!(err, L3Error::Linearity(_)), "{err:?}");
    }

    #[test]
    fn compiled_l3_typechecks() {
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(5)), 64)),
                Box::new(L3Expr::Free(var("p"))),
            ),
            L3Ty::Int,
        );
        let rw = compile_module(&m).unwrap();
        check_module(&rw).unwrap();
    }

    #[test]
    fn functions_and_calls() {
        let m = L3Module {
            funs: vec![
                L3Fun {
                    name: "boxed_double".into(),
                    export: false,
                    params: vec![("c".into(), L3Ty::PtrCap(Box::new(L3Ty::Int), 64))],
                    ret: L3Ty::Int,
                    body: L3Expr::Let(
                        "v".into(),
                        Box::new(L3Expr::Free(var("c"))),
                        Box::new(L3Expr::Op(L3Op::Mul, var("v"), Box::new(L3Expr::Int(2)))),
                    ),
                },
                L3Fun {
                    name: "main".into(),
                    export: true,
                    params: vec![],
                    ret: L3Ty::Int,
                    body: L3Expr::CallTop {
                        name: "boxed_double".into(),
                        args: vec![L3Expr::New(Box::new(L3Expr::Int(21)), 64)],
                    },
                },
            ],
            ..L3Module::default()
        };
        assert_eq!(run_main(&m).unwrap(), Value::i32(42));
    }
}

#[cfg(test)]
mod if_linearity_tests {
    use super::*;
    use crate::ast::L3Fun;

    fn main_fn(body: L3Expr, ret: L3Ty) -> L3Module {
        L3Module {
            funs: vec![L3Fun {
                name: "main".into(),
                export: true,
                params: vec![],
                ret,
                body,
            }],
            ..L3Module::default()
        }
    }

    #[test]
    fn arms_must_consume_the_same_linear_variables() {
        // if 1 then free p else 0 — the else arm leaks p.
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(1)), 64)),
                Box::new(L3Expr::If(
                    Box::new(L3Expr::Int(1)),
                    Box::new(L3Expr::Free(Box::new(L3Expr::Var("p".into())))),
                    Box::new(L3Expr::Int(0)),
                )),
            ),
            L3Ty::Int,
        );
        let err = compile_module(&m).unwrap_err();
        assert!(matches!(err, L3Error::Linearity(_)), "{err}");
    }

    #[test]
    fn both_arms_consuming_is_fine() {
        let free_p = || Box::new(L3Expr::Free(Box::new(L3Expr::Var("p".into()))));
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(5)), 64)),
                Box::new(L3Expr::If(Box::new(L3Expr::Int(1)), free_p(), free_p())),
            ),
            L3Ty::Int,
        );
        let rw = compile_module(&m).unwrap();
        richwasm::typecheck::check_module(&rw).unwrap();
        let mut rt = richwasm::interp::Runtime::new();
        let i = rt.instantiate("m", rw).unwrap();
        assert_eq!(
            rt.invoke(i, "main", vec![]).unwrap().values,
            vec![Value::i32(5)]
        );
    }

    #[test]
    fn use_in_one_arm_then_after_is_caught() {
        // if 1 then free p else free p; then free p again afterwards.
        let free_p = || Box::new(L3Expr::Free(Box::new(L3Expr::Var("p".into()))));
        let m = main_fn(
            L3Expr::Let(
                "p".into(),
                Box::new(L3Expr::New(Box::new(L3Expr::Int(5)), 64)),
                Box::new(L3Expr::Seq(
                    Box::new(L3Expr::If(Box::new(L3Expr::Int(1)), free_p(), free_p())),
                    free_p(),
                )),
            ),
            L3Ty::Int,
        );
        let err = compile_module(&m).unwrap_err();
        // Either the Seq drop of Int fails first or the double use: both
        // are linearity errors here the use-twice fires.
        assert!(matches!(err, L3Error::Linearity(_)), "{err}");
    }
}
