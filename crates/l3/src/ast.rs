//! L3 abstract syntax (paper §5; language of Morrisett–Ahmed–Fluet with
//! size-tracked capabilities and the `Ref`/`join`/`split` extensions).

use richwasm::syntax as rw;

/// An L3 type.
#[derive(Debug, Clone, PartialEq)]
pub enum L3Ty {
    /// Unit (unrestricted).
    Unit,
    /// 32-bit integers (unrestricted; `!Int` in L3 notation).
    Int,
    /// A multiplicative pair `τ1 ⊗ τ2` (unboxed; linear if either side
    /// is).
    Prod(Box<L3Ty>, Box<L3Ty>),
    /// The owned-cell package `∃ρ. !Ptr ρ ⊗ Cap ρ τ` with a tracked slot
    /// size in bits (§5: capabilities track sizes).
    PtrCap(Box<L3Ty>, u64),
    /// The ML-like reference extension (linking types): a linear RichWasm
    /// reference with tracked slot size.
    Ref(Box<L3Ty>, u64),
    /// A foreign RichWasm type (for import signatures at the boundary).
    Foreign(rw::Type),
}

impl L3Ty {
    /// `true` when values must be used exactly once.
    pub fn is_linear(&self) -> bool {
        match self {
            L3Ty::Unit | L3Ty::Int => false,
            L3Ty::Prod(a, b) => a.is_linear() || b.is_linear(),
            L3Ty::PtrCap(..) | L3Ty::Ref(..) => true,
            L3Ty::Foreign(t) => t.qual == rw::Qual::Lin,
        }
    }
}

/// Primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum L3Op {
    Add,
    Sub,
    Mul,
    Eq,
    Lt,
}

/// An L3 expression.
#[derive(Debug, Clone, PartialEq)]
pub enum L3Expr {
    /// `()`.
    Unit,
    /// An integer literal (`!n`).
    Int(i32),
    /// A variable.
    Var(String),
    /// `let x = e1 in e2`.
    Let(String, Box<L3Expr>, Box<L3Expr>),
    /// `let (x, y) = e1 in e2` — eliminates a pair.
    LetPair(String, String, Box<L3Expr>, Box<L3Expr>),
    /// Pair construction.
    Pair(Box<L3Expr>, Box<L3Expr>),
    /// `e1; e2` (the first must be unrestricted).
    Seq(Box<L3Expr>, Box<L3Expr>),
    /// `new e sz`: allocate a linear cell of `sz` bits holding `e`,
    /// yielding `∃ρ. !Ptr ρ ⊗ Cap ρ τ`.
    New(Box<L3Expr>, u64),
    /// `free e`: deallocate, returning the contents.
    Free(Box<L3Expr>),
    /// `swap e1 e2`: strong update — put `e2` in the cell, returning
    /// `(package', old)` as a pair.
    Swap(Box<L3Expr>, Box<L3Expr>),
    /// `join e`: capability–pointer package → ML-like reference (FFI
    /// extension, §2.2).
    Join(Box<L3Expr>),
    /// `split e`: reference → capability–pointer package.
    Split(Box<L3Expr>),
    /// A primitive operation on ints.
    Op(L3Op, Box<L3Expr>, Box<L3Expr>),
    /// `if e != 0 then e1 else e2`.
    If(Box<L3Expr>, Box<L3Expr>, Box<L3Expr>),
    /// Direct call of a top-level function or import.
    CallTop {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<L3Expr>,
    },
}

/// A top-level L3 function.
#[derive(Debug, Clone, PartialEq)]
pub struct L3Fun {
    /// Name (and export name when exported).
    pub name: String,
    /// Whether the function is exported.
    pub export: bool,
    /// Parameters.
    pub params: Vec<(String, L3Ty)>,
    /// Result type.
    pub ret: L3Ty,
    /// Body.
    pub body: L3Expr,
}

/// An import (type declared in L3 terms, translated at the boundary).
#[derive(Debug, Clone, PartialEq)]
pub struct L3Import {
    /// Providing module.
    pub module: String,
    /// Export name (also the `CallTop` name).
    pub name: String,
    /// Parameter types.
    pub params: Vec<L3Ty>,
    /// Result type.
    pub ret: L3Ty,
}

/// An L3 module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct L3Module {
    /// Imports.
    pub imports: Vec<L3Import>,
    /// Top-level functions.
    pub funs: Vec<L3Fun>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearity_classification() {
        assert!(!L3Ty::Int.is_linear());
        assert!(L3Ty::PtrCap(Box::new(L3Ty::Int), 64).is_linear());
        assert!(L3Ty::Ref(Box::new(L3Ty::Int), 64).is_linear());
        assert!(L3Ty::Prod(
            Box::new(L3Ty::Int),
            Box::new(L3Ty::Ref(Box::new(L3Ty::Int), 64))
        )
        .is_linear());
        assert!(!L3Ty::Prod(Box::new(L3Ty::Int), Box::new(L3Ty::Unit)).is_linear());
    }
}
