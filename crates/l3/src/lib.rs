//! # richwasm-l3
//!
//! A compiler from **L3** — the linear language with locations of
//! Morrisett, Ahmed & Fluet — to RichWasm (paper §5).
//!
//! L3's key feature is *safe strong updates*: allocating a cell yields an
//! existential package `∃ρ. !Ptr ρ ⊗ Cap ρ τ` — an unrestricted pointer
//! plus a linear capability. The capability is the ownership token; `swap`
//! may replace the contents with a value of a *different type*. Following
//! §5, our L3 capabilities additionally track the **size** of the
//! referenced slot, so strong updates are checked to fit.
//!
//! Compilation to RichWasm is direct (§5: "it is much easier to compile
//! … we can do so in one code generation phase" — and, per the paper, no
//! closure conversion: L3 functions are top-level only). Pointers compile
//! to `ptr`, capabilities to `cap`, packages to `∃ρ` tuples; `new`/
//! `free`/`swap` compile to `struct.malloc`/`struct.free`/`struct.swap`
//! bracketed by `ref.split`/`ref.join`.
//!
//! ## Linking types (paper §2.2, §5)
//!
//! L3 gains an ML-like `Ref` type plus `join`/`split` to convert between
//! capability–pointer pairs and references at a language boundary.
//!
//! Unlike the ML compiler, the L3 *compiler* enforces linearity itself —
//! L3 is a typed linear language, so using a capability twice or leaking
//! one is an **L3-level** error here (and would also be caught by the
//! RichWasm checker).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod compile;

pub use ast::{L3Expr, L3Fun, L3Import, L3Module, L3Op, L3Ty};
pub use compile::{compile_module, translate_ty, L3Error};
