//! Differential tests: every program is executed by the RichWasm
//! interpreter *and* compiled to Wasm and executed by the Wasm
//! interpreter — the results must agree (paper §6: compilation preserves
//! behaviour; erasure of type-level instructions costs nothing).

use richwasm::interp::Runtime;
use richwasm::syntax::instr::Block;
use richwasm::syntax::*;
use richwasm_lower::lower_modules;
use richwasm_wasm::exec::{Val, WasmLinker};
use richwasm_wasm::validate_module;

fn i32t() -> Type {
    Type::num(NumType::I32)
}

/// Runs `main` (no args → one i32) through both pipelines.
fn both_ways(m: Module) -> (i32, i32) {
    // RichWasm interpreter.
    let mut rt = Runtime::new();
    let idx = rt.instantiate("m", m.clone()).expect("richwasm typecheck");
    let direct = rt.invoke(idx, "main", vec![]).expect("richwasm run");
    let Value::Num(_, bits) = direct.values[0] else {
        panic!("non-numeric result")
    };
    let rw_result = bits as u32 as i32;

    // Lowered pipeline.
    let lowered = lower_modules(&[("m".to_string(), m)]).expect("lowering");
    let mut linker = WasmLinker::new();
    let mut main_inst = 0;
    for (name, wm) in &lowered {
        validate_module(wm).expect("lowered module validates");
        let i = linker
            .instantiate(name, wm.clone())
            .expect("wasm instantiation");
        if name == "m" {
            main_inst = i;
        }
    }
    let wasm_out = linker.invoke(main_inst, "main", &[]).expect("wasm run");
    let Val::I32(w) = wasm_out[0] else {
        panic!("non-i32 wasm result")
    };
    (rw_result, w as i32)
}

fn assert_agree(m: Module) -> i32 {
    let (a, b) = both_ways(m);
    assert_eq!(a, b, "RichWasm interpreter and lowered Wasm disagree");
    a
}

fn main_fn(ty: FunType, locals: Vec<Size>, body: Vec<Instr>) -> Module {
    Module {
        funcs: vec![Func::Defined {
            exports: vec!["main".into()],
            ty,
            locals,
            body,
        }],
        ..Module::default()
    }
}

fn add() -> Instr {
    Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add))
}

fn mul() -> Instr {
    Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Mul))
}

#[test]
fn constants_and_arithmetic() {
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![],
        vec![Instr::i32(6), Instr::i32(7), mul()],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn locals_and_i64() {
    // Exercise 64-bit slot splitting: store an i64 in a local, read it
    // back, wrap to i32.
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![Size::Const(64)],
        vec![
            Instr::Val(Value::i64(0x1_0000_002A)),
            Instr::SetLocal(0),
            Instr::GetLocal(0, Qual::Unr),
            Instr::Num(NumInstr::Convert(NumType::I32, NumType::I64)),
        ],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn control_flow_block_br() {
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![],
        vec![Instr::BlockI(
            Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
            vec![Instr::i32(42), Instr::Br(0), Instr::i32(0)],
        )],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn loop_sums_one_to_ten() {
    // local0 = i, local1 = acc
    let lt = Instr::Num(NumInstr::IntRelop(
        NumType::I32,
        instr::IntRelop::Le(instr::Sign::S),
    ));
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![Size::Const(32), Size::Const(32)],
        vec![
            Instr::i32(1),
            Instr::SetLocal(0),
            Instr::i32(0),
            Instr::SetLocal(1),
            Instr::LoopI(
                ArrowType::new(vec![], vec![]),
                vec![
                    Instr::GetLocal(1, Qual::Unr),
                    Instr::GetLocal(0, Qual::Unr),
                    add(),
                    Instr::SetLocal(1),
                    Instr::GetLocal(0, Qual::Unr),
                    Instr::i32(1),
                    add(),
                    Instr::TeeLocal(0),
                    Instr::i32(10),
                    lt,
                    Instr::BrIf(0),
                ],
            ),
            Instr::GetLocal(1, Qual::Unr),
        ],
    );
    assert_eq!(assert_agree(m), 55);
}

#[test]
fn tuples_group_ungroup() {
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![],
        vec![
            Instr::i32(40),
            Instr::i32(2),
            Instr::Group(2, Qual::Unr),
            Instr::Ungroup,
            add(),
        ],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn struct_roundtrip_linear_memory() {
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![Size::Const(32)],
        vec![
            Instr::i32(21),
            Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
            Instr::MemUnpack(
                Block::new(
                    ArrowType::new(vec![], vec![]),
                    vec![instr::LocalEffect::new(0, i32t())],
                ),
                vec![
                    Instr::StructGet(0),
                    Instr::i32(2),
                    mul(),
                    Instr::SetLocal(0),
                    Instr::StructFree,
                ],
            ),
            Instr::GetLocal(0, Qual::Unr),
        ],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn struct_strong_update() {
    // Write an i64 into a 64-bit slot that held an i32 (strong update via
    // a linear ref), then read it back.
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![Size::Const(64)],
        vec![
            Instr::i32(1),
            Instr::StructMalloc(vec![Size::Const(64)], Qual::Lin),
            Instr::MemUnpack(
                Block::new(
                    ArrowType::new(vec![], vec![]),
                    vec![instr::LocalEffect::new(0, Type::num(NumType::I64))],
                ),
                vec![
                    Instr::Val(Value::i64(42)),
                    Instr::StructSet(0),
                    Instr::Val(Value::Unit),
                    Instr::StructSwap(0),
                    Instr::SetLocal(0),
                    Instr::StructFree,
                ],
            ),
            Instr::GetLocal(0, Qual::Unr),
            Instr::Num(NumInstr::Convert(NumType::I32, NumType::I64)),
        ],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn unrestricted_memory_struct() {
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![Size::Const(32)],
        vec![
            Instr::i32(42),
            Instr::StructMalloc(vec![Size::Const(32)], Qual::Unr),
            Instr::MemUnpack(
                Block::new(
                    ArrowType::new(vec![], vec![]),
                    vec![instr::LocalEffect::new(0, i32t())],
                ),
                vec![Instr::StructGet(0), Instr::SetLocal(0), Instr::Drop],
            ),
            Instr::GetLocal(0, Qual::Unr),
        ],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn variant_case_unrestricted() {
    let cases = vec![i32t(), Type::unit()];
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![Size::Const(32)],
        vec![
            Instr::i32(42),
            Instr::VariantMalloc(0, cases.clone(), Qual::Unr),
            Instr::MemUnpack(
                Block::new(
                    ArrowType::new(vec![], vec![i32t()]),
                    vec![instr::LocalEffect::new(0, i32t())],
                ),
                vec![
                    Instr::VariantCase(
                        Qual::Unr,
                        HeapType::Variant(cases),
                        Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                        vec![vec![], vec![Instr::Drop, Instr::i32(-1)]],
                    ),
                    Instr::SetLocal(0),
                    Instr::Drop,
                    Instr::GetLocal(0, Qual::Unr),
                ],
            ),
        ],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn variant_case_linear_frees() {
    let cases = vec![i32t(), i32t()];
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![],
        vec![
            Instr::i32(21),
            Instr::VariantMalloc(1, cases.clone(), Qual::Lin),
            Instr::MemUnpack(
                Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                vec![Instr::VariantCase(
                    Qual::Lin,
                    HeapType::Variant(cases),
                    Block::new(ArrowType::new(vec![], vec![i32t()]), vec![]),
                    vec![vec![Instr::i32(0), add()], vec![Instr::i32(2), mul()]],
                )],
            ),
        ],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn arrays_end_to_end() {
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![Size::Const(32)],
        vec![
            Instr::i32(0),
            Instr::Val(Value::u32(8)),
            Instr::ArrayMalloc(Qual::Lin),
            Instr::MemUnpack(
                Block::new(
                    ArrowType::new(vec![], vec![]),
                    vec![instr::LocalEffect::new(0, i32t())],
                ),
                vec![
                    Instr::Val(Value::u32(3)),
                    Instr::i32(42),
                    Instr::ArraySet,
                    Instr::Val(Value::u32(3)),
                    Instr::ArrayGet,
                    Instr::SetLocal(0),
                    Instr::ArrayFree,
                ],
            ),
            Instr::GetLocal(0, Qual::Unr),
        ],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn direct_call_and_imports() {
    let helper = Func::Defined {
        exports: vec!["double".into()],
        ty: FunType::mono(vec![i32t()], vec![i32t()]),
        locals: vec![],
        body: vec![Instr::GetLocal(0, Qual::Unr), Instr::i32(2), mul()],
    };
    let m = Module {
        funcs: vec![
            helper,
            Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![i32t()]),
                locals: vec![],
                body: vec![Instr::i32(21), Instr::Call(0, vec![])],
            },
        ],
        ..Module::default()
    };
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn polymorphic_call_with_padding() {
    // id : ∀ (unr ⪯ α ≲ 64). [α] → [α] — instantiated at i32, the caller
    // must pad to the slot form and unpad the result.
    let id = Func::Defined {
        exports: vec![],
        ty: FunType {
            quants: vec![Quantifier::Type {
                lower_qual: Qual::Unr,
                size: Size::Const(64),
                may_contain_caps: false,
            }],
            arrow: ArrowType::new(vec![Pretype::Var(0).unr()], vec![Pretype::Var(0).unr()]),
        },
        locals: vec![],
        body: vec![Instr::GetLocal(0, Qual::Unr)],
    };
    let m = Module {
        funcs: vec![
            id,
            Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![i32t()]),
                locals: vec![],
                body: vec![
                    Instr::i32(42),
                    Instr::Call(0, vec![Index::Pretype(Pretype::Num(NumType::I32))]),
                ],
            },
        ],
        ..Module::default()
    };
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn coderef_inst_call_indirect() {
    let double = Func::Defined {
        exports: vec![],
        ty: FunType::mono(vec![i32t()], vec![i32t()]),
        locals: vec![],
        body: vec![Instr::GetLocal(0, Qual::Unr), Instr::i32(2), mul()],
    };
    let m = Module {
        funcs: vec![
            double,
            Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![i32t()]),
                locals: vec![],
                body: vec![
                    Instr::i32(21),
                    Instr::CodeRefI(0),
                    Instr::Inst(vec![]),
                    Instr::CallIndirect,
                ],
            },
        ],
        table: Table {
            exports: vec![],
            entries: vec![0],
        },
        ..Module::default()
    };
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn exist_pack_unpack_roundtrip() {
    let psi = HeapType::Exists(Qual::Unr, Size::Const(64), Box::new(Pretype::Var(0).unr()));
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![],
        vec![
            Instr::i32(42),
            Instr::ExistPack(Pretype::Num(NumType::I32), psi.clone(), Qual::Lin),
            Instr::MemUnpack(
                Block::new(ArrowType::new(vec![], vec![]), vec![]),
                vec![Instr::ExistUnpack(
                    Qual::Lin,
                    psi,
                    Block::new(ArrowType::new(vec![], vec![]), vec![]),
                    vec![Instr::Drop],
                )],
            ),
            Instr::i32(42),
        ],
    );
    assert_eq!(assert_agree(m), 42);
}

#[test]
fn cross_module_linking() {
    let provider = Module {
        funcs: vec![Func::Defined {
            exports: vec!["get21".into()],
            ty: FunType::mono(vec![], vec![i32t()]),
            locals: vec![],
            body: vec![Instr::i32(21)],
        }],
        ..Module::default()
    };
    let client = Module {
        funcs: vec![
            Func::Imported {
                exports: vec![],
                module: "provider".into(),
                name: "get21".into(),
                ty: FunType::mono(vec![], vec![i32t()]),
            },
            Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![i32t()]),
                locals: vec![],
                body: vec![Instr::Call(0, vec![]), Instr::i32(2), mul()],
            },
        ],
        ..Module::default()
    };

    // RichWasm side.
    let mut rt = Runtime::new();
    rt.instantiate("provider", provider.clone()).unwrap();
    let c = rt.instantiate("client", client.clone()).unwrap();
    let direct = rt.invoke(c, "main", vec![]).unwrap();
    assert_eq!(direct.values, vec![Value::i32(42)]);

    // Lowered side.
    let lowered = lower_modules(&[
        ("provider".to_string(), provider),
        ("client".to_string(), client),
    ])
    .unwrap();
    let mut linker = WasmLinker::new();
    let mut client_inst = 0;
    for (name, wm) in &lowered {
        validate_module(wm).expect("validates");
        let i = linker.instantiate(name, wm.clone()).unwrap();
        if name == "client" {
            client_inst = i;
        }
    }
    assert_eq!(
        linker.invoke(client_inst, "main", &[]).unwrap(),
        vec![Val::I32(42)]
    );
}

#[test]
fn erased_instructions_cost_nothing() {
    // qualify / ref.split / ref.join / rec.fold / mem.pack compile to no
    // instructions: the lowered body of a function that only shuffles
    // ownership is the same as one that does nothing.
    let lin_i32 = Pretype::Num(NumType::I32).lin();
    let noop_shuffle = main_fn(
        FunType::mono(vec![], vec![lin_i32.clone()]),
        vec![],
        vec![
            Instr::i32(42),
            Instr::Qualify(Qual::Lin),
            Instr::Qualify(Qual::Lin),
        ],
    );
    let plain = main_fn(
        FunType::mono(vec![], vec![lin_i32]),
        vec![],
        vec![Instr::i32(42), Instr::Qualify(Qual::Lin)],
    );
    let l1 = lower_modules(&[("m".to_string(), noop_shuffle)]).unwrap();
    let l2 = lower_modules(&[("m".to_string(), plain)]).unwrap();
    assert_eq!(l1[1].1.funcs[0].body, l2[1].1.funcs[0].body);
}

#[test]
fn binary_encoding_of_lowered_module() {
    let m = main_fn(
        FunType::mono(vec![], vec![i32t()]),
        vec![Size::Const(32)],
        vec![
            Instr::i32(21),
            Instr::StructMalloc(vec![Size::Const(32)], Qual::Lin),
            Instr::MemUnpack(
                Block::new(
                    ArrowType::new(vec![], vec![]),
                    vec![instr::LocalEffect::new(0, i32t())],
                ),
                vec![Instr::StructGet(0), Instr::SetLocal(0), Instr::StructFree],
            ),
            Instr::GetLocal(0, Qual::Unr),
            Instr::i32(2),
            mul(),
        ],
    );
    let lowered = lower_modules(&[("m".to_string(), m)]).unwrap();
    for (_, wm) in &lowered {
        let bytes = richwasm_wasm::binary::encode_module(wm);
        assert_eq!(&bytes[..4], b"\0asm");
        assert!(bytes.len() > 8);
    }
}
