//! Type flattening and slot layout (paper §6, "Lowering RichWasm's Type
//! System").
//!
//! Every RichWasm type is represented as a sequence of Wasm numeric
//! values. For marshalling through locals and memory, each value also has
//! a canonical *slot form*: ⌈bits/32⌉ consecutive little-endian 32-bit
//! slots. Type variables are represented by the slot form of their size
//! bound (padded with zeroes).

use richwasm::env::KindCtx;
use richwasm::sizing::size_of_type;
use richwasm::syntax::{NumType, Pretype, Size, Type};
use richwasm_wasm::ast::ValType;

use crate::error::LowerError;

/// Resolves a size expression to constant bits by substituting variables
/// with their (transitively resolved) declared upper bounds.
pub fn resolve_size(ctx: &KindCtx, sz: &Size) -> Result<u64, LowerError> {
    resolve_rec(ctx, sz, 16)
}

fn resolve_rec(ctx: &KindCtx, sz: &Size, fuel: u32) -> Result<u64, LowerError> {
    if fuel == 0 {
        return Err(LowerError::UnresolvableSize(format!(
            "cyclic bounds resolving {sz}"
        )));
    }
    match sz {
        Size::Const(c) => Ok(*c),
        Size::Plus(a, b) => Ok(resolve_rec(ctx, a, fuel)? + resolve_rec(ctx, b, fuel)?),
        Size::Var(i) => {
            let b = ctx
                .size_bounds(*i)
                .ok_or_else(|| LowerError::Internal(format!("unbound size var σ{i}")))?;
            for u in &b.upper {
                if let Ok(v) = resolve_rec(ctx, u, fuel - 1) {
                    return Ok(v);
                }
            }
            Err(LowerError::UnresolvableSize(format!(
                "size variable σ{i} has no constant upper bound"
            )))
        }
    }
}

/// Number of 32-bit slots needed for `bits`.
pub fn slots_for_bits(bits: u64) -> usize {
    bits.div_ceil(32) as usize
}

/// Flattens a type to its Wasm value-type sequence.
///
/// # Errors
///
/// Fails when a type variable's bound cannot be resolved (boxing
/// unimplemented; see crate docs).
pub fn flatten(ctx: &KindCtx, t: &Type) -> Result<Vec<ValType>, LowerError> {
    let mut out = Vec::new();
    flatten_pre(ctx, &t.pre, &mut out)?;
    Ok(out)
}

fn flatten_pre(ctx: &KindCtx, p: &Pretype, out: &mut Vec<ValType>) -> Result<(), LowerError> {
    match p {
        // No runtime information.
        Pretype::Unit | Pretype::Cap(..) | Pretype::Own(_) => {}
        Pretype::Num(nt) => out.push(match nt {
            NumType::I32 | NumType::U32 => ValType::I32,
            NumType::I64 | NumType::U64 => ValType::I64,
            NumType::F32 => ValType::F32,
            NumType::F64 => ValType::F64,
        }),
        Pretype::Prod(ts) => {
            for t in ts {
                flatten_pre(ctx, &t.pre, out)?;
            }
        }
        Pretype::Ref(..) | Pretype::Ptr(_) => out.push(ValType::I32),
        // A coderef is an index into the shared function table.
        Pretype::CodeRef(_) => out.push(ValType::I32),
        // The recursive occurrence is guarded by an indirection, so
        // flattening the body terminates.
        Pretype::Rec(_, body) | Pretype::ExistsLoc(body) => flatten_pre(ctx, &body.pre, out)?,
        Pretype::Var(i) => {
            let bound = ctx
                .type_bound(*i)
                .ok_or_else(|| LowerError::Internal(format!("unbound pretype var α{i}")))?;
            let bits = resolve_size(ctx, &bound.size)?;
            for _ in 0..slots_for_bits(bits) {
                out.push(ValType::I32);
            }
        }
    }
    Ok(())
}

/// The number of 32-bit slots occupied by the *slot form* of a layout.
pub fn layout_slots(layout: &[ValType]) -> usize {
    layout.iter().map(|t| val_slots(*t)).sum()
}

/// Slots occupied by one Wasm value.
pub fn val_slots(t: ValType) -> usize {
    match t {
        ValType::I32 | ValType::F32 => 1,
        ValType::I64 | ValType::F64 => 2,
    }
}

/// Byte size of a type's slot form (what struct-field offsets are made
/// of: each declared field size, in bytes, rounded to whole slots).
pub fn byte_size(ctx: &KindCtx, t: &Type) -> Result<u64, LowerError> {
    let bits = size_of_type(ctx, t).map_err(|e| LowerError::TypeCheck(e.to_string()))?;
    let bits = if bits.is_closed() {
        bits.eval_closed().expect("closed")
    } else {
        resolve_size(ctx, &bits)?
    };
    Ok(bits.div_ceil(32) * 4)
}

/// One segment of a *coercion plan* between a callee-side ("abstract")
/// layout and a caller-side ("concrete") layout. Type variables may occur
/// on either side: at a closure call the *caller* holds the padded
/// `∃`-bound representation while the callee's signature is concrete.
#[derive(Debug, Clone, PartialEq)]
pub enum Seg {
    /// Identical layout on both sides.
    Exact(Vec<ValType>),
    /// Caller concrete `content` → callee padded to `total_slots`.
    Padded {
        /// The caller's concrete value types at this position.
        content: Vec<ValType>,
        /// Total slots reserved by the callee's padded layout.
        total_slots: usize,
    },
    /// Caller padded `src_slots` → callee concrete layout `dst` (the
    /// value occupies the leading slots; trailing padding is dropped).
    Unpad {
        /// Slots of the caller's padded representation.
        src_slots: usize,
        /// The callee's concrete value types.
        dst: Vec<ValType>,
    },
    /// Caller padded `src_slots` → callee padded `dst_slots` (both sides
    /// abstract, possibly with different bounds).
    RePad {
        /// Caller-side padded slots.
        src_slots: usize,
        /// Callee-side padded slots.
        dst_slots: usize,
    },
}

impl Seg {
    /// Slots of the callee ("abstract") side.
    pub fn abs_slots(&self) -> usize {
        match self {
            Seg::Exact(ts) => layout_slots(ts),
            Seg::Padded { total_slots, .. } => *total_slots,
            Seg::Unpad { dst, .. } => layout_slots(dst),
            Seg::RePad { dst_slots, .. } => *dst_slots,
        }
    }

    /// Slots of the caller ("concrete") side.
    pub fn conc_slots(&self) -> usize {
        match self {
            Seg::Exact(ts) => layout_slots(ts),
            Seg::Padded { content, .. } => layout_slots(content),
            Seg::Unpad { src_slots, .. } => *src_slots,
            Seg::RePad { src_slots, .. } => *src_slots,
        }
    }
}

/// Computes the coercion plan between an abstract type (under `abs_ctx`,
/// e.g. a callee's telescope — variables below `n_outer_vars` are treated
/// as abstract positions) and a concrete instantiation of it.
///
/// The two types have identical tree structure except at abstract
/// variable positions.
pub fn plan(
    abs_ctx: &KindCtx,
    abs: &Type,
    conc_ctx: &KindCtx,
    conc: &Type,
) -> Result<Vec<Seg>, LowerError> {
    let mut segs = Vec::new();
    plan_pre(abs_ctx, &abs.pre, conc_ctx, &conc.pre, &mut segs)?;
    Ok(coalesce(segs))
}

fn var_slots(ctx: &KindCtx, i: u32) -> Result<usize, LowerError> {
    let bound = ctx
        .type_bound(i)
        .ok_or_else(|| LowerError::Internal(format!("unbound pretype var α{i}")))?;
    Ok(slots_for_bits(resolve_size(ctx, &bound.size)?))
}

fn plan_pre(
    abs_ctx: &KindCtx,
    abs: &Pretype,
    conc_ctx: &KindCtx,
    conc: &Pretype,
    out: &mut Vec<Seg>,
) -> Result<(), LowerError> {
    match (abs, conc) {
        (Pretype::Var(i), Pretype::Var(j)) => {
            out.push(Seg::RePad {
                src_slots: var_slots(conc_ctx, *j)?,
                dst_slots: var_slots(abs_ctx, *i)?,
            });
            Ok(())
        }
        (Pretype::Var(i), c) => {
            let mut content = Vec::new();
            flatten_pre(conc_ctx, c, &mut content)?;
            out.push(Seg::Padded {
                content,
                total_slots: var_slots(abs_ctx, *i)?,
            });
            Ok(())
        }
        (a, Pretype::Var(j)) => {
            let mut dst = Vec::new();
            flatten_pre(abs_ctx, a, &mut dst)?;
            out.push(Seg::Unpad {
                src_slots: var_slots(conc_ctx, *j)?,
                dst,
            });
            Ok(())
        }
        (Pretype::Prod(ats), Pretype::Prod(cts)) => {
            if ats.len() != cts.len() {
                return Err(LowerError::Internal("plan: product arity mismatch".into()));
            }
            for (a, c) in ats.iter().zip(cts) {
                plan_pre(abs_ctx, &a.pre, conc_ctx, &c.pre, out)?;
            }
            Ok(())
        }
        (Pretype::Rec(_, a), Pretype::Rec(_, c))
        | (Pretype::ExistsLoc(a), Pretype::ExistsLoc(c)) => {
            plan_pre(abs_ctx, &a.pre, conc_ctx, &c.pre, out)
        }
        (a, c) => {
            // Structurally identical from here down (typing guarantees it);
            // verify by flattening both sides.
            let mut ts = Vec::new();
            flatten_pre(abs_ctx, a, &mut ts)?;
            let mut cs = Vec::new();
            flatten_pre(conc_ctx, c, &mut cs)?;
            if ts != cs {
                return Err(LowerError::Internal(format!(
                    "plan: layout mismatch {ts:?} vs {cs:?}"
                )));
            }
            out.push(Seg::Exact(ts));
            Ok(())
        }
    }
}

fn coalesce(segs: Vec<Seg>) -> Vec<Seg> {
    let mut out: Vec<Seg> = Vec::new();
    for s in segs {
        match (out.last_mut(), s) {
            (Some(Seg::Exact(prev)), Seg::Exact(ts)) => prev.extend(ts),
            (_, s) => out.push(s),
        }
    }
    out
}

/// `true` when a plan is the identity (no coercion needed).
pub fn plan_is_identity(segs: &[Seg]) -> bool {
    segs.iter().all(|s| match s {
        Seg::Exact(_) => true,
        Seg::Padded {
            content,
            total_slots,
        } => layout_slots(content) == *total_slots && content.iter().all(|t| *t == ValType::I32),
        Seg::Unpad { src_slots, dst } => {
            layout_slots(dst) == *src_slots && dst.iter().all(|t| *t == ValType::I32)
        }
        Seg::RePad {
            src_slots,
            dst_slots,
        } => src_slots == dst_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use richwasm::env::{SizeBounds, TypeBound};
    use richwasm::syntax::{HeapType, Loc, MemPriv, Qual};

    #[test]
    fn base_flattenings() {
        let ctx = KindCtx::new();
        assert_eq!(flatten(&ctx, &Type::unit()).unwrap(), vec![]);
        assert_eq!(
            flatten(&ctx, &Type::num(NumType::I64)).unwrap(),
            vec![ValType::I64]
        );
        let t = Pretype::Prod(vec![Type::num(NumType::I32), Type::num(NumType::F64)]).unr();
        assert_eq!(flatten(&ctx, &t).unwrap(), vec![ValType::I32, ValType::F64]);
        let r = Pretype::Ref(
            MemPriv::ReadWrite,
            Loc::lin(0),
            HeapType::Array(Type::unit()),
        )
        .lin();
        assert_eq!(flatten(&ctx, &r).unwrap(), vec![ValType::I32]);
    }

    #[test]
    fn caps_and_owns_erase() {
        let ctx = KindCtx::new();
        let t = Pretype::Prod(vec![
            Pretype::Cap(MemPriv::Read, Loc::lin(0), HeapType::Array(Type::unit())).lin(),
            Type::num(NumType::I32),
            Pretype::Own(Loc::lin(0)).lin(),
        ])
        .lin();
        assert_eq!(flatten(&ctx, &t).unwrap(), vec![ValType::I32]);
    }

    #[test]
    fn type_var_pads_to_bound() {
        let mut ctx = KindCtx::new();
        ctx.push_type(TypeBound {
            lower_qual: Qual::Unr,
            size: Size::Const(96),
            may_contain_caps: false,
        });
        assert_eq!(
            flatten(&ctx, &Pretype::Var(0).unr()).unwrap(),
            vec![ValType::I32; 3]
        );
    }

    #[test]
    fn unresolvable_bound_is_reported() {
        let mut ctx = KindCtx::new();
        ctx.push_size(SizeBounds::default()); // no upper bound
        ctx.push_type(TypeBound {
            lower_qual: Qual::Unr,
            size: Size::Var(0),
            may_contain_caps: false,
        });
        assert!(matches!(
            flatten(&ctx, &Pretype::Var(0).unr()),
            Err(LowerError::UnresolvableSize(_))
        ));
    }

    #[test]
    fn size_var_resolves_through_bounds() {
        let mut ctx = KindCtx::new();
        ctx.push_size(SizeBounds {
            lower: vec![],
            upper: vec![Size::Const(64)],
        });
        assert_eq!(
            resolve_size(&ctx, &(Size::Var(0) + Size::Const(32))).unwrap(),
            96
        );
    }

    #[test]
    fn plan_pairs_var_with_concrete() {
        // abs: (α≲64, i64); conc: (i32, i64)
        let mut abs_ctx = KindCtx::new();
        abs_ctx.push_type(TypeBound {
            lower_qual: Qual::Unr,
            size: Size::Const(64),
            may_contain_caps: false,
        });
        let abs = Pretype::Prod(vec![Pretype::Var(0).unr(), Type::num(NumType::I64)]).unr();
        let conc = Pretype::Prod(vec![Type::num(NumType::I32), Type::num(NumType::I64)]).unr();
        let conc_ctx = KindCtx::new();
        let p = plan(&abs_ctx, &abs, &conc_ctx, &conc).unwrap();
        assert_eq!(
            p,
            vec![
                Seg::Padded {
                    content: vec![ValType::I32],
                    total_slots: 2
                },
                Seg::Exact(vec![ValType::I64]),
            ]
        );
        assert!(!plan_is_identity(&p));
    }

    #[test]
    fn identity_plan_detected() {
        let ctx = KindCtx::new();
        let t = Type::num(NumType::I32);
        let p = plan(&ctx, &t, &ctx, &t).unwrap();
        assert!(plan_is_identity(&p));
    }

    #[test]
    fn byte_sizes_round_to_slots() {
        let ctx = KindCtx::new();
        assert_eq!(byte_size(&ctx, &Type::num(NumType::I32)).unwrap(), 4);
        assert_eq!(byte_size(&ctx, &Type::num(NumType::F64)).unwrap(), 8);
        assert_eq!(byte_size(&ctx, &Type::unit()).unwrap(), 0);
    }
}
