//! # richwasm-lower
//!
//! The type-directed compiler from RichWasm to WebAssembly 1.0 +
//! multi-value (paper §6).
//!
//! * Every RichWasm type flattens to a sequence of Wasm numeric types
//!   ([`layout`]); `unit`/`cap`/`own` erase, `ref`/`ptr` become `i32`,
//!   type variables become padded 32-bit slot sequences sized by their
//!   bound.
//! * RichWasm locals split across multiple Wasm locals; strong updates
//!   reuse the same slots ([`layout`], [`lower`]).
//! * Both RichWasm memories live in one flat Wasm memory managed by a
//!   free-list allocator generated as a *runtime module* ([`runtime`])
//!   that every lowered module imports (`malloc`, `free`, the shared
//!   memory, and the shared function table).
//! * `variant.case` compiles to a dispatch over the tag; `coderef`
//!   compiles to an `i32` index into the shared table; indirect calls
//!   emit one case per possible callee shape (paper §6).
//! * Type-level instructions (`qualify`, `mem.pack`, `rec.fold`,
//!   `cap.split`, …) are erased.
//!
//! The entry point is [`lower::Session`]: it lowers a set of RichWasm
//! modules together (whole-program, so the shared table layout and
//! indirect-call shapes are known) and produces Wasm modules ready for
//! `richwasm_wasm::exec::WasmLinker`.
//!
//! ## Deviations from the paper (documented in DESIGN.md)
//!
//! * Padded representations use ⌈n/32⌉ × `i32` slots rather than the
//!   paper's `i64`+`i32` mix — equivalent, but it keeps cross-slot
//!   marshalling implementable without bit-packing across slots.
//! * Type variables with *unresolvable* size bounds would require the
//!   paper's boxing fallback; our frontends always emit resolvable bounds
//!   so the lowering reports an error instead of boxing.
//! * The unrestricted region of the lowered heap is allocated from the
//!   same free list and reclaimed only when explicitly freed; the paper
//!   likewise notes RichWasm needs its own GC on stock Wasm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod layout;
pub mod lower;
pub mod runtime;

pub use error::LowerError;
pub use lower::{
    lower_modules, lower_modules_with_envs, lower_modules_with_plan, LinkPlan, Session,
};
