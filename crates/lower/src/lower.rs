//! The RichWasm → Wasm compiler (paper §6).
//!
//! Lowering is whole-program ([`Session`]): the shared function table's
//! layout and the set of possible indirect-call shapes must be known
//! globally. Each RichWasm module becomes one Wasm module importing the
//! generated runtime's memory, table, `malloc` and `free`.

use richwasm::env::{KindCtx, ModuleEnv, TypeBound};
use richwasm::sizing::size_of_type;
use richwasm::syntax as rw;
use richwasm::syntax::{Func as RwFunc, GlobalKind, HeapType, Pretype, Qual};
use richwasm::typecheck::{check_function_body, check_module, push_telescope, InstrInfo};
use richwasm_wasm::ast as w;
use richwasm_wasm::ast::{BlockType, ExportKind, FuncType, ImportKind, ValType, WInstr, Width};

use crate::error::LowerError;
use crate::layout::{
    byte_size, flatten, layout_slots, plan, plan_is_identity, resolve_size, slots_for_bits,
    val_slots, Seg,
};
use crate::runtime::runtime_module;

/// The name under which the generated runtime module must be
/// instantiated.
pub const RUNTIME_NAME: &str = "rw_runtime";

/// One entry of the session-global shared function table.
#[derive(Debug, Clone)]
struct TableEntry {
    global_idx: u32,
    funtype: rw::FunType,
}

/// The whole-program part of lowering, computed once per module set: the
/// shared function table's layout (every module's entries concatenated in
/// instantiation order) and each module's base offset into it.
///
/// Splitting the plan out of [`lower_modules_with_envs`] makes the
/// whole-program analysis a reusable artifact: a compile-once/run-many
/// driver can compute it alongside the checker's [`ModuleEnv`]s and keep
/// both for the lifetime of the compiled program.
#[derive(Debug, Clone, Default)]
pub struct LinkPlan {
    table_entries: Vec<TableEntry>,
    table_bases: Vec<u32>,
}

impl LinkPlan {
    /// Computes the shared table layout for `modules` (in instantiation
    /// order — the same order they must later be lowered in).
    pub fn compute(modules: &[(String, rw::Module)]) -> LinkPlan {
        let mut table_entries: Vec<TableEntry> = Vec::new();
        let mut table_bases = Vec::new();
        let mut total = 0u32;
        for (_, m) in modules {
            table_bases.push(total);
            for &fi in &m.table.entries {
                table_entries.push(TableEntry {
                    global_idx: total,
                    funtype: m.funcs[fi as usize].ty().clone(),
                });
                total += 1;
            }
        }
        LinkPlan {
            table_entries,
            table_bases,
        }
    }

    /// Total number of shared-table slots across all modules.
    pub fn table_len(&self) -> u32 {
        self.table_entries.len() as u32
    }

    /// Number of modules the plan was computed over.
    pub fn module_count(&self) -> usize {
        self.table_bases.len()
    }
}

/// A whole-program lowering session.
#[derive(Debug, Default)]
pub struct Session {
    modules: Vec<(String, rw::Module)>,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Adds a module (instantiation order = addition order).
    pub fn add(&mut self, name: impl Into<String>, m: rw::Module) -> &mut Session {
        self.modules.push((name.into(), m));
        self
    }

    /// Lowers all modules. The result starts with the runtime module
    /// (named [`RUNTIME_NAME`]) followed by the lowered modules in
    /// addition order — instantiate them in exactly this order.
    ///
    /// # Errors
    ///
    /// Type errors (lowering is type-directed) and unresolvable size
    /// bounds are reported as [`LowerError`].
    pub fn lower(&self) -> Result<Vec<(String, w::Module)>, LowerError> {
        lower_modules(&self.modules)
    }
}

/// Lowers a set of RichWasm modules together. See [`Session::lower`].
pub fn lower_modules(
    modules: &[(String, rw::Module)],
) -> Result<Vec<(String, w::Module)>, LowerError> {
    // Type check everything (lowering is type-directed).
    let mut envs = Vec::new();
    for (_, m) in modules {
        envs.push(check_module(m)?);
    }
    lower_modules_with_envs(modules, &envs)
}

/// Lowers modules whose [`ModuleEnv`]s were already produced by
/// [`check_module`], skipping the redundant re-check. Callers that have
/// just type checked (e.g. the pipeline driver) use this to avoid paying
/// the substructural check twice.
pub fn lower_modules_with_envs(
    modules: &[(String, rw::Module)],
    envs: &[ModuleEnv],
) -> Result<Vec<(String, w::Module)>, LowerError> {
    let plan = LinkPlan::compute(modules);
    lower_modules_with_plan(modules, envs, &plan)
}

/// Lowers modules given both their checked [`ModuleEnv`]s and a
/// precomputed whole-program [`LinkPlan`]. This is the innermost entry
/// point: it re-runs no static analysis at all.
///
/// # Errors
///
/// [`LowerError::Internal`] when the envs or the plan do not match the
/// module set, plus the usual type-directed lowering failures.
pub fn lower_modules_with_plan(
    modules: &[(String, rw::Module)],
    envs: &[ModuleEnv],
    plan: &LinkPlan,
) -> Result<Vec<(String, w::Module)>, LowerError> {
    if modules.len() != envs.len() {
        return Err(LowerError::Internal(format!(
            "{} modules but {} envs",
            modules.len(),
            envs.len()
        )));
    }
    if modules.len() != plan.module_count() {
        return Err(LowerError::Internal(format!(
            "{} modules but the link plan covers {}",
            modules.len(),
            plan.module_count()
        )));
    }

    let mut out = vec![(RUNTIME_NAME.to_string(), runtime_module(plan.table_len()))];
    for (mi, (name, m)) in modules.iter().enumerate() {
        let lowered = lower_module(m, &envs[mi], plan.table_bases[mi], &plan.table_entries)?;
        out.push((name.clone(), lowered));
    }
    Ok(out)
}

fn lower_module(
    m: &rw::Module,
    env: &ModuleEnv,
    table_base: u32,
    table_entries: &[TableEntry],
) -> Result<w::Module, LowerError> {
    let mut wm = w::Module::default();

    // Runtime imports: malloc, free, memory, table.
    let malloc_t = wm.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    let free_t = wm.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![],
    });
    wm.imports.push(w::Import {
        module: RUNTIME_NAME.into(),
        name: "malloc".into(),
        kind: ImportKind::Func(malloc_t),
    });
    wm.imports.push(w::Import {
        module: RUNTIME_NAME.into(),
        name: "free".into(),
        kind: ImportKind::Func(free_t),
    });
    wm.imports.push(w::Import {
        module: RUNTIME_NAME.into(),
        name: "mem".into(),
        kind: ImportKind::Memory(1),
    });
    wm.imports.push(w::Import {
        module: RUNTIME_NAME.into(),
        name: "tab".into(),
        kind: ImportKind::Table(1),
    });
    let malloc_idx = 0u32;
    let free_idx = 1u32;

    // Function index mapping: imports first (after malloc/free), then
    // defined functions.
    let n_rw_imports = m
        .funcs
        .iter()
        .filter(|f| matches!(f, RwFunc::Imported { .. }))
        .count() as u32;
    let defined_base = 2 + n_rw_imports;
    let mut rw2wasm = Vec::with_capacity(m.funcs.len());
    let mut import_seen = 0u32;
    let mut defined_seen = 0u32;
    for f in &m.funcs {
        match f {
            RwFunc::Imported {
                module, name, ty, ..
            } => {
                let sig = lower_signature(ty)?;
                let ti = wm.intern_type(sig);
                wm.imports.push(w::Import {
                    module: module.clone(),
                    name: name.clone(),
                    kind: ImportKind::Func(ti),
                });
                rw2wasm.push(2 + import_seen);
                import_seen += 1;
            }
            RwFunc::Defined { .. } => {
                rw2wasm.push(defined_base + defined_seen);
                defined_seen += 1;
            }
        }
    }

    // Globals: one Wasm global per layout slot (natural types).
    // Allocating initialisers (paper Fig. 2 allows instruction-sequence
    // initialisers) are compiled into per-global init functions driven by
    // a Wasm `start` function; the globals themselves start zeroed.
    let ctx0 = KindCtx::new();
    let mut global_map: Vec<(u32, Vec<ValType>)> = Vec::new();
    let mut deferred_inits: Vec<(usize, Vec<rw::Instr>, rw::Pretype)> = Vec::new();
    let mut next_global = 0u32;
    for (gi, g) in m.globals.iter().enumerate() {
        let layout = flatten(&ctx0, &g.ty().clone().with_qual(Qual::Unr))?;
        match &g.kind {
            GlobalKind::Defined { init, ty, .. } => match eval_const_init(init) {
                Some(v) => {
                    let consts = value_consts(&v);
                    if consts.len() != layout.len() {
                        return Err(LowerError::Internal("global layout mismatch".into()));
                    }
                    for (t, c) in layout.iter().zip(consts) {
                        wm.globals.push(w::GlobalDef {
                            ty: *t,
                            mutable: true,
                            init: c,
                        });
                    }
                }
                None => {
                    for t in &layout {
                        wm.globals.push(w::GlobalDef {
                            ty: *t,
                            mutable: true,
                            init: zero_const(*t),
                        });
                    }
                    deferred_inits.push((gi, init.clone(), ty.clone()));
                }
            },
            GlobalKind::Imported { .. } => {
                return Err(LowerError::Internal(
                    "imported globals are not supported by the lowering (use exported \
                     accessor functions)"
                        .into(),
                ));
            }
        }
        global_map.push((next_global, layout.clone()));
        next_global += layout.len() as u32;
    }

    // Table element segment (into the imported shared table).
    if !m.table.entries.is_empty() {
        wm.elems.push(w::ElemSegment {
            offset: table_base,
            funcs: m
                .table
                .entries
                .iter()
                .map(|&fi| rw2wasm[fi as usize])
                .collect(),
        });
    }

    // Exports + function bodies.
    for (fi, f) in m.funcs.iter().enumerate() {
        for e in f.exports() {
            wm.exports.push(w::Export {
                name: e.clone(),
                kind: ExportKind::Func(rw2wasm[fi]),
            });
        }
        if let RwFunc::Defined {
            ty, locals, body, ..
        } = f
        {
            let trace = check_function_body(env, ty, locals, body)?;
            let def = lower_function(
                env,
                ty,
                locals,
                body,
                &trace,
                &mut wm,
                Shared {
                    table_base,
                    table_entries,
                    rw2wasm: &rw2wasm,
                    globals: &global_map,
                    malloc_idx,
                    free_idx,
                },
            )?;
            wm.funcs.push(def);
        }
    }

    // Allocating global initialisers: one function per global plus a
    // start function that calls them and writes the global slots.
    if !deferred_inits.is_empty() {
        let mut start_body = Vec::new();
        for (gi, init, pty) in &deferred_inits {
            let ity = rw::FunType::mono(vec![], vec![pty.clone().with_qual(Qual::Unr)]);
            let trace = check_function_body(env, &ity, &[], init)?;
            let def = lower_function(
                env,
                &ity,
                &[],
                init,
                &trace,
                &mut wm,
                Shared {
                    table_base,
                    table_entries,
                    rw2wasm: &rw2wasm,
                    globals: &global_map,
                    malloc_idx,
                    free_idx,
                },
            )?;
            let init_idx = 2 + n_rw_imports + wm.funcs.len() as u32;
            wm.funcs.push(def);
            start_body.push(WInstr::Call(init_idx));
            let (base, layout) = &global_map[*gi];
            for k in (0..layout.len() as u32).rev() {
                start_body.push(WInstr::GlobalSet(base + k));
            }
        }
        let start_t = wm.intern_type(FuncType::default());
        let start_idx = 2 + n_rw_imports + wm.funcs.len() as u32;
        wm.funcs.push(w::FuncDef {
            type_idx: start_t,
            locals: vec![],
            body: start_body,
        });
        wm.start = Some(start_idx);
    }
    Ok(wm)
}

fn lower_signature(ty: &rw::FunType) -> Result<FuncType, LowerError> {
    let mut ctx = KindCtx::new();
    let _t = push_telescope(&mut ctx, &ty.quants);
    let mut params = Vec::new();
    for p in &ty.arrow.params {
        params.extend(flatten(&ctx, p)?);
    }
    let mut results = Vec::new();
    for r in &ty.arrow.results {
        results.extend(flatten(&ctx, r)?);
    }
    Ok(FuncType { params, results })
}

/// Direct constants become Wasm constant initialisers; anything else is
/// deferred to the start function.
fn eval_const_init(init: &[rw::Instr]) -> Option<rw::Value> {
    match init {
        [rw::Instr::Val(v)] => Some(v.clone()),
        _ => None,
    }
}

fn zero_const(t: ValType) -> WInstr {
    match t {
        ValType::I32 => WInstr::I32Const(0),
        ValType::I64 => WInstr::I64Const(0),
        ValType::F32 => WInstr::F32Const(0.0),
        ValType::F64 => WInstr::F64Const(0.0),
    }
}

fn value_consts(v: &rw::Value) -> Vec<WInstr> {
    match v {
        rw::Value::Unit | rw::Value::Cap | rw::Value::Own => vec![],
        rw::Value::Num(nt, bits) => vec![match nt {
            rw::NumType::I32 | rw::NumType::U32 => WInstr::I32Const(*bits as u32 as i32),
            rw::NumType::I64 | rw::NumType::U64 => WInstr::I64Const(*bits as i64),
            rw::NumType::F32 => WInstr::F32Const(f32::from_bits(*bits as u32)),
            rw::NumType::F64 => WInstr::F64Const(f64::from_bits(*bits)),
        }],
        rw::Value::Prod(vs) => vs.iter().flat_map(value_consts).collect(),
        rw::Value::Fold(v) | rw::Value::MemPack(_, v) => value_consts(v),
        rw::Value::Ref(_) | rw::Value::Ptr(_) | rw::Value::CodeRef { .. } => {
            unreachable!("not source constants")
        }
    }
}

/// Session-level references shared by all function lowerings.
#[derive(Clone, Copy)]
struct Shared<'a> {
    table_base: u32,
    table_entries: &'a [TableEntry],
    rw2wasm: &'a [u32],
    globals: &'a [(u32, Vec<ValType>)],
    malloc_idx: u32,
    free_idx: u32,
}

struct FnCx<'a> {
    env: &'a ModuleEnv,
    ctx: KindCtx,
    trace: &'a [InstrInfo],
    cursor: usize,
    sh: Shared<'a>,
    wm: &'a mut w::Module,
    // Local layout.
    slot_map: Vec<(u32, u32)>, // rw local -> (first wasm slot local, count)
    tmp64: u32,
    pool_next: u32,
    pool_high: u32,
    // Label bookkeeping.
    rw_labels: Vec<u32>,
    wdepth: u32,
}

#[allow(clippy::too_many_arguments)]
fn lower_function(
    env: &ModuleEnv,
    ty: &rw::FunType,
    local_sizes: &[rw::Size],
    body: &[rw::Instr],
    trace: &[InstrInfo],
    wm: &mut w::Module,
    sh: Shared<'_>,
) -> Result<w::FuncDef, LowerError> {
    let mut ctx = KindCtx::new();
    let _t = push_telescope(&mut ctx, &ty.quants);

    // Wasm signature.
    let mut params = Vec::new();
    let mut param_layouts = Vec::new();
    for p in &ty.arrow.params {
        let l = flatten(&ctx, p)?;
        params.extend(l.iter().copied());
        param_layouts.push(l);
    }
    let mut results = Vec::new();
    for r in &ty.arrow.results {
        results.extend(flatten(&ctx, r)?);
    }
    let type_idx = wm.intern_type(FuncType {
        params: params.clone(),
        results,
    });

    // Local slot layout: every RichWasm local becomes ⌈size/32⌉ i32 slots.
    let n_params = params.len() as u32;
    let mut slot_map = Vec::new();
    let mut next = n_params;
    for p in &ty.arrow.params {
        let bits = size_of_type(&ctx, p).map_err(|e| LowerError::TypeCheck(e.to_string()))?;
        let bits = if bits.is_closed() {
            bits.eval_closed().expect("closed")
        } else {
            resolve_size(&ctx, &bits)?
        };
        let count = slots_for_bits(bits) as u32;
        slot_map.push((next, count));
        next += count;
    }
    for sz in local_sizes {
        let bits = resolve_size(&ctx, sz)?;
        let count = slots_for_bits(bits) as u32;
        slot_map.push((next, count));
        next += count;
    }
    let slot_total = next - n_params;
    let tmp64 = n_params + slot_total;
    let pool_base = tmp64 + 1;

    let mut cx = FnCx {
        env,
        ctx,
        trace,
        cursor: 0,
        sh,
        wm,
        slot_map,
        tmp64,
        pool_next: pool_base,
        pool_high: pool_base,
        rw_labels: Vec::new(),
        wdepth: 0,
    };

    // Prologue: move flattened params into their slot locals.
    let mut code = Vec::new();
    let mut wp = 0u32;
    for (i, l) in param_layouts.iter().enumerate() {
        // Push the param values back onto the stack, then spill them.
        for (k, _) in l.iter().enumerate() {
            code.push(WInstr::LocalGet(wp + k as u32));
        }
        let base = cx.slot_map[i].0;
        cx.emit_spill(l, base, &mut code);
        wp += l.len() as u32;
    }

    for e in body {
        cx.lower_instr(e, &mut code)?;
    }

    if cx.cursor != trace.len() {
        return Err(LowerError::Internal(format!(
            "trace misalignment: consumed {} of {} entries",
            cx.cursor,
            trace.len()
        )));
    }

    let mut locals = vec![ValType::I32; slot_total as usize];
    locals.push(ValType::I64); // tmp64
    locals.extend(vec![ValType::I32; (cx.pool_high - pool_base) as usize]);
    Ok(w::FuncDef {
        type_idx,
        locals,
        body: code,
    })
}

impl<'a> FnCx<'a> {
    // ------------------------------------------------------------------
    // Scratch pool (stack-disciplined).
    // ------------------------------------------------------------------
    fn alloc_pool(&mut self, n: usize) -> u32 {
        let idx = self.pool_next;
        self.pool_next += n as u32;
        self.pool_high = self.pool_high.max(self.pool_next);
        idx
    }

    fn release_pool(&mut self, idx: u32) {
        self.pool_next = idx;
    }

    // ------------------------------------------------------------------
    // Slot marshalling.
    // ------------------------------------------------------------------

    /// Spills stack values of `layout` (top of stack = last element) into
    /// i32 slot locals starting at `base`.
    fn emit_spill(&mut self, layout: &[ValType], base: u32, out: &mut Vec<WInstr>) {
        let mut off = layout_slots(layout) as u32;
        for t in layout.iter().rev() {
            match t {
                ValType::I32 => {
                    off -= 1;
                    out.push(WInstr::LocalSet(base + off));
                }
                ValType::F32 => {
                    off -= 1;
                    out.push(WInstr::IReinterpretF(Width::W32));
                    out.push(WInstr::LocalSet(base + off));
                }
                ValType::I64 | ValType::F64 => {
                    off -= 2;
                    if *t == ValType::F64 {
                        out.push(WInstr::IReinterpretF(Width::W64));
                    }
                    out.push(WInstr::LocalSet(self.tmp64));
                    out.push(WInstr::LocalGet(self.tmp64));
                    out.push(WInstr::I32WrapI64);
                    out.push(WInstr::LocalSet(base + off));
                    out.push(WInstr::LocalGet(self.tmp64));
                    out.push(WInstr::I64Const(32));
                    out.push(WInstr::IBin(Width::W64, w::IBinOp::Shr(w::Sx::U)));
                    out.push(WInstr::I32WrapI64);
                    out.push(WInstr::LocalSet(base + off + 1));
                }
            }
        }
    }

    /// Pushes values of `layout` from i32 slot locals starting at `base`.
    fn emit_unspill(&mut self, layout: &[ValType], base: u32, out: &mut Vec<WInstr>) {
        let mut off = 0u32;
        for t in layout {
            match t {
                ValType::I32 => {
                    out.push(WInstr::LocalGet(base + off));
                    off += 1;
                }
                ValType::F32 => {
                    out.push(WInstr::LocalGet(base + off));
                    out.push(WInstr::FReinterpretI(Width::W32));
                    off += 1;
                }
                ValType::I64 | ValType::F64 => {
                    out.push(WInstr::LocalGet(base + off));
                    out.push(WInstr::I64ExtendI32(w::Sx::U));
                    out.push(WInstr::LocalGet(base + off + 1));
                    out.push(WInstr::I64ExtendI32(w::Sx::U));
                    out.push(WInstr::I64Const(32));
                    out.push(WInstr::IBin(Width::W64, w::IBinOp::Shl));
                    out.push(WInstr::IBin(Width::W64, w::IBinOp::Or));
                    if *t == ValType::F64 {
                        out.push(WInstr::FReinterpretI(Width::W64));
                    }
                    off += 2;
                }
            }
        }
    }

    /// Pushes values of `layout` loaded from memory at `ptr_local +
    /// byte_off`.
    fn emit_load(
        &mut self,
        layout: &[ValType],
        ptr_local: u32,
        mut byte_off: u32,
        out: &mut Vec<WInstr>,
    ) {
        for t in layout {
            out.push(WInstr::LocalGet(ptr_local));
            out.push(WInstr::Load(*t, byte_off));
            byte_off += 4 * val_slots(*t) as u32;
        }
    }

    /// Stores `n_slots` i32 slots from pool locals into memory at
    /// `ptr_local + byte_off`.
    fn emit_store_slots(
        &mut self,
        n_slots: usize,
        pool: u32,
        ptr_local: u32,
        byte_off: u32,
        out: &mut Vec<WInstr>,
    ) {
        for k in 0..n_slots as u32 {
            out.push(WInstr::LocalGet(ptr_local));
            out.push(WInstr::LocalGet(pool + k));
            out.push(WInstr::Store(ValType::I32, byte_off + 4 * k));
        }
    }

    /// Zeroes `n_slots` i32 slots in memory.
    fn emit_store_zeros(
        &mut self,
        n_slots: usize,
        ptr_local: u32,
        byte_off: u32,
        out: &mut Vec<WInstr>,
    ) {
        for k in 0..n_slots as u32 {
            out.push(WInstr::LocalGet(ptr_local));
            out.push(WInstr::I32Const(0));
            out.push(WInstr::Store(ValType::I32, byte_off + 4 * k));
        }
    }

    // ------------------------------------------------------------------
    // Coercion plans (polymorphic calls).
    // ------------------------------------------------------------------

    /// Pushes the *callee-side* layout of a plan from caller-side slots
    /// spilled at `pool`.
    fn emit_coerce_push(&mut self, segs: &[Seg], pool: u32, out: &mut Vec<WInstr>) {
        let mut off = 0u32;
        for seg in segs {
            match seg {
                Seg::Exact(ts) => {
                    let ts = ts.clone();
                    self.emit_unspill(&ts, pool + off, out);
                }
                Seg::Padded {
                    content,
                    total_slots,
                } => {
                    let k = layout_slots(content);
                    for i in 0..k as u32 {
                        out.push(WInstr::LocalGet(pool + off + i));
                    }
                    for _ in k..*total_slots {
                        out.push(WInstr::I32Const(0));
                    }
                }
                Seg::Unpad { dst, .. } => {
                    // The value occupies the leading slots of the caller's
                    // padded region; reassemble it as the callee's layout.
                    let dst = dst.clone();
                    self.emit_unspill(&dst, pool + off, out);
                }
                Seg::RePad {
                    src_slots,
                    dst_slots,
                } => {
                    let k = (*src_slots).min(*dst_slots);
                    for i in 0..k as u32 {
                        out.push(WInstr::LocalGet(pool + off + i));
                    }
                    for _ in k..*dst_slots {
                        out.push(WInstr::I32Const(0));
                    }
                }
            }
            off += seg.conc_slots() as u32;
        }
    }

    /// Spills the callee-side layout from the stack and re-pushes the
    /// caller-side layout (inverse of [`Self::emit_coerce_push`]).
    fn emit_coerce_pop(&mut self, segs: &[Seg], out: &mut Vec<WInstr>) {
        let conc_slots: usize = segs.iter().map(Seg::conc_slots).sum();
        let pool = self.alloc_pool(conc_slots);
        let mut conc_off: Vec<u32> = Vec::with_capacity(segs.len());
        let mut acc = 0u32;
        for seg in segs {
            conc_off.push(acc);
            acc += seg.conc_slots() as u32;
        }
        // Spill the callee-side values (reversed segments; stack top =
        // last segment) into the caller-side slot positions.
        for (si, seg) in segs.iter().enumerate().rev() {
            match seg {
                Seg::Exact(ts) => {
                    let ts = ts.clone();
                    self.emit_spill(&ts, pool + conc_off[si], out);
                }
                Seg::Padded {
                    content,
                    total_slots,
                } => {
                    // Callee produced total_slots i32s (value + padding on
                    // top): drop the padding, keep the content slots.
                    let k = layout_slots(content);
                    for _ in k..*total_slots {
                        out.push(WInstr::Drop);
                    }
                    let slots = vec![ValType::I32; k];
                    self.emit_spill(&slots, pool + conc_off[si], out);
                }
                Seg::Unpad { src_slots, dst } => {
                    // Callee produced the concrete layout; the caller wants
                    // its padded form: spill the value slots, zero the rest.
                    let dst = dst.clone();
                    let k = layout_slots(&dst);
                    self.emit_spill(&dst, pool + conc_off[si], out);
                    for pad in k..*src_slots {
                        out.push(WInstr::I32Const(0));
                        out.push(WInstr::LocalSet(pool + conc_off[si] + pad as u32));
                    }
                }
                Seg::RePad {
                    src_slots,
                    dst_slots,
                } => {
                    let k = (*src_slots).min(*dst_slots);
                    for _ in k..*dst_slots {
                        out.push(WInstr::Drop);
                    }
                    let slots = vec![ValType::I32; k];
                    self.emit_spill(&slots, pool + conc_off[si], out);
                    for pad in k..*src_slots {
                        out.push(WInstr::I32Const(0));
                        out.push(WInstr::LocalSet(pool + conc_off[si] + pad as u32));
                    }
                }
            }
        }
        // Push the caller-side layout.
        for (si, seg) in segs.iter().enumerate() {
            match seg {
                Seg::Exact(ts) => {
                    let ts = ts.clone();
                    self.emit_unspill(&ts, pool + conc_off[si], out);
                }
                Seg::Padded { content, .. } => {
                    let ts = content.clone();
                    self.emit_unspill(&ts, pool + conc_off[si], out);
                }
                Seg::Unpad { src_slots, .. } | Seg::RePad { src_slots, .. } => {
                    for i in 0..*src_slots as u32 {
                        out.push(WInstr::LocalGet(pool + conc_off[si] + i));
                    }
                }
            }
        }
        self.release_pool(pool);
    }

    // ------------------------------------------------------------------
    // Trace-aligned skipping of dead code.
    // ------------------------------------------------------------------
    fn skip_instr(&mut self, e: &rw::Instr) -> Result<(), LowerError> {
        let entry = self
            .trace
            .get(self.cursor)
            .ok_or_else(|| LowerError::Internal("trace exhausted while skipping".into()))?
            .clone();
        self.cursor += 1;
        let visit = entry.bodies_visited;
        match e {
            rw::Instr::BlockI(_, body) | rw::Instr::LoopI(_, body) => {
                for i in body {
                    self.skip_instr(i)?;
                }
            }
            rw::Instr::IfI(_, a, b) => {
                for i in a.iter().chain(b) {
                    self.skip_instr(i)?;
                }
            }
            rw::Instr::MemUnpack(_, body) | rw::Instr::ExistUnpack(_, _, _, body) if visit => {
                for i in body {
                    self.skip_instr(i)?;
                }
            }
            rw::Instr::VariantCase(_, _, _, bodies) if visit => {
                for b in bodies {
                    for i in b {
                        self.skip_instr(i)?;
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Main dispatch.
    // ------------------------------------------------------------------
    #[allow(clippy::too_many_lines)]
    fn lower_instr(&mut self, e: &rw::Instr, out: &mut Vec<WInstr>) -> Result<(), LowerError> {
        let entry = self
            .trace
            .get(self.cursor)
            .ok_or_else(|| LowerError::Internal(format!("trace exhausted at {e}")))?
            .clone();
        if entry.dead {
            // Statically dead: emit nothing (the Wasm region is already
            // unreachable) but keep the trace cursor aligned.
            return self.skip_instr(e);
        }
        self.cursor += 1;

        use rw::Instr as I;
        match e {
            I::Val(v) => out.extend(value_consts(v)),
            I::Num(n) => self.lower_num(*n, out),
            I::Nop => out.push(WInstr::Nop),
            I::Unreachable => out.push(WInstr::Unreachable),
            I::Drop => {
                let l = flatten(&self.ctx, &entry.consumed[0])?;
                for _ in 0..l.len() {
                    out.push(WInstr::Drop);
                }
            }
            I::Select => {
                let l = flatten(&self.ctx, &entry.consumed[0])?;
                if l.len() == 1 {
                    out.push(WInstr::Select);
                } else {
                    let n = layout_slots(&l);
                    let c = self.alloc_pool(1);
                    let b = self.alloc_pool(n);
                    let a = self.alloc_pool(n);
                    out.push(WInstr::LocalSet(c));
                    self.emit_spill(&l, b, out);
                    self.emit_spill(&l, a, out);
                    out.push(WInstr::LocalGet(c));
                    let bt = self.wm.intern_type(FuncType {
                        params: vec![],
                        results: l.clone(),
                    });
                    let mut t_arm = Vec::new();
                    self.emit_unspill(&l, a, &mut t_arm);
                    let mut f_arm = Vec::new();
                    self.emit_unspill(&l, b, &mut f_arm);
                    out.push(WInstr::If(BlockType::Func(bt), t_arm, f_arm));
                    self.release_pool(c);
                }
            }
            I::BlockI(b, body) => {
                let bt = self.block_type(&b.arrow)?;
                let mut inner = Vec::new();
                self.enter_label();
                for i in body {
                    self.lower_instr(i, &mut inner)?;
                }
                self.exit_label();
                out.push(WInstr::Block(bt, inner));
            }
            I::LoopI(arrow, body) => {
                let bt = self.block_type(arrow)?;
                let mut inner = Vec::new();
                self.enter_label();
                for i in body {
                    self.lower_instr(i, &mut inner)?;
                }
                self.exit_label();
                out.push(WInstr::Loop(bt, inner));
            }
            I::IfI(b, tb, fb) => {
                let bt = self.block_type(&b.arrow)?;
                let mut t_arm = Vec::new();
                self.enter_label();
                for i in tb {
                    self.lower_instr(i, &mut t_arm)?;
                }
                self.exit_label();
                let mut f_arm = Vec::new();
                self.enter_label();
                for i in fb {
                    self.lower_instr(i, &mut f_arm)?;
                }
                self.exit_label();
                out.push(WInstr::If(bt, t_arm, f_arm));
            }
            I::Br(i) => out.push(WInstr::Br(self.br_depth(*i)?)),
            I::BrIf(i) => out.push(WInstr::BrIf(self.br_depth(*i)?)),
            I::BrTable(ts, d) => {
                let ts = ts
                    .iter()
                    .map(|i| self.br_depth(*i))
                    .collect::<Result<_, _>>()?;
                let d = self.br_depth(*d)?;
                out.push(WInstr::BrTable(ts, d));
            }
            I::Return => out.push(WInstr::Return),
            I::GetLocal(i, _) => {
                let l = flatten(&self.ctx, &entry.produced[0])?;
                let (base, _) = self.slot_map[*i as usize];
                self.emit_unspill(&l, base, out);
            }
            I::SetLocal(i) => {
                let l = flatten(&self.ctx, &entry.consumed[0])?;
                let (base, _) = self.slot_map[*i as usize];
                self.emit_spill(&l, base, out);
            }
            I::TeeLocal(i) => {
                let l = flatten(&self.ctx, &entry.consumed[0])?;
                let (base, _) = self.slot_map[*i as usize];
                self.emit_spill(&l, base, out);
                self.emit_unspill(&l, base, out);
            }
            I::GetGlobal(i) => {
                let (base, layout) = self.sh.globals[*i as usize].clone();
                for k in 0..layout.len() as u32 {
                    out.push(WInstr::GlobalGet(base + k));
                }
            }
            I::SetGlobal(i) => {
                let (base, layout) = self.sh.globals[*i as usize].clone();
                for k in (0..layout.len() as u32).rev() {
                    out.push(WInstr::GlobalSet(base + k));
                }
            }
            // Type-level instructions are erased (paper §6).
            I::Qualify(_)
            | I::RefDemote
            | I::CapSplit
            | I::CapJoin
            | I::RefSplit
            | I::RefJoin
            | I::MemPack(_)
            | I::RecFold(_)
            | I::RecUnfold
            | I::Group(..)
            | I::Ungroup
            | I::Inst(_) => {}
            I::CodeRefI(i) => {
                out.push(WInstr::I32Const((self.sh.table_base + i) as i32));
            }
            I::Call(j, _) => self.lower_call(*j, &entry, out)?,
            I::CallIndirect => self.lower_call_indirect(&entry, out)?,
            I::MemUnpack(b, body) => {
                // The package value's representation is the opened value.
                let pkg_ty = entry.consumed.last().expect("package").clone();
                let pkg_l = flatten(&self.ctx, &pkg_ty)?;
                let mut params = Vec::new();
                for p in &b.arrow.params {
                    params.extend(flatten(&self.ctx, p)?);
                }
                params.extend(pkg_l);
                let mut results = Vec::new();
                for r in &b.arrow.results {
                    results.extend(flatten(&self.ctx, r)?);
                }
                let bt = self.wm.intern_type(FuncType { params, results });
                self.ctx.push_loc();
                let mut inner = Vec::new();
                self.enter_label();
                for i in body {
                    self.lower_instr(i, &mut inner)?;
                }
                self.exit_label();
                self.ctx.pop_loc();
                out.push(WInstr::Block(BlockType::Func(bt), inner));
            }
            I::ExistUnpack(q, psi, b, body) => {
                self.lower_exist_unpack(*q, psi, b, body, &entry, out)?;
            }
            I::VariantCase(q, psi, b, bodies) => {
                self.lower_variant_case(*q, psi, b, bodies, &entry, out)?;
            }
            I::StructMalloc(szs, _) => {
                // consumed = field types (bottom→top).
                let fields = entry.consumed.clone();
                let mut offs = Vec::new();
                let mut total = 0u32;
                for sz in szs {
                    offs.push(total);
                    total += (resolve_size(&self.ctx, sz)?.div_ceil(32) * 4) as u32;
                }
                // Spill fields (reverse order: last field is on top).
                let layouts: Vec<Vec<ValType>> = fields
                    .iter()
                    .map(|t| flatten(&self.ctx, t))
                    .collect::<Result<_, _>>()?;
                let slot_counts: Vec<usize> = layouts.iter().map(|l| layout_slots(l)).collect();
                let pool = self.alloc_pool(slot_counts.iter().sum());
                let mut bases = Vec::new();
                let mut acc = pool;
                for c in &slot_counts {
                    bases.push(acc);
                    acc += *c as u32;
                }
                for (k, l) in layouts.iter().enumerate().rev() {
                    let l = l.clone();
                    self.emit_spill(&l, bases[k], out);
                }
                let p = self.alloc_pool(1);
                out.push(WInstr::I32Const(total.max(4) as i32));
                out.push(WInstr::Call(self.sh.malloc_idx));
                out.push(WInstr::LocalSet(p));
                for (k, c) in slot_counts.iter().enumerate() {
                    self.emit_store_slots(*c, bases[k], p, offs[k], out);
                }
                out.push(WInstr::LocalGet(p));
                self.release_pool(pool);
            }
            I::StructGet(i) => {
                let (offs, field_layouts) = self.struct_layout(&entry.consumed[0])?;
                let p = self.alloc_pool(1);
                out.push(WInstr::LocalTee(p));
                let l = field_layouts[*i as usize].clone();
                self.emit_load(&l, p, offs[*i as usize], out);
                self.release_pool(p);
            }
            I::StructSet(i) => {
                let (offs, _) = self.struct_layout(&entry.consumed[0])?;
                let vl = flatten(&self.ctx, &entry.consumed[1])?;
                let n = layout_slots(&vl);
                let pool = self.alloc_pool(n + 1);
                let p = pool + n as u32;
                self.emit_spill(&vl, pool, out);
                out.push(WInstr::LocalTee(p));
                out.push(WInstr::Drop);
                self.emit_store_slots(n, pool, p, offs[*i as usize], out);
                out.push(WInstr::LocalGet(p));
                self.release_pool(pool);
            }
            I::StructSwap(i) => {
                let (offs, field_layouts) = self.struct_layout(&entry.consumed[0])?;
                let old_l = field_layouts[*i as usize].clone();
                let vl = flatten(&self.ctx, &entry.consumed[1])?;
                let n = layout_slots(&vl);
                let pool = self.alloc_pool(n + 1);
                let p = pool + n as u32;
                self.emit_spill(&vl, pool, out);
                out.push(WInstr::LocalTee(p));
                // Stack: ref. Load the old value, then overwrite.
                self.emit_load(&old_l, p, offs[*i as usize], out);
                self.emit_store_slots(n, pool, p, offs[*i as usize], out);
                self.release_pool(pool);
            }
            I::StructFree | I::ArrayFree => out.push(WInstr::Call(self.sh.free_idx)),
            I::VariantMalloc(tag, _, _) => {
                let vl = flatten(&self.ctx, &entry.consumed[0])?;
                let n = layout_slots(&vl);
                let pool = self.alloc_pool(n + 1);
                let p = pool + n as u32;
                self.emit_spill(&vl, pool, out);
                out.push(WInstr::I32Const(4 + 4 * n as i32));
                out.push(WInstr::Call(self.sh.malloc_idx));
                out.push(WInstr::LocalTee(p));
                out.push(WInstr::I32Const(*tag as i32));
                out.push(WInstr::Store(ValType::I32, 0));
                self.emit_store_slots(n, pool, p, 4, out);
                out.push(WInstr::LocalGet(p));
                self.release_pool(pool);
            }
            I::ArrayMalloc(_) => self.lower_array_malloc(&entry, out)?,
            I::ArrayGet => self.lower_array_get(&entry, out)?,
            I::ArraySet => self.lower_array_set(&entry, out)?,
            I::ExistPack(wit, psi, _) => self.lower_exist_pack(wit, psi, &entry, out)?,
            I::Trap
            | I::CallAdmin { .. }
            | I::Label { .. }
            | I::LocalFrame { .. }
            | I::MallocAdmin(..)
            | I::Free => {
                return Err(LowerError::Internal(format!(
                    "administrative instruction {e} in source module"
                )));
            }
        }
        Ok(())
    }

    fn block_type(&mut self, arrow: &rw::ArrowType) -> Result<BlockType, LowerError> {
        let mut params = Vec::new();
        for p in &arrow.params {
            params.extend(flatten(&self.ctx, p)?);
        }
        let mut results = Vec::new();
        for r in &arrow.results {
            results.extend(flatten(&self.ctx, r)?);
        }
        if params.is_empty() && results.is_empty() {
            return Ok(BlockType::Empty);
        }
        if params.is_empty() && results.len() == 1 {
            return Ok(BlockType::Value(results[0]));
        }
        Ok(BlockType::Func(
            self.wm.intern_type(FuncType { params, results }),
        ))
    }

    fn enter_label(&mut self) {
        self.wdepth += 1;
        self.rw_labels.push(self.wdepth);
    }

    fn exit_label(&mut self) {
        self.rw_labels.pop();
        self.wdepth -= 1;
    }

    fn br_depth(&self, i: u32) -> Result<u32, LowerError> {
        let n = self.rw_labels.len();
        if (i as usize) < n {
            let record = self.rw_labels[n - 1 - i as usize];
            Ok(self.wdepth - record)
        } else {
            // Branch to the function's implicit label (return).
            Ok(self.wdepth + (i - n as u32))
        }
    }

    fn lower_num(&mut self, n: rw::NumInstr, out: &mut Vec<WInstr>) {
        use richwasm::syntax::instr as ri;
        use rw::NumInstr as N;
        let width = |nt: rw::NumType| match nt.bits() {
            32 => Width::W32,
            _ => Width::W64,
        };
        let sx = |s: ri::Sign| match s {
            ri::Sign::S => w::Sx::S,
            ri::Sign::U => w::Sx::U,
        };
        match n {
            N::IntUnop(nt, op) => {
                let o = match op {
                    ri::IntUnop::Clz => w::IUnOp::Clz,
                    ri::IntUnop::Ctz => w::IUnOp::Ctz,
                    ri::IntUnop::Popcnt => w::IUnOp::Popcnt,
                };
                out.push(WInstr::IUn(width(nt), o));
            }
            N::IntBinop(nt, op) => {
                let o = match op {
                    ri::IntBinop::Add => w::IBinOp::Add,
                    ri::IntBinop::Sub => w::IBinOp::Sub,
                    ri::IntBinop::Mul => w::IBinOp::Mul,
                    ri::IntBinop::Div(s) => w::IBinOp::Div(sx(s)),
                    ri::IntBinop::Rem(s) => w::IBinOp::Rem(sx(s)),
                    ri::IntBinop::And => w::IBinOp::And,
                    ri::IntBinop::Or => w::IBinOp::Or,
                    ri::IntBinop::Xor => w::IBinOp::Xor,
                    ri::IntBinop::Shl => w::IBinOp::Shl,
                    ri::IntBinop::Shr(s) => w::IBinOp::Shr(sx(s)),
                    ri::IntBinop::Rotl => w::IBinOp::Rotl,
                    ri::IntBinop::Rotr => w::IBinOp::Rotr,
                };
                out.push(WInstr::IBin(width(nt), o));
            }
            N::Eqz(nt) => out.push(WInstr::ITest(width(nt))),
            N::IntRelop(nt, op) => {
                let o = match op {
                    ri::IntRelop::Eq => w::IRelOp::Eq,
                    ri::IntRelop::Ne => w::IRelOp::Ne,
                    ri::IntRelop::Lt(s) => w::IRelOp::Lt(sx(s)),
                    ri::IntRelop::Gt(s) => w::IRelOp::Gt(sx(s)),
                    ri::IntRelop::Le(s) => w::IRelOp::Le(sx(s)),
                    ri::IntRelop::Ge(s) => w::IRelOp::Ge(sx(s)),
                };
                out.push(WInstr::IRel(width(nt), o));
            }
            N::FloatUnop(nt, op) => {
                let o = match op {
                    ri::FloatUnop::Abs => w::FUnOp::Abs,
                    ri::FloatUnop::Neg => w::FUnOp::Neg,
                    ri::FloatUnop::Sqrt => w::FUnOp::Sqrt,
                    ri::FloatUnop::Ceil => w::FUnOp::Ceil,
                    ri::FloatUnop::Floor => w::FUnOp::Floor,
                    ri::FloatUnop::Trunc => w::FUnOp::Trunc,
                    ri::FloatUnop::Nearest => w::FUnOp::Nearest,
                };
                out.push(WInstr::FUn(width(nt), o));
            }
            N::FloatBinop(nt, op) => {
                let o = match op {
                    ri::FloatBinop::Add => w::FBinOp::Add,
                    ri::FloatBinop::Sub => w::FBinOp::Sub,
                    ri::FloatBinop::Mul => w::FBinOp::Mul,
                    ri::FloatBinop::Div => w::FBinOp::Div,
                    ri::FloatBinop::Min => w::FBinOp::Min,
                    ri::FloatBinop::Max => w::FBinOp::Max,
                    ri::FloatBinop::Copysign => w::FBinOp::Copysign,
                };
                out.push(WInstr::FBin(width(nt), o));
            }
            N::FloatRelop(nt, op) => {
                let o = match op {
                    ri::FloatRelop::Eq => w::FRelOp::Eq,
                    ri::FloatRelop::Ne => w::FRelOp::Ne,
                    ri::FloatRelop::Lt => w::FRelOp::Lt,
                    ri::FloatRelop::Gt => w::FRelOp::Gt,
                    ri::FloatRelop::Le => w::FRelOp::Le,
                    ri::FloatRelop::Ge => w::FRelOp::Ge,
                };
                out.push(WInstr::FRel(width(nt), o));
            }
            N::Convert(dst, src) => self.lower_convert(dst, src, out),
            N::Reinterpret(dst, src) => {
                use rw::NumType::*;
                match (src, dst) {
                    (F32, I32) | (F32, U32) => out.push(WInstr::IReinterpretF(Width::W32)),
                    (F64, I64) | (F64, U64) => out.push(WInstr::IReinterpretF(Width::W64)),
                    (I32, F32) | (U32, F32) => out.push(WInstr::FReinterpretI(Width::W32)),
                    (I64, F64) | (U64, F64) => out.push(WInstr::FReinterpretI(Width::W64)),
                    _ => {} // same-representation reinterpret: no-op
                }
            }
        }
    }

    fn lower_convert(&mut self, dst: rw::NumType, src: rw::NumType, out: &mut Vec<WInstr>) {
        use rw::NumType::*;
        match (src, dst) {
            // int → int
            (I64 | U64, I32 | U32) => out.push(WInstr::I32WrapI64),
            (I32, I64 | U64) => out.push(WInstr::I64ExtendI32(w::Sx::S)),
            (U32, I64 | U64) => out.push(WInstr::I64ExtendI32(w::Sx::U)),
            (I32, U32) | (U32, I32) | (I64, U64) | (U64, I64) => {}
            // int → float
            (I32, F32) => out.push(WInstr::FConvertI(Width::W32, Width::W32, w::Sx::S)),
            (U32, F32) => out.push(WInstr::FConvertI(Width::W32, Width::W32, w::Sx::U)),
            (I64, F32) => out.push(WInstr::FConvertI(Width::W32, Width::W64, w::Sx::S)),
            (U64, F32) => out.push(WInstr::FConvertI(Width::W32, Width::W64, w::Sx::U)),
            (I32, F64) => out.push(WInstr::FConvertI(Width::W64, Width::W32, w::Sx::S)),
            (U32, F64) => out.push(WInstr::FConvertI(Width::W64, Width::W32, w::Sx::U)),
            (I64, F64) => out.push(WInstr::FConvertI(Width::W64, Width::W64, w::Sx::S)),
            (U64, F64) => out.push(WInstr::FConvertI(Width::W64, Width::W64, w::Sx::U)),
            // float → int
            (F32, I32) => out.push(WInstr::ITruncF(Width::W32, Width::W32, w::Sx::S)),
            (F32, U32) => out.push(WInstr::ITruncF(Width::W32, Width::W32, w::Sx::U)),
            (F32, I64) => out.push(WInstr::ITruncF(Width::W64, Width::W32, w::Sx::S)),
            (F32, U64) => out.push(WInstr::ITruncF(Width::W64, Width::W32, w::Sx::U)),
            (F64, I32) => out.push(WInstr::ITruncF(Width::W32, Width::W64, w::Sx::S)),
            (F64, U32) => out.push(WInstr::ITruncF(Width::W32, Width::W64, w::Sx::U)),
            (F64, I64) => out.push(WInstr::ITruncF(Width::W64, Width::W64, w::Sx::S)),
            (F64, U64) => out.push(WInstr::ITruncF(Width::W64, Width::W64, w::Sx::U)),
            // float ↔ float
            (F32, F64) => out.push(WInstr::F64PromoteF32),
            (F64, F32) => out.push(WInstr::F32DemoteF64),
            (F32, F32) | (F64, F64) | (I32, I32) | (U32, U32) | (I64, I64) | (U64, U64) => {}
        }
    }

    /// Offsets and layouts of a struct's fields from a reference type.
    fn struct_layout(
        &self,
        ref_ty: &rw::Type,
    ) -> Result<(Vec<u32>, Vec<Vec<ValType>>), LowerError> {
        let Pretype::Ref(_, _, HeapType::Struct(fields)) = &*ref_ty.pre else {
            return Err(LowerError::Internal(format!(
                "expected struct ref, got {ref_ty}"
            )));
        };
        let mut offs = Vec::new();
        let mut layouts = Vec::new();
        let mut acc = 0u32;
        for (t, sz) in fields {
            offs.push(acc);
            acc += (resolve_size(&self.ctx, sz)?.div_ceil(32) * 4) as u32;
            layouts.push(flatten(&self.ctx, t)?);
        }
        Ok((offs, layouts))
    }

    fn lower_call(
        &mut self,
        j: u32,
        entry: &InstrInfo,
        out: &mut Vec<WInstr>,
    ) -> Result<(), LowerError> {
        let ft = self.env.funcs[j as usize].clone();
        let widx = self.sh.rw2wasm[j as usize];
        let mut callee_ctx = KindCtx::new();
        let _t = push_telescope(&mut callee_ctx, &ft.quants);
        // Per-argument coercion plan (concatenated).
        let mut arg_plan = Vec::new();
        for (abs, conc) in ft.arrow.params.iter().zip(&entry.consumed) {
            arg_plan.extend(plan(&callee_ctx, abs, &self.ctx, conc)?);
        }
        let mut res_plan = Vec::new();
        for (abs, conc) in ft.arrow.results.iter().zip(&entry.produced) {
            res_plan.extend(plan(&callee_ctx, abs, &self.ctx, conc)?);
        }
        if !plan_is_identity(&arg_plan) {
            // Spill concrete args and re-push the abstract layout.
            let conc_layout: Vec<ValType> = entry
                .consumed
                .iter()
                .map(|t| flatten(&self.ctx, t))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .flatten()
                .collect();
            let pool = self.alloc_pool(layout_slots(&conc_layout));
            self.emit_spill(&conc_layout, pool, out);
            self.emit_coerce_push(&arg_plan, pool, out);
            self.release_pool(pool);
        }
        out.push(WInstr::Call(widx));
        if !plan_is_identity(&res_plan) {
            self.emit_coerce_pop(&res_plan, out);
        }
        Ok(())
    }

    fn lower_call_indirect(
        &mut self,
        entry: &InstrInfo,
        out: &mut Vec<WInstr>,
    ) -> Result<(), LowerError> {
        let coderef_ty = entry.consumed.last().expect("coderef").clone();
        let Pretype::CodeRef(mono) = &*coderef_ty.pre else {
            return Err(LowerError::Internal(
                "call_indirect without coderef type".into(),
            ));
        };
        let args = &entry.consumed[..entry.consumed.len() - 1];
        let conc_results = &entry.produced;

        // The table index is on top of the stack.
        let ix = self.alloc_pool(1);
        out.push(WInstr::LocalSet(ix));
        // Spill the concrete args.
        let conc_layout: Vec<ValType> = args
            .iter()
            .map(|t| flatten(&self.ctx, t))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .flatten()
            .collect();
        let pool = self.alloc_pool(layout_slots(&conc_layout));
        self.emit_spill(&conc_layout, pool, out);

        // Result block type: the concrete result layout.
        let mut res_layout = Vec::new();
        for r in conc_results {
            res_layout.extend(flatten(&self.ctx, r)?);
        }
        let bt = self.wm.intern_type(FuncType {
            params: vec![],
            results: res_layout,
        });

        // One case per possible callee shape (paper §6).
        let mut cases = Vec::new();
        for te in self.sh.table_entries {
            if te.funtype.arrow.params.len() != mono.arrow.params.len()
                || te.funtype.arrow.results.len() != mono.arrow.results.len()
            {
                continue;
            }
            let mut cctx = KindCtx::new();
            let _t = push_telescope(&mut cctx, &te.funtype.quants);
            let mut arg_plan = Vec::new();
            let mut ok = true;
            for (abs, conc) in te.funtype.arrow.params.iter().zip(args) {
                match plan(&cctx, abs, &self.ctx, conc) {
                    Ok(p) => arg_plan.extend(p),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            let mut res_plan = Vec::new();
            if ok {
                for (abs, conc) in te.funtype.arrow.results.iter().zip(conc_results.iter()) {
                    match plan(&cctx, abs, &self.ctx, conc) {
                        Ok(p) => res_plan.extend(p),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            let sig = lower_signature(&te.funtype)?;
            let sig_idx = self.wm.intern_type(sig);
            cases.push((te.global_idx, arg_plan, res_plan, sig_idx));
        }

        // Build the nested if-chain, innermost first.
        let mut chain: Vec<WInstr> = vec![WInstr::Unreachable];
        for (gidx, arg_plan, res_plan, sig_idx) in cases.into_iter().rev() {
            let mut arm = Vec::new();
            self.emit_coerce_push(&arg_plan, pool, &mut arm);
            arm.push(WInstr::LocalGet(ix));
            arm.push(WInstr::CallIndirect(sig_idx));
            if !plan_is_identity(&res_plan) {
                self.emit_coerce_pop(&res_plan, &mut arm);
            }
            let prev = std::mem::take(&mut chain);
            chain = vec![
                WInstr::LocalGet(ix),
                WInstr::I32Const(gidx as i32),
                WInstr::IRel(Width::W32, w::IRelOp::Eq),
                WInstr::If(BlockType::Func(bt), arm, prev),
            ];
        }
        out.extend(chain);
        self.release_pool(ix);
        Ok(())
    }

    fn lower_exist_unpack(
        &mut self,
        q: Qual,
        psi: &HeapType,
        b: &rw::instr::Block,
        body: &[rw::Instr],
        entry: &InstrInfo,
        out: &mut Vec<WInstr>,
    ) -> Result<(), LowerError> {
        let HeapType::Exists(bq, bsz, body_ty) = psi else {
            return Err(LowerError::Internal(
                "exist.unpack without ∃ heap type".into(),
            ));
        };
        let linear = matches!(q, Qual::Lin);
        let n_params = b.arrow.params.len();
        let mut params_layout = Vec::new();
        for p in &b.arrow.params {
            params_layout.extend(flatten(&self.ctx, p)?);
        }
        let mut results_layout = Vec::new();
        for r in &b.arrow.results {
            results_layout.extend(flatten(&self.ctx, r)?);
        }
        let _ = n_params;

        // Stack: [ref, params*] — the reference is *below* the block
        // params (same shape as variant.case). Spill the params to reach
        // it; in the unrestricted case the reference stays on the stack,
        // below the block, and is returned under the results.
        let p = self.alloc_pool(1);
        let q_pool = self.alloc_pool(layout_slots(&params_layout));
        self.emit_spill(&params_layout, q_pool, out);
        if linear {
            out.push(WInstr::LocalSet(p));
        } else {
            out.push(WInstr::LocalTee(p));
        }
        self.emit_unspill(&params_layout.clone(), q_pool, out);
        self.release_pool(q_pool);

        // Payload layout (abstract, under the ∃ binder).
        self.ctx.push_type(TypeBound {
            lower_qual: *bq,
            size: bsz.clone(),
            may_contain_caps: false,
        });
        let payload_layout = flatten(&self.ctx, body_ty)?;

        // Push payload (header is 8 bytes), free if linear, run the body.
        let mut pre = Vec::new();
        self.emit_load(&payload_layout, p, 8, &mut pre);
        if linear {
            pre.push(WInstr::LocalGet(p));
            pre.push(WInstr::Call(self.sh.free_idx));
        }

        let _ = results_layout;
        let mut inner = pre;
        self.enter_label();
        for i in body {
            self.lower_instr(i, &mut inner)?;
        }
        self.exit_label();
        self.ctx.pop_type();
        let _ = entry;
        // The block's params are the τ1* currently on the stack; the
        // payload is pushed inside.
        // Wasm block params are taken from the stack, so the payload loads
        // must happen *inside* the block... but they were prepended to
        // `inner` above, which is exactly inside. However the block's
        // declared params then must NOT include the payload. Re-intern:
        let mut only_params = Vec::new();
        for pp in &b.arrow.params {
            only_params.extend(flatten(&self.ctx, pp)?);
        }
        let mut only_results = Vec::new();
        for r in &b.arrow.results {
            only_results.extend(flatten(&self.ctx, r)?);
        }
        let bt2 = self.wm.intern_type(FuncType {
            params: only_params,
            results: only_results,
        });
        out.push(WInstr::Block(BlockType::Func(bt2), inner));
        self.release_pool(p);
        Ok(())
    }

    fn lower_variant_case(
        &mut self,
        q: Qual,
        psi: &HeapType,
        b: &rw::instr::Block,
        bodies: &[Vec<rw::Instr>],
        entry: &InstrInfo,
        out: &mut Vec<WInstr>,
    ) -> Result<(), LowerError> {
        let HeapType::Variant(cases) = psi else {
            return Err(LowerError::Internal(
                "variant.case without variant type".into(),
            ));
        };
        let linear = matches!(q, Qual::Lin);
        let _ = entry;
        let mut params_layout = Vec::new();
        for p in &b.arrow.params {
            params_layout.extend(flatten(&self.ctx, p)?);
        }
        let mut results_layout = Vec::new();
        for r in &b.arrow.results {
            results_layout.extend(flatten(&self.ctx, r)?);
        }

        // Stack: [ref, params*] — dig out the ref.
        let p = self.alloc_pool(1);
        let tag = self.alloc_pool(1);
        let q_pool = self.alloc_pool(layout_slots(&params_layout));
        self.emit_spill(&params_layout, q_pool, out);
        if linear {
            out.push(WInstr::LocalSet(p));
        } else {
            out.push(WInstr::LocalTee(p)); // ref stays below everything
        }
        out.push(WInstr::LocalGet(p));
        out.push(WInstr::Load(ValType::I32, 0));
        out.push(WInstr::LocalSet(tag));
        self.emit_unspill(&params_layout.clone(), q_pool, out);
        self.release_pool(q_pool);
        // (q_pool is released but indices stay valid within this emission.)

        // Dispatch chain: each arm takes the params, pushes the payload,
        // frees the cell in the linear case, and runs the branch body.
        let bt = self.wm.intern_type(FuncType {
            params: params_layout.clone(),
            results: results_layout.clone(),
        });
        let chain = self.emit_case_chain(0, cases, bodies, p, tag, linear, bt)?;
        out.push(WInstr::LocalGet(tag));
        out.push(WInstr::I32Const(0));
        out.push(WInstr::IRel(Width::W32, w::IRelOp::Eq));
        out.push(chain);
        self.release_pool(p);
        Ok(())
    }

    /// Builds the `if tag==k … else …` chain for `variant.case`; returns
    /// the `If` for case `k`.
    #[allow(clippy::too_many_arguments)]
    fn emit_case_chain(
        &mut self,
        k: usize,
        cases: &[rw::Type],
        bodies: &[Vec<rw::Instr>],
        p: u32,
        tag: u32,
        linear: bool,
        bt: u32,
    ) -> Result<WInstr, LowerError> {
        // then-arm: case k.
        let payload_layout = flatten(&self.ctx, &cases[k])?;
        let mut arm = Vec::new();
        self.wdepth += 1; // entering this If's arm
        self.emit_load(&payload_layout, p, 4, &mut arm);
        if linear {
            arm.push(WInstr::LocalGet(p));
            arm.push(WInstr::Call(self.sh.free_idx));
        }
        self.rw_labels.push(self.wdepth);
        for i in &bodies[k] {
            self.lower_instr(i, &mut arm)?;
        }
        self.rw_labels.pop();

        // else-arm: next case or unreachable.
        let els = if k + 1 < cases.len() {
            let next = self.emit_case_chain(k + 1, cases, bodies, p, tag, linear, bt)?;
            vec![
                WInstr::LocalGet(tag),
                WInstr::I32Const((k + 1) as i32),
                WInstr::IRel(Width::W32, w::IRelOp::Eq),
                next,
            ]
        } else {
            vec![WInstr::Unreachable]
        };
        self.wdepth -= 1;
        Ok(WInstr::If(BlockType::Func(bt), arm, els))
    }

    fn lower_array_malloc(
        &mut self,
        entry: &InstrInfo,
        out: &mut Vec<WInstr>,
    ) -> Result<(), LowerError> {
        // consumed = [elem, ui32 length]
        let elem_ty = &entry.consumed[0];
        let el = flatten(&self.ctx, elem_ty)?;
        let esz = (byte_size(&self.ctx, elem_ty)?) as u32;
        let n = layout_slots(&el);
        let len = self.alloc_pool(1);
        let pool = self.alloc_pool(n);
        let p = self.alloc_pool(1);
        let i = self.alloc_pool(1);
        out.push(WInstr::LocalSet(len));
        self.emit_spill(&el, pool, out);
        // malloc(4 + len * esz)
        out.push(WInstr::I32Const(4));
        out.push(WInstr::LocalGet(len));
        out.push(WInstr::I32Const(esz as i32));
        out.push(WInstr::IBin(Width::W32, w::IBinOp::Mul));
        out.push(WInstr::IBin(Width::W32, w::IBinOp::Add));
        out.push(WInstr::Call(self.sh.malloc_idx));
        out.push(WInstr::LocalTee(p));
        out.push(WInstr::LocalGet(len));
        out.push(WInstr::Store(ValType::I32, 0));
        if esz > 0 {
            // for i in 0..len: copy the fill value.
            out.push(WInstr::I32Const(0));
            out.push(WInstr::LocalSet(i));
            let mut body = vec![
                WInstr::LocalGet(i),
                WInstr::LocalGet(len),
                WInstr::IRel(Width::W32, w::IRelOp::Ge(w::Sx::U)),
                WInstr::BrIf(1),
            ];
            // addr = p + 4 + i*esz (recomputed per slot store).
            for kslot in 0..n as u32 {
                body.push(WInstr::LocalGet(p));
                body.push(WInstr::LocalGet(i));
                body.push(WInstr::I32Const(esz as i32));
                body.push(WInstr::IBin(Width::W32, w::IBinOp::Mul));
                body.push(WInstr::IBin(Width::W32, w::IBinOp::Add));
                body.push(WInstr::LocalGet(pool + kslot));
                body.push(WInstr::Store(ValType::I32, 4 + 4 * kslot));
            }
            body.push(WInstr::LocalGet(i));
            body.push(WInstr::I32Const(1));
            body.push(WInstr::IBin(Width::W32, w::IBinOp::Add));
            body.push(WInstr::LocalSet(i));
            body.push(WInstr::Br(0));
            out.push(WInstr::Block(
                BlockType::Empty,
                vec![WInstr::Loop(BlockType::Empty, body)],
            ));
        }
        out.push(WInstr::LocalGet(p));
        self.release_pool(len);
        Ok(())
    }

    /// Emits the bounds check + element address computation shared by
    /// `array.get`/`array.set`. Expects `ix` and `p` already set; leaves
    /// the element address in `addr`.
    fn emit_array_addr(&mut self, p: u32, ix: u32, addr: u32, esz: u32, out: &mut Vec<WInstr>) {
        // if ix >= load(p) { unreachable }
        out.push(WInstr::LocalGet(ix));
        out.push(WInstr::LocalGet(p));
        out.push(WInstr::Load(ValType::I32, 0));
        out.push(WInstr::IRel(Width::W32, w::IRelOp::Ge(w::Sx::U)));
        out.push(WInstr::If(
            BlockType::Empty,
            vec![WInstr::Unreachable],
            vec![],
        ));
        out.push(WInstr::LocalGet(p));
        out.push(WInstr::LocalGet(ix));
        out.push(WInstr::I32Const(esz as i32));
        out.push(WInstr::IBin(Width::W32, w::IBinOp::Mul));
        out.push(WInstr::IBin(Width::W32, w::IBinOp::Add));
        out.push(WInstr::LocalSet(addr));
    }

    fn lower_array_get(
        &mut self,
        entry: &InstrInfo,
        out: &mut Vec<WInstr>,
    ) -> Result<(), LowerError> {
        // consumed = [ref, ui32]; produced = [ref, elem]
        let elem_ty = entry.produced[1].clone();
        let el = flatten(&self.ctx, &elem_ty)?;
        let esz = byte_size(&self.ctx, &elem_ty)? as u32;
        let ix = self.alloc_pool(1);
        let p = self.alloc_pool(1);
        let addr = self.alloc_pool(1);
        out.push(WInstr::LocalSet(ix));
        out.push(WInstr::LocalTee(p)); // ref stays on the stack
        out.push(WInstr::Drop);
        out.push(WInstr::LocalGet(p));
        self.emit_array_addr(p, ix, addr, esz, out);
        self.emit_load(&el, addr, 4, out);
        self.release_pool(ix);
        Ok(())
    }

    fn lower_array_set(
        &mut self,
        entry: &InstrInfo,
        out: &mut Vec<WInstr>,
    ) -> Result<(), LowerError> {
        // consumed = [ref, ui32, elem]; produced = [ref]
        let elem_ty = entry.consumed[2].clone();
        let el = flatten(&self.ctx, &elem_ty)?;
        let esz = byte_size(&self.ctx, &elem_ty)? as u32;
        let n = layout_slots(&el);
        let pool = self.alloc_pool(n);
        let ix = self.alloc_pool(1);
        let p = self.alloc_pool(1);
        let addr = self.alloc_pool(1);
        self.emit_spill(&el, pool, out);
        out.push(WInstr::LocalSet(ix));
        out.push(WInstr::LocalTee(p));
        self.emit_array_addr(p, ix, addr, esz, out);
        self.emit_store_slots(n, pool, addr, 4, out);
        self.release_pool(pool);
        Ok(())
    }

    fn lower_exist_pack(
        &mut self,
        wit: &Pretype,
        psi: &HeapType,
        entry: &InstrInfo,
        out: &mut Vec<WInstr>,
    ) -> Result<(), LowerError> {
        let HeapType::Exists(bq, bsz, body_ty) = psi else {
            return Err(LowerError::Internal(
                "exist.pack without ∃ heap type".into(),
            ));
        };
        let _ = wit;
        // Concrete payload (consumed) vs abstract layout (under binder).
        let conc_ty = entry.consumed[0].clone();
        let conc_l = flatten(&self.ctx, &conc_ty)?;
        self.ctx.push_type(TypeBound {
            lower_qual: *bq,
            size: bsz.clone(),
            may_contain_caps: false,
        });
        let segs = {
            // Abstract side is under the binder; the concrete payload type
            // lives in the outer context.
            let abs_ctx = self.ctx.clone();
            let mut conc_ctx = self.ctx.clone();
            conc_ctx.pop_type();
            plan(&abs_ctx, body_ty, &conc_ctx, &conc_ty)?
        };
        let abs_slots: usize = segs.iter().map(Seg::abs_slots).sum();
        self.ctx.pop_type();

        let n = layout_slots(&conc_l);
        let pool = self.alloc_pool(n);
        let p = self.alloc_pool(1);
        self.emit_spill(&conc_l, pool, out);
        out.push(WInstr::I32Const((8 + 4 * abs_slots) as i32));
        out.push(WInstr::Call(self.sh.malloc_idx));
        out.push(WInstr::LocalSet(p));
        // Store segments: content at their abstract offsets, zero padding.
        // (The packed value is the caller/concrete side; the cell layout
        // is the abstract side. Caller-abstract segments copy their slots
        // and pad/truncate as needed.)
        let mut abs_off = 8u32;
        let mut conc_off = 0u32;
        for seg in &segs {
            let store_n = match seg {
                Seg::Exact(ts) => layout_slots(ts),
                Seg::Padded { content, .. } => layout_slots(content),
                Seg::Unpad { src_slots, dst } => layout_slots(dst).min(*src_slots),
                Seg::RePad {
                    src_slots,
                    dst_slots,
                } => (*src_slots).min(*dst_slots),
            };
            self.emit_store_slots(store_n, pool + conc_off, p, abs_off, out);
            let pad = seg.abs_slots() - store_n;
            if pad > 0 {
                self.emit_store_zeros(pad, p, abs_off + 4 * store_n as u32, out);
            }
            abs_off += 4 * seg.abs_slots() as u32;
            conc_off += seg.conc_slots() as u32;
        }
        out.push(WInstr::LocalGet(p));
        self.release_pool(pool);
        Ok(())
    }
}
