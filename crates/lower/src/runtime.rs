//! The generated runtime module (paper §6: "We use a simple free list
//! allocator to allocate and free pointers in Wasm memory").
//!
//! The runtime module exports:
//!
//! * `mem` — the single flat memory hosting *both* RichWasm memories,
//! * `tab` — the shared function table (coderefs are global indices),
//! * `malloc : [i32 bytes] → [i32 ptr]` — first-fit free-list allocator,
//! * `free : [i32 ptr] → []` — returns a block to the free list,
//! * `live : [] → [i32]` — live allocation count (for tests/benches).
//!
//! Block layout: `[size: u32][payload …]`; free blocks reuse the first
//! payload word as the next-free link. Address 0 is reserved as null; the
//! heap starts at 8.

use richwasm_wasm::ast::*;

/// Minimum heap pages of the runtime memory.
pub const RUNTIME_PAGES: u32 = 16;

/// Builds the runtime module. `table_size` is the total number of shared
/// table slots the session needs.
pub fn runtime_module(table_size: u32) -> Module {
    let mut m = Module::default();
    let malloc_t = m.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    let free_t = m.intern_type(FuncType {
        params: vec![ValType::I32],
        results: vec![],
    });
    let live_t = m.intern_type(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });

    m.memory = Some(RUNTIME_PAGES);
    m.table = Some(table_size.max(1));

    // global 0: free-list head (0 = empty)
    // global 1: brk (bump pointer)
    // global 2: live allocation count
    m.globals.push(GlobalDef {
        ty: ValType::I32,
        mutable: true,
        init: WInstr::I32Const(0),
    });
    m.globals.push(GlobalDef {
        ty: ValType::I32,
        mutable: true,
        init: WInstr::I32Const(8),
    });
    m.globals.push(GlobalDef {
        ty: ValType::I32,
        mutable: true,
        init: WInstr::I32Const(0),
    });

    use IBinOp::*;
    use WInstr::*;

    // ------------------------------------------------------------------
    // malloc(n):
    //   n = max(align4(n), 4)
    //   prev = 0; cur = free_head
    //   while cur != 0:
    //     if load(cur) >= n:          ; first fit
    //        next = load(cur+4)
    //        if prev == 0 { free_head = next } else { store(prev+4, next) }
    //        live += 1; return cur + 4
    //     prev = cur; cur = load(cur+4)
    //   ; no fit: bump allocate
    //   ptr = brk; ensure capacity; store(ptr, n); brk = ptr + 4 + n
    //   live += 1; return ptr + 4
    //
    // locals: 0 = n (param), 1 = prev, 2 = cur, 3 = ptr
    // ------------------------------------------------------------------
    let malloc_body = vec![
        // n = max((n + 3) & !3, 4)
        LocalGet(0),
        I32Const(3),
        IBin(Width::W32, Add),
        I32Const(-4),
        IBin(Width::W32, And),
        LocalSet(0),
        LocalGet(0),
        I32Const(4),
        IRel(Width::W32, IRelOp::Lt(Sx::U)),
        If(BlockType::Empty, vec![I32Const(4), LocalSet(0)], vec![]),
        // prev = 0; cur = free_head
        I32Const(0),
        LocalSet(1),
        GlobalGet(0),
        LocalSet(2),
        Block(
            BlockType::Empty,
            vec![Loop(
                BlockType::Empty,
                vec![
                    // while cur != 0
                    LocalGet(2),
                    ITest(Width::W32),
                    BrIf(1),
                    // if load(cur) >= n: unlink and return
                    LocalGet(2),
                    Load(ValType::I32, 0),
                    LocalGet(0),
                    IRel(Width::W32, IRelOp::Ge(Sx::U)),
                    If(
                        BlockType::Empty,
                        vec![
                            LocalGet(1),
                            ITest(Width::W32),
                            If(
                                BlockType::Empty,
                                // prev == 0: free_head = next
                                vec![LocalGet(2), Load(ValType::I32, 4), GlobalSet(0)],
                                // else: prev.next = cur.next
                                vec![
                                    LocalGet(1),
                                    LocalGet(2),
                                    Load(ValType::I32, 4),
                                    Store(ValType::I32, 4),
                                ],
                            ),
                            // live += 1; return cur + 4
                            GlobalGet(2),
                            I32Const(1),
                            IBin(Width::W32, Add),
                            GlobalSet(2),
                            LocalGet(2),
                            I32Const(4),
                            IBin(Width::W32, Add),
                            Return,
                        ],
                        vec![],
                    ),
                    // prev = cur; cur = cur.next
                    LocalGet(2),
                    LocalSet(1),
                    LocalGet(2),
                    Load(ValType::I32, 4),
                    LocalSet(2),
                    Br(0),
                ],
            )],
        ),
        // Bump allocation: ptr = brk.
        GlobalGet(1),
        LocalSet(3),
        // Grow memory while brk + 4 + n > memory.size * PAGE.
        Block(
            BlockType::Empty,
            vec![Loop(
                BlockType::Empty,
                vec![
                    LocalGet(3),
                    I32Const(4),
                    IBin(Width::W32, Add),
                    LocalGet(0),
                    IBin(Width::W32, Add),
                    MemorySize,
                    I32Const(16),
                    IBin(Width::W32, Shl),
                    IRel(Width::W32, IRelOp::Le(Sx::U)),
                    BrIf(1),
                    I32Const(16),
                    MemoryGrow,
                    Drop,
                    Br(0),
                ],
            )],
        ),
        // store(ptr, n); brk = ptr + 4 + n
        LocalGet(3),
        LocalGet(0),
        Store(ValType::I32, 0),
        LocalGet(3),
        I32Const(4),
        IBin(Width::W32, Add),
        LocalGet(0),
        IBin(Width::W32, Add),
        GlobalSet(1),
        // live += 1
        GlobalGet(2),
        I32Const(1),
        IBin(Width::W32, Add),
        GlobalSet(2),
        LocalGet(3),
        I32Const(4),
        IBin(Width::W32, Add),
    ];
    m.funcs.push(FuncDef {
        type_idx: malloc_t,
        locals: vec![ValType::I32; 3],
        body: malloc_body,
    });

    // ------------------------------------------------------------------
    // free(p): hdr = p - 4; hdr.next = free_head; free_head = hdr;
    //          live -= 1
    // ------------------------------------------------------------------
    let free_body = vec![
        // hdr.next = free_head (stored in the first payload word = p)
        LocalGet(0),
        GlobalGet(0),
        Store(ValType::I32, 0),
        // free_head = hdr
        LocalGet(0),
        I32Const(4),
        IBin(Width::W32, Sub),
        GlobalSet(0),
        // live -= 1
        GlobalGet(2),
        I32Const(1),
        IBin(Width::W32, Sub),
        GlobalSet(2),
    ];
    m.funcs.push(FuncDef {
        type_idx: free_t,
        locals: vec![],
        body: free_body,
    });

    // live()
    m.funcs.push(FuncDef {
        type_idx: live_t,
        locals: vec![],
        body: vec![GlobalGet(2)],
    });

    m.exports.push(Export {
        name: "malloc".into(),
        kind: ExportKind::Func(0),
    });
    m.exports.push(Export {
        name: "free".into(),
        kind: ExportKind::Func(1),
    });
    m.exports.push(Export {
        name: "live".into(),
        kind: ExportKind::Func(2),
    });
    m.exports.push(Export {
        name: "mem".into(),
        kind: ExportKind::Memory(0),
    });
    m.exports.push(Export {
        name: "tab".into(),
        kind: ExportKind::Table(0),
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use richwasm_wasm::exec::{Val, WasmLinker};
    use richwasm_wasm::validate::validate_module;

    #[test]
    fn runtime_validates() {
        validate_module(&runtime_module(4)).unwrap();
    }

    #[test]
    fn malloc_free_reuse() {
        let mut l = WasmLinker::new();
        let rt = l.instantiate("rt", runtime_module(1)).unwrap();
        let p1 = l.invoke(rt, "malloc", &[Val::I32(16)]).unwrap()[0];
        let p2 = l.invoke(rt, "malloc", &[Val::I32(16)]).unwrap()[0];
        assert_ne!(p1, p2);
        assert_eq!(l.invoke(rt, "live", &[]).unwrap(), vec![Val::I32(2)]);
        // Freeing and reallocating the same size reuses the block.
        l.invoke(rt, "free", &[p1]).unwrap();
        assert_eq!(l.invoke(rt, "live", &[]).unwrap(), vec![Val::I32(1)]);
        let p3 = l.invoke(rt, "malloc", &[Val::I32(12)]).unwrap()[0];
        assert_eq!(p3, p1, "first-fit should reuse the freed block");
    }

    #[test]
    fn alignment_and_minimum_size() {
        let mut l = WasmLinker::new();
        let rt = l.instantiate("rt", runtime_module(1)).unwrap();
        let p1 = l.invoke(rt, "malloc", &[Val::I32(1)]).unwrap()[0]
            .as_i32()
            .unwrap();
        let p2 = l.invoke(rt, "malloc", &[Val::I32(1)]).unwrap()[0]
            .as_i32()
            .unwrap();
        // 1 byte rounds up to 4: blocks are 8 bytes apart (4 header + 4).
        assert_eq!(p2 - p1, 8);
        assert_eq!(p1 % 4, 0);
    }

    #[test]
    fn heap_grows_beyond_initial_pages() {
        let mut l = WasmLinker::new();
        let rt = l.instantiate("rt", runtime_module(1)).unwrap();
        // Allocate more than RUNTIME_PAGES' worth of memory.
        let big = RUNTIME_PAGES * 65536;
        let p = l.invoke(rt, "malloc", &[Val::I32(big)]).unwrap()[0];
        let q = l.invoke(rt, "malloc", &[Val::I32(1024)]).unwrap()[0];
        assert_ne!(p, q);
    }
}
