//! Lowering errors.

use std::fmt;

/// An error raised by the RichWasm → Wasm compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// The module failed RichWasm type checking (lowering is
    /// type-directed, so this is a precondition).
    TypeCheck(String),
    /// A size bound could not be resolved to a constant — the paper's
    /// boxing fallback, which this reproduction does not implement (our
    /// frontends always produce resolvable bounds).
    UnresolvableSize(String),
    /// Internal invariant violation (trace misalignment etc.).
    Internal(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::TypeCheck(e) => write!(f, "type error during lowering: {e}"),
            LowerError::UnresolvableSize(e) => {
                write!(f, "unresolvable size bound (boxing unimplemented): {e}")
            }
            LowerError::Internal(e) => write!(f, "internal lowering error: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<richwasm::TypeError> for LowerError {
    fn from(e: richwasm::TypeError) -> Self {
        LowerError::TypeCheck(e.to_string())
    }
}
