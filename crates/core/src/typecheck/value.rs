//! Typing of source-level constants (value typing, paper Fig. 6,
//! restricted to the values that may appear in *source* programs).
//!
//! Full runtime values (references, capabilities, code references,
//! packages) only arise during reduction; the interpreter maintains their
//! invariants dynamically (see [`crate::interp`]). Source modules may only
//! embed *constants*: `unit`, numeric literals, and tuples thereof.

use crate::error::TypeError;
use crate::syntax::{Pretype, Type, Value};

/// Synthesizes the type of a source-level constant.
///
/// # Errors
///
/// Fails on values that cannot appear in source programs (references,
/// capabilities, folds, packages, code references).
pub fn synthesize_const(v: &Value) -> Result<Type, TypeError> {
    match v {
        Value::Unit => Ok(Type::unit()),
        Value::Num(nt, _) => Ok(Type::num(*nt)),
        Value::Prod(vs) => {
            let ts = vs
                .iter()
                .map(synthesize_const)
                .collect::<Result<Vec<_>, _>>()?;
            // Constants are unrestricted, and an unrestricted tuple of
            // unrestricted components is always well-formed.
            Ok(Pretype::Prod(ts).unr())
        }
        other => Err(TypeError::Other(format!(
            "value {other} is not a source-level constant (only unit, numbers, and tuples \
             of constants may be embedded in programs)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{ConcreteLoc, NumType};

    #[test]
    fn constants_synthesize() {
        assert_eq!(synthesize_const(&Value::Unit).unwrap(), Type::unit());
        assert_eq!(
            synthesize_const(&Value::i32(3)).unwrap(),
            Type::num(NumType::I32)
        );
        let t = synthesize_const(&Value::Prod(vec![Value::Unit, Value::f64(1.0)])).unwrap();
        assert_eq!(
            t,
            Pretype::Prod(vec![Type::unit(), Type::num(NumType::F64)]).unr()
        );
    }

    #[test]
    fn runtime_values_rejected() {
        assert!(synthesize_const(&Value::Ref(ConcreteLoc::lin(0))).is_err());
        assert!(synthesize_const(&Value::Cap).is_err());
        assert!(synthesize_const(&Value::Fold(Box::new(Value::Unit))).is_err());
    }
}
