//! Typing-rule introspection (fuzzing support).
//!
//! The instruction checker implements one algorithmic rule per
//! source instruction form (paper Figs. 5–8). This module names those
//! rules as data — a [`Rule`] per form, split by qualifier where the
//! qualifier is syntactic and selects genuinely different premises
//! (`get_local` strong-updates the slot only when linear; `struct.malloc`
//! targets a different memory per qualifier; `variant.case`/`exist.unpack`
//! free the cell only when linear) — so that external tools can reason
//! about *which* rules a module exercises without re-implementing the
//! checker's dispatch.
//!
//! The primary consumer is `richwasm-fuzz`: its type-directed generator
//! biases production choices toward under-covered rules, and its corpus
//! statistics report per-rule counts. Coverage is purely syntactic (an
//! AST walk), which is meaningful precisely because the corpus is checked:
//! for a module accepted by [`super::check_module`], every counted
//! instruction's rule premises were established.

use crate::syntax::{Instr, Qual};

/// One algorithmic typing rule of the checker (one source-instruction
/// form, qualifier-split where the qualifier changes the premises).
///
/// Administrative instructions (paper Fig. 4) have no entry: the checker
/// rejects them in source modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Rule {
    Val,
    Num,
    Unreachable,
    Nop,
    Drop,
    Select,
    Block,
    Loop,
    If,
    Br,
    BrIf,
    BrTable,
    Return,
    GetLocalUnr,
    GetLocalLin,
    SetLocal,
    TeeLocal,
    GetGlobal,
    SetGlobal,
    Qualify,
    CodeRef,
    Inst,
    CallIndirect,
    Call,
    RecFold,
    RecUnfold,
    MemPack,
    MemUnpack,
    Group,
    Ungroup,
    CapSplit,
    CapJoin,
    RefDemote,
    RefSplit,
    RefJoin,
    StructMallocLin,
    StructMallocUnr,
    StructFree,
    StructGet,
    StructSet,
    StructSwap,
    VariantMalloc,
    VariantCaseLin,
    VariantCaseUnr,
    ArrayMalloc,
    ArrayGet,
    ArraySet,
    ArrayFree,
    ExistPack,
    ExistUnpackLin,
    ExistUnpackUnr,
}

/// Splits a syntactic qualifier into the lin/unr rule pair. Qualifier
/// *variables* cannot occur here: source instructions carry concrete
/// qualifiers except under quantifier binders, which the checker
/// instantiates before reaching the instruction.
fn by_qual(q: Qual, lin: Rule, unr: Rule) -> Rule {
    match q {
        Qual::Lin => lin,
        _ => unr,
    }
}

impl Rule {
    /// Every rule, in a fixed order (the order of [`Instr`]'s source
    /// variants). `RuleCoverage` indexes by position in this slice.
    pub const ALL: &'static [Rule] = &[
        Rule::Val,
        Rule::Num,
        Rule::Unreachable,
        Rule::Nop,
        Rule::Drop,
        Rule::Select,
        Rule::Block,
        Rule::Loop,
        Rule::If,
        Rule::Br,
        Rule::BrIf,
        Rule::BrTable,
        Rule::Return,
        Rule::GetLocalUnr,
        Rule::GetLocalLin,
        Rule::SetLocal,
        Rule::TeeLocal,
        Rule::GetGlobal,
        Rule::SetGlobal,
        Rule::Qualify,
        Rule::CodeRef,
        Rule::Inst,
        Rule::CallIndirect,
        Rule::Call,
        Rule::RecFold,
        Rule::RecUnfold,
        Rule::MemPack,
        Rule::MemUnpack,
        Rule::Group,
        Rule::Ungroup,
        Rule::CapSplit,
        Rule::CapJoin,
        Rule::RefDemote,
        Rule::RefSplit,
        Rule::RefJoin,
        Rule::StructMallocLin,
        Rule::StructMallocUnr,
        Rule::StructFree,
        Rule::StructGet,
        Rule::StructSet,
        Rule::StructSwap,
        Rule::VariantMalloc,
        Rule::VariantCaseLin,
        Rule::VariantCaseUnr,
        Rule::ArrayMalloc,
        Rule::ArrayGet,
        Rule::ArraySet,
        Rule::ArrayFree,
        Rule::ExistPack,
        Rule::ExistUnpackLin,
        Rule::ExistUnpackUnr,
    ];

    /// The rule an instruction is checked by, or `None` for the
    /// administrative forms (which the checker rejects in source).
    pub fn of_instr(ins: &Instr) -> Option<Rule> {
        Some(match ins {
            Instr::Val(_) => Rule::Val,
            Instr::Num(_) => Rule::Num,
            Instr::Unreachable => Rule::Unreachable,
            Instr::Nop => Rule::Nop,
            Instr::Drop => Rule::Drop,
            Instr::Select => Rule::Select,
            Instr::BlockI(..) => Rule::Block,
            Instr::LoopI(..) => Rule::Loop,
            Instr::IfI(..) => Rule::If,
            Instr::Br(_) => Rule::Br,
            Instr::BrIf(_) => Rule::BrIf,
            Instr::BrTable(..) => Rule::BrTable,
            Instr::Return => Rule::Return,
            Instr::GetLocal(_, q) => by_qual(*q, Rule::GetLocalLin, Rule::GetLocalUnr),
            Instr::SetLocal(_) => Rule::SetLocal,
            Instr::TeeLocal(_) => Rule::TeeLocal,
            Instr::GetGlobal(_) => Rule::GetGlobal,
            Instr::SetGlobal(_) => Rule::SetGlobal,
            Instr::Qualify(_) => Rule::Qualify,
            Instr::CodeRefI(_) => Rule::CodeRef,
            Instr::Inst(_) => Rule::Inst,
            Instr::CallIndirect => Rule::CallIndirect,
            Instr::Call(..) => Rule::Call,
            Instr::RecFold(_) => Rule::RecFold,
            Instr::RecUnfold => Rule::RecUnfold,
            Instr::MemPack(_) => Rule::MemPack,
            Instr::MemUnpack(..) => Rule::MemUnpack,
            Instr::Group(..) => Rule::Group,
            Instr::Ungroup => Rule::Ungroup,
            Instr::CapSplit => Rule::CapSplit,
            Instr::CapJoin => Rule::CapJoin,
            Instr::RefDemote => Rule::RefDemote,
            Instr::RefSplit => Rule::RefSplit,
            Instr::RefJoin => Rule::RefJoin,
            Instr::StructMalloc(_, q) => by_qual(*q, Rule::StructMallocLin, Rule::StructMallocUnr),
            Instr::StructFree => Rule::StructFree,
            Instr::StructGet(_) => Rule::StructGet,
            Instr::StructSet(_) => Rule::StructSet,
            Instr::StructSwap(_) => Rule::StructSwap,
            Instr::VariantMalloc(..) => Rule::VariantMalloc,
            Instr::VariantCase(q, ..) => by_qual(*q, Rule::VariantCaseLin, Rule::VariantCaseUnr),
            Instr::ArrayMalloc(_) => Rule::ArrayMalloc,
            Instr::ArrayGet => Rule::ArrayGet,
            Instr::ArraySet => Rule::ArraySet,
            Instr::ArrayFree => Rule::ArrayFree,
            Instr::ExistPack(..) => Rule::ExistPack,
            Instr::ExistUnpack(q, ..) => by_qual(*q, Rule::ExistUnpackLin, Rule::ExistUnpackUnr),
            Instr::Trap
            | Instr::CallAdmin { .. }
            | Instr::Label { .. }
            | Instr::LocalFrame { .. }
            | Instr::MallocAdmin(..)
            | Instr::Free => return None,
        })
    }

    /// The rule's position in [`Rule::ALL`].
    pub fn index(self) -> usize {
        // `ALL` follows the variant order, so a linear scan is exact and
        // the compiler folds it; the slice is small enough not to matter.
        Rule::ALL
            .iter()
            .position(|r| *r == self)
            .expect("rule listed in ALL")
    }

    /// A stable snake_case name (used in corpus-stats JSON).
    pub fn name(self) -> &'static str {
        match self {
            Rule::Val => "val",
            Rule::Num => "num",
            Rule::Unreachable => "unreachable",
            Rule::Nop => "nop",
            Rule::Drop => "drop",
            Rule::Select => "select",
            Rule::Block => "block",
            Rule::Loop => "loop",
            Rule::If => "if",
            Rule::Br => "br",
            Rule::BrIf => "br_if",
            Rule::BrTable => "br_table",
            Rule::Return => "return",
            Rule::GetLocalUnr => "get_local_unr",
            Rule::GetLocalLin => "get_local_lin",
            Rule::SetLocal => "set_local",
            Rule::TeeLocal => "tee_local",
            Rule::GetGlobal => "get_global",
            Rule::SetGlobal => "set_global",
            Rule::Qualify => "qualify",
            Rule::CodeRef => "coderef",
            Rule::Inst => "inst",
            Rule::CallIndirect => "call_indirect",
            Rule::Call => "call",
            Rule::RecFold => "rec_fold",
            Rule::RecUnfold => "rec_unfold",
            Rule::MemPack => "mem_pack",
            Rule::MemUnpack => "mem_unpack",
            Rule::Group => "group",
            Rule::Ungroup => "ungroup",
            Rule::CapSplit => "cap_split",
            Rule::CapJoin => "cap_join",
            Rule::RefDemote => "ref_demote",
            Rule::RefSplit => "ref_split",
            Rule::RefJoin => "ref_join",
            Rule::StructMallocLin => "struct_malloc_lin",
            Rule::StructMallocUnr => "struct_malloc_unr",
            Rule::StructFree => "struct_free",
            Rule::StructGet => "struct_get",
            Rule::StructSet => "struct_set",
            Rule::StructSwap => "struct_swap",
            Rule::VariantMalloc => "variant_malloc",
            Rule::VariantCaseLin => "variant_case_lin",
            Rule::VariantCaseUnr => "variant_case_unr",
            Rule::ArrayMalloc => "array_malloc",
            Rule::ArrayGet => "array_get",
            Rule::ArraySet => "array_set",
            Rule::ArrayFree => "array_free",
            Rule::ExistPack => "exist_pack",
            Rule::ExistUnpackLin => "exist_unpack_lin",
            Rule::ExistUnpackUnr => "exist_unpack_unr",
        }
    }
}

/// Per-rule occurrence counters over a corpus of (checked) modules.
#[derive(Debug, Clone)]
pub struct RuleCoverage {
    counts: Vec<u64>,
}

impl Default for RuleCoverage {
    fn default() -> RuleCoverage {
        RuleCoverage {
            counts: vec![0; Rule::ALL.len()],
        }
    }
}

impl RuleCoverage {
    /// An empty coverage map.
    pub fn new() -> RuleCoverage {
        RuleCoverage::default()
    }

    /// Records one occurrence of `rule`.
    pub fn record(&mut self, rule: Rule) {
        self.counts[rule.index()] += 1;
    }

    /// The occurrence count of `rule`.
    pub fn count(&self, rule: Rule) -> u64 {
        self.counts[rule.index()]
    }

    /// Number of distinct rules seen at least once.
    pub fn covered(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total number of rules (the denominator for [`Self::covered`]).
    pub fn total(&self) -> usize {
        self.counts.len()
    }

    /// Iterates `(rule, count)` pairs in [`Rule::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Rule, u64)> + '_ {
        Rule::ALL.iter().zip(&self.counts).map(|(r, c)| (*r, *c))
    }

    /// Folds another coverage map into this one.
    pub fn merge(&mut self, other: &RuleCoverage) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
    }
}

fn walk(body: &[Instr], cov: &mut RuleCoverage) {
    for ins in body {
        if let Some(rule) = Rule::of_instr(ins) {
            cov.record(rule);
        }
        match ins {
            Instr::BlockI(_, b)
            | Instr::LoopI(_, b)
            | Instr::MemUnpack(_, b)
            | Instr::ExistUnpack(_, _, _, b) => walk(b, cov),
            Instr::IfI(_, t, e) => {
                walk(t, cov);
                walk(e, cov);
            }
            Instr::VariantCase(_, _, _, bs) => {
                for b in bs {
                    walk(b, cov);
                }
            }
            _ => {}
        }
    }
}

/// Accumulates the rules syntactically exercised by a module — every
/// function body and global initialiser, nested bodies included — into
/// `cov`. Only meaningful for modules the checker accepts (see the module
/// docs).
pub fn coverage_of_module(m: &crate::syntax::Module, cov: &mut RuleCoverage) {
    use crate::syntax::{Func, GlobalKind};
    for f in &m.funcs {
        if let Func::Defined { body, .. } = f {
            walk(body, cov);
        }
    }
    for g in &m.globals {
        if let GlobalKind::Defined { init, .. } = &g.kind {
            walk(init, cov);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{ArrowType, Block, FunType, Func, Module, NumType, Size, Type};

    #[test]
    fn all_indexing_is_consistent() {
        for (i, r) in Rule::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        // Names are unique (they key the stats JSON).
        let mut names: Vec<_> = Rule::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Rule::ALL.len());
    }

    #[test]
    fn qual_splits() {
        use crate::syntax::Qual;
        assert_eq!(
            Rule::of_instr(&Instr::GetLocal(0, Qual::Lin)),
            Some(Rule::GetLocalLin)
        );
        assert_eq!(
            Rule::of_instr(&Instr::StructMalloc(vec![Size::Const(32)], Qual::Unr)),
            Some(Rule::StructMallocUnr)
        );
        assert_eq!(Rule::of_instr(&Instr::Trap), None);
    }

    #[test]
    fn module_walk_counts_nested_bodies() {
        let m = Module {
            funcs: vec![Func::Defined {
                exports: vec![],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body: vec![Instr::BlockI(
                    Block::new(
                        ArrowType::new(vec![], vec![Type::num(NumType::I32)]),
                        vec![],
                    ),
                    vec![Instr::i32(1)],
                )],
            }],
            ..Module::default()
        };
        let mut cov = RuleCoverage::new();
        coverage_of_module(&m, &mut cov);
        assert_eq!(cov.count(Rule::Block), 1);
        assert_eq!(cov.count(Rule::Val), 1);
        assert_eq!(cov.covered(), 2);
        let mut merged = RuleCoverage::new();
        merged.merge(&cov);
        merged.merge(&cov);
        assert_eq!(merged.count(Rule::Val), 2);
    }
}
