//! The algorithmic instruction checker (paper Fig. 7).

use crate::env::{KindCtx, ModuleEnv, TypeBound};
use crate::error::TypeError;
use crate::sizing::size_of_type;
use crate::solver::{qual_leq, size_leq};
use crate::subst::{
    generalize_loc, instantiate_arrow, shift_type, subst_type, unfold_rec, unshift_type, Depth,
    Kind, SubstEnv,
};
use crate::syntax::instr::{Block, LocalEffect, NumInstr};
use crate::syntax::{
    ArrowType, FunType, HeapType, Instr, Loc, MemPriv, NumType, Pretype, Qual, Size, Type,
};
use crate::typecheck::{check_instantiation, push_telescope, synthesize_const};
use crate::wf::{no_caps_type, wf_heaptype, wf_loc, wf_pretype_at, wf_qual, wf_size, wf_type};

/// A local slot: its current type and its fixed size.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotTy {
    /// The slot's current type (changes under strong updates).
    pub ty: Type,
    /// The slot's fixed size in bits.
    pub size: Size,
}

/// What a branch to a label requires of the local environment.
#[derive(Debug, Clone)]
enum LocalsReq {
    /// Locals must exactly match this environment (inner labels).
    Exact(Vec<SlotTy>),
    /// All locals must be unrestricted (the function's return label).
    AllUnr,
}

/// A control frame: one entry per enclosing label.
#[derive(Debug, Clone)]
struct Frame {
    /// Types transferred by a `br` targeting this label.
    label_tys: Vec<Type>,
    /// Locals required at a `br` targeting this label.
    label_locals: LocalsReq,
    /// Types required when falling off the end of the body.
    end_tys: Vec<Type>,
    /// Locals required at the end of the body (`None` for loops).
    end_locals: Option<Vec<SlotTy>>,
    /// The operand stack inside this frame.
    stack: Vec<Type>,
    /// Values conceptually parked *below* this frame on the enclosing
    /// stack (the variant/existential reference during an `unr` case
    /// block). Dropped — and therefore checked unrestricted — whenever a
    /// branch crosses this frame outward; this is the algorithmic face of
    /// the paper's *linear environment*.
    limbo: Vec<Type>,
    /// Whether the remainder of the frame is unreachable (polymorphic
    /// stack).
    unreachable: bool,
}

/// Per-instruction type information recorded during checking, consumed by
/// the type-directed RichWasm→Wasm compiler (§6: "compilation … requires
/// some type information that is implicit in RichWasm instructions which
/// is provided by the type checker").
///
/// Entries appear in pre-order: an instruction's entry precedes the
/// entries of its nested bodies.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrInfo {
    /// Types consumed from the stack (bottom → top).
    pub consumed: Vec<Type>,
    /// Types pushed onto the stack (bottom → top).
    pub produced: Vec<Type>,
    /// The instruction sits in statically dead code (after
    /// `unreachable`/`br`): its types may be placeholders.
    pub dead: bool,
    /// Whether nested bodies were visited by the checker (dead
    /// `variant.case`/`exist.unpack`/`mem.unpack` skip their bodies).
    pub bodies_visited: bool,
}

impl Default for InstrInfo {
    fn default() -> Self {
        InstrInfo {
            consumed: Vec::new(),
            produced: Vec::new(),
            dead: false,
            bodies_visited: true,
        }
    }
}

/// The instruction checker. Holds the module environment, the kind
/// context, the mutable local environment, and the control-frame stack.
pub struct Checker<'a> {
    module: &'a ModuleEnv,
    /// The kind-variable context (public so callers can pre-load a
    /// telescope).
    pub ctx: KindCtx,
    locals: Vec<SlotTy>,
    frames: Vec<Frame>,
    ret: Vec<Type>,
    /// Pre-order per-instruction trace (always recorded; cheap).
    trace: Vec<InstrInfo>,
    cur_info: InstrInfo,
}

impl<'a> Checker<'a> {
    /// Creates a checker for one instruction sequence with the given
    /// locals and return types. The root frame's label behaves like the
    /// function-exit label: branching to it transfers the return types and
    /// requires all locals unrestricted.
    pub fn new(module: &'a ModuleEnv, ctx: KindCtx, locals: Vec<SlotTy>, ret: Vec<Type>) -> Self {
        let root = Frame {
            label_tys: ret.clone(),
            label_locals: LocalsReq::AllUnr,
            end_tys: ret.clone(),
            end_locals: None,
            stack: Vec::new(),
            limbo: Vec::new(),
            unreachable: false,
        };
        Checker {
            module,
            ctx,
            locals,
            frames: vec![root],
            ret,
            trace: Vec::new(),
            cur_info: InstrInfo::default(),
        }
    }

    /// The recorded per-instruction trace (pre-order).
    pub fn into_trace(self) -> Vec<InstrInfo> {
        self.trace
    }

    /// Current local slot types (for tests and diagnostics).
    pub fn locals(&self) -> &[SlotTy] {
        &self.locals
    }

    // ------------------------------------------------------------------
    // Stack primitives
    // ------------------------------------------------------------------

    fn cur(&mut self) -> &mut Frame {
        self.frames
            .last_mut()
            .expect("checker always has a root frame")
    }

    fn push_op(&mut self, t: Type) {
        self.cur_info.produced.push(t.clone());
        self.cur().stack.push(t);
    }

    /// Pops a type; `None` means the stack is polymorphic (dead code).
    fn pop_op(&mut self, ctxt: &str) -> Result<Option<Type>, TypeError> {
        let f = self.frames.last_mut().expect("root frame");
        match f.stack.pop() {
            Some(t) => {
                self.cur_info.consumed.push(t.clone());
                Ok(Some(t))
            }
            None if f.unreachable => Ok(None),
            None => Err(TypeError::StackUnderflow {
                context: ctxt.to_string(),
            }),
        }
    }

    fn pop_expect(&mut self, expected: &Type, ctxt: &str) -> Result<(), TypeError> {
        match self.pop_op(ctxt)? {
            Some(found) if &found == expected => Ok(()),
            Some(found) => Err(TypeError::mismatch(expected, &found, ctxt)),
            None => {
                self.cur_info.consumed.push(expected.clone());
                Ok(())
            }
        }
    }

    /// Pops `expected` (bottom → top order) off the stack.
    fn pop_many_expect(&mut self, expected: &[Type], ctxt: &str) -> Result<(), TypeError> {
        for t in expected.iter().rev() {
            self.pop_expect(t, ctxt)?;
        }
        Ok(())
    }

    fn drop_check(&self, t: &Type, ctxt: &str) -> Result<(), TypeError> {
        if qual_leq(&self.ctx, t.qual, Qual::Unr) {
            Ok(())
        } else {
            Err(TypeError::LinearityViolation {
                context: format!("{ctxt} would drop linear value {t}"),
            })
        }
    }

    fn check_locals_req(&self, req: &LocalsReq, ctxt: &str) -> Result<(), TypeError> {
        match req {
            LocalsReq::Exact(want) => {
                if self.locals.len() != want.len() {
                    return Err(TypeError::Other(format!(
                        "{ctxt}: local count mismatch ({} vs {})",
                        self.locals.len(),
                        want.len()
                    )));
                }
                for (i, (have, want)) in self.locals.iter().zip(want).enumerate() {
                    if have.ty != want.ty {
                        return Err(TypeError::Mismatch {
                            expected: want.ty.to_string(),
                            found: have.ty.to_string(),
                            context: format!("{ctxt}: local {i}"),
                        });
                    }
                }
                Ok(())
            }
            LocalsReq::AllUnr => {
                for (i, s) in self.locals.iter().enumerate() {
                    if !qual_leq(&self.ctx, s.ty.qual, Qual::Unr) {
                        return Err(TypeError::LinearityViolation {
                            context: format!("{ctxt}: local {i} still holds linear {}", s.ty),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// Validates a branch with relative depth `i`; returns the transferred
    /// types (already popped). `consume` distinguishes `br` (true) from
    /// `br_if` (false, transferred values stay).
    fn check_br(&mut self, i: u32, consume: bool, ctxt: &str) -> Result<(), TypeError> {
        let n = self.frames.len();
        if (i as usize) >= n {
            return Err(TypeError::UnboundVar {
                kind: "label",
                index: i,
            });
        }
        let target = n - 1 - i as usize;
        let label_tys = self.frames[target].label_tys.clone();
        self.pop_many_expect(&label_tys, ctxt)?;
        // Everything remaining inside the targeted label is dropped: the
        // stacks of all frames from the target inward, and the limbo
        // (parked) values of frames strictly inside the target.
        for f in target..n {
            let (stack, limbo, dead) = {
                let fr = &self.frames[f];
                (fr.stack.clone(), fr.limbo.clone(), fr.unreachable)
            };
            // In dead code the stack is polymorphic; no real values exist.
            if dead && f == n - 1 {
                continue;
            }
            for t in &stack {
                self.drop_check(t, ctxt)?;
            }
            if f > target {
                for t in &limbo {
                    self.drop_check(t, ctxt)?;
                }
            }
        }
        // Locals must agree with the label's view of `L`.
        let req = self.frames[target].label_locals.clone();
        self.check_locals_req(&req, ctxt)?;
        if consume {
            let f = self.cur();
            f.unreachable = true;
            f.stack.clear();
        } else {
            // br_if: the transferred values remain on the stack.
            for t in label_tys {
                self.cur().stack.push(t);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Binder-crossing: shift every tracked type when entering a
    // `mem.unpack`/`exist.unpack` body, and unshift (with escape check)
    // when leaving.
    // ------------------------------------------------------------------

    fn map_all_types(
        &mut self,
        f: &mut dyn FnMut(&Type) -> Result<Type, TypeError>,
    ) -> Result<(), TypeError> {
        for s in &mut self.locals {
            s.ty = f(&s.ty)?;
        }
        for t in &mut self.ret {
            *t = f(t)?;
        }
        for fr in &mut self.frames {
            for t in fr
                .label_tys
                .iter_mut()
                .chain(fr.end_tys.iter_mut())
                .chain(fr.stack.iter_mut())
                .chain(fr.limbo.iter_mut())
            {
                *t = f(t)?;
            }
            if let LocalsReq::Exact(ls) = &mut fr.label_locals {
                for s in ls {
                    s.ty = f(&s.ty)?;
                }
            }
            if let Some(ls) = &mut fr.end_locals {
                for s in ls {
                    s.ty = f(&s.ty)?;
                }
            }
        }
        Ok(())
    }

    fn shift_all(&mut self, kind: Kind) {
        let by = Depth::one(kind);
        self.map_all_types(&mut |t| Ok(shift_type(t, by)))
            .expect("shift cannot fail");
    }

    fn unshift_all(&mut self, kind: Kind) -> Result<(), TypeError> {
        self.map_all_types(&mut |t| {
            unshift_type(t, kind).map_err(|_| TypeError::IllFormed {
                reason: format!("{kind:?} variable escapes its unpack scope in {t}"),
            })
        })
    }

    // ------------------------------------------------------------------
    // Local effects
    // ------------------------------------------------------------------

    /// Applies declared local effects `(i, τ)*` to a copy of the current
    /// locals, validating indices, well-formedness, and slot fit.
    fn apply_effects(&mut self, effects: &[LocalEffect]) -> Result<Vec<SlotTy>, TypeError> {
        let mut out = self.locals.clone();
        for e in effects {
            let slot = out.get_mut(e.idx as usize).ok_or(TypeError::UnboundVar {
                kind: "local",
                index: e.idx,
            })?;
            let sz = slot.size.clone();
            wf_type(&mut self.ctx, &e.ty)?;
            let tsz = size_of_type(&self.ctx, &e.ty)?;
            if !size_leq(&self.ctx, &tsz, &sz) {
                return Err(TypeError::SizeNotLeq {
                    lhs: tsz,
                    rhs: sz,
                    context: format!("local effect on slot {}", e.idx),
                });
            }
            slot.ty = e.ty.clone();
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Frame entry/exit for block-like instructions
    // ------------------------------------------------------------------

    /// Runs `body` in a fresh frame. All type arguments must be given in
    /// the coordinates *inside* the frame (i.e. already shifted if
    /// `binder` is set; the caller pushes the kind binder onto `ctx`).
    #[allow(clippy::too_many_arguments)]
    fn run_body(
        &mut self,
        body: &[Instr],
        entry: Vec<Type>,
        label_tys: Vec<Type>,
        label_locals: LocalsReq,
        end_tys: Vec<Type>,
        end_locals: Option<Vec<SlotTy>>,
        limbo: Vec<Type>,
        ctxt: &str,
    ) -> Result<(), TypeError> {
        self.frames.push(Frame {
            label_tys,
            label_locals,
            end_tys,
            end_locals,
            stack: entry,
            limbo,
            unreachable: false,
        });
        let result = (|| {
            self.check_seq(body)?;
            // End-of-body: the stack must deliver exactly the declared
            // results, and locals must match the declared post-state
            // (both read back from the frame, which owns them now).
            let end_tys = self.cur().end_tys.clone();
            self.pop_many_expect(&end_tys, ctxt)?;
            let leftover = !self.cur().stack.is_empty();
            if leftover {
                return Err(TypeError::BlockResultMismatch {
                    context: format!("{ctxt}: values left on stack at end of block"),
                });
            }
            if let Some(want) = self.cur().end_locals.clone() {
                self.check_locals_req(&LocalsReq::Exact(want), ctxt)?;
            }
            Ok(())
        })();
        self.frames.pop();
        result
    }

    // ------------------------------------------------------------------
    // Main dispatch
    // ------------------------------------------------------------------

    /// Checks a sequence of instructions in the current frame.
    pub fn check_seq(&mut self, es: &[Instr]) -> Result<(), TypeError> {
        for e in es {
            self.check_instr(e)?;
        }
        Ok(())
    }

    /// Checks one instruction.
    pub fn check_instr(&mut self, e: &Instr) -> Result<(), TypeError> {
        // Reserve this instruction's trace slot to preserve pre-order, and
        // save the enclosing instruction's partial record (nested bodies
        // re-enter this function).
        let saved = std::mem::take(&mut self.cur_info);
        let was_dead = self.frames.last().map(|f| f.unreachable).unwrap_or(false);
        let slot = self.trace.len();
        self.trace.push(InstrInfo::default());
        let r = self.check_instr_inner(e);
        let mut info = std::mem::take(&mut self.cur_info);
        info.consumed.reverse(); // recorded top-first; store bottom→top
        info.dead = was_dead;
        self.trace[slot] = info;
        self.cur_info = saved;
        r
    }

    fn check_instr_inner(&mut self, e: &Instr) -> Result<(), TypeError> {
        match e {
            Instr::Val(v) => {
                let t = synthesize_const(v)?;
                self.push_op(t);
                Ok(())
            }
            Instr::Num(n) => self.check_num(*n),
            Instr::Nop => Ok(()),
            Instr::Unreachable => {
                let f = self.cur();
                f.unreachable = true;
                f.stack.clear();
                Ok(())
            }
            Instr::Drop => {
                if let Some(t) = self.pop_op("drop")? {
                    self.drop_check(&t, "drop")?;
                }
                Ok(())
            }
            Instr::Select => {
                self.pop_expect(&Type::num(NumType::I32), "select")?;
                let t2 = self.pop_op("select")?;
                let t1 = self.pop_op("select")?;
                match (t1, t2) {
                    (Some(a), Some(b)) => {
                        if a != b {
                            return Err(TypeError::mismatch(&a, &b, "select arms"));
                        }
                        // One branch is dropped.
                        self.drop_check(&a, "select")?;
                        self.push_op(a);
                    }
                    (Some(a), None) | (None, Some(a)) => {
                        self.drop_check(&a, "select")?;
                        self.push_op(a);
                    }
                    (None, None) => {}
                }
                Ok(())
            }
            Instr::BlockI(b, body) => self.check_block(b, body),
            Instr::LoopI(arrow, body) => self.check_loop(arrow, body),
            Instr::IfI(b, then_b, else_b) => self.check_if(b, then_b, else_b),
            Instr::Br(i) => self.check_br(*i, true, "br"),
            Instr::BrIf(i) => {
                self.pop_expect(&Type::num(NumType::I32), "br_if")?;
                self.check_br(*i, false, "br_if")
            }
            Instr::BrTable(targets, default) => {
                self.pop_expect(&Type::num(NumType::I32), "br_table")?;
                // All targets must transfer the same types; validate each
                // (the last validation consumes).
                let all: Vec<u32> = targets.iter().copied().chain([*default]).collect();
                let first_tys = {
                    let n = self.frames.len();
                    let t0 = *all.first().expect("br_table has a default");
                    if (t0 as usize) >= n {
                        return Err(TypeError::UnboundVar {
                            kind: "label",
                            index: t0,
                        });
                    }
                    self.frames[n - 1 - t0 as usize].label_tys.clone()
                };
                for i in &all {
                    let n = self.frames.len();
                    if (*i as usize) >= n {
                        return Err(TypeError::UnboundVar {
                            kind: "label",
                            index: *i,
                        });
                    }
                    let tys = &self.frames[n - 1 - *i as usize].label_tys;
                    if *tys != first_tys {
                        return Err(TypeError::Other(format!(
                            "br_table targets disagree on label types (label {i})"
                        )));
                    }
                    self.check_br(*i, false, "br_table")?;
                }
                // Taken unconditionally.
                self.pop_many_expect(&first_tys, "br_table")?;
                let f = self.cur();
                f.unreachable = true;
                f.stack.clear();
                Ok(())
            }
            Instr::Return => {
                let ret = self.ret.clone();
                self.pop_many_expect(&ret, "return")?;
                let n = self.frames.len();
                for f in 0..n {
                    let (stack, limbo, dead) = {
                        let fr = &self.frames[f];
                        (fr.stack.clone(), fr.limbo.clone(), fr.unreachable)
                    };
                    if dead && f == n - 1 {
                        continue;
                    }
                    for t in stack.iter().chain(&limbo) {
                        self.drop_check(t, "return")?;
                    }
                }
                self.check_locals_req(&LocalsReq::AllUnr, "return")?;
                let f = self.cur();
                f.unreachable = true;
                f.stack.clear();
                Ok(())
            }
            Instr::GetLocal(i, q) => {
                let slot = self
                    .locals
                    .get(*i as usize)
                    .ok_or(TypeError::UnboundVar {
                        kind: "local",
                        index: *i,
                    })?
                    .clone();
                if slot.ty.qual != *q {
                    return Err(TypeError::Mismatch {
                        expected: format!("slot qualifier {q}"),
                        found: slot.ty.qual.to_string(),
                        context: format!("get_local {i}"),
                    });
                }
                self.push_op(slot.ty);
                if !qual_leq(&self.ctx, *q, Qual::Unr) {
                    // Linear read: the slot is strongly updated to unit to
                    // prevent duplication (paper §2.1).
                    self.locals[*i as usize].ty = Type::unit();
                }
                Ok(())
            }
            Instr::SetLocal(i) => {
                let Some(t) = self.pop_op("set_local")? else {
                    return Ok(());
                };
                self.set_local_common(*i, t, "set_local")
            }
            Instr::TeeLocal(i) => {
                let Some(t) = self.pop_op("tee_local")? else {
                    return Ok(());
                };
                if !qual_leq(&self.ctx, t.qual, Qual::Unr) {
                    return Err(TypeError::LinearityViolation {
                        context: format!("tee_local {i} would duplicate linear {t}"),
                    });
                }
                self.push_op(t.clone());
                self.set_local_common(*i, t, "tee_local")
            }
            Instr::GetGlobal(i) => {
                let (_, p) = self
                    .module
                    .globals
                    .get(*i as usize)
                    .ok_or(TypeError::UnboundVar {
                        kind: "global",
                        index: *i,
                    })?
                    .clone();
                self.push_op(p.unr());
                Ok(())
            }
            Instr::SetGlobal(i) => {
                let (mutable, p) = self
                    .module
                    .globals
                    .get(*i as usize)
                    .ok_or(TypeError::UnboundVar {
                        kind: "global",
                        index: *i,
                    })?
                    .clone();
                if !mutable {
                    return Err(TypeError::Other(format!(
                        "set_global {i}: global is immutable"
                    )));
                }
                self.pop_expect(&p.unr(), "set_global")
            }
            Instr::Qualify(q) => {
                wf_qual(&self.ctx, *q)?;
                let Some(t) = self.pop_op("qualify")? else {
                    return Ok(());
                };
                if !qual_leq(&self.ctx, t.qual, *q) {
                    return Err(TypeError::QualNotLeq {
                        lhs: t.qual,
                        rhs: *q,
                        context: "qualify only coerces upward".into(),
                    });
                }
                wf_pretype_at(&mut self.ctx, &t.pre, *q)?;
                self.push_op(Type {
                    pre: t.pre,
                    qual: *q,
                });
                Ok(())
            }
            Instr::CodeRefI(i) => {
                let ft = self
                    .module
                    .table
                    .get(*i as usize)
                    .ok_or(TypeError::UnboundVar {
                        kind: "table",
                        index: *i,
                    })?
                    .clone();
                self.push_op(Pretype::CodeRef(ft).unr());
                Ok(())
            }
            Instr::Inst(zs) => {
                let Some(t) = self.pop_op("inst")? else {
                    return Ok(());
                };
                let Pretype::CodeRef(ft) = &*t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "coderef".into(),
                        found: t.to_string(),
                        context: "inst".into(),
                    });
                };
                check_instantiation(&mut self.ctx, &ft.quants, zs)?;
                let arrow = instantiate_arrow(ft, zs)
                    .map_err(|reason| TypeError::BadInstantiation { reason })?;
                self.push_op(
                    Pretype::CodeRef(FunType {
                        quants: vec![],
                        arrow,
                    })
                    .with_qual(t.qual),
                );
                Ok(())
            }
            Instr::CallIndirect => {
                let Some(t) = self.pop_op("call_indirect")? else {
                    return Ok(());
                };
                let Pretype::CodeRef(ft) = &*t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "coderef".into(),
                        found: t.to_string(),
                        context: "call_indirect".into(),
                    });
                };
                if !ft.quants.is_empty() {
                    return Err(TypeError::BadInstantiation {
                        reason: "call_indirect requires a fully instantiated coderef".into(),
                    });
                }
                let arrow = ft.arrow.clone();
                self.pop_many_expect(&arrow.params, "call_indirect")?;
                for r in arrow.results {
                    self.push_op(r);
                }
                Ok(())
            }
            Instr::Call(i, zs) => {
                let ft = self
                    .module
                    .funcs
                    .get(*i as usize)
                    .ok_or(TypeError::UnboundVar {
                        kind: "function",
                        index: *i,
                    })?
                    .clone();
                check_instantiation(&mut self.ctx, &ft.quants, zs)?;
                let arrow = instantiate_arrow(&ft, zs)
                    .map_err(|reason| TypeError::BadInstantiation { reason })?;
                self.pop_many_expect(&arrow.params, "call")?;
                for r in arrow.results {
                    self.push_op(r);
                }
                Ok(())
            }
            Instr::RecFold(p) => {
                let Pretype::Rec(_, body) = p else {
                    return Err(TypeError::Mismatch {
                        expected: "rec pretype".into(),
                        found: p.to_string(),
                        context: "rec.fold".into(),
                    });
                };
                let q = body.qual;
                wf_pretype_at(&mut self.ctx, p, q)?;
                let unfolded = unfold_rec(p).expect("matched Rec above");
                self.pop_expect(&unfolded, "rec.fold")?;
                self.push_op(p.clone().with_qual(q));
                Ok(())
            }
            Instr::RecUnfold => {
                let Some(t) = self.pop_op("rec.unfold")? else {
                    return Ok(());
                };
                let Some(unfolded) = unfold_rec(&t.pre) else {
                    return Err(TypeError::Mismatch {
                        expected: "rec type".into(),
                        found: t.to_string(),
                        context: "rec.unfold".into(),
                    });
                };
                self.push_op(unfolded);
                Ok(())
            }
            Instr::MemPack(l) => {
                wf_loc(&self.ctx, *l)?;
                let Some(t) = self.pop_op("mem.pack")? else {
                    return Ok(());
                };
                let q = t.qual;
                let body = generalize_loc(&t, *l);
                self.push_op(Pretype::ExistsLoc(Box::new(body)).with_qual(q));
                Ok(())
            }
            Instr::MemUnpack(b, body) => self.check_mem_unpack(b, body),
            Instr::Group(n, q) => {
                wf_qual(&self.ctx, *q)?;
                let mut parts = Vec::with_capacity(*n as usize);
                for _ in 0..*n {
                    match self.pop_op("seq.group")? {
                        Some(t) => parts.push(t),
                        None => parts.push(Type::unit()),
                    }
                }
                parts.reverse();
                for t in &parts {
                    if !qual_leq(&self.ctx, t.qual, *q) {
                        return Err(TypeError::QualNotLeq {
                            lhs: t.qual,
                            rhs: *q,
                            context: "seq.group component vs tuple qualifier".into(),
                        });
                    }
                }
                self.push_op(Pretype::Prod(parts).with_qual(*q));
                Ok(())
            }
            Instr::Ungroup => {
                let Some(t) = self.pop_op("seq.ungroup")? else {
                    return Ok(());
                };
                let Pretype::Prod(parts) = *t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "tuple".into(),
                        found: format!("{}^{}", t.pre, t.qual),
                        context: "seq.ungroup".into(),
                    });
                };
                for p in parts {
                    self.push_op(p);
                }
                Ok(())
            }
            Instr::CapSplit => {
                let Some(t) = self.pop_op("cap.split")? else {
                    return Ok(());
                };
                let Pretype::Cap(MemPriv::ReadWrite, l, h) = *t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "cap rw".into(),
                        found: t.to_string(),
                        context: "cap.split".into(),
                    });
                };
                self.push_op(Pretype::Cap(MemPriv::Read, l, h).with_qual(t.qual));
                self.push_op(Pretype::Own(l).with_qual(t.qual));
                Ok(())
            }
            Instr::CapJoin => {
                let own = self.pop_op("cap.join")?;
                let cap = self.pop_op("cap.join")?;
                let (Some(own), Some(cap)) = (own, cap) else {
                    return Ok(());
                };
                let Pretype::Own(lo) = *own.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "own".into(),
                        found: own.to_string(),
                        context: "cap.join".into(),
                    });
                };
                let Pretype::Cap(MemPriv::Read, lc, h) = *cap.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "cap r".into(),
                        found: cap.to_string(),
                        context: "cap.join".into(),
                    });
                };
                if lo != lc {
                    return Err(TypeError::Other(format!(
                        "cap.join: ownership token for {lo} does not match capability for {lc}"
                    )));
                }
                self.push_op(Pretype::Cap(MemPriv::ReadWrite, lc, h).with_qual(cap.qual));
                Ok(())
            }
            Instr::RefDemote => {
                let Some(t) = self.pop_op("ref.demote")? else {
                    return Ok(());
                };
                let Pretype::Ref(MemPriv::ReadWrite, l, h) = *t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "ref rw".into(),
                        found: t.to_string(),
                        context: "ref.demote".into(),
                    });
                };
                self.push_op(Pretype::Ref(MemPriv::Read, l, h).with_qual(t.qual));
                Ok(())
            }
            Instr::RefSplit => {
                let Some(t) = self.pop_op("ref.split")? else {
                    return Ok(());
                };
                let Pretype::Ref(pi, l, h) = *t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "ref".into(),
                        found: t.to_string(),
                        context: "ref.split".into(),
                    });
                };
                self.push_op(Pretype::Cap(pi, l, h).with_qual(t.qual));
                // Pointers are freely copyable (§2.1: "an unrestricted
                // (copyable) pointer … and a linear capability").
                self.push_op(Pretype::Ptr(l).unr());
                Ok(())
            }
            Instr::RefJoin => {
                let ptr = self.pop_op("ref.join")?;
                let cap = self.pop_op("ref.join")?;
                let (Some(ptr), Some(cap)) = (ptr, cap) else {
                    return Ok(());
                };
                let Pretype::Ptr(lp) = *ptr.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "ptr".into(),
                        found: ptr.to_string(),
                        context: "ref.join".into(),
                    });
                };
                let Pretype::Cap(pi, lc, h) = *cap.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "cap".into(),
                        found: cap.to_string(),
                        context: "ref.join".into(),
                    });
                };
                if lp != lc {
                    return Err(TypeError::Other(format!(
                        "ref.join: pointer to {lp} does not match capability for {lc}"
                    )));
                }
                self.push_op(Pretype::Ref(pi, lc, h).with_qual(cap.qual));
                Ok(())
            }
            Instr::StructMalloc(szs, q) => self.check_struct_malloc(szs, *q),
            Instr::StructFree => {
                let Some(t) = self.pop_op("struct.free")? else {
                    return Ok(());
                };
                let Pretype::Ref(MemPriv::ReadWrite, _, HeapType::Struct(fields)) = &*t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "ref rw to struct".into(),
                        found: t.to_string(),
                        context: "struct.free".into(),
                    });
                };
                if !qual_leq(&self.ctx, Qual::Lin, t.qual) {
                    return Err(TypeError::QualNotLeq {
                        lhs: Qual::Lin,
                        rhs: t.qual,
                        context: "struct.free requires a linear reference".into(),
                    });
                }
                for (ft, _) in fields {
                    self.drop_check(ft, "struct.free (field)")?;
                }
                Ok(())
            }
            Instr::StructGet(i) => {
                let Some(t) = self.pop_op("struct.get")? else {
                    return Ok(());
                };
                let Pretype::Ref(_, _, HeapType::Struct(fields)) = &*t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "ref to struct".into(),
                        found: t.to_string(),
                        context: "struct.get".into(),
                    });
                };
                let (ft, _) = fields
                    .get(*i as usize)
                    .ok_or(TypeError::UnboundVar {
                        kind: "struct field",
                        index: *i,
                    })?
                    .clone();
                if !qual_leq(&self.ctx, ft.qual, Qual::Unr) {
                    return Err(TypeError::LinearityViolation {
                        context: format!(
                            "struct.get {i} would duplicate linear field {ft}; use struct.swap"
                        ),
                    });
                }
                self.push_op(t);
                self.push_op(ft);
                Ok(())
            }
            Instr::StructSet(i) => self.check_struct_set(*i, false),
            Instr::StructSwap(i) => self.check_struct_set(*i, true),
            Instr::VariantMalloc(i, cases, q) => {
                wf_qual(&self.ctx, *q)?;
                for t in cases {
                    wf_type(&mut self.ctx, t)?;
                    if !no_caps_type(&self.ctx, t) {
                        return Err(TypeError::CapsInHeap {
                            context: format!("variant.malloc case {t}"),
                        });
                    }
                }
                let payload = cases
                    .get(*i as usize)
                    .ok_or(TypeError::UnboundVar {
                        kind: "variant case",
                        index: *i,
                    })?
                    .clone();
                self.pop_expect(&payload, "variant.malloc")?;
                let shifted: Vec<Type> = cases
                    .iter()
                    .map(|t| shift_type(t, Depth::one(Kind::Loc)))
                    .collect();
                let inner =
                    Pretype::Ref(MemPriv::ReadWrite, Loc::Var(0), HeapType::Variant(shifted))
                        .with_qual(*q);
                self.push_op(Pretype::ExistsLoc(Box::new(inner)).with_qual(*q));
                Ok(())
            }
            Instr::VariantCase(q, psi, b, bodies) => self.check_variant_case(*q, psi, b, bodies),
            Instr::ArrayMalloc(q) => {
                wf_qual(&self.ctx, *q)?;
                self.pop_expect(&Type::num(NumType::U32), "array.malloc (length)")?;
                let Some(elem) = self.pop_op("array.malloc (fill)")? else {
                    return Ok(());
                };
                if !qual_leq(&self.ctx, elem.qual, Qual::Unr) {
                    return Err(TypeError::LinearityViolation {
                        context: format!("array.malloc would replicate linear fill value {elem}"),
                    });
                }
                if qual_leq(&self.ctx, *q, Qual::Unr) && !no_caps_type(&self.ctx, &elem) {
                    return Err(TypeError::CapsInHeap {
                        context: "array.malloc".into(),
                    });
                }
                let shifted = shift_type(&elem, Depth::one(Kind::Loc));
                let inner = Pretype::Ref(MemPriv::ReadWrite, Loc::Var(0), HeapType::Array(shifted))
                    .with_qual(*q);
                self.push_op(Pretype::ExistsLoc(Box::new(inner)).with_qual(*q));
                Ok(())
            }
            Instr::ArrayGet => {
                self.pop_expect(&Type::num(NumType::U32), "array.get (index)")?;
                let Some(t) = self.pop_op("array.get")? else {
                    return Ok(());
                };
                let Pretype::Ref(_, _, HeapType::Array(elem)) = &*t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "ref to array".into(),
                        found: t.to_string(),
                        context: "array.get".into(),
                    });
                };
                let elem = elem.clone();
                if !qual_leq(&self.ctx, elem.qual, Qual::Unr) {
                    return Err(TypeError::LinearityViolation {
                        context: format!("array.get would duplicate linear element {elem}"),
                    });
                }
                self.push_op(t);
                self.push_op(elem);
                Ok(())
            }
            Instr::ArraySet => {
                let Some(v) = self.pop_op("array.set (value)")? else {
                    return Ok(());
                };
                self.pop_expect(&Type::num(NumType::U32), "array.set (index)")?;
                let Some(t) = self.pop_op("array.set")? else {
                    return Ok(());
                };
                let Pretype::Ref(MemPriv::ReadWrite, _, HeapType::Array(elem)) = &*t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "ref rw to array".into(),
                        found: t.to_string(),
                        context: "array.set".into(),
                    });
                };
                if *elem != v {
                    return Err(TypeError::mismatch(elem, &v, "array.set element type"));
                }
                if !qual_leq(&self.ctx, elem.qual, Qual::Unr) {
                    return Err(TypeError::LinearityViolation {
                        context: "array.set drops the previous (linear) element".into(),
                    });
                }
                self.push_op(t);
                Ok(())
            }
            Instr::ArrayFree => {
                let Some(t) = self.pop_op("array.free")? else {
                    return Ok(());
                };
                let Pretype::Ref(MemPriv::ReadWrite, _, HeapType::Array(elem)) = &*t.pre else {
                    return Err(TypeError::Mismatch {
                        expected: "ref rw to array".into(),
                        found: t.to_string(),
                        context: "array.free".into(),
                    });
                };
                if !qual_leq(&self.ctx, Qual::Lin, t.qual) {
                    return Err(TypeError::QualNotLeq {
                        lhs: Qual::Lin,
                        rhs: t.qual,
                        context: "array.free requires a linear reference".into(),
                    });
                }
                self.drop_check(elem, "array.free (elements)")?;
                Ok(())
            }
            Instr::ExistPack(p, psi, q) => self.check_exist_pack(p, psi, *q),
            Instr::ExistUnpack(q, psi, b, body) => self.check_exist_unpack(*q, psi, b, body),
            // Administrative instructions never appear in source programs.
            Instr::Trap
            | Instr::CallAdmin { .. }
            | Instr::Label { .. }
            | Instr::LocalFrame { .. }
            | Instr::MallocAdmin(..)
            | Instr::Free => Err(TypeError::Other(format!(
                "administrative instruction {e} cannot appear in a source module"
            ))),
        }
    }

    fn set_local_common(&mut self, i: u32, t: Type, ctxt: &str) -> Result<(), TypeError> {
        let slot = self
            .locals
            .get(i as usize)
            .ok_or(TypeError::UnboundVar {
                kind: "local",
                index: i,
            })?
            .clone();
        if !qual_leq(&self.ctx, slot.ty.qual, Qual::Unr) {
            return Err(TypeError::LinearityViolation {
                context: format!("{ctxt} {i} would drop linear slot contents {}", slot.ty),
            });
        }
        let tsz = size_of_type(&self.ctx, &t)?;
        if !size_leq(&self.ctx, &tsz, &slot.size) {
            return Err(TypeError::SizeNotLeq {
                lhs: tsz,
                rhs: slot.size,
                context: format!("{ctxt} {i}: value does not fit slot"),
            });
        }
        self.locals[i as usize].ty = t;
        Ok(())
    }

    fn check_num(&mut self, n: NumInstr) -> Result<(), TypeError> {
        use NumInstr::*;
        let i32t = Type::num(NumType::I32);
        match n {
            IntUnop(nt, _) => {
                require_int(nt)?;
                self.pop_expect(&Type::num(nt), "int unop")?;
                self.push_op(Type::num(nt));
            }
            IntBinop(nt, _) => {
                require_int(nt)?;
                self.pop_expect(&Type::num(nt), "int binop")?;
                self.pop_expect(&Type::num(nt), "int binop")?;
                self.push_op(Type::num(nt));
            }
            Eqz(nt) => {
                require_int(nt)?;
                self.pop_expect(&Type::num(nt), "eqz")?;
                self.push_op(i32t);
            }
            IntRelop(nt, _) => {
                require_int(nt)?;
                self.pop_expect(&Type::num(nt), "int relop")?;
                self.pop_expect(&Type::num(nt), "int relop")?;
                self.push_op(i32t);
            }
            FloatUnop(nt, _) => {
                require_float(nt)?;
                self.pop_expect(&Type::num(nt), "float unop")?;
                self.push_op(Type::num(nt));
            }
            FloatBinop(nt, _) => {
                require_float(nt)?;
                self.pop_expect(&Type::num(nt), "float binop")?;
                self.pop_expect(&Type::num(nt), "float binop")?;
                self.push_op(Type::num(nt));
            }
            FloatRelop(nt, _) => {
                require_float(nt)?;
                self.pop_expect(&Type::num(nt), "float relop")?;
                self.pop_expect(&Type::num(nt), "float relop")?;
                self.push_op(i32t);
            }
            Convert(dst, src) => {
                self.pop_expect(&Type::num(src), "convert")?;
                self.push_op(Type::num(dst));
            }
            Reinterpret(dst, src) => {
                if dst.bits() != src.bits() {
                    return Err(TypeError::Other(format!(
                        "reinterpret between different widths ({src} vs {dst})"
                    )));
                }
                self.pop_expect(&Type::num(src), "reinterpret")?;
                self.push_op(Type::num(dst));
            }
        }
        Ok(())
    }

    fn check_block(&mut self, b: &Block, body: &[Instr]) -> Result<(), TypeError> {
        let post_locals = self.apply_effects(&b.effects)?;
        self.pop_many_expect(&b.arrow.params, "block (params)")?;
        self.run_body(
            body,
            b.arrow.params.clone(),
            b.arrow.results.clone(),
            LocalsReq::Exact(post_locals.clone()),
            b.arrow.results.clone(),
            Some(post_locals.clone()),
            Vec::new(),
            "block",
        )?;
        self.locals = post_locals;
        for t in b.arrow.results.clone() {
            self.push_op(t);
        }
        Ok(())
    }

    fn check_loop(&mut self, arrow: &ArrowType, body: &[Instr]) -> Result<(), TypeError> {
        self.pop_many_expect(&arrow.params, "loop (params)")?;
        let entry_locals = self.locals.clone();
        self.run_body(
            body,
            arrow.params.clone(),
            // A branch to a loop label re-enters the top: it transfers the
            // loop's *parameters* and must restore the entry locals.
            arrow.params.clone(),
            LocalsReq::Exact(entry_locals),
            arrow.results.clone(),
            None,
            Vec::new(),
            "loop",
        )?;
        for t in arrow.results.clone() {
            self.push_op(t);
        }
        Ok(())
    }

    fn check_if(&mut self, b: &Block, then_b: &[Instr], else_b: &[Instr]) -> Result<(), TypeError> {
        self.pop_expect(&Type::num(NumType::I32), "if (condition)")?;
        let post_locals = self.apply_effects(&b.effects)?;
        self.pop_many_expect(&b.arrow.params, "if (params)")?;
        let entry_locals = self.locals.clone();
        for (name, body) in [("if (then)", then_b), ("if (else)", else_b)] {
            self.locals = entry_locals.clone();
            self.run_body(
                body,
                b.arrow.params.clone(),
                b.arrow.results.clone(),
                LocalsReq::Exact(post_locals.clone()),
                b.arrow.results.clone(),
                Some(post_locals.clone()),
                Vec::new(),
                name,
            )?;
        }
        self.locals = post_locals;
        for t in b.arrow.results.clone() {
            self.push_op(t);
        }
        Ok(())
    }

    fn check_struct_malloc(&mut self, szs: &[Size], q: Qual) -> Result<(), TypeError> {
        wf_qual(&self.ctx, q)?;
        for sz in szs {
            wf_size(&self.ctx, sz)?;
        }
        // Capabilities may live in manually managed memory; only the
        // GC-owned (unrestricted) heap must be cap-free (§3, relaxed per
        // §5/§8: "capabilities are only disallowed in the parts of the
        // heap owned by the garbage collector").
        let gc_owned = qual_leq(&self.ctx, q, Qual::Unr);
        let mut fields_rev = Vec::with_capacity(szs.len());
        for sz in szs.iter().rev() {
            let t = match self.pop_op("struct.malloc")? {
                Some(t) => t,
                None => Type::unit(),
            };
            if gc_owned && !no_caps_type(&self.ctx, &t) {
                return Err(TypeError::CapsInHeap {
                    context: format!("struct.malloc field {t}"),
                });
            }
            let tsz = size_of_type(&self.ctx, &t)?;
            if !size_leq(&self.ctx, &tsz, sz) {
                return Err(TypeError::SizeNotLeq {
                    lhs: tsz,
                    rhs: sz.clone(),
                    context: "struct.malloc field vs slot size".into(),
                });
            }
            fields_rev.push((t, sz.clone()));
        }
        fields_rev.reverse();
        let shifted: Vec<(Type, Size)> = fields_rev
            .into_iter()
            .map(|(t, sz)| (shift_type(&t, Depth::one(Kind::Loc)), sz))
            .collect();
        let inner =
            Pretype::Ref(MemPriv::ReadWrite, Loc::Var(0), HeapType::Struct(shifted)).with_qual(q);
        self.push_op(Pretype::ExistsLoc(Box::new(inner)).with_qual(q));
        Ok(())
    }

    /// Shared by `struct.set` (swap = false) and `struct.swap`
    /// (swap = true).
    fn check_struct_set(&mut self, i: u32, swap: bool) -> Result<(), TypeError> {
        let ctxt = if swap { "struct.swap" } else { "struct.set" };
        let Some(v) = self.pop_op(ctxt)? else {
            return Ok(());
        };
        let Some(t) = self.pop_op(ctxt)? else {
            return Ok(());
        };
        let Pretype::Ref(MemPriv::ReadWrite, l, HeapType::Struct(fields)) = &*t.pre else {
            return Err(TypeError::Mismatch {
                expected: "ref rw to struct".into(),
                found: t.to_string(),
                context: ctxt.into(),
            });
        };
        let (old, slot_sz) = fields
            .get(i as usize)
            .ok_or(TypeError::UnboundVar {
                kind: "struct field",
                index: i,
            })?
            .clone();
        if !swap && !qual_leq(&self.ctx, old.qual, Qual::Unr) {
            return Err(TypeError::LinearityViolation {
                context: format!("struct.set {i} drops the previous (linear) field {old}"),
            });
        }
        let vsz = size_of_type(&self.ctx, &v)?;
        if !size_leq(&self.ctx, &vsz, &slot_sz) {
            return Err(TypeError::SizeNotLeq {
                lhs: vsz,
                rhs: slot_sz,
                context: format!("{ctxt} {i}: new value vs slot size"),
            });
        }
        if qual_leq(&self.ctx, t.qual, Qual::Unr) && !no_caps_type(&self.ctx, &v) {
            return Err(TypeError::CapsInHeap {
                context: format!("{ctxt} {i}"),
            });
        }
        // Strong updates are only allowed through linear references; on
        // unrestricted (GC'd, aliased) references the update must preserve
        // the type.
        if !qual_leq(&self.ctx, Qual::Lin, t.qual) && v != old {
            return Err(TypeError::Mismatch {
                expected: old.to_string(),
                found: v.to_string(),
                context: format!("{ctxt} {i}: strong update through a non-linear reference"),
            });
        }
        let mut new_fields = fields.clone();
        new_fields[i as usize] = (v, new_fields[i as usize].1.clone());
        let new_ref =
            Pretype::Ref(MemPriv::ReadWrite, *l, HeapType::Struct(new_fields)).with_qual(t.qual);
        self.push_op(new_ref);
        if swap {
            self.push_op(old);
        }
        Ok(())
    }

    fn check_variant_case(
        &mut self,
        q: Qual,
        psi: &HeapType,
        b: &Block,
        bodies: &[Vec<Instr>],
    ) -> Result<(), TypeError> {
        let HeapType::Variant(cases) = psi else {
            return Err(TypeError::Mismatch {
                expected: "variant heap type".into(),
                found: psi.to_string(),
                context: "variant.case".into(),
            });
        };
        if cases.len() != bodies.len() {
            return Err(TypeError::Other(format!(
                "variant.case has {} branches for {} cases",
                bodies.len(),
                cases.len()
            )));
        }
        self.pop_many_expect(&b.arrow.params, "variant.case (params)")?;
        let Some(rt) = self.pop_op("variant.case (ref)")? else {
            self.cur_info.bodies_visited = false;
            return Ok(());
        };
        let Pretype::Ref(pi, _, rpsi) = &*rt.pre else {
            return Err(TypeError::Mismatch {
                expected: "ref to variant".into(),
                found: rt.to_string(),
                context: "variant.case".into(),
            });
        };
        if rpsi != psi {
            return Err(TypeError::Mismatch {
                expected: psi.to_string(),
                found: rpsi.to_string(),
                context: "variant.case annotation vs reference".into(),
            });
        }
        let linear_case = !qual_leq(&self.ctx, q, Qual::Unr);
        if linear_case {
            // The cell is freed: we need write access and a linear ref.
            if *pi != MemPriv::ReadWrite {
                return Err(TypeError::Other(
                    "variant.case lin requires a read-write reference (it frees)".into(),
                ));
            }
            if !qual_leq(&self.ctx, Qual::Lin, rt.qual) {
                return Err(TypeError::QualNotLeq {
                    lhs: Qual::Lin,
                    rhs: rt.qual,
                    context: "variant.case lin consumes a linear reference".into(),
                });
            }
        } else {
            // The payload is *copied* out of memory: every case must be
            // unrestricted.
            for c in cases {
                if !qual_leq(&self.ctx, c.qual, Qual::Unr) {
                    return Err(TypeError::LinearityViolation {
                        context: format!(
                            "variant.case unr would duplicate linear case payload {c}"
                        ),
                    });
                }
            }
        }
        let post_locals = self.apply_effects(&b.effects)?;
        let entry_locals = self.locals.clone();
        let limbo = if linear_case {
            Vec::new()
        } else {
            vec![rt.clone()]
        };
        for (ci, (case_ty, body)) in cases.iter().zip(bodies).enumerate() {
            self.locals = entry_locals.clone();
            let mut entry = b.arrow.params.clone();
            entry.push(case_ty.clone());
            self.run_body(
                body,
                entry,
                b.arrow.results.clone(),
                LocalsReq::Exact(post_locals.clone()),
                b.arrow.results.clone(),
                Some(post_locals.clone()),
                limbo.clone(),
                &format!("variant.case branch {ci}"),
            )?;
        }
        self.locals = post_locals;
        if !linear_case {
            self.push_op(rt);
        }
        for t in b.arrow.results.clone() {
            self.push_op(t);
        }
        Ok(())
    }

    fn check_exist_pack(&mut self, p: &Pretype, psi: &HeapType, q: Qual) -> Result<(), TypeError> {
        let HeapType::Exists(bq, bsz, body_ty) = psi else {
            return Err(TypeError::Mismatch {
                expected: "existential heap type".into(),
                found: psi.to_string(),
                context: "exist.pack".into(),
            });
        };
        wf_heaptype(&mut self.ctx, psi)?;
        wf_qual(&self.ctx, q)?;
        // Witness obligations: fits the size bound, valid at the bound
        // qualifier, carries no bare capabilities (it goes to the heap).
        wf_pretype_at(&mut self.ctx, p, *bq)?;
        let psz = crate::sizing::size_of_pretype(&self.ctx, p)?;
        if !size_leq(&self.ctx, &psz, bsz) {
            return Err(TypeError::SizeNotLeq {
                lhs: psz,
                rhs: bsz.clone(),
                context: "exist.pack witness vs size bound".into(),
            });
        }
        if qual_leq(&self.ctx, q, Qual::Unr) && !crate::wf::no_caps_pretype(&self.ctx, p) {
            return Err(TypeError::CapsInHeap {
                context: "exist.pack witness".into(),
            });
        }
        let opened = subst_type(body_ty, &SubstEnv::pretype(p.clone()));
        self.pop_expect(&opened, "exist.pack")?;
        let shifted = crate::subst::shift_heaptype(psi, Depth::one(Kind::Loc));
        let inner = Pretype::Ref(MemPriv::ReadWrite, Loc::Var(0), shifted).with_qual(q);
        self.push_op(Pretype::ExistsLoc(Box::new(inner)).with_qual(q));
        Ok(())
    }

    fn check_exist_unpack(
        &mut self,
        q: Qual,
        psi: &HeapType,
        b: &Block,
        body: &[Instr],
    ) -> Result<(), TypeError> {
        let HeapType::Exists(bq, bsz, body_ty) = psi else {
            return Err(TypeError::Mismatch {
                expected: "existential heap type".into(),
                found: psi.to_string(),
                context: "exist.unpack".into(),
            });
        };
        self.pop_many_expect(&b.arrow.params, "exist.unpack (params)")?;
        let Some(rt) = self.pop_op("exist.unpack (ref)")? else {
            self.cur_info.bodies_visited = false;
            return Ok(());
        };
        let Pretype::Ref(pi, _, rpsi) = &*rt.pre else {
            return Err(TypeError::Mismatch {
                expected: "ref to existential package".into(),
                found: rt.to_string(),
                context: "exist.unpack".into(),
            });
        };
        if rpsi != psi {
            return Err(TypeError::Mismatch {
                expected: psi.to_string(),
                found: rpsi.to_string(),
                context: "exist.unpack annotation vs reference".into(),
            });
        }
        let linear_case = !qual_leq(&self.ctx, q, Qual::Unr);
        if linear_case {
            if *pi != MemPriv::ReadWrite {
                return Err(TypeError::Other(
                    "exist.unpack lin requires a read-write reference (it frees)".into(),
                ));
            }
            if !qual_leq(&self.ctx, Qual::Lin, rt.qual) {
                return Err(TypeError::QualNotLeq {
                    lhs: Qual::Lin,
                    rhs: rt.qual,
                    context: "exist.unpack lin consumes a linear reference".into(),
                });
            }
        } else if !qual_leq(&self.ctx, body_ty.qual, Qual::Unr) {
            return Err(TypeError::LinearityViolation {
                context: "exist.unpack unr would duplicate a linear package body".into(),
            });
        }
        let post_locals = self.apply_effects(&b.effects)?;
        // Enter the pretype binder: shift all tracked state, load the
        // bound, and run the body in inner coordinates.
        let bq = *bq;
        let bsz = bsz.clone();
        let body_ty = body_ty.clone();
        let rt_outer = rt;
        self.shift_all(Kind::Type);
        self.ctx.push_type(TypeBound {
            lower_qual: bq,
            size: bsz,
            may_contain_caps: false,
        });
        let shift1 = |t: &Type| shift_type(t, Depth::one(Kind::Type));
        let mut entry: Vec<Type> = b.arrow.params.iter().map(shift1).collect();
        entry.push((*body_ty).clone()); // already in binder coordinates
        let results_in: Vec<Type> = b.arrow.results.iter().map(shift1).collect();
        let post_in: Vec<SlotTy> = post_locals
            .iter()
            .map(|s| SlotTy {
                ty: shift1(&s.ty),
                size: s.size.clone(),
            })
            .collect();
        let limbo = if linear_case {
            Vec::new()
        } else {
            vec![shift1(&rt_outer)]
        };
        let res = self.run_body(
            body,
            entry,
            results_in.clone(),
            LocalsReq::Exact(post_in.clone()),
            results_in,
            Some(post_in),
            limbo,
            "exist.unpack",
        );
        self.ctx.pop_type();
        let unshift_res = self.unshift_all(Kind::Type);
        res?;
        unshift_res?;
        self.locals = post_locals;
        if !linear_case {
            self.push_op(rt_outer);
        }
        for t in b.arrow.results.clone() {
            self.push_op(t);
        }
        Ok(())
    }

    fn check_mem_unpack(&mut self, b: &Block, body: &[Instr]) -> Result<(), TypeError> {
        let Some(pkg) = self.pop_op("mem.unpack (package)")? else {
            self.cur_info.bodies_visited = false;
            return Ok(());
        };
        let Pretype::ExistsLoc(pkg_body) = &*pkg.pre else {
            return Err(TypeError::Mismatch {
                expected: "existential location package".into(),
                found: pkg.to_string(),
                context: "mem.unpack".into(),
            });
        };
        let pkg_body = (**pkg_body).clone();
        self.pop_many_expect(&b.arrow.params, "mem.unpack (params)")?;
        let post_locals = self.apply_effects(&b.effects)?;
        self.shift_all(Kind::Loc);
        self.ctx.push_loc();
        let shift1 = |t: &Type| shift_type(t, Depth::one(Kind::Loc));
        let mut entry: Vec<Type> = b.arrow.params.iter().map(shift1).collect();
        entry.push(pkg_body); // the ∃ body is already in binder coordinates
        let results_in: Vec<Type> = b.arrow.results.iter().map(shift1).collect();
        let post_in: Vec<SlotTy> = post_locals
            .iter()
            .map(|s| SlotTy {
                ty: shift1(&s.ty),
                size: s.size.clone(),
            })
            .collect();
        let res = self.run_body(
            body,
            entry,
            results_in.clone(),
            LocalsReq::Exact(post_in.clone()),
            results_in,
            Some(post_in),
            Vec::new(),
            "mem.unpack",
        );
        self.ctx.pop_loc();
        let unshift_res = self.unshift_all(Kind::Loc);
        res?;
        unshift_res?;
        self.locals = post_locals;
        for t in b.arrow.results.clone() {
            self.push_op(t);
        }
        Ok(())
    }

    /// Finishes checking a function body: the stack must hold exactly the
    /// return types and no local may still hold a linear value (Fig. 8's
    /// configuration rule).
    pub fn finish(&mut self) -> Result<(), TypeError> {
        let ret = self.ret.clone();
        self.cur_info = InstrInfo::default();
        self.pop_many_expect(&ret, "function end")?;
        if !self.cur().stack.is_empty() {
            return Err(TypeError::BlockResultMismatch {
                context: "values left on stack at function end".into(),
            });
        }
        self.check_locals_req(&LocalsReq::AllUnr, "function end")
    }
}

fn require_int(nt: NumType) -> Result<(), TypeError> {
    if nt.is_int() {
        Ok(())
    } else {
        Err(TypeError::Other(format!(
            "integer operation on float type {nt}"
        )))
    }
}

fn require_float(nt: NumType) -> Result<(), TypeError> {
    if nt.is_float() {
        Ok(())
    } else {
        Err(TypeError::Other(format!(
            "float operation on integer type {nt}"
        )))
    }
}

/// Checks one function body against its declared type (paper §4's
/// function typing): loads the quantifier telescope, allocates parameter
/// and declared local slots, checks the body, and enforces the
/// end-of-function conditions.
///
/// Returns the per-instruction [`InstrInfo`] trace used by the
/// type-directed Wasm backend.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn check_function_body(
    module: &ModuleEnv,
    ty: &FunType,
    local_sizes: &[Size],
    body: &[Instr],
) -> Result<Vec<InstrInfo>, TypeError> {
    let mut ctx = KindCtx::new();
    let _pushed = push_telescope(&mut ctx, &ty.quants);
    let mut locals = Vec::with_capacity(ty.arrow.params.len() + local_sizes.len());
    for p in &ty.arrow.params {
        let size = size_of_type(&ctx, p)?;
        locals.push(SlotTy {
            ty: p.clone(),
            size,
        });
    }
    for sz in local_sizes {
        wf_size(&ctx, sz)?;
        locals.push(SlotTy {
            ty: Type::unit(),
            size: sz.clone(),
        });
    }
    let mut checker = Checker::new(module, ctx, locals, ty.arrow.results.clone());
    checker.check_seq(body)?;
    checker.finish()?;
    Ok(checker.into_trace())
}
