//! The RichWasm type checker (paper §4, Figs. 5–8).
//!
//! The checker is *algorithmic*: it walks each instruction sequence with a
//! typed operand stack per control frame (Wasm-style, with a polymorphic
//! stack after `unreachable`/`br`), mutates the local environment `L` in
//! place, applies declared *local effects* at block boundaries, and tracks
//! the paper's *linear environment* as the set of values each branch would
//! drop (all of which must be unrestricted).
//!
//! Entry points:
//!
//! * [`check_module`] — checks a whole module, producing its [`ModuleEnv`];
//! * [`check_function_body`] — checks one instruction sequence against a
//!   function type (used internally and by tests);
//! * [`check_instantiation`] — validates a quantifier instantiation
//!   against its telescope constraints.

mod instr;
pub mod rules;
mod value;

pub use instr::{check_function_body, Checker, InstrInfo, SlotTy};
pub use rules::{coverage_of_module, Rule, RuleCoverage};
pub use value::synthesize_const;

use crate::env::{KindCtx, ModuleEnv, QualBounds, SizeBounds, TypeBound};
use crate::error::TypeError;
use crate::sizing::size_of_pretype;
use crate::solver::{qual_leq, size_leq};
use crate::subst::{subst_qual, subst_size, SubstEnv};
use crate::syntax::{FunType, Func, GlobalKind, Index, Instr, Module, Quantifier};
use crate::wf::{no_caps_pretype, wf_funtype, wf_loc, wf_pretype_at, wf_qual, wf_size};

/// Pushes a quantifier telescope onto `ctx`; returns a token list used by
/// [`pop_telescope`] to restore the context. Public so that type-directed
/// consumers (e.g. the Wasm backend) can mirror the checker's context.
pub fn push_telescope(ctx: &mut KindCtx, quants: &[Quantifier]) -> Vec<u8> {
    let mut pushed = Vec::with_capacity(quants.len());
    for q in quants {
        match q {
            Quantifier::Loc => {
                ctx.push_loc();
                pushed.push(0);
            }
            Quantifier::Size { lower, upper } => {
                ctx.push_size(SizeBounds {
                    lower: lower.clone(),
                    upper: upper.clone(),
                });
                pushed.push(1);
            }
            Quantifier::Qual { lower, upper } => {
                ctx.push_qual(QualBounds {
                    lower: lower.clone(),
                    upper: upper.clone(),
                });
                pushed.push(2);
            }
            Quantifier::Type {
                lower_qual,
                size,
                may_contain_caps,
            } => {
                ctx.push_type(TypeBound {
                    lower_qual: *lower_qual,
                    size: size.clone(),
                    may_contain_caps: *may_contain_caps,
                });
                pushed.push(3);
            }
        }
    }
    pushed
}

/// Pops a telescope previously pushed with [`push_telescope`].
pub fn pop_telescope(ctx: &mut KindCtx, pushed: Vec<u8>) {
    for kind in pushed.into_iter().rev() {
        match kind {
            0 => ctx.pop_loc(),
            1 => ctx.pop_size(),
            2 => ctx.pop_qual(),
            _ => ctx.pop_type(),
        }
    }
}

/// Checks that `indices` is a valid instantiation of `quants` under `ctx`:
/// arities and kinds match and every telescope constraint holds after
/// substituting the instantiation prefix (paper §2.1's instantiation
/// side conditions).
pub fn check_instantiation(
    ctx: &mut KindCtx,
    quants: &[Quantifier],
    indices: &[Index],
) -> Result<(), TypeError> {
    if quants.len() != indices.len() {
        return Err(TypeError::BadInstantiation {
            reason: format!("expected {} indices, got {}", quants.len(), indices.len()),
        });
    }
    for (k, (q, z)) in quants.iter().zip(indices).enumerate() {
        // Close the constraint expressions of quantifier `k` over the
        // already-checked prefix.
        let prefix = SubstEnv::for_instantiation(&quants[..k], &indices[..k])
            .map_err(|reason| TypeError::BadInstantiation { reason })?;
        match (q, z) {
            (Quantifier::Loc, Index::Loc(l)) => wf_loc(ctx, *l)?,
            (Quantifier::Size { lower, upper }, Index::Size(s)) => {
                wf_size(ctx, s)?;
                for lo in lower {
                    let lo = subst_size(lo, &prefix);
                    if !size_leq(ctx, &lo, s) {
                        return Err(TypeError::SizeNotLeq {
                            lhs: lo,
                            rhs: s.clone(),
                            context: "size instantiation lower bound".into(),
                        });
                    }
                }
                for up in upper {
                    let up = subst_size(up, &prefix);
                    if !size_leq(ctx, s, &up) {
                        return Err(TypeError::SizeNotLeq {
                            lhs: s.clone(),
                            rhs: up,
                            context: "size instantiation upper bound".into(),
                        });
                    }
                }
            }
            (Quantifier::Qual { lower, upper }, Index::Qual(qv)) => {
                wf_qual(ctx, *qv)?;
                for lo in lower {
                    let lo = subst_qual(*lo, &prefix);
                    if !qual_leq(ctx, lo, *qv) {
                        return Err(TypeError::QualNotLeq {
                            lhs: lo,
                            rhs: *qv,
                            context: "qualifier instantiation lower bound".into(),
                        });
                    }
                }
                for up in upper {
                    let up = subst_qual(*up, &prefix);
                    if !qual_leq(ctx, *qv, up) {
                        return Err(TypeError::QualNotLeq {
                            lhs: *qv,
                            rhs: up,
                            context: "qualifier instantiation upper bound".into(),
                        });
                    }
                }
            }
            (
                Quantifier::Type {
                    lower_qual,
                    size,
                    may_contain_caps,
                },
                Index::Pretype(p),
            ) => {
                let lq = subst_qual(*lower_qual, &prefix);
                let sz = subst_size(size, &prefix);
                // The witness must be usable at every qualifier ≥ the bound
                // (paper: "we can only substitute a pretype for such a
                // pretype variable if it would be valid at that qualifier").
                wf_pretype_at(ctx, p, lq)?;
                let psz = size_of_pretype(ctx, p)?;
                if !size_leq(ctx, &psz, &sz) {
                    return Err(TypeError::SizeNotLeq {
                        lhs: psz,
                        rhs: sz,
                        context: "pretype instantiation size bound".into(),
                    });
                }
                if !may_contain_caps && !no_caps_pretype(ctx, p) {
                    return Err(TypeError::CapsInHeap {
                        context: format!("pretype instantiation {p} may not contain capabilities"),
                    });
                }
            }
            (q, z) => {
                return Err(TypeError::BadInstantiation {
                    reason: format!("kind mismatch: quantifier {q} vs index {z}"),
                });
            }
        }
    }
    Ok(())
}

/// Builds the [`ModuleEnv`] of a module from its declarations (without
/// checking bodies).
pub fn module_env(m: &Module) -> Result<ModuleEnv, TypeError> {
    let mut env = ModuleEnv::default();
    for f in &m.funcs {
        env.funcs.push(f.ty().clone());
    }
    for g in &m.globals {
        env.globals.push((g.mutable(), g.ty().clone()));
    }
    for &i in &m.table.entries {
        let ft = m.funcs.get(i as usize).ok_or(TypeError::UnboundVar {
            kind: "function",
            index: i,
        })?;
        env.table.push(ft.ty().clone());
    }
    Ok(env)
}

/// Type checks a whole module (paper §4: function bodies, global
/// initialisers, table entries). Returns the module environment on
/// success.
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
pub fn check_module(m: &Module) -> Result<ModuleEnv, TypeError> {
    let env = module_env(m)?;
    // Declared types must be well-formed in the empty kind context.
    let mut ctx = KindCtx::new();
    for f in &m.funcs {
        wf_funtype(&mut ctx, f.ty())?;
    }
    for g in &m.globals {
        // Globals are unrestricted; their pretype must be valid at `unr`.
        wf_pretype_at(&mut ctx, g.ty(), crate::syntax::Qual::Unr)?;
    }
    // Global initialisers: constant expressions of the declared type.
    for (gi, g) in m.globals.iter().enumerate() {
        if let GlobalKind::Defined { ty, init, .. } = &g.kind {
            check_const_init(&env, gi, init, ty)?;
        }
    }
    // Function bodies.
    for f in &m.funcs {
        if let Func::Defined {
            ty, locals, body, ..
        } = f
        {
            check_function_body(&env, ty, locals, body)?;
        }
    }
    Ok(env)
}

/// Checks a global initialiser: an instruction sequence producing the
/// declared pretype at qualifier `unr` (paper Fig. 2: `glob mut? p i*` —
/// initialisers are instruction sequences, which lets modules allocate
/// their initial state; they run at instantiation time).
///
/// Restrictions: an initialiser may only read *earlier* globals, may not
/// write globals, and may not call functions (instantiation order would
/// be circular).
fn check_const_init(
    env: &ModuleEnv,
    global_idx: usize,
    init: &[Instr],
    expected: &crate::syntax::Pretype,
) -> Result<(), TypeError> {
    fn scan(init: &[Instr], global_idx: usize) -> Result<(), TypeError> {
        for ins in init {
            match ins {
                Instr::GetGlobal(i) if *i as usize >= global_idx => {
                    return Err(TypeError::Other(format!(
                        "global initialiser {global_idx} reads later global {i}"
                    )));
                }
                Instr::SetGlobal(_)
                | Instr::Call(..)
                | Instr::CallIndirect
                | Instr::CodeRefI(_) => {
                    return Err(TypeError::Other(format!(
                        "instruction {ins} not allowed in a global initialiser"
                    )));
                }
                Instr::BlockI(_, b)
                | Instr::LoopI(_, b)
                | Instr::MemUnpack(_, b)
                | Instr::ExistUnpack(_, _, _, b) => scan(b, global_idx)?,
                Instr::IfI(_, a, b) => {
                    scan(a, global_idx)?;
                    scan(b, global_idx)?;
                }
                Instr::VariantCase(_, _, _, bs) => {
                    for b in bs {
                        scan(b, global_idx)?;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
    scan(init, global_idx)?;
    let ty = FunType::mono(
        vec![],
        vec![expected.clone().with_qual(crate::syntax::Qual::Unr)],
    );
    check_function_body(env, &ty, &[], init)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::*;

    #[test]
    fn empty_module_checks() {
        check_module(&Module::default()).unwrap();
    }

    #[test]
    fn module_env_resolves_table() {
        let m = Module {
            funcs: vec![Func::Defined {
                exports: vec![],
                ty: FunType::mono(vec![], vec![]),
                locals: vec![],
                body: vec![],
            }],
            table: Table {
                exports: vec![],
                entries: vec![0],
            },
            ..Module::default()
        };
        let env = module_env(&m).unwrap();
        assert_eq!(env.table.len(), 1);
        let bad = Module {
            table: Table {
                exports: vec![],
                entries: vec![7],
            },
            ..Module::default()
        };
        assert!(module_env(&bad).is_err());
    }

    #[test]
    fn global_initialiser_checked() {
        let m = Module {
            globals: vec![Global {
                exports: vec![],
                kind: GlobalKind::Defined {
                    mutable: false,
                    ty: Pretype::Num(NumType::I32),
                    init: vec![Instr::i32(7)],
                },
            }],
            ..Module::default()
        };
        check_module(&m).unwrap();
        let bad = Module {
            globals: vec![Global {
                exports: vec![],
                kind: GlobalKind::Defined {
                    mutable: false,
                    ty: Pretype::Num(NumType::I64),
                    init: vec![Instr::i32(7)],
                },
            }],
            ..Module::default()
        };
        assert!(check_module(&bad).is_err());
    }

    #[test]
    fn instantiation_checking() {
        let mut ctx = KindCtx::new();
        let quants = vec![
            Quantifier::Size {
                lower: vec![],
                upper: vec![Size::Const(64)],
            },
            Quantifier::Type {
                lower_qual: Qual::Unr,
                // References the size var bound just before (de Bruijn 0).
                size: Size::Var(0),
                may_contain_caps: false,
            },
        ];
        // i32 (32 bits) fits σ = 32.
        check_instantiation(
            &mut ctx,
            &quants,
            &[
                Index::Size(Size::Const(32)),
                Index::Pretype(Pretype::Num(NumType::I32)),
            ],
        )
        .unwrap();
        // i64 does not fit σ = 32.
        assert!(check_instantiation(
            &mut ctx,
            &quants,
            &[
                Index::Size(Size::Const(32)),
                Index::Pretype(Pretype::Num(NumType::I64))
            ],
        )
        .is_err());
        // σ = 128 violates its own upper bound 64.
        assert!(check_instantiation(
            &mut ctx,
            &quants,
            &[Index::Size(Size::Const(128)), Index::Pretype(Pretype::Unit)],
        )
        .is_err());
    }

    #[test]
    fn instantiation_rejects_linear_witness_at_unr_position() {
        let mut ctx = KindCtx::new();
        let quants = vec![Quantifier::Type {
            lower_qual: Qual::Unr,
            size: Size::Const(64),
            may_contain_caps: false,
        }];
        // A tuple containing a linear component is not valid at `unr`.
        let bad = Pretype::Prod(vec![Pretype::Unit.lin()]);
        assert!(check_instantiation(&mut ctx, &quants, &[Index::Pretype(bad)]).is_err());
        let good = Pretype::Prod(vec![Pretype::Unit.unr()]);
        check_instantiation(&mut ctx, &quants, &[Index::Pretype(good)]).unwrap();
    }
}
