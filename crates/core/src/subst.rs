//! Substitution and shifting for RichWasm's four kinds of binders.
//!
//! RichWasm types and instructions bind variables of four kinds —
//! **locations** (`ρ`), **sizes** (`σ`), **qualifiers** (`δ`) and
//! **pretypes** (`α`) — each with its own de Bruijn index space. This
//! module implements:
//!
//! * [`shift_type`] and friends — shifting all free variables up, per
//!   kind,
//! * [`SubstEnv`] — simultaneous substitution (used to instantiate the
//!   quantifier telescope of a function type at `call`/`inst`),
//! * checked down-shifting (used by the type checker when leaving a
//!   `mem.unpack` / `exist.unpack` binder: failure = the bound variable
//!   escapes its scope).
//!
//! The paper notes that its *only* remaining admitted Coq lemmas concern
//! substitution; this module is correspondingly the most heavily
//! property-tested part of the crate.

use crate::syntax::instr::{Block, Instr, LocalEffect};
use crate::syntax::loc::Loc;
use crate::syntax::qual::Qual;
use crate::syntax::size::Size;
use crate::syntax::types::{ArrowType, FunType, HeapType, Index, Pretype, Quantifier, Type};
use crate::syntax::value::{HeapValue, Value};

/// Binder kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Location variables `ρ`.
    Loc,
    /// Size variables `σ`.
    Size,
    /// Qualifier variables `δ`.
    Qual,
    /// Pretype variables `α`.
    Type,
}

/// Per-kind binder depths (also used as per-kind shift amounts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Depth {
    /// Location binders crossed.
    pub loc: u32,
    /// Size binders crossed.
    pub size: u32,
    /// Qualifier binders crossed.
    pub qual: u32,
    /// Pretype binders crossed.
    pub ty: u32,
}

impl Depth {
    /// A depth of 1 in a single kind, 0 elsewhere.
    pub fn one(kind: Kind) -> Depth {
        let mut d = Depth::default();
        match kind {
            Kind::Loc => d.loc = 1,
            Kind::Size => d.size = 1,
            Kind::Qual => d.qual = 1,
            Kind::Type => d.ty = 1,
        }
        d
    }

    fn bump(&mut self, kind: Kind) {
        match kind {
            Kind::Loc => self.loc += 1,
            Kind::Size => self.size += 1,
            Kind::Qual => self.qual += 1,
            Kind::Type => self.ty += 1,
        }
    }
}

/// A simultaneous substitution: de Bruijn index `i` of each kind is
/// replaced by the `i`-th entry (0 = **innermost** binder); indices beyond
/// the replacement list are shifted down by its length.
#[derive(Debug, Clone, Default)]
pub struct SubstEnv {
    /// Replacements for location variables.
    pub locs: Vec<Loc>,
    /// Replacements for size variables.
    pub sizes: Vec<Size>,
    /// Replacements for qualifier variables.
    pub quals: Vec<Qual>,
    /// Replacements for pretype variables.
    pub types: Vec<Pretype>,
}

impl SubstEnv {
    /// A substitution replacing only location variable 0.
    pub fn loc(l: Loc) -> SubstEnv {
        SubstEnv {
            locs: vec![l],
            ..SubstEnv::default()
        }
    }

    /// A substitution replacing only pretype variable 0.
    pub fn pretype(p: Pretype) -> SubstEnv {
        SubstEnv {
            types: vec![p],
            ..SubstEnv::default()
        }
    }

    /// A substitution replacing only qualifier variable 0.
    pub fn qual(q: Qual) -> SubstEnv {
        SubstEnv {
            quals: vec![q],
            ..SubstEnv::default()
        }
    }

    /// A substitution replacing only size variable 0.
    pub fn size(s: Size) -> SubstEnv {
        SubstEnv {
            sizes: vec![s],
            ..SubstEnv::default()
        }
    }

    /// Builds the instantiation substitution for a quantifier telescope.
    ///
    /// `indices` are given outermost-first (the order of `quants`); the
    /// resulting environment maps de Bruijn index 0 of each kind to the
    /// *innermost* binder's index value.
    ///
    /// # Errors
    ///
    /// Returns a message when the arity or a kind does not match.
    pub fn for_instantiation(quants: &[Quantifier], indices: &[Index]) -> Result<SubstEnv, String> {
        if quants.len() != indices.len() {
            return Err(format!(
                "instantiation arity mismatch: {} quantifiers, {} indices",
                quants.len(),
                indices.len()
            ));
        }
        let mut env = SubstEnv::default();
        for (q, z) in quants.iter().zip(indices) {
            match (q, z) {
                (Quantifier::Loc, Index::Loc(l)) => env.locs.push(*l),
                (Quantifier::Size { .. }, Index::Size(s)) => env.sizes.push(s.clone()),
                (Quantifier::Qual { .. }, Index::Qual(qq)) => env.quals.push(*qq),
                (Quantifier::Type { .. }, Index::Pretype(p)) => env.types.push(p.clone()),
                _ => return Err(format!("kind mismatch: quantifier {q} vs index {z}")),
            }
        }
        // Collected outermost-first; de Bruijn 0 is the innermost binder.
        env.locs.reverse();
        env.sizes.reverse();
        env.quals.reverse();
        env.types.reverse();
        Ok(env)
    }
}

/// The internal traversal operation.
enum Op<'a> {
    /// Shift free variables up by the per-kind amounts.
    ShiftUp(Depth),
    /// Shift free variables of one kind down by 1; fails if the variable at
    /// the cutoff (the escaping binder) occurs.
    ShiftDown(Kind),
    /// Simultaneous substitution.
    Subst(&'a SubstEnv),
    /// Abstract every occurrence of a location into a fresh innermost
    /// binder (the inverse of substitution, used by `mem.pack`): the target
    /// becomes `Var(depth)` and all other free location variables shift up
    /// by one.
    GeneralizeLoc(Loc),
}

/// Raised when a checked down-shift encounters the escaping variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeError {
    /// The kind of the escaping variable.
    pub kind: Kind,
}

type R<T> = Result<T, EscapeError>;

fn apply_qual(q: Qual, op: &Op, d: Depth) -> R<Qual> {
    match q {
        Qual::Var(i) => var_qual(i, op, d),
        q => Ok(q),
    }
}

fn var_qual(i: u32, op: &Op, d: Depth) -> R<Qual> {
    let cut = d.qual;
    match op {
        Op::ShiftUp(by) => Ok(if i < cut {
            Qual::Var(i)
        } else {
            Qual::Var(i + by.qual)
        }),
        Op::ShiftDown(Kind::Qual) => {
            if i < cut {
                Ok(Qual::Var(i))
            } else if i == cut {
                Err(EscapeError { kind: Kind::Qual })
            } else {
                Ok(Qual::Var(i - 1))
            }
        }
        Op::ShiftDown(_) | Op::GeneralizeLoc(_) => Ok(Qual::Var(i)),
        Op::Subst(env) => {
            if i < cut {
                Ok(Qual::Var(i))
            } else {
                let j = (i - cut) as usize;
                if j < env.quals.len() {
                    // Qualifier replacements contain no sub-binders, so the
                    // only adjustment is shifting their own variables.
                    match env.quals[j] {
                        Qual::Var(v) => Ok(Qual::Var(v + cut)),
                        q => Ok(q),
                    }
                } else {
                    Ok(Qual::Var(i - env.quals.len() as u32))
                }
            }
        }
    }
}

fn apply_size(s: &Size, op: &Op, d: Depth) -> R<Size> {
    match s {
        Size::Const(c) => Ok(Size::Const(*c)),
        Size::Plus(a, b) => Ok(Size::Plus(
            Box::new(apply_size(a, op, d)?),
            Box::new(apply_size(b, op, d)?),
        )),
        Size::Var(i) => {
            let i = *i;
            let cut = d.size;
            match op {
                Op::ShiftUp(by) => Ok(if i < cut {
                    Size::Var(i)
                } else {
                    Size::Var(i + by.size)
                }),
                Op::ShiftDown(Kind::Size) => {
                    if i < cut {
                        Ok(Size::Var(i))
                    } else if i == cut {
                        Err(EscapeError { kind: Kind::Size })
                    } else {
                        Ok(Size::Var(i - 1))
                    }
                }
                Op::ShiftDown(_) | Op::GeneralizeLoc(_) => Ok(Size::Var(i)),
                Op::Subst(env) => {
                    if i < cut {
                        Ok(Size::Var(i))
                    } else {
                        let j = (i - cut) as usize;
                        if j < env.sizes.len() {
                            let shift = Depth {
                                size: cut,
                                ..Depth::default()
                            };
                            apply_size(&env.sizes[j], &Op::ShiftUp(shift), Depth::default())
                        } else {
                            Ok(Size::Var(i - env.sizes.len() as u32))
                        }
                    }
                }
            }
        }
    }
}

fn apply_loc(l: Loc, op: &Op, d: Depth) -> R<Loc> {
    if let Op::GeneralizeLoc(target) = op {
        return Ok(match (l, *target) {
            (Loc::Concrete(c), Loc::Concrete(t)) if c == t => Loc::Var(d.loc),
            (Loc::Concrete(c), _) => Loc::Concrete(c),
            // A free variable equal to the (depth-adjusted) target.
            (Loc::Var(i), Loc::Var(t)) if i >= d.loc && i == t + d.loc => Loc::Var(d.loc),
            // Other free variables shift up past the new binder.
            (Loc::Var(i), _) if i >= d.loc => Loc::Var(i + 1),
            (Loc::Var(i), _) => Loc::Var(i),
        });
    }
    match l {
        Loc::Concrete(c) => Ok(Loc::Concrete(c)),
        Loc::Var(i) => {
            let cut = d.loc;
            match op {
                Op::ShiftUp(by) => Ok(if i < cut {
                    Loc::Var(i)
                } else {
                    Loc::Var(i + by.loc)
                }),
                Op::ShiftDown(Kind::Loc) => {
                    if i < cut {
                        Ok(Loc::Var(i))
                    } else if i == cut {
                        Err(EscapeError { kind: Kind::Loc })
                    } else {
                        Ok(Loc::Var(i - 1))
                    }
                }
                Op::ShiftDown(_) => Ok(Loc::Var(i)),
                Op::GeneralizeLoc(_) => unreachable!("handled above"),
                Op::Subst(env) => {
                    if i < cut {
                        Ok(Loc::Var(i))
                    } else {
                        let j = (i - cut) as usize;
                        if j < env.locs.len() {
                            match env.locs[j] {
                                Loc::Var(v) => Ok(Loc::Var(v + cut)),
                                l => Ok(l),
                            }
                        } else {
                            Ok(Loc::Var(i - env.locs.len() as u32))
                        }
                    }
                }
            }
        }
    }
}

fn apply_pretype(p: &Pretype, op: &Op, d: Depth) -> R<Pretype> {
    Ok(match p {
        Pretype::Unit => Pretype::Unit,
        Pretype::Num(nt) => Pretype::Num(*nt),
        Pretype::Prod(ts) => {
            Pretype::Prod(ts.iter().map(|t| apply_type(t, op, d)).collect::<R<_>>()?)
        }
        Pretype::Ref(pi, l, h) => {
            Pretype::Ref(*pi, apply_loc(*l, op, d)?, apply_heaptype(h, op, d)?)
        }
        Pretype::Ptr(l) => Pretype::Ptr(apply_loc(*l, op, d)?),
        Pretype::Cap(pi, l, h) => {
            Pretype::Cap(*pi, apply_loc(*l, op, d)?, apply_heaptype(h, op, d)?)
        }
        Pretype::Rec(q, t) => {
            let q2 = apply_qual(*q, op, d)?;
            let mut d2 = d;
            d2.bump(Kind::Type);
            Pretype::Rec(q2, Box::new(apply_type(t, op, d2)?))
        }
        Pretype::ExistsLoc(t) => {
            let mut d2 = d;
            d2.bump(Kind::Loc);
            Pretype::ExistsLoc(Box::new(apply_type(t, op, d2)?))
        }
        Pretype::CodeRef(ft) => Pretype::CodeRef(apply_funtype(ft, op, d)?),
        Pretype::Own(l) => Pretype::Own(apply_loc(*l, op, d)?),
        Pretype::Var(i) => {
            let i = *i;
            let cut = d.ty;
            match op {
                Op::ShiftUp(by) => {
                    if i < cut {
                        Pretype::Var(i)
                    } else {
                        Pretype::Var(i + by.ty)
                    }
                }
                Op::ShiftDown(Kind::Type) => {
                    if i < cut {
                        Pretype::Var(i)
                    } else if i == cut {
                        return Err(EscapeError { kind: Kind::Type });
                    } else {
                        Pretype::Var(i - 1)
                    }
                }
                Op::ShiftDown(_) | Op::GeneralizeLoc(_) => Pretype::Var(i),
                Op::Subst(env) => {
                    if i < cut {
                        Pretype::Var(i)
                    } else {
                        let j = (i - cut) as usize;
                        if j < env.types.len() {
                            // Shift the replacement's free variables (of all
                            // kinds) past the binders we are under.
                            apply_pretype(&env.types[j], &Op::ShiftUp(d), Depth::default())?
                        } else {
                            Pretype::Var(i - env.types.len() as u32)
                        }
                    }
                }
            }
        }
    })
}

fn apply_type(t: &Type, op: &Op, d: Depth) -> R<Type> {
    Ok(Type {
        pre: Box::new(apply_pretype(&t.pre, op, d)?),
        qual: apply_qual(t.qual, op, d)?,
    })
}

fn apply_heaptype(h: &HeapType, op: &Op, d: Depth) -> R<HeapType> {
    Ok(match h {
        HeapType::Variant(ts) => {
            HeapType::Variant(ts.iter().map(|t| apply_type(t, op, d)).collect::<R<_>>()?)
        }
        HeapType::Struct(fs) => HeapType::Struct(
            fs.iter()
                .map(|(t, sz)| Ok((apply_type(t, op, d)?, apply_size(sz, op, d)?)))
                .collect::<R<_>>()?,
        ),
        HeapType::Array(t) => HeapType::Array(apply_type(t, op, d)?),
        HeapType::Exists(q, sz, t) => {
            let q2 = apply_qual(*q, op, d)?;
            let sz2 = apply_size(sz, op, d)?;
            let mut d2 = d;
            d2.bump(Kind::Type);
            HeapType::Exists(q2, sz2, Box::new(apply_type(t, op, d2)?))
        }
    })
}

fn apply_quantifier(q: &Quantifier, op: &Op, d: Depth) -> R<Quantifier> {
    Ok(match q {
        Quantifier::Loc => Quantifier::Loc,
        Quantifier::Size { lower, upper } => Quantifier::Size {
            lower: lower
                .iter()
                .map(|s| apply_size(s, op, d))
                .collect::<R<_>>()?,
            upper: upper
                .iter()
                .map(|s| apply_size(s, op, d))
                .collect::<R<_>>()?,
        },
        Quantifier::Qual { lower, upper } => Quantifier::Qual {
            lower: lower
                .iter()
                .map(|q| apply_qual(*q, op, d))
                .collect::<R<_>>()?,
            upper: upper
                .iter()
                .map(|q| apply_qual(*q, op, d))
                .collect::<R<_>>()?,
        },
        Quantifier::Type {
            lower_qual,
            size,
            may_contain_caps,
        } => Quantifier::Type {
            lower_qual: apply_qual(*lower_qual, op, d)?,
            size: apply_size(size, op, d)?,
            may_contain_caps: *may_contain_caps,
        },
    })
}

fn apply_arrow(a: &ArrowType, op: &Op, d: Depth) -> R<ArrowType> {
    Ok(ArrowType {
        params: a
            .params
            .iter()
            .map(|t| apply_type(t, op, d))
            .collect::<R<_>>()?,
        results: a
            .results
            .iter()
            .map(|t| apply_type(t, op, d))
            .collect::<R<_>>()?,
    })
}

fn apply_funtype(ft: &FunType, op: &Op, d: Depth) -> R<FunType> {
    let mut d = d;
    let mut quants = Vec::with_capacity(ft.quants.len());
    for q in &ft.quants {
        quants.push(apply_quantifier(q, op, d)?);
        d.bump(match q {
            Quantifier::Loc => Kind::Loc,
            Quantifier::Size { .. } => Kind::Size,
            Quantifier::Qual { .. } => Kind::Qual,
            Quantifier::Type { .. } => Kind::Type,
        });
    }
    Ok(FunType {
        quants,
        arrow: apply_arrow(&ft.arrow, op, d)?,
    })
}

fn apply_index(z: &Index, op: &Op, d: Depth) -> R<Index> {
    Ok(match z {
        Index::Loc(l) => Index::Loc(apply_loc(*l, op, d)?),
        Index::Size(s) => Index::Size(apply_size(s, op, d)?),
        Index::Qual(q) => Index::Qual(apply_qual(*q, op, d)?),
        Index::Pretype(p) => Index::Pretype(apply_pretype(p, op, d)?),
    })
}

fn apply_value(v: &Value, op: &Op, d: Depth) -> R<Value> {
    Ok(match v {
        Value::Unit | Value::Num(..) | Value::Ref(_) | Value::Ptr(_) | Value::Cap | Value::Own => {
            v.clone()
        }
        Value::Prod(vs) => Value::Prod(vs.iter().map(|v| apply_value(v, op, d)).collect::<R<_>>()?),
        Value::Fold(v) => Value::Fold(Box::new(apply_value(v, op, d)?)),
        Value::MemPack(l, v) => Value::MemPack(*l, Box::new(apply_value(v, op, d)?)),
        Value::CodeRef {
            inst,
            table_idx,
            indices,
        } => Value::CodeRef {
            inst: *inst,
            table_idx: *table_idx,
            indices: indices
                .iter()
                .map(|z| apply_index(z, op, d))
                .collect::<R<_>>()?,
        },
    })
}

fn apply_heapvalue(hv: &HeapValue, op: &Op, d: Depth) -> R<HeapValue> {
    Ok(match hv {
        HeapValue::Variant(i, v) => HeapValue::Variant(*i, Box::new(apply_value(v, op, d)?)),
        HeapValue::Struct(vs) => {
            HeapValue::Struct(vs.iter().map(|v| apply_value(v, op, d)).collect::<R<_>>()?)
        }
        HeapValue::Array(vs) => {
            HeapValue::Array(vs.iter().map(|v| apply_value(v, op, d)).collect::<R<_>>()?)
        }
        HeapValue::Pack(p, v, h) => HeapValue::Pack(
            apply_pretype(p, op, d)?,
            Box::new(apply_value(v, op, d)?),
            apply_heaptype(h, op, d)?,
        ),
    })
}

fn apply_block(b: &Block, op: &Op, d: Depth) -> R<Block> {
    Ok(Block {
        arrow: apply_arrow(&b.arrow, op, d)?,
        effects: b
            .effects
            .iter()
            .map(|e| {
                Ok(LocalEffect {
                    idx: e.idx,
                    ty: apply_type(&e.ty, op, d)?,
                })
            })
            .collect::<R<_>>()?,
    })
}

fn apply_instrs(es: &[Instr], op: &Op, d: Depth) -> R<Vec<Instr>> {
    es.iter().map(|e| apply_instr(e, op, d)).collect()
}

fn apply_instr(e: &Instr, op: &Op, d: Depth) -> R<Instr> {
    Ok(match e {
        Instr::Val(v) => Instr::Val(apply_value(v, op, d)?),
        Instr::Num(n) => Instr::Num(*n),
        Instr::Unreachable
        | Instr::Nop
        | Instr::Drop
        | Instr::Select
        | Instr::Br(_)
        | Instr::BrIf(_)
        | Instr::BrTable(..)
        | Instr::Return
        | Instr::SetLocal(_)
        | Instr::TeeLocal(_)
        | Instr::GetGlobal(_)
        | Instr::SetGlobal(_)
        | Instr::CodeRefI(_)
        | Instr::CallIndirect
        | Instr::RecUnfold
        | Instr::Ungroup
        | Instr::CapSplit
        | Instr::CapJoin
        | Instr::RefDemote
        | Instr::RefSplit
        | Instr::RefJoin
        | Instr::StructFree
        | Instr::StructGet(_)
        | Instr::StructSet(_)
        | Instr::StructSwap(_)
        | Instr::ArrayGet
        | Instr::ArraySet
        | Instr::ArrayFree
        | Instr::Trap
        | Instr::Free => e.clone(),
        Instr::BlockI(b, body) => Instr::BlockI(apply_block(b, op, d)?, apply_instrs(body, op, d)?),
        Instr::LoopI(a, body) => Instr::LoopI(apply_arrow(a, op, d)?, apply_instrs(body, op, d)?),
        Instr::IfI(b, t, f) => Instr::IfI(
            apply_block(b, op, d)?,
            apply_instrs(t, op, d)?,
            apply_instrs(f, op, d)?,
        ),
        Instr::GetLocal(i, q) => Instr::GetLocal(*i, apply_qual(*q, op, d)?),
        Instr::Qualify(q) => Instr::Qualify(apply_qual(*q, op, d)?),
        Instr::Inst(zs) => Instr::Inst(zs.iter().map(|z| apply_index(z, op, d)).collect::<R<_>>()?),
        Instr::Call(i, zs) => Instr::Call(
            *i,
            zs.iter().map(|z| apply_index(z, op, d)).collect::<R<_>>()?,
        ),
        Instr::RecFold(p) => Instr::RecFold(apply_pretype(p, op, d)?),
        Instr::MemPack(l) => Instr::MemPack(apply_loc(*l, op, d)?),
        Instr::MemUnpack(b, body) => {
            let b2 = apply_block(b, op, d)?;
            let mut d2 = d;
            d2.bump(Kind::Loc);
            Instr::MemUnpack(b2, apply_instrs(body, op, d2)?)
        }
        Instr::Group(i, q) => Instr::Group(*i, apply_qual(*q, op, d)?),
        Instr::StructMalloc(szs, q) => Instr::StructMalloc(
            szs.iter().map(|s| apply_size(s, op, d)).collect::<R<_>>()?,
            apply_qual(*q, op, d)?,
        ),
        Instr::VariantMalloc(i, ts, q) => Instr::VariantMalloc(
            *i,
            ts.iter().map(|t| apply_type(t, op, d)).collect::<R<_>>()?,
            apply_qual(*q, op, d)?,
        ),
        Instr::VariantCase(q, h, b, bodies) => Instr::VariantCase(
            apply_qual(*q, op, d)?,
            apply_heaptype(h, op, d)?,
            apply_block(b, op, d)?,
            bodies
                .iter()
                .map(|body| apply_instrs(body, op, d))
                .collect::<R<_>>()?,
        ),
        Instr::ArrayMalloc(q) => Instr::ArrayMalloc(apply_qual(*q, op, d)?),
        Instr::ExistPack(p, h, q) => Instr::ExistPack(
            apply_pretype(p, op, d)?,
            apply_heaptype(h, op, d)?,
            apply_qual(*q, op, d)?,
        ),
        Instr::ExistUnpack(q, h, b, body) => {
            let q2 = apply_qual(*q, op, d)?;
            let h2 = apply_heaptype(h, op, d)?;
            let b2 = apply_block(b, op, d)?;
            let mut d2 = d;
            d2.bump(Kind::Type);
            Instr::ExistUnpack(q2, h2, b2, apply_instrs(body, op, d2)?)
        }
        Instr::CallAdmin {
            inst,
            func,
            indices,
        } => Instr::CallAdmin {
            inst: *inst,
            func: *func,
            indices: indices
                .iter()
                .map(|z| apply_index(z, op, d))
                .collect::<R<_>>()?,
        },
        Instr::Label { arity, cont, body } => Instr::Label {
            arity: *arity,
            cont: apply_instrs(cont, op, d)?,
            body: apply_instrs(body, op, d)?,
        },
        Instr::LocalFrame {
            arity,
            inst,
            locals,
            body,
        } => Instr::LocalFrame {
            arity: *arity,
            inst: *inst,
            locals: locals
                .iter()
                .map(|(v, sz)| Ok((apply_value(v, op, d)?, apply_size(sz, op, d)?)))
                .collect::<R<_>>()?,
            body: apply_instrs(body, op, d)?,
        },
        Instr::MallocAdmin(sz, hv, q) => Instr::MallocAdmin(
            apply_size(sz, op, d)?,
            apply_heapvalue(hv, op, d)?,
            apply_qual(*q, op, d)?,
        ),
    })
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Shifts all free variables of `t` up by the per-kind amounts in `by`.
pub fn shift_type(t: &Type, by: Depth) -> Type {
    apply_type(t, &Op::ShiftUp(by), Depth::default()).expect("shift cannot fail")
}

/// Shifts all free variables of a pretype up.
pub fn shift_pretype(p: &Pretype, by: Depth) -> Pretype {
    apply_pretype(p, &Op::ShiftUp(by), Depth::default()).expect("shift cannot fail")
}

/// Shifts all free variables of a heap type up.
pub fn shift_heaptype(h: &HeapType, by: Depth) -> HeapType {
    apply_heaptype(h, &Op::ShiftUp(by), Depth::default()).expect("shift cannot fail")
}

/// Shifts all free variables of a size expression up.
pub fn shift_size(s: &Size, by: Depth) -> Size {
    apply_size(s, &Op::ShiftUp(by), Depth::default()).expect("shift cannot fail")
}

/// Shifts free variables of one kind down by 1.
///
/// # Errors
///
/// Fails with [`EscapeError`] if variable 0 of that kind occurs free —
/// i.e. the variable bound by the binder being exited *escapes*.
pub fn unshift_type(t: &Type, kind: Kind) -> Result<Type, EscapeError> {
    apply_type(t, &Op::ShiftDown(kind), Depth::default())
}

/// Applies a simultaneous substitution to a type.
pub fn subst_type(t: &Type, env: &SubstEnv) -> Type {
    apply_type(t, &Op::Subst(env), Depth::default()).expect("subst cannot fail")
}

/// Applies a simultaneous substitution to a pretype.
pub fn subst_pretype(p: &Pretype, env: &SubstEnv) -> Pretype {
    apply_pretype(p, &Op::Subst(env), Depth::default()).expect("subst cannot fail")
}

/// Applies a simultaneous substitution to a heap type.
pub fn subst_heaptype(h: &HeapType, env: &SubstEnv) -> HeapType {
    apply_heaptype(h, &Op::Subst(env), Depth::default()).expect("subst cannot fail")
}

/// Applies a simultaneous substitution to a size.
pub fn subst_size(s: &Size, env: &SubstEnv) -> Size {
    apply_size(s, &Op::Subst(env), Depth::default()).expect("subst cannot fail")
}

/// Applies a simultaneous substitution to a qualifier.
pub fn subst_qual(q: Qual, env: &SubstEnv) -> Qual {
    apply_qual(q, &Op::Subst(env), Depth::default()).expect("subst cannot fail")
}

/// Applies a simultaneous substitution to an arrow type.
pub fn subst_arrow(a: &ArrowType, env: &SubstEnv) -> ArrowType {
    apply_arrow(a, &Op::Subst(env), Depth::default()).expect("subst cannot fail")
}

/// Applies a simultaneous substitution to a function type.
pub fn subst_funtype(ft: &FunType, env: &SubstEnv) -> FunType {
    apply_funtype(ft, &Op::Subst(env), Depth::default()).expect("subst cannot fail")
}

/// Applies a simultaneous substitution to an instruction sequence (used by
/// `exist.unpack` / `mem.unpack` reduction and by `call` instantiation).
pub fn subst_instrs(es: &[Instr], env: &SubstEnv) -> Vec<Instr> {
    apply_instrs(es, &Op::Subst(env), Depth::default()).expect("subst cannot fail")
}

/// Instantiates a polymorphic function type with concrete indices,
/// producing the monomorphic arrow type `tf[z*/κ*]`.
///
/// # Errors
///
/// Returns a message when the index list does not match the telescope.
pub fn instantiate_arrow(ft: &FunType, indices: &[Index]) -> Result<ArrowType, String> {
    let env = SubstEnv::for_instantiation(&ft.quants, indices)?;
    Ok(subst_arrow(&ft.arrow, &env))
}

/// Unfolds an isorecursive pretype: `unfold(rec q ⪯ α. τ) = τ[rec…/α]`.
///
/// Returns `None` if `p` is not a `rec`.
pub fn unfold_rec(p: &Pretype) -> Option<Type> {
    match p {
        Pretype::Rec(_, body) => Some(subst_type(body, &SubstEnv::pretype(p.clone()))),
        _ => None,
    }
}

/// Abstracts every occurrence of location `target` in `t` into a fresh
/// innermost location binder: the result is the body of the existential
/// `∃ρ. …` produced by `mem.pack target` (paper §2.1).
///
/// All other free location variables are shifted up past the new binder.
pub fn generalize_loc(t: &Type, target: Loc) -> Type {
    apply_type(t, &Op::GeneralizeLoc(target), Depth::default()).expect("generalize cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::types::NumType;

    fn var_t(i: u32) -> Type {
        Pretype::Var(i).unr()
    }

    #[test]
    fn subst_replaces_var_zero() {
        let t = var_t(0);
        let out = subst_type(&t, &SubstEnv::pretype(Pretype::Num(NumType::I32)));
        assert_eq!(out, Type::num(NumType::I32));
    }

    #[test]
    fn subst_shifts_down_above() {
        let t = var_t(3);
        let out = subst_type(&t, &SubstEnv::pretype(Pretype::Unit));
        assert_eq!(out, var_t(2));
    }

    #[test]
    fn subst_under_rec_binder_skips_bound() {
        // rec unr ⪯ α. α0  — the bound var must not be replaced.
        let t = Pretype::Rec(Qual::Unr, Box::new(var_t(0))).unr();
        let out = subst_type(&t, &SubstEnv::pretype(Pretype::Unit));
        assert_eq!(out, t);
        // …but a var referring past the binder is.
        let t = Pretype::Rec(Qual::Unr, Box::new(var_t(1))).unr();
        let out = subst_type(&t, &SubstEnv::pretype(Pretype::Num(NumType::F32)));
        let expect = Pretype::Rec(Qual::Unr, Box::new(Pretype::Num(NumType::F32).unr())).unr();
        assert_eq!(out, expect);
    }

    #[test]
    fn subst_shifts_replacement_under_binders() {
        // ∃ρ. (ptr ρ1)^unr with [ρ0 ↦ ρ5] : the replacement var must shift
        // to ρ6 under the ∃ binder... wait, locs: replacement is Var(5);
        // under one loc binder it becomes Var(5 + 1).
        let t = Pretype::ExistsLoc(Box::new(Pretype::Ptr(Loc::Var(1)).unr())).unr();
        let out = subst_type(&t, &SubstEnv::loc(Loc::Var(5)));
        let expect = Pretype::ExistsLoc(Box::new(Pretype::Ptr(Loc::Var(6)).unr())).unr();
        assert_eq!(out, expect);
    }

    #[test]
    fn shift_up_respects_cutoff() {
        let t = Pretype::ExistsLoc(Box::new(
            Pretype::Prod(vec![
                Pretype::Ptr(Loc::Var(0)).unr(),
                Pretype::Ptr(Loc::Var(1)).unr(),
            ])
            .unr(),
        ))
        .unr();
        let out = shift_type(&t, Depth::one(Kind::Loc));
        let expect = Pretype::ExistsLoc(Box::new(
            Pretype::Prod(vec![
                Pretype::Ptr(Loc::Var(0)).unr(),
                Pretype::Ptr(Loc::Var(2)).unr(),
            ])
            .unr(),
        ))
        .unr();
        assert_eq!(out, expect);
    }

    #[test]
    fn unshift_detects_escape() {
        let t = Pretype::Ptr(Loc::Var(0)).unr();
        assert!(unshift_type(&t, Kind::Loc).is_err());
        let t = Pretype::Ptr(Loc::Var(1)).unr();
        assert_eq!(
            unshift_type(&t, Kind::Loc).unwrap(),
            Pretype::Ptr(Loc::Var(0)).unr()
        );
    }

    #[test]
    fn unfold_rec_substitutes_whole_rec() {
        // rec unr ⪯ α. (ref rw ρ0 (variant [unit^unr, α0^unr]))^unr — unfold
        // replaces α0 with the rec type itself.
        let rec = Pretype::Rec(
            Qual::Unr,
            Box::new(
                Pretype::Ref(
                    crate::syntax::MemPriv::ReadWrite,
                    Loc::Var(0),
                    HeapType::Variant(vec![Type::unit(), var_t(0)]),
                )
                .unr(),
            ),
        );
        let unfolded = unfold_rec(&rec).unwrap();
        match &*unfolded.pre {
            Pretype::Ref(_, _, HeapType::Variant(cases)) => {
                assert_eq!(*cases[1].pre, rec);
            }
            other => panic!("unexpected unfold: {other:?}"),
        }
        assert_eq!(unfold_rec(&Pretype::Unit), None);
    }

    #[test]
    fn instantiation_env_reverses_to_innermost_first() {
        let quants = vec![
            Quantifier::Loc,
            Quantifier::Size {
                lower: vec![],
                upper: vec![],
            },
            Quantifier::Loc,
        ];
        let indices = vec![
            Index::Loc(Loc::lin(1)),
            Index::Size(Size::Const(8)),
            Index::Loc(Loc::unr(2)),
        ];
        let env = SubstEnv::for_instantiation(&quants, &indices).unwrap();
        // Innermost loc binder (the second Loc quantifier) is de Bruijn 0.
        assert_eq!(env.locs, vec![Loc::unr(2), Loc::lin(1)]);
        assert_eq!(env.sizes, vec![Size::Const(8)]);
    }

    #[test]
    fn instantiation_arity_and_kind_checked() {
        let quants = vec![Quantifier::Loc];
        assert!(SubstEnv::for_instantiation(&quants, &[]).is_err());
        assert!(SubstEnv::for_instantiation(&quants, &[Index::Qual(Qual::Lin)]).is_err());
    }

    #[test]
    fn instantiate_arrow_substitutes_params() {
        // ∀ρ. [(ptr ρ0)^unr] → [] instantiated at ℓ=3^lin.
        let ft = FunType {
            quants: vec![Quantifier::Loc],
            arrow: ArrowType::new(vec![Pretype::Ptr(Loc::Var(0)).unr()], vec![]),
        };
        let arrow = instantiate_arrow(&ft, &[Index::Loc(Loc::lin(3))]).unwrap();
        assert_eq!(arrow.params, vec![Pretype::Ptr(Loc::lin(3)).unr()]);
    }

    #[test]
    fn telescope_binders_are_not_free() {
        // ∀σ. ∀σ' ≤ σ. [] → [] — substituting the fun type with any env
        // must leave its own (bound) telescope variables untouched.
        let ft = FunType {
            quants: vec![
                Quantifier::Size {
                    lower: vec![],
                    upper: vec![],
                },
                Quantifier::Size {
                    lower: vec![],
                    upper: vec![Size::Var(0)],
                },
            ],
            arrow: ArrowType::new(vec![], vec![]),
        };
        let ft2 = subst_funtype(&ft, &SubstEnv::size(Size::Const(64)));
        assert_eq!(ft2, ft);
        // A var referring *past* the binders crossed so far is free and is
        // substituted: at quants[1] one size binder has been crossed, so
        // outer free index 0 appears as Var(1).
        let ft = FunType {
            quants: ft.quants,
            arrow: ArrowType::new(vec![], vec![Pretype::Prod(vec![]).with_qual(Qual::Unr)]),
        };
        let mut q2 = ft.quants.clone();
        q2[1] = Quantifier::Size {
            lower: vec![],
            upper: vec![Size::Var(0), Size::Var(1)],
        };
        let ft_with_free = FunType {
            quants: q2,
            arrow: ft.arrow,
        };
        let ft3 = subst_funtype(&ft_with_free, &SubstEnv::size(Size::Const(64)));
        match &ft3.quants[1] {
            Quantifier::Size { upper, .. } => {
                assert_eq!(upper[0], Size::Var(0));
                assert_eq!(upper[1], Size::Const(64));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn generalize_abstracts_concrete_loc() {
        let t = Pretype::Prod(vec![
            Pretype::Ptr(Loc::lin(3)).unr(),
            Pretype::Ptr(Loc::lin(4)).unr(),
            Pretype::Ptr(Loc::Var(0)).unr(),
        ])
        .unr();
        let out = generalize_loc(&t, Loc::lin(3));
        let expect = Pretype::Prod(vec![
            Pretype::Ptr(Loc::Var(0)).unr(),
            Pretype::Ptr(Loc::lin(4)).unr(),
            Pretype::Ptr(Loc::Var(1)).unr(),
        ])
        .unr();
        assert_eq!(out, expect);
        // Round-trip: substituting the fresh binder restores the original.
        let back = subst_type(&out, &SubstEnv::loc(Loc::lin(3)));
        // Var(1) got shifted back down to Var(0).
        assert_eq!(back, t);
    }

    #[test]
    fn generalize_abstracts_loc_var_under_binder() {
        // ∃ρ. ptr ρ1 — generalizing outer var 0 must hit the occurrence at
        // adjusted index 1 and rebind it to the *new* binder outside the ∃.
        let t = Pretype::ExistsLoc(Box::new(Pretype::Ptr(Loc::Var(1)).unr())).unr();
        let out = generalize_loc(&t, Loc::Var(0));
        // Under (new binder, then ∃): new binder is index 1 from inside.
        let expect = Pretype::ExistsLoc(Box::new(Pretype::Ptr(Loc::Var(1)).unr())).unr();
        assert_eq!(out, expect);
        // And an unrelated var shifts.
        let t = Pretype::Ptr(Loc::Var(5)).unr();
        assert_eq!(
            generalize_loc(&t, Loc::Var(0)),
            Pretype::Ptr(Loc::Var(6)).unr()
        );
    }

    #[test]
    fn subst_instr_descends_into_blocks() {
        let body = vec![Instr::MemPack(Loc::Var(0))];
        let es = vec![Instr::BlockI(Block::default(), body)];
        let out = subst_instrs(&es, &SubstEnv::loc(Loc::lin(9)));
        match &out[0] {
            Instr::BlockI(_, b) => assert_eq!(b[0], Instr::MemPack(Loc::lin(9))),
            _ => unreachable!(),
        }
    }

    #[test]
    fn subst_instr_respects_mem_unpack_binder() {
        // Inside mem.unpack, loc var 0 is the freshly bound ρ — untouched;
        // var 1 refers outward and is substituted.
        let body = vec![Instr::MemPack(Loc::Var(0)), Instr::MemPack(Loc::Var(1))];
        let es = vec![Instr::MemUnpack(Block::default(), body)];
        let out = subst_instrs(&es, &SubstEnv::loc(Loc::unr(4)));
        match &out[0] {
            Instr::MemUnpack(_, b) => {
                assert_eq!(b[0], Instr::MemPack(Loc::Var(0)));
                assert_eq!(b[1], Instr::MemPack(Loc::unr(4)));
            }
            _ => unreachable!(),
        }
    }
}
