//! Typed module linking — the FFI-safety surface of RichWasm (paper §1).
//!
//! "Any potentially problematic interaction between modules will fail to
//! type check": this module provides [`Linker`], a convenience wrapper
//! that type checks every module and resolves imports with exact type
//! matching, surfacing violations as [`TypeError::LinkError`].

use crate::error::{RuntimeError, TypeError};
use crate::interp::{InvokeResult, Runtime};
use crate::syntax::{Module, Value};

/// A linker: accumulates modules into a shared runtime, enforcing typed
/// import/export matching.
///
/// ```
/// use richwasm::link::Linker;
/// use richwasm::syntax::*;
///
/// let mut linker = Linker::new();
/// let m = Module {
///     funcs: vec![Func::Defined {
///         exports: vec!["two".into()],
///         ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
///         locals: vec![],
///         body: vec![Instr::i32(2)],
///     }],
///     ..Module::default()
/// };
/// let idx = linker.add("m", m).unwrap();
/// let out = linker.invoke(idx, "two", vec![]).unwrap();
/// assert_eq!(out.values, vec![Value::i32(2)]);
/// ```
#[derive(Debug, Default)]
pub struct Linker {
    runtime: Runtime,
}

impl Linker {
    /// Creates an empty linker.
    pub fn new() -> Linker {
        Linker::default()
    }

    /// Type checks and instantiates a module under `name`.
    ///
    /// # Errors
    ///
    /// Propagates type errors from module checking and
    /// [`TypeError::LinkError`] for unresolved or ill-typed imports.
    pub fn add(&mut self, name: &str, module: Module) -> Result<u32, TypeError> {
        self.runtime.instantiate(name, module)
    }

    /// Invokes an export.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (traps, fuel exhaustion).
    pub fn invoke(
        &mut self,
        inst: u32,
        name: &str,
        args: Vec<Value>,
    ) -> Result<InvokeResult, RuntimeError> {
        self.runtime.invoke(inst, name, args)
    }

    /// The underlying runtime (store inspection, GC, configuration).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// Read access to the underlying runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }
}
