//! Entailment solvers for qualifier and size constraints.
//!
//! The typing rules of the paper are peppered with premises of the form
//! `q ⪯_{F.qual} q'` and `sz ≤_{F.size} sz'`: derivability of an ordering
//! under the bounded variables currently in scope. This module implements
//! both relations:
//!
//! * [`qual_leq`] — reachability through declared qualifier bounds, with
//!   `unr` as bottom and `lin` as top;
//! * [`size_leq`] — a sound syntactic procedure on size expressions:
//!   normalise to `constant + variable multiset`, cancel common variables,
//!   then discharge remaining left-hand variables through their declared
//!   upper bounds (right-hand variables are dropped, which is sound since
//!   sizes are non-negative).
//!
//! Neither relation is complete (the paper's are not either — they are
//! syntactic judgements), but both are *sound*: a `true` answer is always
//! justified.

use std::collections::HashSet;

use crate::env::KindCtx;
use crate::syntax::{Qual, Size};

/// Maximum recursion depth while chasing variable bounds; generous for any
/// realistic context, and guards against cyclic bounds.
const FUEL: u32 = 64;

/// Decides `q1 ⪯ q2` under the qualifier bounds in `ctx`.
///
/// ```
/// use richwasm::env::KindCtx;
/// use richwasm::solver::qual_leq;
/// use richwasm::syntax::Qual;
/// let ctx = KindCtx::new();
/// assert!(qual_leq(&ctx, Qual::Unr, Qual::Lin));
/// assert!(!qual_leq(&ctx, Qual::Lin, Qual::Unr));
/// ```
pub fn qual_leq(ctx: &KindCtx, q1: Qual, q2: Qual) -> bool {
    let mut seen = HashSet::new();
    qual_leq_rec(ctx, q1, q2, &mut seen, FUEL)
}

fn qual_leq_rec(
    ctx: &KindCtx,
    q1: Qual,
    q2: Qual,
    seen: &mut HashSet<(Qual, Qual)>,
    fuel: u32,
) -> bool {
    if fuel == 0 || !seen.insert((q1, q2)) {
        return false;
    }
    match (q1, q2) {
        (Qual::Unr, _) | (_, Qual::Lin) => true,
        (Qual::Lin, Qual::Unr) => false,
        (Qual::Var(i), Qual::Var(j)) if i == j => true,
        (Qual::Var(i), q2) => {
            let Some(b) = ctx.qual_bounds(i) else {
                return false;
            };
            b.upper
                .iter()
                .any(|u| qual_leq_rec(ctx, *u, q2, seen, fuel - 1))
        }
        (q1, Qual::Var(j)) => {
            let Some(b) = ctx.qual_bounds(j) else {
                return false;
            };
            b.lower
                .iter()
                .any(|l| qual_leq_rec(ctx, q1, *l, seen, fuel - 1))
        }
    }
}

/// Decides `q1 = q2` as mutual `⪯`.
pub fn qual_eq(ctx: &KindCtx, q1: Qual, q2: Qual) -> bool {
    qual_leq(ctx, q1, q2) && qual_leq(ctx, q2, q1)
}

/// Returns `true` when values of qualifier `q` may be implicitly dropped
/// or duplicated — i.e. `q ⪯ unr`.
pub fn qual_is_unrestricted(ctx: &KindCtx, q: Qual) -> bool {
    qual_leq(ctx, q, Qual::Unr)
}

/// A normalised size: constant part plus a multiset of size variables.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Norm {
    konst: u64,
    vars: Vec<u32>, // sorted
}

impl Norm {
    fn of(s: &Size) -> Norm {
        let (konst, vars) = s.normalize();
        Norm { konst, vars }
    }

    /// Removes variables common to both sides (multiset cancellation).
    fn cancel(mut self, mut other: Norm) -> (Norm, Norm) {
        let mut l = Vec::new();
        let mut r = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.vars.len() && j < other.vars.len() {
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    l.push(self.vars[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    r.push(other.vars[j]);
                    j += 1;
                }
            }
        }
        l.extend_from_slice(&self.vars[i..]);
        r.extend_from_slice(&other.vars[j..]);
        self.vars = l;
        other.vars = r;
        (self, other)
    }

    fn plus(&self, extra: &Norm) -> Norm {
        let mut vars = self.vars.clone();
        vars.extend_from_slice(&extra.vars);
        vars.sort_unstable();
        Norm {
            konst: self.konst + extra.konst,
            vars,
        }
    }

    fn without_first_var(&self) -> (u32, Norm) {
        let v = self.vars[0];
        let rest = Norm {
            konst: self.konst,
            vars: self.vars[1..].to_vec(),
        };
        (v, rest)
    }
}

/// Decides `s1 ≤ s2` under the size bounds in `ctx`.
///
/// ```
/// use richwasm::env::{KindCtx, SizeBounds};
/// use richwasm::solver::size_leq;
/// use richwasm::syntax::Size;
/// let mut ctx = KindCtx::new();
/// // σ0 ≤ 64
/// ctx.push_size(SizeBounds { lower: vec![], upper: vec![Size::Const(64)] });
/// assert!(size_leq(&ctx, &Size::Var(0), &Size::Const(64)));
/// assert!(size_leq(&ctx, &(Size::Var(0) + Size::Const(8)), &Size::Const(72)));
/// assert!(!size_leq(&ctx, &Size::Const(65), &Size::Var(0)));
/// ```
pub fn size_leq(ctx: &KindCtx, s1: &Size, s2: &Size) -> bool {
    norm_leq(ctx, Norm::of(s1), Norm::of(s2), FUEL)
}

fn norm_leq(ctx: &KindCtx, l: Norm, r: Norm, fuel: u32) -> bool {
    if fuel == 0 {
        return false;
    }
    let (l, r) = l.cancel(r);
    // Right-hand variables are ≥ 0, so comparing constants while ignoring
    // them is sound.
    if l.vars.is_empty() && l.konst <= r.konst {
        return true;
    }
    // Discharge a left variable through one of its declared upper bounds.
    if !l.vars.is_empty() {
        let (v, rest) = l.without_first_var();
        if let Some(b) = ctx.size_bounds(v) {
            if b.upper
                .iter()
                .any(|u| norm_leq(ctx, rest.plus(&Norm::of(u)), r.clone(), fuel - 1))
            {
                return true;
            }
        }
    }
    // A right-hand variable's declared lower bound may close the gap
    // (e.g. σ1 + σ2 ≤ σ3 when σ3 was bound with lower bound σ1 + σ2).
    if !r.vars.is_empty() {
        let (v, rest) = r.without_first_var();
        if let Some(b) = ctx.size_bounds(v) {
            if b.lower
                .iter()
                .any(|lb| norm_leq(ctx, l.clone(), rest.plus(&Norm::of(lb)), fuel - 1))
            {
                return true;
            }
        }
    }
    false
}

/// Decides `s1 = s2` as mutual `≤`.
pub fn size_eq(ctx: &KindCtx, s1: &Size, s2: &Size) -> bool {
    size_leq(ctx, s1, s2) && size_leq(ctx, s2, s1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{QualBounds, SizeBounds};

    #[test]
    fn concrete_qual_order() {
        let ctx = KindCtx::new();
        assert!(qual_leq(&ctx, Qual::Unr, Qual::Unr));
        assert!(qual_leq(&ctx, Qual::Unr, Qual::Lin));
        assert!(qual_leq(&ctx, Qual::Lin, Qual::Lin));
        assert!(!qual_leq(&ctx, Qual::Lin, Qual::Unr));
    }

    #[test]
    fn qual_var_reflexive() {
        let mut ctx = KindCtx::new();
        ctx.push_qual(QualBounds::default());
        assert!(qual_leq(&ctx, Qual::Var(0), Qual::Var(0)));
        assert!(qual_leq(&ctx, Qual::Var(0), Qual::Lin));
        assert!(qual_leq(&ctx, Qual::Unr, Qual::Var(0)));
        // With no bounds, a var is not comparable to unr from above.
        assert!(!qual_leq(&ctx, Qual::Var(0), Qual::Unr));
    }

    #[test]
    fn qual_var_bounds_chain() {
        let mut ctx = KindCtx::new();
        // δ1 ⪯ unr (upper bound unr)
        ctx.push_qual(QualBounds {
            lower: vec![],
            upper: vec![Qual::Unr],
        });
        // δ0 ⪯ δ1 — written at depth 1 where the previous var has index 0.
        ctx.push_qual(QualBounds {
            lower: vec![],
            upper: vec![Qual::Var(0)],
        });
        // Transitively δ0 ⪯ unr.
        assert!(qual_leq(&ctx, Qual::Var(0), Qual::Unr));
        assert!(qual_is_unrestricted(&ctx, Qual::Var(0)));
    }

    #[test]
    fn qual_lower_bounds() {
        let mut ctx = KindCtx::new();
        // lin ⪯ δ0
        ctx.push_qual(QualBounds {
            lower: vec![Qual::Lin],
            upper: vec![],
        });
        assert!(qual_leq(&ctx, Qual::Lin, Qual::Var(0)));
        assert!(qual_eq(&ctx, Qual::Var(0), Qual::Lin));
    }

    #[test]
    fn size_constants() {
        let ctx = KindCtx::new();
        assert!(size_leq(&ctx, &Size::Const(32), &Size::Const(32)));
        assert!(size_leq(&ctx, &Size::Const(32), &Size::Const(64)));
        assert!(!size_leq(&ctx, &Size::Const(64), &Size::Const(32)));
    }

    #[test]
    fn size_vars_cancel() {
        let mut ctx = KindCtx::new();
        ctx.push_size(SizeBounds::default());
        let v = Size::Var(0);
        assert!(size_leq(&ctx, &v, &v));
        assert!(size_leq(
            &ctx,
            &(v.clone() + Size::Const(8)),
            &(v.clone() + Size::Const(16))
        ));
        assert!(!size_leq(
            &ctx,
            &(v.clone() + Size::Const(16)),
            &(v + Size::Const(8))
        ));
    }

    #[test]
    fn size_right_vars_dropped_soundly() {
        let mut ctx = KindCtx::new();
        ctx.push_size(SizeBounds::default());
        // 8 ≤ 16 + σ0 holds because σ0 ≥ 0.
        assert!(size_leq(
            &ctx,
            &Size::Const(8),
            &(Size::Const(16) + Size::Var(0))
        ));
        // 16 ≤ 8 + σ0 is not derivable without a lower bound on σ0.
        assert!(!size_leq(
            &ctx,
            &Size::Const(16),
            &(Size::Const(8) + Size::Var(0))
        ));
    }

    #[test]
    fn size_upper_bound_chain() {
        let mut ctx = KindCtx::new();
        // σ1 ≤ 32
        ctx.push_size(SizeBounds {
            lower: vec![],
            upper: vec![Size::Const(32)],
        });
        // σ0 ≤ σ1 (written when previous var had index 0)
        ctx.push_size(SizeBounds {
            lower: vec![],
            upper: vec![Size::Var(0)],
        });
        assert!(size_leq(&ctx, &Size::Var(0), &Size::Const(32)));
        assert!(size_leq(
            &ctx,
            &(Size::Var(0) + Size::Var(1)),
            &Size::Const(64)
        ));
        assert!(!size_leq(
            &ctx,
            &(Size::Var(0) + Size::Var(1)),
            &Size::Const(63)
        ));
    }

    #[test]
    fn paper_example_sum_constraint() {
        // "if a function takes arguments of sizes σ1 and σ2 and places a
        // tuple of both into a local of size σ3, it must be known that
        // σ1 + σ2 ≤ σ3" — model σ3's lower bound as σ1 + σ2.
        let mut ctx = KindCtx::new();
        ctx.push_size(SizeBounds::default()); // σ (index 2 later)
        ctx.push_size(SizeBounds::default()); // σ (index 1 later)
                                              // σ3 with lower bound Var(1) + Var(0) (the two previous binders).
        ctx.push_size(SizeBounds {
            lower: vec![Size::Var(1) + Size::Var(0)],
            upper: vec![],
        });
        // Now: Var(2) + Var(1) ≤ Var(0)?
        assert!(size_leq(
            &ctx,
            &(Size::Var(2) + Size::Var(1)),
            &Size::Var(0)
        ));
    }

    #[test]
    fn size_eq_is_mutual_leq() {
        let ctx = KindCtx::new();
        assert!(size_eq(
            &ctx,
            &(Size::Const(8) + Size::Const(8)),
            &Size::Const(16)
        ));
        assert!(!size_eq(&ctx, &Size::Const(8), &Size::Const(16)));
    }
}
