//! The size function `‖τ‖` on types and values (paper §2.1, §4).
//!
//! RichWasm tracks the size (in **bits**) of every memory slot so strong
//! updates can be checked to fit. Sizes of types may mention size
//! variables; sizes of runtime values are always concrete.
//!
//! Fixed representation sizes (consistent with the §6 lowering):
//!
//! | type | bits |
//! |---|---|
//! | `unit`, `cap`, `own` | 0 (erased) |
//! | `i32/ui32/f32` | 32 |
//! | `i64/ui64/f64` | 64 |
//! | `ref`, `ptr` | 32 (one Wasm pointer) |
//! | `coderef` | 64 (instance + table index) |
//! | tuples | sum of components |

use crate::env::KindCtx;
use crate::error::TypeError;
use crate::syntax::{HeapValue, Pretype, Size, Type, Value};

/// Bits occupied by a lowered `ref`/`ptr`.
pub const PTR_BITS: u64 = 32;
/// Bits occupied by a lowered `coderef`.
pub const CODEREF_BITS: u64 = 64;
/// Bits of the tag that prefixes a variant's payload (Fig. 4:
/// `malloc (32 + size(v))`).
pub const VARIANT_TAG_BITS: u64 = 32;
/// Bits of the witness header of an existential package (Fig. 4:
/// `malloc (64 + size(v))`).
pub const PACK_HEADER_BITS: u64 = 64;

/// Computes `‖τ‖` under the kind context `ctx`.
///
/// # Errors
///
/// Fails if the type mentions an unbound pretype variable or an unguarded
/// recursive-type variable (one not protected by a pointer indirection,
/// which well-formed `rec` types never contain).
pub fn size_of_type(ctx: &KindCtx, t: &Type) -> Result<Size, TypeError> {
    size_of_pretype_rec(ctx, &t.pre, 0)
}

/// Computes the size of a pretype under the kind context `ctx`.
pub fn size_of_pretype(ctx: &KindCtx, p: &Pretype) -> Result<Size, TypeError> {
    size_of_pretype_rec(ctx, p, 0)
}

/// `rec_depth` counts `rec` binders crossed structurally: their variables
/// have no size of their own and must be guarded by an indirection.
fn size_of_pretype_rec(ctx: &KindCtx, p: &Pretype, rec_depth: u32) -> Result<Size, TypeError> {
    Ok(match p {
        Pretype::Unit | Pretype::Cap(..) | Pretype::Own(_) => Size::Const(0),
        Pretype::Num(nt) => Size::Const(nt.bits()),
        Pretype::Prod(ts) => Size::sum(
            ts.iter()
                .map(|t| size_of_pretype_rec(ctx, &t.pre, rec_depth))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Pretype::Ref(..) | Pretype::Ptr(_) => Size::Const(PTR_BITS),
        Pretype::CodeRef(_) => Size::Const(CODEREF_BITS),
        Pretype::Rec(_, body) => size_of_pretype_rec(ctx, &body.pre, rec_depth + 1)?,
        Pretype::ExistsLoc(body) => size_of_pretype_rec(ctx, &body.pre, rec_depth)?,
        Pretype::Var(i) => {
            if *i < rec_depth {
                return Err(TypeError::IllFormed {
                    reason: format!("unguarded recursive type variable α{i}"),
                });
            }
            let bound = ctx.type_bound(i - rec_depth).ok_or(TypeError::UnboundVar {
                kind: "pretype",
                index: *i,
            })?;
            // rec binders bind no size variables, so the bound needs no
            // further shifting.
            bound.size
        }
    })
}

/// Computes `‖v‖` — the concrete size of a closed runtime value.
pub fn size_of_value(v: &Value) -> u64 {
    match v {
        Value::Unit | Value::Cap | Value::Own => 0,
        Value::Num(nt, _) => nt.bits(),
        Value::Prod(vs) => vs.iter().map(size_of_value).sum(),
        Value::Ref(_) | Value::Ptr(_) => PTR_BITS,
        Value::Fold(v) | Value::MemPack(_, v) => size_of_value(v),
        Value::CodeRef { .. } => CODEREF_BITS,
    }
}

/// Computes the allocation size of a heap value, matching the reduction
/// rules of Fig. 4 (`struct.malloc`, `variant.malloc`, `array.malloc`,
/// `exist.pack`).
pub fn size_of_heap_value(hv: &HeapValue) -> u64 {
    match hv {
        HeapValue::Variant(_, v) => VARIANT_TAG_BITS + size_of_value(v),
        HeapValue::Struct(vs) => vs.iter().map(size_of_value).sum(),
        HeapValue::Array(vs) => vs.iter().map(size_of_value).sum(),
        HeapValue::Pack(_, v, _) => PACK_HEADER_BITS + size_of_value(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TypeBound;
    use crate::syntax::{HeapType, Loc, MemPriv, NumType, Qual};

    #[test]
    fn base_sizes() {
        let ctx = KindCtx::new();
        assert_eq!(size_of_type(&ctx, &Type::unit()).unwrap(), Size::Const(0));
        assert_eq!(
            size_of_type(&ctx, &Type::num(NumType::I32)).unwrap(),
            Size::Const(32)
        );
        assert_eq!(
            size_of_type(&ctx, &Type::num(NumType::F64)).unwrap(),
            Size::Const(64)
        );
    }

    #[test]
    fn tuple_sums_components() {
        let ctx = KindCtx::new();
        let t = Pretype::Prod(vec![Type::num(NumType::I32), Type::num(NumType::I64)]).unr();
        assert_eq!(size_of_type(&ctx, &t).unwrap(), Size::Const(96));
    }

    #[test]
    fn refs_are_pointer_sized_regardless_of_heap_type() {
        let ctx = KindCtx::new();
        let t = Pretype::Ref(
            MemPriv::ReadWrite,
            Loc::lin(0),
            HeapType::Array(Type::num(NumType::F64)),
        )
        .lin();
        assert_eq!(size_of_type(&ctx, &t).unwrap(), Size::Const(PTR_BITS));
    }

    #[test]
    fn caps_and_owns_are_erased() {
        let ctx = KindCtx::new();
        let t = Pretype::Cap(MemPriv::Read, Loc::lin(0), HeapType::Array(Type::unit())).lin();
        assert_eq!(size_of_type(&ctx, &t).unwrap(), Size::Const(0));
        assert_eq!(
            size_of_type(&ctx, &Pretype::Own(Loc::lin(0)).lin()).unwrap(),
            Size::Const(0)
        );
    }

    #[test]
    fn type_var_uses_declared_bound() {
        let mut ctx = KindCtx::new();
        ctx.push_type(TypeBound {
            lower_qual: Qual::Unr,
            size: Size::Const(64),
            may_contain_caps: false,
        });
        assert_eq!(
            size_of_type(&ctx, &Pretype::Var(0).unr()).unwrap(),
            Size::Const(64)
        );
        assert!(size_of_type(&ctx, &Pretype::Var(1).unr()).is_err());
    }

    #[test]
    fn guarded_rec_sizes_through_indirection() {
        let ctx = KindCtx::new();
        // rec α. (ref rw ℓ (variant [unit, α])) — α is under the ref, so the
        // rec type is pointer-sized.
        let t = Pretype::Rec(
            Qual::Unr,
            Box::new(
                Pretype::Ref(
                    MemPriv::ReadWrite,
                    Loc::lin(0),
                    HeapType::Variant(vec![Type::unit(), Pretype::Var(0).unr()]),
                )
                .unr(),
            ),
        )
        .unr();
        assert_eq!(size_of_type(&ctx, &t).unwrap(), Size::Const(PTR_BITS));
    }

    #[test]
    fn unguarded_rec_var_rejected() {
        let ctx = KindCtx::new();
        // rec α. (α, i32) — bare recursive occurrence has no size.
        let t = Pretype::Rec(
            Qual::Unr,
            Box::new(Pretype::Prod(vec![Pretype::Var(0).unr(), Type::num(NumType::I32)]).unr()),
        )
        .unr();
        assert!(size_of_type(&ctx, &t).is_err());
    }

    #[test]
    fn value_sizes_match_reduction_rules() {
        assert_eq!(size_of_value(&Value::i32(1)), 32);
        assert_eq!(
            size_of_value(&Value::Prod(vec![Value::i32(1), Value::f64(0.0)])),
            96
        );
        let hv = HeapValue::Variant(0, Box::new(Value::i32(1)));
        assert_eq!(size_of_heap_value(&hv), 64);
        let hv = HeapValue::Pack(
            Pretype::Unit,
            Box::new(Value::Unit),
            HeapType::Array(Type::unit()),
        );
        assert_eq!(size_of_heap_value(&hv), PACK_HEADER_BITS);
        let hv = HeapValue::Array(vec![Value::i32(0); 4]);
        assert_eq!(size_of_heap_value(&hv), 128);
    }
}
