//! Host functions: Rust closures callable from RichWasm guests.
//!
//! The paper's interoperability story (§1) is guest↔guest: imports
//! resolve against other RichWasm modules' exports. A real embedder also
//! needs the *host* direction — a Rust function exposed to guests as an
//! importable export. Host functions are registered through
//! [`Runtime::register_host_module`](crate::interp::Runtime::register_host_module),
//! which makes them look exactly like a regular module instance to the
//! typed linker (so the FFI type check still guards the boundary), while
//! the reduction relation intercepts calls to them and runs the closure
//! instead of a RichWasm body.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::syntax::{FunType, Value};

/// The Rust side of a host function: takes the (already type-checked)
/// argument values and returns the result values, or a message that
/// becomes the guest-visible trap reason.
///
/// `Fn` (not `FnMut`) so one closure can back several instances and both
/// execution backends at once; stateful hosts use interior mutability.
pub type HostImpl = Arc<dyn Fn(&[Value]) -> Result<Vec<Value>, String> + Send + Sync>;

/// One registered host function: its declared RichWasm type (what guest
/// imports link against) and the closure implementing it.
#[derive(Clone)]
pub struct HostFunc {
    /// The declared (monomorphic) function type.
    pub ty: FunType,
    /// The implementation.
    pub imp: HostImpl,
}

impl fmt::Debug for HostFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostFunc {{ ty: {} }}", self.ty)
    }
}

/// The runtime's table of host functions, keyed by the (instance index,
/// function index) pair a [`Closure`](crate::interp::Closure) carries —
/// the reduction relation consults it on every `call` before looking for
/// a defined body, so host targets work through direct calls, resolved
/// imports, and `call_indirect` alike.
#[derive(Default, Clone)]
pub struct HostFuncs {
    by_target: HashMap<(u32, u32), HostFunc>,
}

impl HostFuncs {
    /// Looks up the host function behind `(inst, func)`, if any.
    pub fn get(&self, inst: u32, func: u32) -> Option<&HostFunc> {
        if self.by_target.is_empty() {
            // Fast path: guest-only programs pay one branch, no hashing.
            return None;
        }
        self.by_target.get(&(inst, func))
    }

    /// Registers `hf` as the implementation of `(inst, func)`.
    pub fn insert(&mut self, inst: u32, func: u32, hf: HostFunc) {
        self.by_target.insert((inst, func), hf);
    }

    /// Number of registered host functions.
    pub fn len(&self) -> usize {
        self.by_target.len()
    }

    /// True when no host function is registered.
    pub fn is_empty(&self) -> bool {
        self.by_target.is_empty()
    }
}

impl fmt::Debug for HostFuncs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostFuncs({} registered)", self.by_target.len())
    }
}
