//! The garbage collector for the unrestricted memory (paper §3).
//!
//! The reduction relation includes a rule that may fire at any point:
//! unrestricted locations unreachable from the configuration's roots —
//! the locations appearing in the instructions, the local values, and the
//! module instances — are collected. Linear memory that was *owned* by
//! collected unrestricted cells (a linear reference stored in GC'd
//! memory) is finalized, mirroring the paper's finalizer story.

use std::collections::{BTreeSet, VecDeque};

use crate::interp::step::Config;
use crate::interp::store::Store;
use crate::syntax::{ConcreteLoc, HeapValue, Instr, Value};

/// Collects the locations mentioned by a value.
pub fn locs_in_value(v: &Value, out: &mut Vec<ConcreteLoc>) {
    match v {
        Value::Unit | Value::Num(..) | Value::Cap | Value::Own | Value::CodeRef { .. } => {}
        Value::Ref(l) | Value::Ptr(l) => out.push(*l),
        Value::Prod(vs) => {
            for v in vs {
                locs_in_value(v, out);
            }
        }
        Value::Fold(v) => locs_in_value(v, out),
        Value::MemPack(l, v) => {
            out.push(*l);
            locs_in_value(v, out);
        }
    }
}

fn locs_in_heap_value(hv: &HeapValue, out: &mut Vec<ConcreteLoc>) {
    for v in hv.values() {
        locs_in_value(v, out);
    }
}

/// Collects the locations mentioned anywhere in an instruction sequence,
/// descending into nested bodies and administrative frames.
pub fn locs_in_instrs(es: &[Instr], out: &mut Vec<ConcreteLoc>) {
    for e in es {
        match e {
            Instr::Val(v) => locs_in_value(v, out),
            Instr::BlockI(_, body)
            | Instr::LoopI(_, body)
            | Instr::MemUnpack(_, body)
            | Instr::ExistUnpack(_, _, _, body) => locs_in_instrs(body, out),
            Instr::IfI(_, a, b) => {
                locs_in_instrs(a, out);
                locs_in_instrs(b, out);
            }
            Instr::VariantCase(_, _, _, bodies) => {
                for b in bodies {
                    locs_in_instrs(b, out);
                }
            }
            Instr::Label { cont, body, .. } => {
                locs_in_instrs(cont, out);
                locs_in_instrs(body, out);
            }
            Instr::LocalFrame { locals, body, .. } => {
                for (v, _) in locals {
                    locs_in_value(v, out);
                }
                locs_in_instrs(body, out);
            }
            Instr::MallocAdmin(_, hv, _) => locs_in_heap_value(hv, out),
            _ => {}
        }
    }
}

/// Statistics of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Unrestricted cells collected.
    pub collected_unr: usize,
    /// Linear cells finalized (owned by collected unrestricted memory).
    pub finalized_lin: usize,
}

/// Runs a collection. Roots are the locations in `config` (if any) plus
/// every instance's globals (paper §3: "the roots of collection are the
/// unrestricted locations that appear in reference values in the
/// instructions, local variables, or the module instances").
pub fn collect(store: &mut Store, config: Option<&Config>) -> GcStats {
    let mut roots = Vec::new();
    if let Some(cfg) = config {
        locs_in_instrs(&cfg.instrs, &mut roots);
        for (v, _) in &cfg.locals {
            locs_in_value(v, &mut roots);
        }
    }
    for inst in &store.insts {
        for g in &inst.globals {
            locs_in_value(g, &mut roots);
        }
    }

    // Mark.
    let mut marked: BTreeSet<ConcreteLoc> = BTreeSet::new();
    let mut queue: VecDeque<ConcreteLoc> = roots.into_iter().collect();
    while let Some(l) = queue.pop_front() {
        if !marked.insert(l) {
            continue;
        }
        if let Some(cell) = store.mem.get(l) {
            let mut next = Vec::new();
            locs_in_heap_value(&cell.hv, &mut next);
            queue.extend(next);
        }
    }

    // Sweep the unrestricted memory.
    let dead_unr: Vec<u32> = store
        .mem
        .unr
        .keys()
        .copied()
        .filter(|i| !marked.contains(&ConcreteLoc::unr(*i)))
        .collect();
    // Linear cells now unreachable were owned by the collected memory (in
    // a well-typed program the only way a linear cell loses its last
    // reference is for its owning unrestricted cell to die): finalize.
    let dead_lin: Vec<u32> = store
        .mem
        .lin
        .keys()
        .copied()
        .filter(|i| !marked.contains(&ConcreteLoc::lin(*i)))
        .collect();
    let stats = GcStats {
        collected_unr: dead_unr.len(),
        finalized_lin: dead_lin.len(),
    };
    for i in dead_unr {
        store.mem.unr.remove(&i);
        store.mem.collected += 1;
    }
    for i in dead_lin {
        store.mem.lin.remove(&i);
        store.mem.finalized += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Mem;

    #[test]
    fn unreachable_unr_cells_collected() {
        let mut store = Store::default();
        let a = store
            .mem
            .alloc(Mem::Unr, HeapValue::Struct(vec![Value::i32(1)]), 32);
        let _b = store
            .mem
            .alloc(Mem::Unr, HeapValue::Struct(vec![Value::i32(2)]), 32);
        // Only `a` is rooted.
        let cfg = Config {
            instrs: vec![Instr::Val(Value::Ref(a))],
            ..Config::default()
        };
        let stats = collect(&mut store, Some(&cfg));
        assert_eq!(stats.collected_unr, 1);
        assert!(store.mem.get(a).is_some());
        assert_eq!(store.mem.unr.len(), 1);
    }

    #[test]
    fn reachability_is_transitive_through_the_heap() {
        let mut store = Store::default();
        let inner = store
            .mem
            .alloc(Mem::Unr, HeapValue::Struct(vec![Value::i32(7)]), 32);
        let outer = store
            .mem
            .alloc(Mem::Unr, HeapValue::Struct(vec![Value::Ref(inner)]), 32);
        let cfg = Config {
            instrs: vec![Instr::Val(Value::Ref(outer))],
            ..Config::default()
        };
        let stats = collect(&mut store, Some(&cfg));
        assert_eq!(stats.collected_unr, 0);
        assert_eq!(store.mem.unr.len(), 2);
    }

    #[test]
    fn linear_memory_owned_by_dead_unr_cell_is_finalized() {
        // The §3 scenario: a linear reference stored in GC'd memory whose
        // only reference dies — the collector owns and finalizes the
        // linear cell.
        let mut store = Store::default();
        let lin = store
            .mem
            .alloc(Mem::Lin, HeapValue::Struct(vec![Value::i32(1)]), 32);
        let _unr = store
            .mem
            .alloc(Mem::Unr, HeapValue::Struct(vec![Value::Ref(lin)]), 32);
        // Nothing roots the unr cell.
        let stats = collect(&mut store, None);
        assert_eq!(stats.collected_unr, 1);
        assert_eq!(stats.finalized_lin, 1);
        assert_eq!(store.mem.live(), 0);
        assert_eq!(store.mem.finalized, 1);
    }

    #[test]
    fn rooted_linear_memory_survives() {
        let mut store = Store::default();
        let lin = store
            .mem
            .alloc(Mem::Lin, HeapValue::Struct(vec![Value::i32(1)]), 32);
        let cfg = Config {
            locals: vec![(Value::Ref(lin), crate::syntax::Size::Const(32))],
            ..Config::default()
        };
        let stats = collect(&mut store, Some(&cfg));
        assert_eq!(stats.finalized_lin, 0);
        assert!(store.mem.get(lin).is_some());
    }

    #[test]
    fn globals_are_roots() {
        let mut store = Store::default();
        let l = store.mem.alloc(Mem::Unr, HeapValue::Struct(vec![]), 0);
        store.insts.push(crate::interp::store::Instance {
            globals: vec![Value::Ref(l)],
            ..Default::default()
        });
        let stats = collect(&mut store, None);
        assert_eq!(stats.collected_unr, 0);
    }
}
