//! The RichWasm small-step interpreter (paper §3, Fig. 4).
//!
//! The reduction relation `s; v*; sz*; e* ↩_j s'; v'*; e'*` is implemented
//! faithfully: administrative instructions (`trap`, `call cl z*`,
//! `label`, `local`, `malloc`, `free`) arise during reduction, evaluation
//! descends through local contexts `L^k`, and the garbage-collection rule
//! for the unrestricted memory is exposed via [`Runtime::gc`] (and an
//! optional automatic trigger).
//!
//! * [`store`] — the store `s`: module instances plus the two memories;
//! * [`num`] — numeric operator semantics (Wasm 1.0 semantics);
//! * [`step`] — the reduction relation itself;
//! * [`gc`] — the collector (roots: instructions, locals, globals);
//! * [`runtime`] — instantiation, typed import resolution, and the
//!   fuel-bounded driver.

pub mod gc;
pub mod host;
pub mod num;
pub mod runtime;
pub mod step;
pub mod store;

pub use host::{HostFunc, HostFuncs, HostImpl};
pub use runtime::{InvokeResult, Runtime, RuntimeConfig};
pub use step::{step_config, Config, Outcome};
pub use store::{Cell, Closure, Instance, Memory, Store};
