//! Module instantiation, typed import resolution, and the fuel-bounded
//! execution driver.
//!
//! [`Runtime::instantiate`] is the cross-language safety choke point of
//! the paper (§1): every module is type checked, and every import must
//! *exactly* match the type of the export it binds to — a mismatch (e.g.
//! an ML module exporting an unrestricted-reference function that an L3
//! module imports at a linear-reference type) is a [`TypeError::LinkError`].

use std::collections::HashMap;

use crate::error::{RuntimeError, TypeError};
use crate::interp::gc::{collect, GcStats};
use crate::interp::host::{HostFunc, HostFuncs, HostImpl};
use crate::interp::step::{step_config, Config, Outcome};
use crate::interp::store::{Closure, Instance, Store};
use crate::syntax::{FunType, Func, GlobalKind, Index, Instr, Module, Value};
use crate::typecheck::check_module;

/// Execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Maximum reduction steps per invocation.
    pub fuel: u64,
    /// Run a collection every `n` steps (`None` = only on [`Runtime::gc`]).
    pub auto_gc_every: Option<u64>,
    /// Re-type-check every module at instantiation (on by default; the
    /// paper's workflow always checks compiled modules).
    pub check_modules: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            fuel: 10_000_000,
            auto_gc_every: None,
            check_modules: true,
        }
    }
}

/// The result of a successful invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvokeResult {
    /// The values left on the stack.
    pub values: Vec<Value>,
    /// Reduction steps taken.
    pub steps: u64,
}

/// A RichWasm runtime: a store, the instantiated module definitions, and
/// a name registry for import resolution.
#[derive(Debug, Default)]
pub struct Runtime {
    /// The store (instances + memories).
    pub store: Store,
    /// Module definitions, aligned with `store.insts`.
    pub modules: Vec<Module>,
    names: HashMap<String, u32>,
    /// Execution configuration.
    pub config: RuntimeConfig,
    /// Host functions, keyed by the closures pointing at them (see
    /// [`Runtime::register_host_module`]).
    pub hosts: HostFuncs,
}

// Concurrency contract (enforced at compile time, relied on by the
// embedder's `InstancePool`): a `Runtime` owns its store outright and can
// be *moved* across threads — a server checks a runtime out to one worker
// at a time. It is also `Sync` because every mutating entry point takes
// `&mut self`; host closures are `Send + Sync` by construction
// ([`HostImpl`]). Breaking this (e.g. by introducing `Rc` or a
// non-`Sync` cell into the store) is a compile error here, not a
// surprise in the embedder.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Runtime>();
    assert_send_sync::<Store>();
    assert_send_sync::<HostFuncs>();
    assert_send_sync::<RuntimeConfig>();
    assert_send_sync::<InvokeResult>();
};

impl Runtime {
    /// Creates an empty runtime with default configuration.
    pub fn new() -> Runtime {
        Runtime::default()
    }

    /// Looks up a previously instantiated module by name.
    pub fn instance_by_name(&self, name: &str) -> Option<u32> {
        self.names.get(name).copied()
    }

    /// Type checks and instantiates `module` under `name`, resolving its
    /// imports against previously instantiated modules.
    ///
    /// # Errors
    ///
    /// * any [`TypeError`] from module checking,
    /// * [`TypeError::LinkError`] when an import cannot be resolved or its
    ///   declared type differs from the export's type.
    pub fn instantiate(&mut self, name: &str, module: Module) -> Result<u32, TypeError> {
        if self.config.check_modules {
            check_module(&module)?;
        }
        let idx = self.store.insts.len() as u32;
        let mut inst = Instance::default();

        // Resolve functions.
        for (fi, f) in module.funcs.iter().enumerate() {
            match f {
                Func::Defined { .. } => {
                    inst.funcs.push(Closure {
                        inst: idx,
                        func: fi as u32,
                    });
                }
                Func::Imported {
                    module: mname,
                    name: fname,
                    ty,
                    ..
                } => {
                    let provider = *self.names.get(mname).ok_or_else(|| TypeError::LinkError {
                        reason: format!("import {mname}.{fname}: no module named {mname}"),
                    })?;
                    let pm = &self.modules[provider as usize];
                    let pf = pm.find_export(fname).ok_or_else(|| TypeError::LinkError {
                        reason: format!("import {mname}.{fname}: no such export"),
                    })?;
                    let exported_ty = pm.funcs[pf as usize].ty();
                    // The FFI safety check: declared import type must equal
                    // the provider's declared export type.
                    if exported_ty != ty {
                        return Err(TypeError::LinkError {
                            reason: format!(
                                "import {mname}.{fname}: type mismatch\n  imported as {ty}\n  \
                                 exported as {exported_ty}"
                            ),
                        });
                    }
                    let cl = self.store.insts[provider as usize].funcs[pf as usize];
                    inst.funcs.push(cl);
                }
            }
        }

        // Globals: evaluate initialisers / resolve imports. Initialisers
        // are instruction sequences (paper Fig. 2) and may allocate; they
        // run against the shared store. The fast path handles plain
        // constants without spinning up a configuration.
        for (gi, g) in module.globals.iter().enumerate() {
            match &g.kind {
                GlobalKind::Defined { init, .. } => {
                    let v = match eval_const(init, &inst.globals) {
                        Ok(v) => v,
                        Err(_) => self.eval_init_config(init, &inst.globals).map_err(|e| {
                            TypeError::Other(format!("global {gi} initialiser failed: {e}"))
                        })?,
                    };
                    inst.globals.push(v);
                }
                GlobalKind::Imported {
                    module: mname,
                    name: gname,
                    mutable,
                    ty,
                } => {
                    let provider = *self.names.get(mname).ok_or_else(|| TypeError::LinkError {
                        reason: format!("import {mname}.{gname}: no module named {mname}"),
                    })?;
                    let pm = &self.modules[provider as usize];
                    let pos = pm
                        .globals
                        .iter()
                        .position(|pg| pg.exports.iter().any(|e| e == gname))
                        .ok_or_else(|| TypeError::LinkError {
                            reason: format!("import {mname}.{gname}: no such global export"),
                        })?;
                    let pg = &pm.globals[pos];
                    if pg.ty() != ty || pg.mutable() != *mutable {
                        return Err(TypeError::LinkError {
                            reason: format!("import {mname}.{gname}: global type mismatch"),
                        });
                    }
                    let v = self.store.insts[provider as usize].globals[pos].clone();
                    inst.globals.push(v);
                }
            }
        }

        // Table.
        for &fi in &module.table.entries {
            let cl = *inst
                .funcs
                .get(fi as usize)
                .ok_or_else(|| TypeError::LinkError {
                    reason: format!("table entry {fi} out of range"),
                })?;
            inst.table.push(cl);
        }

        self.store.insts.push(inst);
        self.modules.push(module);
        self.names.insert(name.to_string(), idx);
        Ok(idx)
    }

    /// Registers a *host module*: a set of Rust closures exposed to
    /// guests as the exports of a module instance named `name`. Guests
    /// import them like any other function
    /// (`Func::Imported { module: name, .. }`) and the typed linker's FFI
    /// check applies unchanged — the declared import type must equal the
    /// host function's declared [`FunType`].
    ///
    /// Host functions must be monomorphic; each closure receives the
    /// argument values in parameter order and must return exactly as many
    /// values as its type declares (a mismatch makes the configuration
    /// stuck). Returning `Err(msg)` traps the guest with
    /// `host function error: msg`.
    ///
    /// The registered module is *not* type checked (it has no RichWasm
    /// bodies); its types are trusted the way an embedder trusts its own
    /// host, which is exactly the paper's boundary story inverted.
    pub fn register_host_module(
        &mut self,
        name: &str,
        funcs: Vec<(String, FunType, HostImpl)>,
    ) -> u32 {
        let idx = self.store.insts.len() as u32;
        let mut inst = Instance::default();
        let mut module = Module::default();
        for (fi, (export, ty, imp)) in funcs.into_iter().enumerate() {
            inst.funcs.push(Closure {
                inst: idx,
                func: fi as u32,
            });
            self.hosts.insert(
                idx,
                fi as u32,
                HostFunc {
                    ty: ty.clone(),
                    imp,
                },
            );
            // The defined body is a tripwire: calls are intercepted by the
            // host table before any body runs, so reaching it means the
            // interception broke.
            module.funcs.push(Func::Defined {
                exports: vec![export],
                ty,
                locals: vec![],
                body: vec![Instr::Unreachable],
            });
        }
        self.store.insts.push(inst);
        self.modules.push(module);
        self.names.insert(name.to_string(), idx);
        idx
    }

    /// Invokes the export `name` of instance `inst` with `args`.
    ///
    /// # Errors
    ///
    /// Traps, stuck configurations, and fuel exhaustion are reported as
    /// [`RuntimeError`].
    pub fn invoke(
        &mut self,
        inst: u32,
        name: &str,
        args: Vec<Value>,
    ) -> Result<InvokeResult, RuntimeError> {
        self.invoke_instantiated(inst, name, args, vec![])
    }

    /// Invokes a (possibly polymorphic) export with explicit instantiation
    /// indices.
    pub fn invoke_instantiated(
        &mut self,
        inst: u32,
        name: &str,
        args: Vec<Value>,
        indices: Vec<Index>,
    ) -> Result<InvokeResult, RuntimeError> {
        let module = self
            .modules
            .get(inst as usize)
            .ok_or(RuntimeError::BadStore {
                reason: format!("no instance {inst}"),
            })?;
        let func = module
            .find_export(name)
            .ok_or_else(|| RuntimeError::BadStore {
                reason: format!("instance {inst} has no export {name}"),
            })?;
        let mut cfg = Config::call(inst, func, args, indices);
        let result = self.run(&mut cfg)?;
        Ok(result)
    }

    /// Invokes function `func` (an index into instance `inst`'s function
    /// list) with `args`, skipping the export-name lookup entirely. This
    /// is the pre-resolved fast path behind `TypedFunc`-style embedder
    /// handles: resolve once, call many times.
    ///
    /// # Errors
    ///
    /// As [`Runtime::invoke`]; an out-of-range index surfaces as a
    /// [`RuntimeError::BadStore`].
    pub fn invoke_func(
        &mut self,
        inst: u32,
        func: u32,
        args: Vec<Value>,
    ) -> Result<InvokeResult, RuntimeError> {
        let mut cfg = Config::call(inst, func, args, vec![]);
        self.run(&mut cfg)
    }

    /// Drives a configuration to completion (fuel-bounded).
    pub fn run(&mut self, cfg: &mut Config) -> Result<InvokeResult, RuntimeError> {
        let mut steps = 0u64;
        loop {
            if steps >= self.config.fuel {
                return Err(RuntimeError::OutOfFuel);
            }
            match step_config(&mut self.store, &self.modules, &self.hosts, cfg)? {
                Outcome::Stepped => {
                    steps += 1;
                    if let Some(n) = self.config.auto_gc_every {
                        if steps % n == 0 {
                            collect(&mut self.store, Some(cfg));
                        }
                    }
                }
                Outcome::Done => {
                    let values = cfg.results().expect("done means all values");
                    return Ok(InvokeResult { values, steps });
                }
                Outcome::Trapped => {
                    return Err(RuntimeError::Trap {
                        reason: cfg.trap_reason.clone().unwrap_or_else(|| "trap".into()),
                    });
                }
            }
        }
    }

    /// Evaluates a non-constant global initialiser by running it as a
    /// configuration against the current store.
    fn eval_init_config(
        &mut self,
        init: &[Instr],
        earlier: &[Value],
    ) -> Result<Value, RuntimeError> {
        // Earlier globals of the instance being built are visible through
        // a temporary instance.
        let tmp = Instance {
            globals: earlier.to_vec(),
            ..Instance::default()
        };
        self.store.insts.push(tmp);
        self.modules.push(Module::default());
        let inst_idx = (self.store.insts.len() - 1) as u32;
        let mut cfg = Config {
            inst: inst_idx,
            locals: Vec::new(),
            instrs: init.to_vec(),
            trap_reason: None,
        };
        let result = self.run(&mut cfg);
        self.store.insts.pop();
        self.modules.pop();
        let r = result?;
        r.values
            .into_iter()
            .next()
            .ok_or_else(|| RuntimeError::stuck("initialiser left no value"))
    }

    /// Runs the garbage collector with the instances' globals as roots
    /// (use [`Runtime::run`]'s `auto_gc_every` to collect mid-run).
    pub fn gc(&mut self) -> GcStats {
        collect(&mut self.store, None)
    }
}

/// Evaluates a constant initialiser expression.
fn eval_const(init: &[Instr], globals: &[Value]) -> Result<Value, String> {
    let mut stack: Vec<Value> = Vec::new();
    for e in init {
        match e {
            Instr::Val(v) => stack.push(v.clone()),
            Instr::GetGlobal(i) => {
                stack.push(
                    globals
                        .get(*i as usize)
                        .cloned()
                        .ok_or_else(|| format!("get_global {i} out of range"))?,
                );
            }
            other => return Err(format!("non-constant instruction {other}")),
        }
    }
    match stack.len() {
        1 => Ok(stack.pop().expect("len checked")),
        n => Err(format!("initialiser left {n} values")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::*;

    fn answer_module() -> Module {
        Module {
            funcs: vec![Func::Defined {
                exports: vec!["answer".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body: vec![Instr::i32(42)],
            }],
            ..Module::default()
        }
    }

    #[test]
    fn instantiate_and_invoke() {
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", answer_module()).unwrap();
        let r = rt.invoke(idx, "answer", vec![]).unwrap();
        assert_eq!(r.values, vec![Value::i32(42)]);
        assert!(r.steps > 0);
    }

    #[test]
    fn import_resolution_and_cross_module_call() {
        let mut rt = Runtime::new();
        rt.instantiate("provider", answer_module()).unwrap();
        let client = Module {
            funcs: vec![
                Func::Imported {
                    exports: vec![],
                    module: "provider".into(),
                    name: "answer".into(),
                    ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                },
                Func::Defined {
                    exports: vec!["main".into()],
                    ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                    locals: vec![],
                    body: vec![
                        Instr::Call(0, vec![]),
                        Instr::i32(1),
                        Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
                    ],
                },
            ],
            ..Module::default()
        };
        let c = rt.instantiate("client", client).unwrap();
        let r = rt.invoke(c, "main", vec![]).unwrap();
        assert_eq!(r.values, vec![Value::i32(43)]);
    }

    #[test]
    fn host_module_import_and_call() {
        use std::sync::Arc;
        let mut rt = Runtime::new();
        rt.register_host_module(
            "host",
            vec![(
                "double".into(),
                FunType::mono(vec![Type::num(NumType::I32)], vec![Type::num(NumType::I32)]),
                Arc::new(|args: &[Value]| {
                    let Some(bits) = args[0].as_i32() else {
                        return Err("expected i32".into());
                    };
                    Ok(vec![Value::i32((bits as i32).wrapping_mul(2))])
                }),
            )],
        );
        let client = Module {
            funcs: vec![
                Func::Imported {
                    exports: vec![],
                    module: "host".into(),
                    name: "double".into(),
                    ty: FunType::mono(vec![Type::num(NumType::I32)], vec![Type::num(NumType::I32)]),
                },
                Func::Defined {
                    exports: vec!["main".into()],
                    ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                    locals: vec![],
                    body: vec![
                        Instr::i32(20),
                        Instr::Call(0, vec![]),
                        Instr::i32(1),
                        Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
                    ],
                },
            ],
            ..Module::default()
        };
        let c = rt.instantiate("client", client).unwrap();
        let r = rt.invoke(c, "main", vec![]).unwrap();
        assert_eq!(r.values, vec![Value::i32(41)]);
    }

    #[test]
    fn host_import_type_mismatch_is_a_link_error() {
        use std::sync::Arc;
        let mut rt = Runtime::new();
        rt.register_host_module(
            "host",
            vec![(
                "f".into(),
                FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                Arc::new(|_: &[Value]| Ok(vec![Value::i32(0)])),
            )],
        );
        let client = Module {
            funcs: vec![Func::Imported {
                exports: vec![],
                module: "host".into(),
                name: "f".into(),
                // Lies about the host's type.
                ty: FunType::mono(vec![], vec![Type::num(NumType::I64)]),
            }],
            ..Module::default()
        };
        let err = rt.instantiate("client", client).unwrap_err();
        assert!(matches!(err, TypeError::LinkError { .. }), "{err}");
    }

    #[test]
    fn host_ill_typed_result_traps_guest() {
        use std::sync::Arc;
        let mut rt = Runtime::new();
        rt.register_host_module(
            "host",
            vec![(
                "f".into(),
                FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                // Misbehaving host: declares i32, returns unit.
                Arc::new(|_: &[Value]| Ok(vec![Value::Unit])),
            )],
        );
        let client = Module {
            funcs: vec![
                Func::Imported {
                    exports: vec![],
                    module: "host".into(),
                    name: "f".into(),
                    ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                },
                Func::Defined {
                    exports: vec!["main".into()],
                    ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                    locals: vec![],
                    body: vec![Instr::Call(0, vec![])],
                },
            ],
            ..Module::default()
        };
        let c = rt.instantiate("client", client).unwrap();
        let err = rt.invoke(c, "main", vec![]).unwrap_err();
        assert!(
            err.to_string().contains("its type declares"),
            "the store re-checks host results: {err}"
        );
    }

    #[test]
    fn host_error_traps_guest() {
        use std::sync::Arc;
        let mut rt = Runtime::new();
        rt.register_host_module(
            "host",
            vec![(
                "f".into(),
                FunType::mono(vec![], vec![]),
                Arc::new(|_: &[Value]| Err("host says no".into())),
            )],
        );
        let client = Module {
            funcs: vec![
                Func::Imported {
                    exports: vec![],
                    module: "host".into(),
                    name: "f".into(),
                    ty: FunType::mono(vec![], vec![]),
                },
                Func::Defined {
                    exports: vec!["main".into()],
                    ty: FunType::mono(vec![], vec![]),
                    locals: vec![],
                    body: vec![Instr::Call(0, vec![])],
                },
            ],
            ..Module::default()
        };
        let c = rt.instantiate("client", client).unwrap();
        let err = rt.invoke(c, "main", vec![]).unwrap_err();
        assert!(
            err.to_string()
                .contains("host function error: host says no"),
            "{err}"
        );
    }

    #[test]
    fn import_type_mismatch_is_a_link_error() {
        let mut rt = Runtime::new();
        rt.instantiate("provider", answer_module()).unwrap();
        let client = Module {
            funcs: vec![Func::Imported {
                exports: vec![],
                module: "provider".into(),
                name: "answer".into(),
                // Lies about the export's type.
                ty: FunType::mono(vec![], vec![Type::num(NumType::I64)]),
            }],
            ..Module::default()
        };
        let err = rt.instantiate("client", client).unwrap_err();
        assert!(matches!(err, TypeError::LinkError { .. }), "{err}");
    }

    #[test]
    fn missing_import_is_a_link_error() {
        let mut rt = Runtime::new();
        let client = Module {
            funcs: vec![Func::Imported {
                exports: vec![],
                module: "ghost".into(),
                name: "f".into(),
                ty: FunType::mono(vec![], vec![]),
            }],
            ..Module::default()
        };
        assert!(matches!(
            rt.instantiate("client", client),
            Err(TypeError::LinkError { .. })
        ));
    }

    #[test]
    fn globals_initialise_and_mutate() {
        let m = Module {
            funcs: vec![Func::Defined {
                exports: vec!["bump".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body: vec![
                    Instr::GetGlobal(0),
                    Instr::i32(1),
                    Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
                    Instr::SetGlobal(0),
                    Instr::GetGlobal(0),
                ],
            }],
            globals: vec![Global {
                exports: vec![],
                kind: GlobalKind::Defined {
                    mutable: true,
                    ty: Pretype::Num(NumType::I32),
                    init: vec![Instr::i32(10)],
                },
            }],
            ..Module::default()
        };
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", m).unwrap();
        assert_eq!(
            rt.invoke(idx, "bump", vec![]).unwrap().values,
            vec![Value::i32(11)]
        );
        assert_eq!(
            rt.invoke(idx, "bump", vec![]).unwrap().values,
            vec![Value::i32(12)]
        );
    }

    #[test]
    fn fuel_exhaustion_reported() {
        let m = Module {
            funcs: vec![Func::Defined {
                exports: vec!["spin".into()],
                ty: FunType::mono(vec![], vec![]),
                locals: vec![],
                body: vec![Instr::LoopI(
                    ArrowType::default(),
                    vec![Instr::i32(1), Instr::BrIf(0)],
                )],
            }],
            ..Module::default()
        };
        let mut rt = Runtime::new();
        rt.config.fuel = 1000;
        let idx = rt.instantiate("m", m).unwrap();
        assert_eq!(rt.invoke(idx, "spin", vec![]), Err(RuntimeError::OutOfFuel));
    }

    #[test]
    fn indirect_call_through_table() {
        let m = Module {
            funcs: vec![
                Func::Defined {
                    exports: vec![],
                    ty: FunType::mono(vec![Type::num(NumType::I32)], vec![Type::num(NumType::I32)]),
                    locals: vec![],
                    body: vec![
                        Instr::GetLocal(0, Qual::Unr),
                        Instr::i32(2),
                        Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Mul)),
                    ],
                },
                Func::Defined {
                    exports: vec!["main".into()],
                    ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                    locals: vec![],
                    body: vec![Instr::i32(21), Instr::CodeRefI(0), Instr::CallIndirect],
                },
            ],
            table: Table {
                exports: vec![],
                entries: vec![0],
            },
            ..Module::default()
        };
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", m).unwrap();
        assert_eq!(
            rt.invoke(idx, "main", vec![]).unwrap().values,
            vec![Value::i32(42)]
        );
    }
}

#[cfg(test)]
mod poly_tests {
    use super::*;
    use crate::syntax::*;

    #[test]
    fn invoke_polymorphic_export_with_indices() {
        // id : ∀α≲64. [α] → [α], exported and invoked at i32.
        let m = Module {
            funcs: vec![Func::Defined {
                exports: vec!["id".into()],
                ty: FunType {
                    quants: vec![Quantifier::Type {
                        lower_qual: Qual::Unr,
                        size: Size::Const(64),
                        may_contain_caps: false,
                    }],
                    arrow: ArrowType::new(vec![Pretype::Var(0).unr()], vec![Pretype::Var(0).unr()]),
                },
                locals: vec![],
                body: vec![Instr::GetLocal(0, Qual::Unr)],
            }],
            ..Module::default()
        };
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", m).unwrap();
        let out = rt
            .invoke_instantiated(
                idx,
                "id",
                vec![Value::i32(7)],
                vec![Index::Pretype(Pretype::Num(NumType::I32))],
            )
            .unwrap();
        assert_eq!(out.values, vec![Value::i32(7)]);
        // And at a tuple type.
        let out = rt
            .invoke_instantiated(
                idx,
                "id",
                vec![Value::Prod(vec![Value::i32(1), Value::i32(2)])],
                vec![Index::Pretype(Pretype::Prod(vec![
                    Type::num(NumType::I32),
                    Type::num(NumType::I32),
                ]))],
            )
            .unwrap();
        assert_eq!(
            out.values,
            vec![Value::Prod(vec![Value::i32(1), Value::i32(2)])]
        );
    }

    #[test]
    fn missing_export_reported() {
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", Module::default()).unwrap();
        let err = rt.invoke(idx, "nope", vec![]).unwrap_err();
        assert!(err.to_string().contains("no export"), "{err}");
    }

    #[test]
    fn gc_between_invocations_preserves_module_state() {
        // A module global rooted across collections.
        let m = Module {
            globals: vec![Global {
                exports: vec![],
                kind: GlobalKind::Defined {
                    mutable: true,
                    ty: Pretype::Num(NumType::I32),
                    init: vec![Instr::i32(5)],
                },
            }],
            funcs: vec![Func::Defined {
                exports: vec!["get".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![],
                body: vec![Instr::GetGlobal(0)],
            }],
            ..Module::default()
        };
        let mut rt = Runtime::new();
        let idx = rt.instantiate("m", m).unwrap();
        rt.gc();
        assert_eq!(
            rt.invoke(idx, "get", vec![]).unwrap().values,
            vec![Value::i32(5)]
        );
    }
}
