//! The runtime store (paper Fig. 4, top): module instances and the two
//! global memories.

use std::collections::BTreeMap;

use crate::syntax::{ConcreteLoc, HeapValue, Mem, Value};

/// A closure: a function pinned to the module instance providing its
/// environment. The code itself lives in the instantiated module's
/// definition (see [`crate::interp::Runtime`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closure {
    /// The defining module instance.
    pub inst: u32,
    /// The function index within that instance's module.
    pub func: u32,
}

/// A module instance: resolved function list, global values, and the
/// table used for indirect calls.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    /// One closure per declared function (imports resolved).
    pub funcs: Vec<Closure>,
    /// Global values, in declaration order.
    pub globals: Vec<Value>,
    /// The table: closures addressable by `coderef`.
    pub table: Vec<Closure>,
}

/// One allocated heap cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// The structured contents.
    pub hv: HeapValue,
    /// The allocation size in bits (set by `malloc`, fixed thereafter —
    /// this is the slot size that strong updates must respect).
    pub size: u64,
}

/// The two flat memories. Unlike Wasm, cells hold structured heap values
/// (§2.1: "in RichWasm memories store high-level structured data").
#[derive(Debug, Clone, Default)]
pub struct Memory {
    /// The manually managed linear memory.
    pub lin: BTreeMap<u32, Cell>,
    /// The garbage-collected unrestricted memory.
    pub unr: BTreeMap<u32, Cell>,
    next_lin: u32,
    next_unr: u32,
    /// Lifetime statistics (allocations).
    pub allocs: u64,
    /// Lifetime statistics (explicit frees of linear cells).
    pub frees: u64,
    /// Lifetime statistics (unrestricted cells collected by the GC).
    pub collected: u64,
    /// Lifetime statistics (linear cells finalized by the GC because they
    /// were owned by collected unrestricted cells, §3).
    pub finalized: u64,
}

impl Memory {
    /// Allocates `hv` in the chosen memory, returning its fresh location.
    pub fn alloc(&mut self, mem: Mem, hv: HeapValue, size: u64) -> ConcreteLoc {
        self.allocs += 1;
        match mem {
            Mem::Lin => {
                let idx = self.next_lin;
                self.next_lin += 1;
                self.lin.insert(idx, Cell { hv, size });
                ConcreteLoc::lin(idx)
            }
            Mem::Unr => {
                let idx = self.next_unr;
                self.next_unr += 1;
                self.unr.insert(idx, Cell { hv, size });
                ConcreteLoc::unr(idx)
            }
        }
    }

    /// Reads the cell at a location.
    pub fn get(&self, l: ConcreteLoc) -> Option<&Cell> {
        match l.mem {
            Mem::Lin => self.lin.get(&l.idx),
            Mem::Unr => self.unr.get(&l.idx),
        }
    }

    /// Mutable access to the cell at a location.
    pub fn get_mut(&mut self, l: ConcreteLoc) -> Option<&mut Cell> {
        match l.mem {
            Mem::Lin => self.lin.get_mut(&l.idx),
            Mem::Unr => self.unr.get_mut(&l.idx),
        }
    }

    /// Frees a linear cell; returns `false` on double free / dangling
    /// location (the caller traps).
    pub fn free_lin(&mut self, idx: u32) -> bool {
        let hit = self.lin.remove(&idx).is_some();
        if hit {
            self.frees += 1;
        }
        hit
    }

    /// Total live cells across both memories.
    pub fn live(&self) -> usize {
        self.lin.len() + self.unr.len()
    }
}

/// The store `s ::= {inst inst*, mem mem}`.
#[derive(Debug, Clone, Default)]
pub struct Store {
    /// The instantiated modules.
    pub insts: Vec<Instance>,
    /// The global memory (both components).
    pub mem: Memory,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_fresh_locations_per_memory() {
        let mut m = Memory::default();
        let a = m.alloc(Mem::Lin, HeapValue::Struct(vec![]), 0);
        let b = m.alloc(Mem::Lin, HeapValue::Struct(vec![]), 0);
        let c = m.alloc(Mem::Unr, HeapValue::Struct(vec![]), 0);
        assert_ne!(a, b);
        assert_eq!(a.mem, Mem::Lin);
        assert_eq!(c.mem, Mem::Unr);
        assert_eq!(m.live(), 3);
        assert_eq!(m.allocs, 3);
    }

    #[test]
    fn free_lin_detects_double_free() {
        let mut m = Memory::default();
        let a = m.alloc(Mem::Lin, HeapValue::Array(vec![]), 0);
        assert!(m.free_lin(a.idx));
        assert!(!m.free_lin(a.idx), "double free must be reported");
        assert_eq!(m.frees, 1);
    }

    #[test]
    fn get_mut_updates_cell() {
        let mut m = Memory::default();
        let a = m.alloc(Mem::Unr, HeapValue::Struct(vec![Value::i32(1)]), 32);
        m.get_mut(a).unwrap().hv = HeapValue::Struct(vec![Value::i32(2)]);
        assert_eq!(m.get(a).unwrap().hv, HeapValue::Struct(vec![Value::i32(2)]));
    }
}
