//! Numeric operator semantics (WebAssembly 1.0 semantics, shared with the
//! Wasm substrate's expectations so differential testing is meaningful).
//!
//! All payloads are raw 64-bit patterns; the [`NumType`] determines the
//! interpretation. 32-bit values are stored zero-extended.

use crate::error::RuntimeError;
use crate::syntax::instr::{
    FloatBinop, FloatRelop, FloatUnop, IntBinop, IntRelop, IntUnop, NumInstr, Sign,
};
use crate::syntax::{NumType, Value};

fn b32(v: u64) -> u32 {
    v as u32
}

fn mask(nt: NumType, v: u64) -> u64 {
    if nt.bits() == 32 {
        v & 0xFFFF_FFFF
    } else {
        v
    }
}

/// Evaluates an integer unary operator.
pub fn int_unop(nt: NumType, op: IntUnop, a: u64) -> u64 {
    let r = match (nt.bits(), op) {
        (32, IntUnop::Clz) => b32(a).leading_zeros() as u64,
        (32, IntUnop::Ctz) => b32(a).trailing_zeros() as u64,
        (32, IntUnop::Popcnt) => b32(a).count_ones() as u64,
        (64, IntUnop::Clz) => a.leading_zeros() as u64,
        (64, IntUnop::Ctz) => a.trailing_zeros() as u64,
        (64, IntUnop::Popcnt) => a.count_ones() as u64,
        _ => unreachable!(),
    };
    mask(nt, r)
}

/// Evaluates an integer binary operator. Division and remainder by zero
/// (and `INT_MIN / -1`) trap, exactly as in Wasm.
pub fn int_binop(nt: NumType, op: IntBinop, a: u64, b: u64) -> Result<u64, RuntimeError> {
    let w32 = nt.bits() == 32;
    let r = if w32 {
        let (x, y) = (b32(a), b32(b));
        match op {
            IntBinop::Add => x.wrapping_add(y) as u64,
            IntBinop::Sub => x.wrapping_sub(y) as u64,
            IntBinop::Mul => x.wrapping_mul(y) as u64,
            IntBinop::Div(Sign::U) => {
                if y == 0 {
                    return Err(RuntimeError::trap("integer divide by zero"));
                }
                (x / y) as u64
            }
            IntBinop::Div(Sign::S) => {
                let (x, y) = (x as i32, y as i32);
                if y == 0 {
                    return Err(RuntimeError::trap("integer divide by zero"));
                }
                if x == i32::MIN && y == -1 {
                    return Err(RuntimeError::trap("integer overflow"));
                }
                (x / y) as u32 as u64
            }
            IntBinop::Rem(Sign::U) => {
                if y == 0 {
                    return Err(RuntimeError::trap("integer divide by zero"));
                }
                (x % y) as u64
            }
            IntBinop::Rem(Sign::S) => {
                let (x, y) = (x as i32, y as i32);
                if y == 0 {
                    return Err(RuntimeError::trap("integer divide by zero"));
                }
                x.wrapping_rem(y) as u32 as u64
            }
            IntBinop::And => (x & y) as u64,
            IntBinop::Or => (x | y) as u64,
            IntBinop::Xor => (x ^ y) as u64,
            IntBinop::Shl => x.wrapping_shl(y) as u64,
            IntBinop::Shr(Sign::U) => x.wrapping_shr(y) as u64,
            IntBinop::Shr(Sign::S) => ((x as i32).wrapping_shr(y)) as u32 as u64,
            IntBinop::Rotl => x.rotate_left(y % 32) as u64,
            IntBinop::Rotr => x.rotate_right(y % 32) as u64,
        }
    } else {
        let (x, y) = (a, b);
        match op {
            IntBinop::Add => x.wrapping_add(y),
            IntBinop::Sub => x.wrapping_sub(y),
            IntBinop::Mul => x.wrapping_mul(y),
            IntBinop::Div(Sign::U) => {
                if y == 0 {
                    return Err(RuntimeError::trap("integer divide by zero"));
                }
                x / y
            }
            IntBinop::Div(Sign::S) => {
                let (x, y) = (x as i64, y as i64);
                if y == 0 {
                    return Err(RuntimeError::trap("integer divide by zero"));
                }
                if x == i64::MIN && y == -1 {
                    return Err(RuntimeError::trap("integer overflow"));
                }
                (x / y) as u64
            }
            IntBinop::Rem(Sign::U) => {
                if y == 0 {
                    return Err(RuntimeError::trap("integer divide by zero"));
                }
                x % y
            }
            IntBinop::Rem(Sign::S) => {
                let (x, y) = (x as i64, y as i64);
                if y == 0 {
                    return Err(RuntimeError::trap("integer divide by zero"));
                }
                x.wrapping_rem(y) as u64
            }
            IntBinop::And => x & y,
            IntBinop::Or => x | y,
            IntBinop::Xor => x ^ y,
            IntBinop::Shl => x.wrapping_shl(y as u32),
            IntBinop::Shr(Sign::U) => x.wrapping_shr(y as u32),
            IntBinop::Shr(Sign::S) => ((x as i64).wrapping_shr(y as u32)) as u64,
            IntBinop::Rotl => x.rotate_left((y % 64) as u32),
            IntBinop::Rotr => x.rotate_right((y % 64) as u32),
        }
    };
    Ok(mask(nt, r))
}

/// Evaluates an integer relational operator, yielding 0 or 1.
pub fn int_relop(nt: NumType, op: IntRelop, a: u64, b: u64) -> u64 {
    let w32 = nt.bits() == 32;
    let (su, ss): (bool, bool) = match op {
        IntRelop::Eq => return (mask(nt, a) == mask(nt, b)) as u64,
        IntRelop::Ne => return (mask(nt, a) != mask(nt, b)) as u64,
        IntRelop::Lt(s) | IntRelop::Gt(s) | IntRelop::Le(s) | IntRelop::Ge(s) => {
            (s == Sign::U, s == Sign::S)
        }
    };
    let _ = (su, ss);
    let cmp = |sgn: Sign| -> std::cmp::Ordering {
        match (w32, sgn) {
            (true, Sign::U) => b32(a).cmp(&b32(b)),
            (true, Sign::S) => (b32(a) as i32).cmp(&(b32(b) as i32)),
            (false, Sign::U) => a.cmp(&b),
            (false, Sign::S) => (a as i64).cmp(&(b as i64)),
        }
    };
    use std::cmp::Ordering::*;
    let r = match op {
        IntRelop::Lt(s) => cmp(s) == Less,
        IntRelop::Gt(s) => cmp(s) == Greater,
        IntRelop::Le(s) => cmp(s) != Greater,
        IntRelop::Ge(s) => cmp(s) != Less,
        _ => unreachable!(),
    };
    r as u64
}

fn f32_of(v: u64) -> f32 {
    f32::from_bits(v as u32)
}

fn f64_of(v: u64) -> f64 {
    f64::from_bits(v)
}

/// Evaluates a float unary operator.
pub fn float_unop(nt: NumType, op: FloatUnop, a: u64) -> u64 {
    if nt.bits() == 32 {
        let x = f32_of(a);
        let r = match op {
            FloatUnop::Abs => x.abs(),
            FloatUnop::Neg => -x,
            FloatUnop::Sqrt => x.sqrt(),
            FloatUnop::Ceil => x.ceil(),
            FloatUnop::Floor => x.floor(),
            FloatUnop::Trunc => x.trunc(),
            FloatUnop::Nearest => nearest32(x),
        };
        r.to_bits() as u64
    } else {
        let x = f64_of(a);
        let r = match op {
            FloatUnop::Abs => x.abs(),
            FloatUnop::Neg => -x,
            FloatUnop::Sqrt => x.sqrt(),
            FloatUnop::Ceil => x.ceil(),
            FloatUnop::Floor => x.floor(),
            FloatUnop::Trunc => x.trunc(),
            FloatUnop::Nearest => nearest64(x),
        };
        r.to_bits()
    }
}

fn nearest32(x: f32) -> f32 {
    // Round-to-nearest, ties-to-even (Wasm semantics).
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - x.signum()
    } else {
        r
    }
}

fn nearest64(x: f64) -> f64 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - x.signum()
    } else {
        r
    }
}

/// Evaluates a float binary operator.
pub fn float_binop(nt: NumType, op: FloatBinop, a: u64, b: u64) -> u64 {
    if nt.bits() == 32 {
        let (x, y) = (f32_of(a), f32_of(b));
        let r = match op {
            FloatBinop::Add => x + y,
            FloatBinop::Sub => x - y,
            FloatBinop::Mul => x * y,
            FloatBinop::Div => x / y,
            FloatBinop::Min => x.min(y),
            FloatBinop::Max => x.max(y),
            FloatBinop::Copysign => x.copysign(y),
        };
        r.to_bits() as u64
    } else {
        let (x, y) = (f64_of(a), f64_of(b));
        let r = match op {
            FloatBinop::Add => x + y,
            FloatBinop::Sub => x - y,
            FloatBinop::Mul => x * y,
            FloatBinop::Div => x / y,
            FloatBinop::Min => x.min(y),
            FloatBinop::Max => x.max(y),
            FloatBinop::Copysign => x.copysign(y),
        };
        r.to_bits()
    }
}

/// Evaluates a float relational operator, yielding 0 or 1.
pub fn float_relop(nt: NumType, op: FloatRelop, a: u64, b: u64) -> u64 {
    let r = if nt.bits() == 32 {
        let (x, y) = (f32_of(a), f32_of(b));
        match op {
            FloatRelop::Eq => x == y,
            FloatRelop::Ne => x != y,
            FloatRelop::Lt => x < y,
            FloatRelop::Gt => x > y,
            FloatRelop::Le => x <= y,
            FloatRelop::Ge => x >= y,
        }
    } else {
        let (x, y) = (f64_of(a), f64_of(b));
        match op {
            FloatRelop::Eq => x == y,
            FloatRelop::Ne => x != y,
            FloatRelop::Lt => x < y,
            FloatRelop::Gt => x > y,
            FloatRelop::Le => x <= y,
            FloatRelop::Ge => x >= y,
        }
    };
    r as u64
}

/// Evaluates `dst.convert src` (wrap / extend / trunc / convert / promote
/// / demote depending on the type pair). Out-of-range float→int
/// conversions trap as in Wasm.
pub fn convert(dst: NumType, src: NumType, a: u64) -> Result<u64, RuntimeError> {
    use NumType::*;
    let r = match (src, dst) {
        // int → int: wrap / extend (sign from the *source* type).
        (I64 | U64, I32 | U32) => a & 0xFFFF_FFFF,
        (I32, I64) | (I32, U64) => (a as u32 as i32 as i64) as u64,
        (U32, I64) | (U32, U64) => a as u32 as u64,
        // same-width signedness changes are free.
        (I32, U32) | (U32, I32) | (I64, U64) | (U64, I64) => a,
        // int → float
        (I32, F32) => ((a as u32 as i32) as f32).to_bits() as u64,
        (U32, F32) => ((a as u32) as f32).to_bits() as u64,
        (I64, F32) => ((a as i64) as f32).to_bits() as u64,
        (U64, F32) => (a as f32).to_bits() as u64,
        (I32, F64) => ((a as u32 as i32) as f64).to_bits(),
        (U32, F64) => ((a as u32) as f64).to_bits(),
        (I64, F64) => ((a as i64) as f64).to_bits(),
        (U64, F64) => (a as f64).to_bits(),
        // float → int (trunc, trapping)
        (F32, I32) => {
            trunc_to_i64(f32_of(a) as f64, i32::MIN as f64, i32::MAX as f64)? as u32 as u64
        }
        (F32, U32) => trunc_to_u64(f32_of(a) as f64, u32::MAX as f64)? & 0xFFFF_FFFF,
        (F32, I64) => trunc_to_i64(f32_of(a) as f64, i64::MIN as f64, i64::MAX as f64)? as u64,
        (F32, U64) => trunc_to_u64(f32_of(a) as f64, u64::MAX as f64)?,
        (F64, I32) => trunc_to_i64(f64_of(a), i32::MIN as f64, i32::MAX as f64)? as u32 as u64,
        (F64, U32) => trunc_to_u64(f64_of(a), u32::MAX as f64)? & 0xFFFF_FFFF,
        (F64, I64) => trunc_to_i64(f64_of(a), i64::MIN as f64, i64::MAX as f64)? as u64,
        (F64, U64) => trunc_to_u64(f64_of(a), u64::MAX as f64)?,
        // float ↔ float
        (F32, F64) => ((f32_of(a)) as f64).to_bits(),
        (F64, F32) => ((f64_of(a)) as f32).to_bits() as u64,
        (F32, F32) | (F64, F64) | (I32, I32) | (U32, U32) | (I64, I64) | (U64, U64) => a,
    };
    Ok(r)
}

fn trunc_to_i64(x: f64, lo: f64, hi: f64) -> Result<i64, RuntimeError> {
    if x.is_nan() {
        return Err(RuntimeError::trap("invalid conversion to integer"));
    }
    let t = x.trunc();
    if t < lo || t > hi {
        return Err(RuntimeError::trap("integer overflow in conversion"));
    }
    Ok(t as i64)
}

fn trunc_to_u64(x: f64, hi: f64) -> Result<u64, RuntimeError> {
    if x.is_nan() {
        return Err(RuntimeError::trap("invalid conversion to integer"));
    }
    let t = x.trunc();
    if t < 0.0 || t > hi {
        return Err(RuntimeError::trap("integer overflow in conversion"));
    }
    Ok(t as u64)
}

/// Evaluates a whole numeric instruction against popped operands (`a` is
/// the deeper operand for binary operations).
pub fn eval(n: NumInstr, operands: &[Value]) -> Result<Value, RuntimeError> {
    let bits = |v: &Value| -> Result<u64, RuntimeError> {
        v.as_num()
            .map(|(_, b)| b)
            .ok_or_else(|| RuntimeError::stuck(format!("numeric op on non-number {v}")))
    };
    Ok(match n {
        NumInstr::IntUnop(nt, op) => Value::Num(nt, int_unop(nt, op, bits(&operands[0])?)),
        NumInstr::IntBinop(nt, op) => Value::Num(
            nt,
            int_binop(nt, op, bits(&operands[0])?, bits(&operands[1])?)?,
        ),
        NumInstr::Eqz(nt) => Value::Num(NumType::I32, (mask(nt, bits(&operands[0])?) == 0) as u64),
        NumInstr::IntRelop(nt, op) => Value::Num(
            NumType::I32,
            int_relop(nt, op, bits(&operands[0])?, bits(&operands[1])?),
        ),
        NumInstr::FloatUnop(nt, op) => Value::Num(nt, float_unop(nt, op, bits(&operands[0])?)),
        NumInstr::FloatBinop(nt, op) => Value::Num(
            nt,
            float_binop(nt, op, bits(&operands[0])?, bits(&operands[1])?),
        ),
        NumInstr::FloatRelop(nt, op) => Value::Num(
            NumType::I32,
            float_relop(nt, op, bits(&operands[0])?, bits(&operands[1])?),
        ),
        NumInstr::Convert(dst, src) => Value::Num(dst, convert(dst, src, bits(&operands[0])?)?),
        NumInstr::Reinterpret(dst, _) => Value::Num(dst, bits(&operands[0])?),
    })
}

/// Number of operands consumed by a numeric instruction.
pub fn arity(n: NumInstr) -> usize {
    match n {
        NumInstr::IntUnop(..)
        | NumInstr::Eqz(_)
        | NumInstr::FloatUnop(..)
        | NumInstr::Convert(..)
        | NumInstr::Reinterpret(..) => 1,
        NumInstr::IntBinop(..)
        | NumInstr::IntRelop(..)
        | NumInstr::FloatBinop(..)
        | NumInstr::FloatRelop(..) => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_add() {
        assert_eq!(
            int_binop(NumType::I32, IntBinop::Add, u32::MAX as u64, 1).unwrap(),
            0
        );
        assert_eq!(
            int_binop(NumType::I64, IntBinop::Add, u64::MAX, 1).unwrap(),
            0
        );
    }

    #[test]
    fn div_by_zero_traps() {
        assert!(int_binop(NumType::I32, IntBinop::Div(Sign::S), 1, 0).is_err());
        assert!(int_binop(NumType::I32, IntBinop::Rem(Sign::U), 1, 0).is_err());
        assert!(int_binop(
            NumType::I32,
            IntBinop::Div(Sign::S),
            i32::MIN as u32 as u64,
            u32::MAX as u64
        )
        .is_err());
    }

    #[test]
    fn signed_comparison() {
        // -1 <s 0 but -1 >u 0.
        let neg1 = u32::MAX as u64;
        assert_eq!(int_relop(NumType::I32, IntRelop::Lt(Sign::S), neg1, 0), 1);
        assert_eq!(int_relop(NumType::I32, IntRelop::Lt(Sign::U), neg1, 0), 0);
    }

    #[test]
    fn clz_popcnt() {
        assert_eq!(int_unop(NumType::I32, IntUnop::Clz, 1), 31);
        assert_eq!(int_unop(NumType::I32, IntUnop::Popcnt, 0xFF), 8);
        assert_eq!(int_unop(NumType::I64, IntUnop::Ctz, 0b1000), 3);
    }

    #[test]
    fn float_ops() {
        let a = 1.5f64.to_bits();
        let b = 2.5f64.to_bits();
        assert_eq!(
            float_binop(NumType::F64, FloatBinop::Add, a, b),
            4.0f64.to_bits()
        );
        assert_eq!(float_relop(NumType::F64, FloatRelop::Lt, a, b), 1);
        assert_eq!(
            float_unop(NumType::F64, FloatUnop::Neg, a),
            (-1.5f64).to_bits()
        );
    }

    #[test]
    fn nearest_ties_to_even() {
        assert_eq!(
            float_unop(NumType::F64, FloatUnop::Nearest, 2.5f64.to_bits()),
            2.0f64.to_bits()
        );
        assert_eq!(
            float_unop(NumType::F64, FloatUnop::Nearest, 3.5f64.to_bits()),
            4.0f64.to_bits()
        );
    }

    #[test]
    fn conversions() {
        // i64 → i32 wraps.
        assert_eq!(
            convert(NumType::I32, NumType::I64, 0x1_0000_0005).unwrap(),
            5
        );
        // i32 → i64 sign-extends.
        assert_eq!(
            convert(NumType::I64, NumType::I32, u32::MAX as u64).unwrap(),
            u64::MAX
        );
        // u32 → i64 zero-extends.
        assert_eq!(
            convert(NumType::I64, NumType::U32, u32::MAX as u64).unwrap(),
            u32::MAX as u64
        );
        // float → int truncates; NaN traps.
        assert_eq!(
            convert(NumType::I32, NumType::F64, 3.99f64.to_bits()).unwrap(),
            3
        );
        assert!(convert(NumType::I32, NumType::F64, f64::NAN.to_bits()).is_err());
        assert!(convert(NumType::I32, NumType::F64, 1e20f64.to_bits()).is_err());
    }

    #[test]
    fn eval_dispatches() {
        let v = eval(
            NumInstr::IntBinop(NumType::I32, IntBinop::Mul),
            &[Value::i32(6), Value::i32(7)],
        )
        .unwrap();
        assert_eq!(v, Value::i32(42));
        assert_eq!(arity(NumInstr::IntBinop(NumType::I32, IntBinop::Mul)), 2);
        assert_eq!(arity(NumInstr::Eqz(NumType::I32)), 1);
    }
}
