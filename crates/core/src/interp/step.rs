//! The small-step reduction relation (paper Fig. 4).
//!
//! A configuration `s; v*; sz*; e*` reduces one administrative step at a
//! time. Evaluation descends through `label`/`local` contexts (the
//! paper's `L^k`); `br`/`return` propagate outward carrying their value
//! prefix; traps normalise the enclosing sequence.

use crate::error::RuntimeError;
use crate::interp::host::HostFuncs;
use crate::interp::num;
use crate::interp::store::{Closure, Store};
use crate::sizing::{size_of_heap_value, size_of_type, size_of_value};
use crate::subst::{subst_instrs, subst_size, subst_type, SubstEnv};
use crate::syntax::{ConcreteLoc, Func, HeapValue, Instr, Loc, Mem, Module, Qual, Size, Value};

/// A runtime configuration: the current module instance, the local slots
/// of the outermost activation, and the instruction sequence.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// The module instance index executing (`j` in `↩_j`).
    pub inst: u32,
    /// Local slot values and sizes of the outermost frame.
    pub locals: Vec<(Value, Size)>,
    /// The instruction sequence under reduction.
    pub instrs: Vec<Instr>,
    /// Human-readable reason of the most recent trap, if any.
    pub trap_reason: Option<String>,
}

impl Config {
    /// Builds a configuration that calls exported function `func` of
    /// instance `inst` with `args`.
    pub fn call(
        inst: u32,
        func: u32,
        args: Vec<Value>,
        indices: Vec<crate::syntax::Index>,
    ) -> Config {
        let mut instrs: Vec<Instr> = args.into_iter().map(Instr::Val).collect();
        instrs.push(Instr::CallAdmin {
            inst,
            func,
            indices,
        });
        Config {
            inst,
            locals: Vec::new(),
            instrs,
            trap_reason: None,
        }
    }

    /// The result values if the configuration is fully reduced.
    pub fn results(&self) -> Option<Vec<Value>> {
        self.instrs
            .iter()
            .map(|e| match e {
                Instr::Val(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    }
}

/// The observable outcome of one reduction step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// One step was taken.
    Stepped,
    /// The configuration is fully reduced (all values).
    Done,
    /// The configuration is a trap.
    Trapped,
}

enum SeqOut {
    Stepped,
    Done,
    TrapNow,
    Br(u32, Vec<Value>),
    Ret(Vec<Value>),
}

/// Performs one reduction step on `cfg`.
///
/// # Errors
///
/// Returns [`RuntimeError::Stuck`] when no rule applies — for well-typed
/// programs this never happens (progress), and the soundness property
/// tests rely on that.
pub fn step_config(
    store: &mut Store,
    modules: &[Module],
    hosts: &HostFuncs,
    cfg: &mut Config,
) -> Result<Outcome, RuntimeError> {
    let mut note = None;
    let inst = cfg.inst;
    let r = step_seq(
        store,
        modules,
        hosts,
        inst,
        &mut cfg.locals,
        &mut cfg.instrs,
        &mut note,
    );
    if let Some(n) = note {
        cfg.trap_reason = Some(n);
    }
    match r? {
        SeqOut::Done => Ok(Outcome::Done),
        SeqOut::Stepped => Ok(Outcome::Stepped),
        SeqOut::TrapNow => Ok(Outcome::Trapped),
        SeqOut::Br(..) => Err(RuntimeError::stuck(
            "br escaped the top-level configuration",
        )),
        SeqOut::Ret(_) => Err(RuntimeError::stuck(
            "return escaped the top-level configuration",
        )),
    }
}

fn is_value(e: &Instr) -> bool {
    matches!(e, Instr::Val(_))
}

fn all_values(es: &[Instr]) -> bool {
    es.iter().all(is_value)
}

fn take_values(es: &[Instr]) -> Vec<Value> {
    es.iter()
        .map(|e| match e {
            Instr::Val(v) => v.clone(),
            _ => unreachable!("take_values on non-value"),
        })
        .collect()
}

#[allow(clippy::too_many_lines)]
fn step_seq(
    store: &mut Store,
    modules: &[Module],
    hosts: &HostFuncs,
    inst: u32,
    locals: &mut Vec<(Value, Size)>,
    instrs: &mut Vec<Instr>,
    note: &mut Option<String>,
) -> Result<SeqOut, RuntimeError> {
    let Some(k) = instrs.iter().position(|e| !is_value(e)) else {
        return Ok(SeqOut::Done);
    };

    // Trap normalisation: `v* trap e* ↩ trap`.
    if matches!(instrs[k], Instr::Trap) {
        if instrs.len() == 1 {
            return Ok(SeqOut::TrapNow);
        }
        instrs.clear();
        instrs.push(Instr::Trap);
        return Ok(SeqOut::Stepped);
    }

    // Control frames: descend.
    if let Instr::Label { arity, cont, body } = &mut instrs[k] {
        if all_values(body) {
            let vals = take_values(body);
            let repl: Vec<Instr> = vals.into_iter().map(Instr::Val).collect();
            instrs.splice(k..=k, repl);
            return Ok(SeqOut::Stepped);
        }
        if body.len() == 1 && matches!(body[0], Instr::Trap) {
            instrs[k] = Instr::Trap;
            return Ok(SeqOut::Stepped);
        }
        let arity = *arity;
        let cont = cont.clone();
        return match step_seq(store, modules, hosts, inst, locals, body, note)? {
            SeqOut::Stepped => Ok(SeqOut::Stepped),
            SeqOut::TrapNow => {
                instrs[k] = Instr::Trap;
                Ok(SeqOut::Stepped)
            }
            SeqOut::Br(0, vals) => {
                let n = arity as usize;
                if vals.len() < n {
                    return Err(RuntimeError::stuck("br carries too few values"));
                }
                let keep = vals[vals.len() - n..].to_vec();
                let mut repl: Vec<Instr> = keep.into_iter().map(Instr::Val).collect();
                repl.extend(cont);
                instrs.splice(k..=k, repl);
                Ok(SeqOut::Stepped)
            }
            SeqOut::Br(j, vals) => Ok(SeqOut::Br(j - 1, vals)),
            SeqOut::Ret(vals) => Ok(SeqOut::Ret(vals)),
            SeqOut::Done => unreachable!("body had a non-value instruction"),
        };
    }

    if matches!(instrs[k], Instr::LocalFrame { .. }) {
        let (arity, fi) = {
            let Instr::LocalFrame {
                arity,
                inst: fi,
                body,
                ..
            } = &instrs[k]
            else {
                unreachable!()
            };
            if all_values(body) {
                if body.len() != *arity as usize {
                    return Err(RuntimeError::stuck(
                        "function returned wrong number of values",
                    ));
                }
                let vals = take_values(body);
                let repl: Vec<Instr> = vals.into_iter().map(Instr::Val).collect();
                instrs.splice(k..=k, repl);
                return Ok(SeqOut::Stepped);
            }
            if body.len() == 1 && matches!(body[0], Instr::Trap) {
                instrs[k] = Instr::Trap;
                return Ok(SeqOut::Stepped);
            }
            (*arity as usize, *fi)
        };
        let r = {
            let Instr::LocalFrame {
                locals: flocals,
                body,
                ..
            } = &mut instrs[k]
            else {
                unreachable!()
            };
            step_seq(store, modules, hosts, fi, flocals, body, note)?
        };
        return match r {
            SeqOut::Stepped => Ok(SeqOut::Stepped),
            SeqOut::TrapNow => {
                instrs[k] = Instr::Trap;
                Ok(SeqOut::Stepped)
            }
            SeqOut::Br(..) => Err(RuntimeError::stuck("br escaped a function body")),
            SeqOut::Ret(vals) => {
                if vals.len() < arity {
                    return Err(RuntimeError::stuck("return carries too few values"));
                }
                let keep = vals[vals.len() - arity..].to_vec();
                let repl: Vec<Instr> = keep.into_iter().map(Instr::Val).collect();
                instrs.splice(k..=k, repl);
                Ok(SeqOut::Stepped)
            }
            SeqOut::Done => unreachable!("body had a non-value instruction"),
        };
    }

    // Branches and returns collect their value prefix and propagate.
    match &instrs[k] {
        Instr::Br(j) => {
            let j = *j;
            let vals = take_values(&instrs[..k]);
            return Ok(SeqOut::Br(j, vals));
        }
        Instr::Return => {
            let vals = take_values(&instrs[..k]);
            return Ok(SeqOut::Ret(vals));
        }
        _ => {}
    }

    // Everything else is a primitive redex consuming `n` values directly
    // before position `k`.
    let e = instrs[k].clone();
    let e_str = e.to_string();
    let prefix = k; // number of values available
    let consume_and_replace =
        move |instrs: &mut Vec<Instr>, n: usize, repl: Vec<Instr>| -> Result<(), RuntimeError> {
            if prefix < n {
                return Err(RuntimeError::stuck(format!(
                    "instruction {e_str} needs {n} operands, has {prefix}"
                )));
            }
            instrs.splice(k - n..=k, repl);
            Ok(())
        };
    let val = |instrs: &Vec<Instr>, back: usize| -> Value {
        match &instrs[k - back] {
            Instr::Val(v) => v.clone(),
            _ => unreachable!("prefix is values"),
        }
    };
    let trap = |instrs: &mut Vec<Instr>, n: usize, note: &mut Option<String>, why: String| {
        *note = Some(why);
        instrs.splice(k - n..=k, [Instr::Trap]);
    };

    match e {
        Instr::Val(_)
        | Instr::Label { .. }
        | Instr::LocalFrame { .. }
        | Instr::Trap
        | Instr::Br(_)
        | Instr::Return => unreachable!("handled above"),

        Instr::Nop => consume_and_replace(instrs, 0, vec![])?,
        Instr::Unreachable => {
            *note = Some("unreachable executed".into());
            consume_and_replace(instrs, 0, vec![Instr::Trap])?;
        }
        Instr::Drop => consume_and_replace(instrs, 1, vec![])?,
        Instr::Select => {
            let c = val(instrs, 1)
                .as_i32()
                .ok_or_else(|| RuntimeError::stuck("select condition not i32"))?;
            let v2 = val(instrs, 2);
            let v1 = val(instrs, 3);
            let keep = if c != 0 { v1 } else { v2 };
            consume_and_replace(instrs, 3, vec![Instr::Val(keep)])?;
        }
        Instr::Num(n) => {
            let a = num::arity(n);
            let mut ops = Vec::with_capacity(a);
            for i in (1..=a).rev() {
                ops.push(val(instrs, i));
            }
            match num::eval(n, &ops) {
                Ok(v) => consume_and_replace(instrs, a, vec![Instr::Val(v)])?,
                Err(RuntimeError::Trap { reason }) => trap(instrs, a, note, reason),
                Err(other) => return Err(other),
            }
        }
        Instr::BlockI(b, body) => {
            let n = b.arrow.params.len();
            let arity = b.arrow.results.len() as u32;
            let mut inner: Vec<Instr> = (0..n)
                .rev()
                .map(|i| Instr::Val(val(instrs, i + 1)))
                .collect();
            inner.extend(body);
            consume_and_replace(
                instrs,
                n,
                vec![Instr::Label {
                    arity,
                    cont: vec![],
                    body: inner,
                }],
            )?;
        }
        Instr::LoopI(arrow, body) => {
            let n = arrow.params.len();
            let arity = n as u32; // a br to a loop label re-enters with the params
            let this_loop = Instr::LoopI(arrow, body.clone());
            let mut inner: Vec<Instr> = (0..n)
                .rev()
                .map(|i| Instr::Val(val(instrs, i + 1)))
                .collect();
            inner.extend(body);
            consume_and_replace(
                instrs,
                n,
                vec![Instr::Label {
                    arity,
                    cont: vec![this_loop],
                    body: inner,
                }],
            )?;
        }
        Instr::IfI(b, then_b, else_b) => {
            let c = val(instrs, 1)
                .as_i32()
                .ok_or_else(|| RuntimeError::stuck("if condition not i32"))?;
            let n = b.arrow.params.len();
            let arity = b.arrow.results.len() as u32;
            let chosen = if c != 0 { then_b } else { else_b };
            let mut inner: Vec<Instr> = (0..n)
                .rev()
                .map(|i| Instr::Val(val(instrs, i + 2)))
                .collect();
            inner.extend(chosen);
            consume_and_replace(
                instrs,
                n + 1,
                vec![Instr::Label {
                    arity,
                    cont: vec![],
                    body: inner,
                }],
            )?;
        }
        Instr::BrIf(j) => {
            let c = val(instrs, 1)
                .as_i32()
                .ok_or_else(|| RuntimeError::stuck("br_if condition not i32"))?;
            let repl = if c != 0 { vec![Instr::Br(j)] } else { vec![] };
            consume_and_replace(instrs, 1, repl)?;
        }
        Instr::BrTable(targets, default) => {
            let c = val(instrs, 1)
                .as_i32()
                .ok_or_else(|| RuntimeError::stuck("br_table index not i32"))?;
            let t = targets.get(c as usize).copied().unwrap_or(default);
            consume_and_replace(instrs, 1, vec![Instr::Br(t)])?;
        }
        Instr::GetLocal(i, q) => {
            let (v, _) = locals
                .get(i as usize)
                .cloned()
                .ok_or_else(|| RuntimeError::stuck(format!("get_local {i}: no such slot")))?;
            if !matches!(q, Qual::Unr) {
                // Linear read: strongly update the slot to unit (§2.1).
                locals[i as usize].0 = Value::Unit;
            }
            consume_and_replace(instrs, 0, vec![Instr::Val(v)])?;
        }
        Instr::SetLocal(i) => {
            let v = val(instrs, 1);
            if locals.len() <= i as usize {
                return Err(RuntimeError::stuck(format!("set_local {i}: no such slot")));
            }
            locals[i as usize].0 = v;
            consume_and_replace(instrs, 1, vec![])?;
        }
        Instr::TeeLocal(i) => {
            let v = val(instrs, 1);
            if locals.len() <= i as usize {
                return Err(RuntimeError::stuck(format!("tee_local {i}: no such slot")));
            }
            locals[i as usize].0 = v.clone();
            consume_and_replace(instrs, 1, vec![Instr::Val(v)])?;
        }
        Instr::GetGlobal(i) => {
            let v = store
                .insts
                .get(inst as usize)
                .and_then(|m| m.globals.get(i as usize))
                .cloned()
                .ok_or_else(|| RuntimeError::stuck(format!("get_global {i}: no such global")))?;
            consume_and_replace(instrs, 0, vec![Instr::Val(v)])?;
        }
        Instr::SetGlobal(i) => {
            let v = val(instrs, 1);
            let slot = store
                .insts
                .get_mut(inst as usize)
                .and_then(|m| m.globals.get_mut(i as usize))
                .ok_or_else(|| RuntimeError::stuck(format!("set_global {i}: no such global")))?;
            *slot = v;
            consume_and_replace(instrs, 1, vec![])?;
        }
        // Type-level instructions are computationally irrelevant.
        Instr::Qualify(_) | Instr::RefDemote => consume_and_replace(instrs, 0, vec![])?,
        Instr::CodeRefI(i) => {
            consume_and_replace(
                instrs,
                0,
                vec![Instr::Val(Value::CodeRef {
                    inst,
                    table_idx: i,
                    indices: vec![],
                })],
            )?;
        }
        Instr::Inst(zs) => {
            let v = val(instrs, 1);
            let Value::CodeRef {
                inst: ci,
                table_idx,
                mut indices,
            } = v
            else {
                return Err(RuntimeError::stuck("inst on non-coderef"));
            };
            indices.extend(zs);
            consume_and_replace(
                instrs,
                1,
                vec![Instr::Val(Value::CodeRef {
                    inst: ci,
                    table_idx,
                    indices,
                })],
            )?;
        }
        Instr::CallIndirect => {
            let v = val(instrs, 1);
            let Value::CodeRef {
                inst: ci,
                table_idx,
                indices,
            } = v
            else {
                return Err(RuntimeError::stuck("call_indirect on non-coderef"));
            };
            let cl = store
                .insts
                .get(ci as usize)
                .and_then(|m| m.table.get(table_idx as usize))
                .copied()
                .ok_or_else(|| RuntimeError::stuck("call_indirect: bad table entry"))?;
            consume_and_replace(
                instrs,
                1,
                vec![Instr::CallAdmin {
                    inst: cl.inst,
                    func: cl.func,
                    indices,
                }],
            )?;
        }
        Instr::Call(j, zs) => {
            let cl: Closure = store
                .insts
                .get(inst as usize)
                .and_then(|m| m.funcs.get(j as usize))
                .copied()
                .ok_or_else(|| RuntimeError::stuck(format!("call {j}: no such function")))?;
            consume_and_replace(
                instrs,
                0,
                vec![Instr::CallAdmin {
                    inst: cl.inst,
                    func: cl.func,
                    indices: zs,
                }],
            )?;
        }
        Instr::CallAdmin {
            inst: ci,
            func: fi,
            indices,
        } => {
            // Host interception: a call whose closure targets a registered
            // host function runs the Rust closure instead of a RichWasm
            // body. This sits on the `call` administrative step, so every
            // route to the closure (direct call, resolved import,
            // `call_indirect` through a table entry) is covered.
            if let Some(h) = hosts.get(ci, fi) {
                if !indices.is_empty() {
                    return Err(RuntimeError::stuck(
                        "host functions are monomorphic; `inst` indices are not applicable",
                    ));
                }
                let n = h.ty.arrow.params.len();
                if prefix < n {
                    return Err(RuntimeError::stuck("host call with too few arguments"));
                }
                let mut args = Vec::with_capacity(n);
                for i in (1..=n).rev() {
                    args.push(val(instrs, i));
                }
                match (h.imp)(&args) {
                    Ok(vals) => {
                        // The host lives outside the checked world: re-check
                        // its results against the declared type (count and,
                        // shallowly, value shape) before splicing them into
                        // the typed instruction stream — a misbehaving
                        // closure traps, same as on the Wasm backend.
                        if vals.len() != h.ty.arrow.results.len() {
                            trap(
                                instrs,
                                n,
                                note,
                                format!(
                                    "host function error: returned {} values, its type \
                                     declares {}",
                                    vals.len(),
                                    h.ty.arrow.results.len()
                                ),
                            );
                        } else if let Some((v, t)) = vals
                            .iter()
                            .zip(&h.ty.arrow.results)
                            .find(|(v, t)| !host_result_matches(v, t))
                        {
                            trap(
                                instrs,
                                n,
                                note,
                                format!("host function error: returned {v}, its type declares {t}"),
                            );
                        } else {
                            consume_and_replace(
                                instrs,
                                n,
                                vals.into_iter().map(Instr::Val).collect(),
                            )?;
                        }
                    }
                    Err(msg) => trap(instrs, n, note, format!("host function error: {msg}")),
                }
                return Ok(SeqOut::Stepped);
            }
            let m = modules
                .get(ci as usize)
                .ok_or_else(|| RuntimeError::BadStore {
                    reason: format!("no module {ci}"),
                })?;
            let Some(Func::Defined {
                ty,
                locals: lsizes,
                body,
                ..
            }) = m.funcs.get(fi as usize)
            else {
                return Err(RuntimeError::BadStore {
                    reason: format!("call target {ci}.{fi} is not a defined function"),
                });
            };
            let env =
                SubstEnv::for_instantiation(&ty.quants, &indices).map_err(RuntimeError::stuck)?;
            let n = ty.arrow.params.len();
            if prefix < n {
                return Err(RuntimeError::stuck("call with too few arguments"));
            }
            let mut frame_locals: Vec<(Value, Size)> = Vec::with_capacity(n + lsizes.len());
            for i in (1..=n).rev() {
                let v = val(instrs, i);
                let pty = subst_type(&ty.arrow.params[n - i], &env);
                let size = size_of_type(&crate::env::KindCtx::new(), &pty)
                    .unwrap_or(Size::Const(size_of_value(&v)));
                frame_locals.push((v, size));
            }
            for sz in lsizes {
                frame_locals.push((Value::Unit, subst_size(sz, &env)));
            }
            let body = subst_instrs(body, &env);
            let arity = ty.arrow.results.len() as u32;
            consume_and_replace(
                instrs,
                n,
                vec![Instr::LocalFrame {
                    arity,
                    inst: ci,
                    locals: frame_locals,
                    body,
                }],
            )?;
        }
        Instr::RecFold(_) => {
            let v = val(instrs, 1);
            consume_and_replace(instrs, 1, vec![Instr::Val(Value::Fold(Box::new(v)))])?;
        }
        Instr::RecUnfold => {
            let v = val(instrs, 1);
            let Value::Fold(inner) = v else {
                return Err(RuntimeError::stuck("rec.unfold on non-fold"));
            };
            consume_and_replace(instrs, 1, vec![Instr::Val(*inner)])?;
        }
        Instr::MemPack(l) => {
            let v = val(instrs, 1);
            let Loc::Concrete(cl) = l else {
                return Err(RuntimeError::stuck(
                    "mem.pack of an abstract location at runtime",
                ));
            };
            consume_and_replace(instrs, 1, vec![Instr::Val(Value::MemPack(cl, Box::new(v)))])?;
        }
        Instr::MemUnpack(b, body) => {
            let pkg = val(instrs, 1);
            let Value::MemPack(cl, inner) = pkg else {
                return Err(RuntimeError::stuck("mem.unpack on non-package"));
            };
            let n = b.arrow.params.len();
            let arity = b.arrow.results.len() as u32;
            let opened = subst_instrs(&body, &SubstEnv::loc(Loc::Concrete(cl)));
            let mut seq: Vec<Instr> = (0..n)
                .rev()
                .map(|i| Instr::Val(val(instrs, i + 2)))
                .collect();
            seq.push(Instr::Val(*inner));
            seq.extend(opened);
            consume_and_replace(
                instrs,
                n + 1,
                vec![Instr::Label {
                    arity,
                    cont: vec![],
                    body: seq,
                }],
            )?;
        }
        Instr::Group(n, _) => {
            let n = n as usize;
            // back = n is the deepest operand, so this is bottom → top.
            let vs: Vec<Value> = (1..=n).rev().map(|i| val(instrs, i)).collect();
            consume_and_replace(instrs, n, vec![Instr::Val(Value::Prod(vs))])?;
        }
        Instr::Ungroup => {
            let v = val(instrs, 1);
            let Value::Prod(vs) = v else {
                return Err(RuntimeError::stuck("seq.ungroup on non-tuple"));
            };
            consume_and_replace(instrs, 1, vs.into_iter().map(Instr::Val).collect())?;
        }
        Instr::CapSplit => {
            let _cap = val(instrs, 1);
            consume_and_replace(
                instrs,
                1,
                vec![Instr::Val(Value::Cap), Instr::Val(Value::Own)],
            )?;
        }
        Instr::CapJoin => {
            consume_and_replace(instrs, 2, vec![Instr::Val(Value::Cap)])?;
        }
        Instr::RefSplit => {
            let v = val(instrs, 1);
            let Value::Ref(l) = v else {
                return Err(RuntimeError::stuck("ref.split on non-ref"));
            };
            consume_and_replace(
                instrs,
                1,
                vec![Instr::Val(Value::Cap), Instr::Val(Value::Ptr(l))],
            )?;
        }
        Instr::RefJoin => {
            let p = val(instrs, 1);
            let Value::Ptr(l) = p else {
                return Err(RuntimeError::stuck("ref.join: top of stack not a pointer"));
            };
            consume_and_replace(instrs, 2, vec![Instr::Val(Value::Ref(l))])?;
        }
        Instr::StructMalloc(szs, q) => {
            let n = szs.len();
            let mut vs: Vec<Value> = (1..=n).map(|i| val(instrs, i)).collect();
            vs.reverse();
            let total: u64 = szs.iter().map(|s| s.eval_closed().unwrap_or(0)).sum();
            let hv = HeapValue::Struct(vs);
            consume_and_replace(
                instrs,
                n,
                vec![Instr::MallocAdmin(Size::Const(total), hv, q)],
            )?;
        }
        Instr::VariantMalloc(i, _, q) => {
            let v = val(instrs, 1);
            let sz = 32 + size_of_value(&v);
            let hv = HeapValue::Variant(i, Box::new(v));
            consume_and_replace(instrs, 1, vec![Instr::MallocAdmin(Size::Const(sz), hv, q)])?;
        }
        Instr::ArrayMalloc(q) => {
            let len = val(instrs, 1)
                .as_num()
                .map(|(_, b)| b as u32)
                .ok_or_else(|| RuntimeError::stuck("array.malloc length not numeric"))?;
            let fill = val(instrs, 2);
            let sz = (len as u64) * size_of_value(&fill);
            let hv = HeapValue::Array(vec![fill; len as usize]);
            consume_and_replace(instrs, 2, vec![Instr::MallocAdmin(Size::Const(sz), hv, q)])?;
        }
        Instr::ExistPack(p, psi, q) => {
            let v = val(instrs, 1);
            let sz = 64 + size_of_value(&v);
            let hv = HeapValue::Pack(p, Box::new(v), psi);
            consume_and_replace(instrs, 1, vec![Instr::MallocAdmin(Size::Const(sz), hv, q)])?;
        }
        Instr::MallocAdmin(sz, hv, q) => {
            let mem = match q {
                Qual::Lin => Mem::Lin,
                Qual::Unr => Mem::Unr,
                Qual::Var(_) => {
                    return Err(RuntimeError::stuck("malloc with unresolved qualifier"));
                }
            };
            let bits = sz.eval_closed().unwrap_or_else(|| size_of_heap_value(&hv));
            let l = store.mem.alloc(mem, hv, bits);
            consume_and_replace(
                instrs,
                0,
                vec![Instr::Val(Value::MemPack(l, Box::new(Value::Ref(l))))],
            )?;
        }
        Instr::StructFree | Instr::ArrayFree => {
            consume_and_replace(instrs, 0, vec![Instr::Free])?;
        }
        Instr::Free => {
            let v = val(instrs, 1);
            let Value::Ref(l) = v else {
                return Err(RuntimeError::stuck("free on non-ref"));
            };
            if l.mem != Mem::Lin {
                trap(
                    instrs,
                    1,
                    note,
                    "free of unrestricted (GC-owned) memory".into(),
                );
            } else if store.mem.free_lin(l.idx) {
                consume_and_replace(instrs, 1, vec![])?;
            } else {
                trap(
                    instrs,
                    1,
                    note,
                    format!("double free / dangling free of {l}"),
                );
            }
        }
        Instr::StructGet(i) => {
            let v = val(instrs, 1);
            let l = ref_loc(&v)?;
            let cell = read_cell(store, l, note, instrs, 1)?;
            let Some(cell) = cell else {
                return Ok(SeqOut::Stepped);
            };
            let HeapValue::Struct(fields) = &cell.hv else {
                return Err(RuntimeError::stuck("struct.get on non-struct cell"));
            };
            let fv = fields
                .get(i as usize)
                .cloned()
                .ok_or_else(|| RuntimeError::stuck("struct.get: field out of range"))?;
            consume_and_replace(instrs, 1, vec![Instr::Val(Value::Ref(l)), Instr::Val(fv)])?;
        }
        Instr::StructSet(i) => {
            let newv = val(instrs, 1);
            let rv = val(instrs, 2);
            let l = ref_loc(&rv)?;
            let Some(cell) = store.mem.get_mut(l) else {
                trap(instrs, 2, note, format!("use after free: {l}"));
                return Ok(SeqOut::Stepped);
            };
            let HeapValue::Struct(fields) = &mut cell.hv else {
                return Err(RuntimeError::stuck("struct.set on non-struct cell"));
            };
            let slot = fields
                .get_mut(i as usize)
                .ok_or_else(|| RuntimeError::stuck("struct.set: field out of range"))?;
            *slot = newv;
            consume_and_replace(instrs, 2, vec![Instr::Val(Value::Ref(l))])?;
        }
        Instr::StructSwap(i) => {
            let newv = val(instrs, 1);
            let rv = val(instrs, 2);
            let l = ref_loc(&rv)?;
            let Some(cell) = store.mem.get_mut(l) else {
                trap(instrs, 2, note, format!("use after free: {l}"));
                return Ok(SeqOut::Stepped);
            };
            let HeapValue::Struct(fields) = &mut cell.hv else {
                return Err(RuntimeError::stuck("struct.swap on non-struct cell"));
            };
            let slot = fields
                .get_mut(i as usize)
                .ok_or_else(|| RuntimeError::stuck("struct.swap: field out of range"))?;
            let old = std::mem::replace(slot, newv);
            consume_and_replace(instrs, 2, vec![Instr::Val(Value::Ref(l)), Instr::Val(old)])?;
        }
        Instr::VariantCase(q, _, b, bodies) => {
            let n = b.arrow.params.len();
            let arity = b.arrow.results.len() as u32;
            let rv = val(instrs, n + 1);
            let l = ref_loc(&rv)?;
            let Some(cell) = store.mem.get(l) else {
                trap(instrs, n + 1, note, format!("use after free: {l}"));
                return Ok(SeqOut::Stepped);
            };
            let HeapValue::Variant(tag, payload) = &cell.hv else {
                return Err(RuntimeError::stuck("variant.case on non-variant cell"));
            };
            let tag = *tag as usize;
            let payload = (**payload).clone();
            let branch = bodies
                .get(tag)
                .cloned()
                .ok_or_else(|| RuntimeError::stuck("variant.case: tag out of range"))?;
            let mut seq: Vec<Instr> = (0..n)
                .rev()
                .map(|i| Instr::Val(val(instrs, i + 1)))
                .collect();
            seq.push(Instr::Val(payload));
            seq.extend(branch);
            let label = Instr::Label {
                arity,
                cont: vec![],
                body: seq,
            };
            let linear = matches!(q, Qual::Lin);
            let repl = if linear {
                // The reference is consumed and the cell freed (Fig. 4).
                vec![Instr::Val(Value::Ref(l)), Instr::Free, label]
            } else {
                vec![Instr::Val(Value::Ref(l)), label]
            };
            consume_and_replace(instrs, n + 1, repl)?;
        }
        Instr::ExistUnpack(q, _, b, body) => {
            let n = b.arrow.params.len();
            let arity = b.arrow.results.len() as u32;
            let rv = val(instrs, n + 1);
            let l = ref_loc(&rv)?;
            let Some(cell) = store.mem.get(l) else {
                trap(instrs, n + 1, note, format!("use after free: {l}"));
                return Ok(SeqOut::Stepped);
            };
            let HeapValue::Pack(p, inner, _) = &cell.hv else {
                return Err(RuntimeError::stuck("exist.unpack on non-package cell"));
            };
            let p = p.clone();
            let inner = (**inner).clone();
            let opened = subst_instrs(&body, &SubstEnv::pretype(p));
            let mut seq: Vec<Instr> = (0..n)
                .rev()
                .map(|i| Instr::Val(val(instrs, i + 1)))
                .collect();
            seq.push(Instr::Val(inner));
            seq.extend(opened);
            let label = Instr::Label {
                arity,
                cont: vec![],
                body: seq,
            };
            let repl = if matches!(q, Qual::Lin) {
                vec![Instr::Val(Value::Ref(l)), Instr::Free, label]
            } else {
                vec![Instr::Val(Value::Ref(l)), label]
            };
            consume_and_replace(instrs, n + 1, repl)?;
        }
        Instr::ArrayGet => {
            let idx = val(instrs, 1)
                .as_num()
                .map(|(_, b)| b as usize)
                .ok_or_else(|| RuntimeError::stuck("array.get index not numeric"))?;
            let rv = val(instrs, 2);
            let l = ref_loc(&rv)?;
            let Some(cell) = store.mem.get(l) else {
                trap(instrs, 2, note, format!("use after free: {l}"));
                return Ok(SeqOut::Stepped);
            };
            let HeapValue::Array(items) = &cell.hv else {
                return Err(RuntimeError::stuck("array.get on non-array cell"));
            };
            match items.get(idx) {
                Some(v) => {
                    let v = v.clone();
                    consume_and_replace(instrs, 2, vec![Instr::Val(Value::Ref(l)), Instr::Val(v)])?;
                }
                // Out-of-bounds access traps (Fig. 4).
                None => trap(instrs, 2, note, format!("array.get out of bounds ({idx})")),
            }
        }
        Instr::ArraySet => {
            let newv = val(instrs, 1);
            let idx = val(instrs, 2)
                .as_num()
                .map(|(_, b)| b as usize)
                .ok_or_else(|| RuntimeError::stuck("array.set index not numeric"))?;
            let rv = val(instrs, 3);
            let l = ref_loc(&rv)?;
            let Some(cell) = store.mem.get_mut(l) else {
                trap(instrs, 3, note, format!("use after free: {l}"));
                return Ok(SeqOut::Stepped);
            };
            let HeapValue::Array(items) = &mut cell.hv else {
                return Err(RuntimeError::stuck("array.set on non-array cell"));
            };
            match items.get_mut(idx) {
                Some(slot) => {
                    *slot = newv;
                    consume_and_replace(instrs, 3, vec![Instr::Val(Value::Ref(l))])?;
                }
                None => trap(instrs, 3, note, format!("array.set out of bounds ({idx})")),
            }
        }
    }
    Ok(SeqOut::Stepped)
}

/// Shallow shape check for host-function results: the tag of a scalar
/// value must match the declared pretype exactly (host results are
/// spliced into the *typed* instruction stream, so a wrong `NumType` tag
/// would break later numeric steps). Structured declared types cannot be
/// validated without the checker; they are accepted as-is.
fn host_result_matches(v: &Value, t: &crate::syntax::Type) -> bool {
    use crate::syntax::Pretype;
    match &*t.pre {
        Pretype::Unit => matches!(v, Value::Unit),
        Pretype::Num(nt) => matches!(v, Value::Num(vt, _) if vt == nt),
        _ => true,
    }
}

fn ref_loc(v: &Value) -> Result<ConcreteLoc, RuntimeError> {
    v.as_ref_loc()
        .ok_or_else(|| RuntimeError::stuck(format!("expected a reference, got {v}")))
}

/// Reads a cell, trapping (by mutating the sequence) on dangling
/// references. Returns `Ok(None)` if a trap was emitted.
fn read_cell<'s>(
    store: &'s Store,
    l: ConcreteLoc,
    note: &mut Option<String>,
    instrs: &mut Vec<Instr>,
    consumed: usize,
) -> Result<Option<&'s crate::interp::store::Cell>, RuntimeError> {
    let k = instrs
        .iter()
        .position(|e| !is_value(e))
        .expect("redex exists");
    match store.mem.get(l) {
        Some(c) => Ok(Some(c)),
        None => {
            *note = Some(format!("use after free: {l}"));
            instrs.splice(k - consumed..=k, [Instr::Trap]);
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::NumType;

    fn run_to_end(cfg: &mut Config) -> Outcome {
        let mut store = Store::default();
        let modules: Vec<Module> = vec![];
        for _ in 0..10_000 {
            match step_config(&mut store, &modules, &HostFuncs::default(), cfg).unwrap() {
                Outcome::Stepped => continue,
                o => return o,
            }
        }
        panic!("did not terminate");
    }

    #[test]
    fn arithmetic_reduces() {
        let mut cfg = Config {
            instrs: vec![
                Instr::i32(6),
                Instr::i32(7),
                Instr::Num(NumInstr::IntBinop(
                    NumType::I32,
                    crate::syntax::instr::IntBinop::Mul,
                )),
            ],
            ..Config::default()
        };
        assert_eq!(run_to_end(&mut cfg), Outcome::Done);
        assert_eq!(cfg.results().unwrap(), vec![Value::i32(42)]);
    }

    use crate::syntax::instr::NumInstr;

    #[test]
    fn div_by_zero_traps() {
        let mut cfg = Config {
            instrs: vec![
                Instr::i32(1),
                Instr::i32(0),
                Instr::Num(NumInstr::IntBinop(
                    NumType::I32,
                    crate::syntax::instr::IntBinop::Div(crate::syntax::instr::Sign::S),
                )),
            ],
            ..Config::default()
        };
        assert_eq!(run_to_end(&mut cfg), Outcome::Trapped);
        assert!(cfg
            .trap_reason
            .as_deref()
            .unwrap()
            .contains("divide by zero"));
    }

    #[test]
    fn block_and_br() {
        // block { 5; br 0; 7 } → 5
        let mut cfg = Config {
            instrs: vec![Instr::BlockI(
                crate::syntax::instr::Block::new(
                    crate::syntax::ArrowType::new(
                        vec![],
                        vec![crate::syntax::Type::num(NumType::I32)],
                    ),
                    vec![],
                ),
                vec![Instr::i32(5), Instr::Br(0), Instr::i32(7)],
            )],
            ..Config::default()
        };
        assert_eq!(run_to_end(&mut cfg), Outcome::Done);
        assert_eq!(cfg.results().unwrap(), vec![Value::i32(5)]);
    }

    #[test]
    fn struct_malloc_get_free() {
        let mut store = Store::default();
        let modules: Vec<Module> = vec![];
        let mut cfg = Config {
            instrs: vec![
                Instr::i32(9),
                Instr::StructMalloc(vec![Size::Const(32)], Qual::Lin),
            ],
            ..Config::default()
        };
        loop {
            match step_config(&mut store, &modules, &HostFuncs::default(), &mut cfg).unwrap() {
                Outcome::Stepped => continue,
                Outcome::Done => break,
                Outcome::Trapped => panic!("trap"),
            }
        }
        let vals = cfg.results().unwrap();
        assert_eq!(vals.len(), 1);
        let Value::MemPack(l, inner) = &vals[0] else {
            panic!("expected package")
        };
        assert_eq!(**inner, Value::Ref(*l));
        assert_eq!(store.mem.lin.len(), 1);
        // Free it.
        let mut cfg = Config {
            instrs: vec![Instr::Val(Value::Ref(*l)), Instr::Free],
            ..Config::default()
        };
        loop {
            match step_config(&mut store, &modules, &HostFuncs::default(), &mut cfg).unwrap() {
                Outcome::Stepped => continue,
                Outcome::Done => break,
                Outcome::Trapped => panic!("trap"),
            }
        }
        assert_eq!(store.mem.lin.len(), 0);
        // Double free traps.
        let mut cfg = Config {
            instrs: vec![Instr::Val(Value::Ref(*l)), Instr::Free],
            ..Config::default()
        };
        loop {
            match step_config(&mut store, &modules, &HostFuncs::default(), &mut cfg).unwrap() {
                Outcome::Stepped => continue,
                Outcome::Done => panic!("double free must trap"),
                Outcome::Trapped => break,
            }
        }
        assert!(cfg.trap_reason.unwrap().contains("double free"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::syntax::instr::{Block as RwBlock, IntBinop, NumInstr};
    use crate::syntax::{ArrowType, NumType, Type};

    fn drive(store: &mut Store, cfg: &mut Config) -> Outcome {
        let modules: Vec<Module> = vec![];
        for _ in 0..100_000 {
            match step_config(store, &modules, &HostFuncs::default(), cfg).unwrap() {
                Outcome::Stepped => continue,
                o => return o,
            }
        }
        panic!("did not terminate");
    }

    #[test]
    fn br_table_selects_target() {
        // block { block { 0/1/2; br_table [0,1] 1 } push 10 } push 20 …
        for (sel, expect) in [(0, 30), (1, 20), (7, 20)] {
            let mut store = Store::default();
            let inner = Instr::BlockI(
                RwBlock::new(ArrowType::new(vec![], vec![]), vec![]),
                vec![Instr::i32(sel), Instr::BrTable(vec![0, 1], 1)],
            );
            let outer = Instr::BlockI(
                RwBlock::new(
                    ArrowType::new(vec![], vec![Type::num(NumType::I32)]),
                    vec![],
                ),
                vec![
                    inner,
                    // Fell out of the inner block (sel == 0):
                    Instr::i32(30),
                    Instr::Br(0),
                ],
            );
            let mut cfg = Config {
                instrs: vec![
                    outer,
                    // If the outer block produced nothing… it always produces
                    // one value; add 20 only when inner br went to label 1.
                ],
                ..Config::default()
            };
            // For sel != 0 the br_table exits both blocks, so the outer
            // block's result must come from somewhere: restructure — the
            // outer label type is [i32], so a br 1 from the inner body
            // needs an i32 on the stack. Push it first.
            let Instr::BlockI(b, body) = &mut cfg.instrs[0] else {
                unreachable!()
            };
            let Instr::BlockI(_, inner_body) = &mut body[0] else {
                unreachable!()
            };
            inner_body.insert(0, Instr::i32(20));
            let _ = b;
            assert_eq!(drive(&mut store, &mut cfg), Outcome::Done);
            assert_eq!(cfg.results().unwrap(), vec![Value::i32(expect)]);
        }
    }

    #[test]
    fn select_picks_by_condition() {
        for (c, expect) in [(1, 10), (0, 20)] {
            let mut store = Store::default();
            let mut cfg = Config {
                instrs: vec![Instr::i32(10), Instr::i32(20), Instr::i32(c), Instr::Select],
                ..Config::default()
            };
            assert_eq!(drive(&mut store, &mut cfg), Outcome::Done);
            assert_eq!(cfg.results().unwrap(), vec![Value::i32(expect)]);
        }
    }

    #[test]
    fn exist_pack_unpack_reduction() {
        use crate::syntax::{HeapType, Pretype, Qual};
        let psi = HeapType::Exists(Qual::Unr, Size::Const(64), Box::new(Pretype::Var(0).unr()));
        let mut store = Store::default();
        let mut cfg = Config {
            instrs: vec![
                Instr::i32(9),
                Instr::ExistPack(Pretype::Num(NumType::I32), psi.clone(), Qual::Lin),
                Instr::MemUnpack(
                    RwBlock::new(
                        ArrowType::new(vec![], vec![Type::num(NumType::I32)]),
                        vec![],
                    ),
                    vec![Instr::ExistUnpack(
                        Qual::Lin,
                        psi,
                        RwBlock::new(
                            ArrowType::new(vec![], vec![Type::num(NumType::I32)]),
                            vec![],
                        ),
                        vec![
                            Instr::i32(1),
                            Instr::Num(NumInstr::IntBinop(NumType::I32, IntBinop::Add)),
                        ],
                    )],
                ),
            ],
            ..Config::default()
        };
        assert_eq!(drive(&mut store, &mut cfg), Outcome::Done);
        assert_eq!(cfg.results().unwrap(), vec![Value::i32(10)]);
        // The linear unpack freed the package cell.
        assert_eq!(store.mem.lin.len(), 0);
        assert_eq!(store.mem.frees, 1);
    }

    #[test]
    fn variant_case_reduction_both_quals() {
        use crate::syntax::{HeapType, Qual};
        let cases = vec![Type::num(NumType::I32), Type::unit()];
        for (q, leftover) in [(Qual::Lin, 0usize), (Qual::Unr, 1usize)] {
            let mut store = Store::default();
            // Both qualifiers use the same case-result arrow; only the
            // leftover reference differs.
            let case_results = ArrowType::new(vec![], vec![Type::num(NumType::I32)]);
            let mut body = vec![Instr::VariantCase(
                q,
                HeapType::Variant(cases.clone()),
                RwBlock::new(case_results, vec![]),
                vec![vec![], vec![Instr::Drop, Instr::i32(-1)]],
            )];
            if q == Qual::Unr {
                // Ref comes back under the result: swap and drop it.
                body = vec![
                    body.remove(0),
                    Instr::SetLocal(0),
                    Instr::Drop,
                    Instr::GetLocal(0, Qual::Unr),
                ];
            }
            let alloc_q = q;
            let mut cfg = Config {
                locals: vec![(Value::Unit, Size::Const(32))],
                instrs: vec![
                    Instr::i32(5),
                    Instr::VariantMalloc(0, cases.clone(), alloc_q),
                    Instr::MemUnpack(
                        RwBlock::new(
                            ArrowType::new(vec![], vec![Type::num(NumType::I32)]),
                            vec![],
                        ),
                        body,
                    ),
                ],
                ..Config::default()
            };
            assert_eq!(drive(&mut store, &mut cfg), Outcome::Done);
            assert_eq!(cfg.results().unwrap(), vec![Value::i32(5)]);
            assert_eq!(store.mem.live(), leftover, "qual {q}");
        }
    }

    #[test]
    fn array_oob_traps_cleanly() {
        let mut store = Store::default();
        let mut cfg = Config {
            instrs: vec![
                Instr::i32(0),
                Instr::Val(Value::u32(2)),
                Instr::ArrayMalloc(Qual::Lin),
                Instr::MemUnpack(
                    RwBlock::new(ArrowType::new(vec![], vec![]), vec![]),
                    vec![
                        Instr::Val(Value::u32(5)),
                        Instr::ArrayGet,
                        Instr::Drop,
                        Instr::ArrayFree,
                    ],
                ),
            ],
            ..Config::default()
        };
        assert_eq!(drive(&mut store, &mut cfg), Outcome::Trapped);
        assert!(cfg
            .trap_reason
            .as_deref()
            .unwrap()
            .contains("out of bounds"));
    }
}
