//! Error types for type checking and execution.

use std::fmt;

use crate::syntax::{ConcreteLoc, Qual, Size, Type};

/// An error raised by the RichWasm type checker.
///
/// Each variant corresponds to a failed premise of the paper's typing
/// rules; the `context` field (where present) names the instruction or
/// judgement that failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A de Bruijn index of some kind was out of range.
    UnboundVar {
        /// Which kind of variable ("location", "size", "qualifier",
        /// "pretype", "local", "global", "function", "label", "table").
        kind: &'static str,
        /// The offending index.
        index: u32,
    },
    /// A qualifier constraint `q1 ⪯ q2` could not be derived.
    QualNotLeq {
        /// The would-be smaller qualifier.
        lhs: Qual,
        /// The would-be larger qualifier.
        rhs: Qual,
        /// What was being checked.
        context: String,
    },
    /// A size constraint `sz1 ≤ sz2` could not be derived.
    SizeNotLeq {
        /// The would-be smaller size.
        lhs: Size,
        /// The would-be larger size.
        rhs: Size,
        /// What was being checked.
        context: String,
    },
    /// A value/stack type mismatch.
    Mismatch {
        /// The expected type (rendered).
        expected: String,
        /// The found type (rendered).
        found: String,
        /// What was being checked.
        context: String,
    },
    /// The operand stack was too short for an instruction.
    StackUnderflow {
        /// The instruction that needed more operands.
        context: String,
    },
    /// Values left on the stack at the end of a block do not match the
    /// block's declared result type.
    BlockResultMismatch {
        /// What was being checked.
        context: String,
    },
    /// A linear value would be duplicated, dropped, or jumped over.
    LinearityViolation {
        /// What was being checked.
        context: String,
    },
    /// A linear memory location was consumed more than once (violates the
    /// disjoint-union store-typing split `S = S₁ ⊎ S₂`).
    LinearLocReused(ConcreteLoc),
    /// A linear memory location was never consumed.
    LinearLocUnused(ConcreteLoc),
    /// A type failed well-formedness.
    IllFormed {
        /// Why.
        reason: String,
    },
    /// `no_caps` failed: a bare capability would be stored in memory.
    CapsInHeap {
        /// What was being checked.
        context: String,
    },
    /// A quantifier instantiation did not satisfy its constraints.
    BadInstantiation {
        /// Why.
        reason: String,
    },
    /// An import could not be resolved or its type did not match the
    /// export — the cross-language safety failure of §1.
    LinkError {
        /// Why.
        reason: String,
    },
    /// Anything else, with a description.
    Other(String),
}

impl TypeError {
    /// Shorthand for a [`TypeError::Mismatch`] from two types.
    pub fn mismatch(expected: &Type, found: &Type, context: impl Into<String>) -> TypeError {
        TypeError::Mismatch {
            expected: expected.to_string(),
            found: found.to_string(),
            context: context.into(),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVar { kind, index } => {
                write!(f, "unbound {kind} variable {index}")
            }
            TypeError::QualNotLeq { lhs, rhs, context } => {
                write!(f, "cannot derive {lhs} ⪯ {rhs} in {context}")
            }
            TypeError::SizeNotLeq { lhs, rhs, context } => {
                write!(f, "cannot derive {lhs} ≤ {rhs} in {context}")
            }
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            TypeError::StackUnderflow { context } => {
                write!(f, "operand stack underflow in {context}")
            }
            TypeError::BlockResultMismatch { context } => {
                write!(f, "block result mismatch in {context}")
            }
            TypeError::LinearityViolation { context } => {
                write!(f, "linearity violation: {context}")
            }
            TypeError::LinearLocReused(l) => {
                write!(f, "linear location {l} consumed more than once")
            }
            TypeError::LinearLocUnused(l) => {
                write!(f, "linear location {l} never consumed")
            }
            TypeError::IllFormed { reason } => write!(f, "ill-formed type: {reason}"),
            TypeError::CapsInHeap { context } => {
                write!(f, "bare capability may not be stored in memory: {context}")
            }
            TypeError::BadInstantiation { reason } => {
                write!(f, "bad quantifier instantiation: {reason}")
            }
            TypeError::LinkError { reason } => write!(f, "link error: {reason}"),
            TypeError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// An error raised by the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The configuration reduced to `trap`.
    Trap {
        /// Human-readable reason (out-of-bounds access, unreachable, …).
        reason: String,
    },
    /// The configuration is stuck: no reduction rule applies. For
    /// well-typed programs this never happens (progress).
    Stuck {
        /// A description of the redex that could not be reduced.
        reason: String,
    },
    /// The step budget was exhausted.
    OutOfFuel,
    /// A reference to a module/function/global that does not exist — a
    /// store inconsistency, not a source-program error.
    BadStore {
        /// Why.
        reason: String,
    },
}

impl RuntimeError {
    /// Shorthand for a trap with a reason.
    pub fn trap(reason: impl Into<String>) -> RuntimeError {
        RuntimeError::Trap {
            reason: reason.into(),
        }
    }

    /// Shorthand for a stuck configuration.
    pub fn stuck(reason: impl Into<String>) -> RuntimeError {
        RuntimeError::Stuck {
            reason: reason.into(),
        }
    }

    /// True when this error is fuel (step budget) exhaustion — an
    /// embedder resource-policy event, not a guest semantic failure.
    pub fn is_out_of_fuel(&self) -> bool {
        matches!(self, RuntimeError::OutOfFuel)
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Trap { reason } => write!(f, "trap: {reason}"),
            RuntimeError::Stuck { reason } => write!(f, "stuck configuration: {reason}"),
            RuntimeError::OutOfFuel => write!(f, "out of fuel"),
            RuntimeError::BadStore { reason } => write!(f, "store inconsistency: {reason}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Type;

    #[test]
    fn display_is_informative() {
        let e = TypeError::QualNotLeq {
            lhs: Qual::Lin,
            rhs: Qual::Unr,
            context: "drop".into(),
        };
        assert!(e.to_string().contains("lin ⪯ unr"));
        let e = TypeError::mismatch(&Type::unit(), &Type::unit(), "test");
        assert!(e.to_string().contains("expected"));
        let e = RuntimeError::trap("oob");
        assert!(e.to_string().contains("oob"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(TypeError::Other("x".into()));
        takes_err(RuntimeError::OutOfFuel);
    }
}
