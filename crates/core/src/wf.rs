//! Well-formedness of types (`F ⊢ τ type`), heap types, function types and
//! the `no_caps` judgement (paper §4).
//!
//! Well-formedness enforces:
//!
//! * all kind variables are in scope,
//! * **qualifier consistency**: a container's qualifier upper-bounds the
//!   qualifiers of its components (an unrestricted tuple may not contain a
//!   linear value — §2.1's motivating example for qualifier bounds),
//! * **memory consistency**: references/capabilities to the linear memory
//!   are linear, those to the unrestricted memory are unrestricted,
//! * pretype variables appear only at qualifiers above their declared
//!   lower bound,
//! * struct fields fit their declared slot sizes,
//! * recursive types are *guarded*: the bound variable occurs only behind
//!   a pointer indirection (so sizes stay well-defined).

use crate::env::{KindCtx, QualBounds, SizeBounds, TypeBound};
use crate::error::TypeError;
use crate::sizing::size_of_type;
use crate::solver::{qual_leq, size_leq};
use crate::syntax::{
    ArrowType, FunType, HeapType, Loc, Mem, Pretype, Qual, Quantifier, Size, Type,
};

/// Checks that a qualifier's variables are in scope.
pub fn wf_qual(ctx: &KindCtx, q: Qual) -> Result<(), TypeError> {
    match q {
        Qual::Var(i) if i >= ctx.num_quals() => Err(TypeError::UnboundVar {
            kind: "qualifier",
            index: i,
        }),
        _ => Ok(()),
    }
}

/// Checks that a size expression's variables are in scope.
pub fn wf_size(ctx: &KindCtx, s: &Size) -> Result<(), TypeError> {
    match s {
        Size::Var(i) if *i >= ctx.num_sizes() => Err(TypeError::UnboundVar {
            kind: "size",
            index: *i,
        }),
        Size::Var(_) | Size::Const(_) => Ok(()),
        Size::Plus(a, b) => {
            wf_size(ctx, a)?;
            wf_size(ctx, b)
        }
    }
}

/// Checks that a location's variables are in scope. Concrete locations are
/// always well-formed (they appear in runtime configurations).
pub fn wf_loc(ctx: &KindCtx, l: Loc) -> Result<(), TypeError> {
    match l {
        Loc::Var(i) if !ctx.loc_in_scope(i) => Err(TypeError::UnboundVar {
            kind: "location",
            index: i,
        }),
        _ => Ok(()),
    }
}

/// Checks `F ⊢ τ type`.
pub fn wf_type(ctx: &mut KindCtx, t: &Type) -> Result<(), TypeError> {
    wf_qual(ctx, t.qual)?;
    wf_pretype_at(ctx, &t.pre, t.qual)
}

/// Checks that pretype `p` is well-formed *and valid at qualifier `q`*:
/// every component the value of `p` would carry on the stack has a
/// qualifier `⪯ q` (so duplicating/dropping the container cannot
/// duplicate/drop something stricter).
pub fn wf_pretype_at(ctx: &mut KindCtx, p: &Pretype, q: Qual) -> Result<(), TypeError> {
    match p {
        Pretype::Unit | Pretype::Num(_) => Ok(()),
        Pretype::Prod(ts) => {
            for t in ts {
                wf_type(ctx, t)?;
                if !qual_leq(ctx, t.qual, q) {
                    return Err(TypeError::QualNotLeq {
                        lhs: t.qual,
                        rhs: q,
                        context: format!("component {t} of a tuple at qualifier {q}"),
                    });
                }
            }
            Ok(())
        }
        Pretype::Ref(_, l, h) | Pretype::Cap(_, l, h) => {
            wf_loc(ctx, *l)?;
            wf_heaptype(ctx, h)?;
            check_mem_consistency(ctx, *l, q, "reference/capability")
        }
        Pretype::Own(l) => {
            wf_loc(ctx, *l)?;
            check_mem_consistency(ctx, *l, q, "ownership token")
        }
        Pretype::Ptr(l) => wf_loc(ctx, *l),
        Pretype::Rec(rq, body) => {
            wf_qual(ctx, *rq)?;
            if !rec_guarded(body, 0) {
                return Err(TypeError::IllFormed {
                    reason: format!("unguarded recursive type rec {rq} ⪯ α. {body}"),
                });
            }
            // The bound variable stands for the rec type itself: guarded
            // occurrences are pointer-like, so its size bound is never
            // consulted; use 0 and forbid capabilities conservatively.
            ctx.push_type(TypeBound {
                lower_qual: *rq,
                size: Size::Const(0),
                may_contain_caps: false,
            });
            let r = wf_type(ctx, body).and_then(|()| {
                if qual_leq(ctx, body.qual, q) {
                    Ok(())
                } else {
                    Err(TypeError::QualNotLeq {
                        lhs: body.qual,
                        rhs: q,
                        context: "recursive type body vs container qualifier".into(),
                    })
                }
            });
            ctx.pop_type();
            r
        }
        Pretype::ExistsLoc(body) => {
            ctx.push_loc();
            let r = wf_type(ctx, body).and_then(|()| {
                if qual_leq(ctx, body.qual, q) {
                    Ok(())
                } else {
                    Err(TypeError::QualNotLeq {
                        lhs: body.qual,
                        rhs: q,
                        context: "existential body vs package qualifier".into(),
                    })
                }
            });
            ctx.pop_loc();
            r
        }
        Pretype::CodeRef(ft) => wf_funtype(ctx, ft),
        Pretype::Var(i) => {
            let bound = ctx.type_bound(*i).ok_or(TypeError::UnboundVar {
                kind: "pretype",
                index: *i,
            })?;
            // The variable may only appear at qualifiers above its lower
            // bound (§2.1).
            if !qual_leq(ctx, bound.lower_qual, q) {
                return Err(TypeError::QualNotLeq {
                    lhs: bound.lower_qual,
                    rhs: q,
                    context: format!("pretype variable α{i} used below its qualifier bound"),
                });
            }
            Ok(())
        }
    }
}

fn check_mem_consistency(ctx: &KindCtx, l: Loc, q: Qual, what: &str) -> Result<(), TypeError> {
    match l.mem() {
        Some(Mem::Lin) => {
            if qual_leq(ctx, Qual::Lin, q) {
                Ok(())
            } else {
                Err(TypeError::QualNotLeq {
                    lhs: Qual::Lin,
                    rhs: q,
                    context: format!("{what} to linear memory must be linear"),
                })
            }
        }
        Some(Mem::Unr) => {
            if qual_leq(ctx, q, Qual::Unr) {
                Ok(())
            } else {
                Err(TypeError::QualNotLeq {
                    lhs: q,
                    rhs: Qual::Unr,
                    context: format!("{what} to unrestricted memory must be unrestricted"),
                })
            }
        }
        // Location variables: consistency is established when the variable
        // is instantiated.
        None => Ok(()),
    }
}

/// Checks guardedness of a recursive type body: pretype variable `depth`
/// (the rec binder) may occur only inside `ref`/`ptr`/`cap`/`coderef`
/// subterms, which have fixed (pointer) sizes.
fn rec_guarded(t: &Type, depth: u32) -> bool {
    match &*t.pre {
        Pretype::Var(i) => *i != depth,
        Pretype::Unit | Pretype::Num(_) => true,
        // Indirections guard everything below them.
        Pretype::Ref(..)
        | Pretype::Ptr(_)
        | Pretype::Cap(..)
        | Pretype::Own(_)
        | Pretype::CodeRef(_) => true,
        Pretype::Prod(ts) => ts.iter().all(|t| rec_guarded(t, depth)),
        Pretype::Rec(_, body) => rec_guarded(body, depth + 1),
        Pretype::ExistsLoc(body) => rec_guarded(body, depth),
    }
}

/// Checks well-formedness of a heap type.
pub fn wf_heaptype(ctx: &mut KindCtx, h: &HeapType) -> Result<(), TypeError> {
    match h {
        HeapType::Variant(ts) => {
            for t in ts {
                wf_type(ctx, t)?;
            }
            Ok(())
        }
        HeapType::Struct(fields) => {
            for (t, sz) in fields {
                wf_type(ctx, t)?;
                wf_size(ctx, sz)?;
                let tsz = size_of_type(ctx, t)?;
                if !size_leq(ctx, &tsz, sz) {
                    return Err(TypeError::SizeNotLeq {
                        lhs: tsz,
                        rhs: sz.clone(),
                        context: format!("struct field {t} vs declared slot size"),
                    });
                }
            }
            Ok(())
        }
        HeapType::Array(t) => wf_type(ctx, t),
        HeapType::Exists(q, sz, body) => {
            wf_qual(ctx, *q)?;
            wf_size(ctx, sz)?;
            ctx.push_type(TypeBound {
                lower_qual: *q,
                size: sz.clone(),
                may_contain_caps: false,
            });
            let r = wf_type(ctx, body);
            ctx.pop_type();
            r
        }
    }
}

/// Checks well-formedness of a (possibly polymorphic) function type,
/// loading its quantifier telescope into a scratch extension of `ctx`.
pub fn wf_funtype(ctx: &mut KindCtx, ft: &FunType) -> Result<(), TypeError> {
    // Validate and push each quantifier in telescope order, then check the
    // arrow type under the extended context, then restore.
    let mut pushed = Vec::new();
    let mut result = Ok(());
    for qn in &ft.quants {
        match qn {
            Quantifier::Loc => {
                ctx.push_loc();
                pushed.push(0u8);
            }
            Quantifier::Size { lower, upper } => {
                for s in lower.iter().chain(upper) {
                    if let Err(e) = wf_size(ctx, s) {
                        result = Err(e);
                        break;
                    }
                }
                if result.is_err() {
                    break;
                }
                ctx.push_size(SizeBounds {
                    lower: lower.clone(),
                    upper: upper.clone(),
                });
                pushed.push(1);
            }
            Quantifier::Qual { lower, upper } => {
                for q in lower.iter().chain(upper) {
                    if let Err(e) = wf_qual(ctx, *q) {
                        result = Err(e);
                        break;
                    }
                }
                if result.is_err() {
                    break;
                }
                ctx.push_qual(QualBounds {
                    lower: lower.clone(),
                    upper: upper.clone(),
                });
                pushed.push(2);
            }
            Quantifier::Type {
                lower_qual,
                size,
                may_contain_caps,
            } => {
                if let Err(e) = wf_qual(ctx, *lower_qual).and_then(|()| wf_size(ctx, size)) {
                    result = Err(e);
                    break;
                }
                ctx.push_type(TypeBound {
                    lower_qual: *lower_qual,
                    size: size.clone(),
                    may_contain_caps: *may_contain_caps,
                });
                pushed.push(3);
            }
        }
    }
    if result.is_ok() {
        result = wf_arrow(ctx, &ft.arrow);
    }
    // Restore the context (pop in reverse).
    for kind in pushed.into_iter().rev() {
        match kind {
            0 => ctx.pop_loc(),
            1 => ctx.pop_size(),
            2 => ctx.pop_qual(),
            _ => ctx.pop_type(),
        }
    }
    result
}

/// Checks well-formedness of an arrow type.
pub fn wf_arrow(ctx: &mut KindCtx, a: &ArrowType) -> Result<(), TypeError> {
    for t in a.params.iter().chain(&a.results) {
        wf_type(ctx, t)?;
    }
    Ok(())
}

/// The `no_caps` judgement: `true` when values of pretype `p` cannot carry
/// bare capabilities or ownership tokens. Bare capabilities may not be
/// stored in memory — when compiled to Wasm they are erased, which would
/// leave the garbage collector unable to reach the linear memory they own
/// (§3). References *containing* capabilities are fine: the paired pointer
/// keeps the location reachable.
pub fn no_caps_pretype(ctx: &KindCtx, p: &Pretype) -> bool {
    match p {
        Pretype::Cap(..) | Pretype::Own(_) => false,
        Pretype::Unit
        | Pretype::Num(_)
        | Pretype::Ref(..)
        | Pretype::Ptr(_)
        | Pretype::CodeRef(_) => true,
        Pretype::Prod(ts) => ts.iter().all(|t| no_caps_pretype(ctx, &t.pre)),
        Pretype::Rec(_, body) | Pretype::ExistsLoc(body) => no_caps_pretype(ctx, &body.pre),
        Pretype::Var(i) => ctx
            .type_bound(*i)
            .map(|b| !b.may_contain_caps)
            .unwrap_or(false),
    }
}

/// `no_caps` on a full type.
pub fn no_caps_type(ctx: &KindCtx, t: &Type) -> bool {
    no_caps_pretype(ctx, &t.pre)
}

/// `no_caps` on a heap type.
pub fn no_caps_heaptype(ctx: &KindCtx, h: &HeapType) -> bool {
    match h {
        HeapType::Variant(ts) => ts.iter().all(|t| no_caps_type(ctx, t)),
        HeapType::Struct(fields) => fields.iter().all(|(t, _)| no_caps_type(ctx, t)),
        HeapType::Array(t) => no_caps_type(ctx, t),
        HeapType::Exists(_, _, body) => no_caps_type(ctx, body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{MemPriv, NumType};

    fn ctx() -> KindCtx {
        KindCtx::new()
    }

    #[test]
    fn unit_and_nums_wf() {
        let mut c = ctx();
        wf_type(&mut c, &Type::unit()).unwrap();
        wf_type(&mut c, &Type::num(NumType::F32)).unwrap();
    }

    #[test]
    fn unrestricted_tuple_with_linear_component_rejected() {
        let mut c = ctx();
        // The paper's motivating example: (unit^lin) inside an unr tuple.
        let t = Pretype::Prod(vec![Pretype::Unit.lin()]).unr();
        assert!(wf_type(&mut c, &t).is_err());
        // Linear tuple with linear component is fine.
        let t = Pretype::Prod(vec![Pretype::Unit.lin()]).lin();
        wf_type(&mut c, &t).unwrap();
    }

    #[test]
    fn linear_memory_ref_must_be_linear() {
        let mut c = ctx();
        let h = HeapType::Array(Type::num(NumType::I32));
        let t = Pretype::Ref(MemPriv::ReadWrite, Loc::lin(0), h.clone()).unr();
        assert!(wf_type(&mut c, &t).is_err());
        let t = Pretype::Ref(MemPriv::ReadWrite, Loc::lin(0), h.clone()).lin();
        wf_type(&mut c, &t).unwrap();
        // Unrestricted memory: the opposite.
        let t = Pretype::Ref(MemPriv::ReadWrite, Loc::unr(0), h.clone()).lin();
        assert!(wf_type(&mut c, &t).is_err());
        let t = Pretype::Ref(MemPriv::ReadWrite, Loc::unr(0), h).unr();
        wf_type(&mut c, &t).unwrap();
    }

    #[test]
    fn loc_var_ref_is_wf_at_any_qual() {
        let mut c = ctx();
        c.push_loc();
        let h = HeapType::Array(Type::num(NumType::I32));
        wf_type(
            &mut c,
            &Pretype::Ref(MemPriv::Read, Loc::Var(0), h.clone()).lin(),
        )
        .unwrap();
        wf_type(&mut c, &Pretype::Ref(MemPriv::Read, Loc::Var(0), h).unr()).unwrap();
        assert!(wf_type(&mut c, &Pretype::Ptr(Loc::Var(1)).unr()).is_err());
    }

    #[test]
    fn struct_fields_must_fit_slots() {
        let mut c = ctx();
        let ok = HeapType::Struct(vec![(Type::num(NumType::I32), Size::Const(32))]);
        wf_heaptype(&mut c, &ok).unwrap();
        let too_small = HeapType::Struct(vec![(Type::num(NumType::I64), Size::Const(32))]);
        assert!(wf_heaptype(&mut c, &too_small).is_err());
        // Over-sized slots are fine (padding).
        let padded = HeapType::Struct(vec![(Type::num(NumType::I32), Size::Const(64))]);
        wf_heaptype(&mut c, &padded).unwrap();
    }

    #[test]
    fn unguarded_rec_rejected() {
        let mut c = ctx();
        let t = Pretype::Rec(Qual::Unr, Box::new(Pretype::Var(0).unr())).unr();
        assert!(wf_type(&mut c, &t).is_err());
        let guarded = Pretype::Rec(
            Qual::Unr,
            Box::new(
                Pretype::Ref(
                    MemPriv::ReadWrite,
                    Loc::unr(0),
                    HeapType::Variant(vec![Type::unit(), Pretype::Var(0).unr()]),
                )
                .unr(),
            ),
        )
        .unr();
        wf_type(&mut c, &guarded).unwrap();
    }

    #[test]
    fn type_var_respects_lower_qual_bound() {
        let mut c = ctx();
        c.push_type(TypeBound {
            lower_qual: Qual::Lin,
            size: Size::Const(32),
            may_contain_caps: false,
        });
        // α with lower bound lin may appear at lin…
        wf_type(&mut c, &Pretype::Var(0).lin()).unwrap();
        // …but not at unr.
        assert!(wf_type(&mut c, &Pretype::Var(0).unr()).is_err());
    }

    #[test]
    fn no_caps_judgement() {
        let c = ctx();
        let h = HeapType::Array(Type::num(NumType::I32));
        assert!(!no_caps_pretype(
            &c,
            &Pretype::Cap(MemPriv::Read, Loc::lin(0), h.clone())
        ));
        assert!(!no_caps_pretype(&c, &Pretype::Own(Loc::lin(0))));
        // A ref *containing* caps is fine — pointer keeps it reachable.
        assert!(no_caps_pretype(
            &c,
            &Pretype::Ref(MemPriv::Read, Loc::lin(0), h.clone())
        ));
        let tuple_with_cap = Pretype::Prod(vec![Pretype::Cap(MemPriv::Read, Loc::lin(0), h).lin()]);
        assert!(!no_caps_pretype(&c, &tuple_with_cap));
    }

    #[test]
    fn funtype_telescope_wf() {
        let mut c = ctx();
        let ft = FunType {
            quants: vec![
                Quantifier::Loc,
                Quantifier::Size {
                    lower: vec![],
                    upper: vec![],
                },
                Quantifier::Type {
                    lower_qual: Qual::Unr,
                    size: Size::Var(0),
                    may_contain_caps: false,
                },
            ],
            arrow: ArrowType::new(
                vec![Pretype::Var(0).unr()],
                vec![Pretype::Ptr(Loc::Var(0)).unr()],
            ),
        };
        wf_funtype(&mut c, &ft).unwrap();
        // Context restored.
        assert_eq!(c.depth(), crate::subst::Depth::default());
        // A bad telescope: size bound references an unbound size var.
        let bad = FunType {
            quants: vec![Quantifier::Size {
                lower: vec![],
                upper: vec![Size::Var(3)],
            }],
            arrow: ArrowType::default(),
        };
        assert!(wf_funtype(&mut c, &bad).is_err());
    }
}
