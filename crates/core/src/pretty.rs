//! A structured text rendering of RichWasm modules — full instruction
//! trees with nesting, in a WAT-flavoured S-expression style.
//!
//! ```
//! use richwasm::pretty::render_module;
//! use richwasm::syntax::*;
//!
//! let m = Module {
//!     funcs: vec![Func::Defined {
//!         exports: vec!["f".into()],
//!         ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
//!         locals: vec![],
//!         body: vec![Instr::i32(42)],
//!     }],
//!     ..Module::default()
//! };
//! let text = render_module(&m);
//! assert!(text.contains("i32.const 42"));
//! ```

use std::fmt::Write;

use crate::syntax::{Func, GlobalKind, Instr, Module};

fn write_instrs(es: &[Instr], indent: usize, out: &mut String) {
    for e in es {
        write_instr(e, indent, out);
    }
}

fn write_instr(e: &Instr, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match e {
        Instr::BlockI(b, body) => {
            let _ = writeln!(out, "{pad}(block {}", b.arrow);
            write_instrs(body, indent + 1, out);
            let _ = writeln!(out, "{pad})");
        }
        Instr::LoopI(a, body) => {
            let _ = writeln!(out, "{pad}(loop {a}");
            write_instrs(body, indent + 1, out);
            let _ = writeln!(out, "{pad})");
        }
        Instr::IfI(b, t, f) => {
            let _ = writeln!(out, "{pad}(if {}", b.arrow);
            write_instrs(t, indent + 1, out);
            if !f.is_empty() {
                let _ = writeln!(out, "{pad} else");
                write_instrs(f, indent + 1, out);
            }
            let _ = writeln!(out, "{pad})");
        }
        Instr::MemUnpack(b, body) => {
            let _ = writeln!(out, "{pad}(mem.unpack {} ρ.", b.arrow);
            write_instrs(body, indent + 1, out);
            let _ = writeln!(out, "{pad})");
        }
        Instr::ExistUnpack(q, _, b, body) => {
            let _ = writeln!(out, "{pad}(exist.unpack {q} {} α.", b.arrow);
            write_instrs(body, indent + 1, out);
            let _ = writeln!(out, "{pad})");
        }
        Instr::VariantCase(q, _, b, bodies) => {
            let _ = writeln!(out, "{pad}(variant.case {q} {}", b.arrow);
            for (i, body) in bodies.iter().enumerate() {
                let _ = writeln!(out, "{pad}  (case {i}");
                write_instrs(body, indent + 2, out);
                let _ = writeln!(out, "{pad}  )");
            }
            let _ = writeln!(out, "{pad})");
        }
        Instr::Label { arity, body, .. } => {
            let _ = writeln!(out, "{pad}(label_{arity}");
            write_instrs(body, indent + 1, out);
            let _ = writeln!(out, "{pad})");
        }
        Instr::LocalFrame {
            arity, inst, body, ..
        } => {
            let _ = writeln!(out, "{pad}(local_{arity} inst={inst}");
            write_instrs(body, indent + 1, out);
            let _ = writeln!(out, "{pad})");
        }
        other => {
            let _ = writeln!(out, "{pad}{other}");
        }
    }
}

/// Renders a whole module, including instruction trees.
pub fn render_module(m: &Module) -> String {
    let mut out = String::from("(module\n");
    for (i, g) in m.globals.iter().enumerate() {
        match &g.kind {
            GlobalKind::Defined { mutable, ty, init } => {
                let _ = writeln!(out, "  (global ${i} mut={mutable} {ty}");
                write_instrs(init, 2, &mut out);
                let _ = writeln!(out, "  )");
            }
            GlobalKind::Imported {
                module, name, ty, ..
            } => {
                let _ = writeln!(out, "  (global ${i} (import \"{module}\" \"{name}\") {ty})");
            }
        }
    }
    for (i, f) in m.funcs.iter().enumerate() {
        match f {
            Func::Defined {
                exports,
                ty,
                locals,
                body,
            } => {
                let ex: Vec<String> = exports
                    .iter()
                    .map(|e| format!("(export \"{e}\")"))
                    .collect();
                let _ = writeln!(out, "  (func ${i} {} {ty}", ex.join(" "));
                if !locals.is_empty() {
                    let ls: Vec<String> = locals.iter().map(|s| s.to_string()).collect();
                    let _ = writeln!(out, "    (locals {})", ls.join(" "));
                }
                write_instrs(body, 2, &mut out);
                let _ = writeln!(out, "  )");
            }
            Func::Imported {
                module, name, ty, ..
            } => {
                let _ = writeln!(out, "  (func ${i} (import \"{module}\" \"{name}\") {ty})");
            }
        }
    }
    if !m.table.entries.is_empty() {
        let _ = writeln!(out, "  (table {:?})", m.table.entries);
    }
    out.push(')');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::instr::Block;
    use crate::syntax::*;

    #[test]
    fn renders_nested_structure() {
        let m = Module {
            funcs: vec![Func::Defined {
                exports: vec!["main".into()],
                ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
                locals: vec![Size::Const(32)],
                body: vec![
                    Instr::i32(1),
                    Instr::BlockI(
                        Block::new(
                            ArrowType::new(
                                vec![Type::num(NumType::I32)],
                                vec![Type::num(NumType::I32)],
                            ),
                            vec![],
                        ),
                        vec![
                            Instr::i32(2),
                            Instr::Num(NumInstr::IntBinop(NumType::I32, instr::IntBinop::Add)),
                        ],
                    ),
                ],
            }],
            ..Module::default()
        };
        let text = render_module(&m);
        assert!(text.contains("(func $0 (export \"main\")"), "{text}");
        assert!(text.contains("(block"), "{text}");
        assert!(text.contains("i32.const 2"), "{text}");
        assert!(text.contains("(locals 32)"), "{text}");
        // Nesting is reflected in indentation.
        assert!(
            text.lines().any(|l| l.starts_with("      i32.const 2")),
            "{text}"
        );
    }

    #[test]
    fn renders_compiled_ml_shape() {
        // The pretty printer handles every construct the frontends emit.
        let m = Module {
            funcs: vec![Func::Defined {
                exports: vec![],
                ty: FunType::mono(vec![], vec![]),
                locals: vec![],
                body: vec![
                    Instr::i32(1),
                    Instr::VariantMalloc(0, vec![Type::num(NumType::I32), Type::unit()], Qual::Unr),
                    Instr::MemUnpack(
                        Block::new(ArrowType::new(vec![], vec![]), vec![]),
                        vec![
                            Instr::VariantCase(
                                Qual::Unr,
                                HeapType::Variant(vec![Type::num(NumType::I32), Type::unit()]),
                                Block::new(ArrowType::new(vec![], vec![]), vec![]),
                                vec![vec![Instr::Drop], vec![Instr::Drop]],
                            ),
                            Instr::Drop,
                        ],
                    ),
                ],
            }],
            ..Module::default()
        };
        let text = render_module(&m);
        assert!(text.contains("(mem.unpack"), "{text}");
        assert!(text.contains("(variant.case"), "{text}");
        assert!(text.contains("(case 0"), "{text}");
    }
}
