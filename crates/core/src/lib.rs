//! # RichWasm
//!
//! A from-scratch Rust implementation of **RichWasm** (PLDI 2024): a richly
//! typed intermediate language based on WebAssembly that enables safe,
//! fine-grained, shared-memory interoperability between languages with
//! garbage collection and languages with manual memory management.
//!
//! The crate provides:
//!
//! * the full abstract syntax ([`syntax`], paper Fig. 2),
//! * substitution for the four kinds of binders ([`subst`]),
//! * the qualifier and size entailment solvers ([`solver`]),
//! * type well-formedness and sizing ([`wf`], [`sizing`]),
//! * the substructural type checker ([`typecheck`], paper Figs. 5–8),
//! * the small-step interpreter with a tracing GC ([`interp`], Fig. 4),
//! * a typed module linker ([`link`]) — the FFI-safety choke point.
//!
//! ## Quickstart
//!
//! ```
//! use richwasm::syntax::*;
//! use richwasm::typecheck::check_module;
//!
//! // A module with one exported function returning the i32 constant 42.
//! let m = Module {
//!     funcs: vec![Func::Defined {
//!         exports: vec!["answer".into()],
//!         ty: FunType::mono(vec![], vec![Type::num(NumType::I32)]),
//!         locals: vec![],
//!         body: vec![Instr::i32(42)],
//!     }],
//!     ..Module::default()
//! };
//! check_module(&m).expect("well-typed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod error;
pub mod interp;
pub mod link;
pub mod pretty;
pub mod sizing;
pub mod solver;
pub mod subst;
pub mod syntax;
pub mod typecheck;
pub mod wf;

pub use error::{RuntimeError, TypeError};
