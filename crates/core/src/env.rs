//! Typing environments (paper Fig. 5).
//!
//! * [`KindCtx`] — the kind-variable components of the function
//!   environment `F`: bounded qualifier variables (`F.qual`), bounded size
//!   variables (`F.size`), bounded pretype variables (`F.type`) and the
//!   location variables in scope (`F.location`).
//! * [`ModuleEnv`] — the module environment `M` (function, global and
//!   table types).
//! * [`StoreTyping`] — the store typing `S` (instance typings plus the
//!   linear and unrestricted memory typings).
//!
//! Bound expressions stored in a [`KindCtx`] are recorded together with
//! the binder [`Depth`] at which they were written; lookups shift them to
//! the current depth, so callers always see expressions in *current*
//! de Bruijn coordinates.

use std::collections::BTreeMap;

use crate::subst::{shift_size, Depth};
use crate::syntax::{FunType, HeapType, Pretype, Qual, Size};

/// Bounds `q* ⪯ δ ⪯ q*` on a qualifier variable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QualBounds {
    /// Qualifiers below `δ`.
    pub lower: Vec<Qual>,
    /// Qualifiers above `δ`.
    pub upper: Vec<Qual>,
}

/// Bounds `sz* ≤ σ ≤ sz*` on a size variable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SizeBounds {
    /// Sizes below `σ`.
    pub lower: Vec<Size>,
    /// Sizes above `σ`.
    pub upper: Vec<Size>,
}

/// The constraint `q ⪯ α (c?) ≲ sz` on a pretype variable.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeBound {
    /// The minimum qualifier at which `α` may appear.
    pub lower_qual: Qual,
    /// An upper bound on the size of any instantiation.
    pub size: Size,
    /// Whether instantiations may contain bare capabilities.
    pub may_contain_caps: bool,
}

/// The kind-variable context: qualifier, size, pretype and location
/// variables currently in scope, with their constraints.
#[derive(Debug, Clone, Default)]
pub struct KindCtx {
    quals: Vec<(QualBounds, Depth)>,
    sizes: Vec<(SizeBounds, Depth)>,
    types: Vec<(TypeBound, Depth)>,
    locs: u32,
}

impl KindCtx {
    /// An empty context.
    pub fn new() -> KindCtx {
        KindCtx::default()
    }

    /// The current binder depth (used when snapshotting bound expressions).
    pub fn depth(&self) -> Depth {
        Depth {
            loc: self.locs,
            size: self.sizes.len() as u32,
            qual: self.quals.len() as u32,
            ty: self.types.len() as u32,
        }
    }

    /// Number of qualifier variables in scope.
    pub fn num_quals(&self) -> u32 {
        self.quals.len() as u32
    }

    /// Number of size variables in scope.
    pub fn num_sizes(&self) -> u32 {
        self.sizes.len() as u32
    }

    /// Number of pretype variables in scope.
    pub fn num_types(&self) -> u32 {
        self.types.len() as u32
    }

    /// Number of location variables in scope.
    pub fn num_locs(&self) -> u32 {
        self.locs
    }

    /// Pushes a qualifier binder with the given bounds (expressed at the
    /// current depth).
    pub fn push_qual(&mut self, bounds: QualBounds) {
        let d = self.depth();
        self.quals.push((bounds, d));
    }

    /// Pushes a size binder.
    pub fn push_size(&mut self, bounds: SizeBounds) {
        let d = self.depth();
        self.sizes.push((bounds, d));
    }

    /// Pushes a pretype binder.
    pub fn push_type(&mut self, bound: TypeBound) {
        let d = self.depth();
        self.types.push((bound, d));
    }

    /// Pushes a location binder.
    pub fn push_loc(&mut self) {
        self.locs += 1;
    }

    /// Pops the most recent pretype binder.
    pub fn pop_type(&mut self) {
        self.types.pop();
    }

    /// Pops the most recent qualifier binder.
    pub fn pop_qual(&mut self) {
        self.quals.pop();
    }

    /// Pops the most recent size binder.
    pub fn pop_size(&mut self) {
        self.sizes.pop();
    }

    /// Pops the most recent location binder.
    pub fn pop_loc(&mut self) {
        assert!(self.locs > 0, "pop_loc on empty location context");
        self.locs -= 1;
    }

    fn shift_qual(q: Qual, by: u32) -> Qual {
        match q {
            Qual::Var(v) => Qual::Var(v + by),
            q => q,
        }
    }

    /// Looks up the bounds of qualifier variable `i` (de Bruijn), shifted
    /// to the current depth.
    pub fn qual_bounds(&self, i: u32) -> Option<QualBounds> {
        let pos = self.quals.len().checked_sub(1 + i as usize)?;
        let (b, snap) = &self.quals[pos];
        let by = self.depth().qual - snap.qual;
        Some(QualBounds {
            lower: b.lower.iter().map(|q| Self::shift_qual(*q, by)).collect(),
            upper: b.upper.iter().map(|q| Self::shift_qual(*q, by)).collect(),
        })
    }

    /// Looks up the bounds of size variable `i`, shifted to current depth.
    pub fn size_bounds(&self, i: u32) -> Option<SizeBounds> {
        let pos = self.sizes.len().checked_sub(1 + i as usize)?;
        let (b, snap) = &self.sizes[pos];
        let by = Depth {
            size: self.depth().size - snap.size,
            ..Depth::default()
        };
        Some(SizeBounds {
            lower: b.lower.iter().map(|s| shift_size(s, by)).collect(),
            upper: b.upper.iter().map(|s| shift_size(s, by)).collect(),
        })
    }

    /// Looks up the constraint on pretype variable `i`, shifted to current
    /// depth.
    pub fn type_bound(&self, i: u32) -> Option<TypeBound> {
        let pos = self.types.len().checked_sub(1 + i as usize)?;
        let (b, snap) = &self.types[pos];
        let d = self.depth();
        let size_by = Depth {
            size: d.size - snap.size,
            ..Depth::default()
        };
        Some(TypeBound {
            lower_qual: Self::shift_qual(b.lower_qual, d.qual - snap.qual),
            size: shift_size(&b.size, size_by),
            may_contain_caps: b.may_contain_caps,
        })
    }

    /// Returns `true` if location variable `i` is in scope.
    pub fn loc_in_scope(&self, i: u32) -> bool {
        i < self.locs
    }
}

/// The module environment `M`: the types of the module's functions,
/// globals, and table entries.
#[derive(Debug, Clone, Default)]
pub struct ModuleEnv {
    /// Function types (defined and imported, in index order).
    pub funcs: Vec<FunType>,
    /// Global types: mutability plus stored pretype.
    pub globals: Vec<(bool, Pretype)>,
    /// Types of the table's entries.
    pub table: Vec<FunType>,
}

/// A memory typing: location → (current heap type, slot size in bits).
pub type MemTyping = BTreeMap<u32, (HeapType, u64)>;

/// The store typing `S`: instance typings plus the typing of both
/// memories.
#[derive(Debug, Clone, Default)]
pub struct StoreTyping {
    /// Typings of the instantiated modules.
    pub insts: Vec<ModuleEnv>,
    /// Typing of the linear memory.
    pub lin: MemTyping,
    /// Typing of the unrestricted memory.
    pub unr: MemTyping,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_counts_binders() {
        let mut c = KindCtx::new();
        c.push_loc();
        c.push_qual(QualBounds::default());
        c.push_size(SizeBounds::default());
        c.push_type(TypeBound {
            lower_qual: Qual::Unr,
            size: Size::Const(32),
            may_contain_caps: false,
        });
        let d = c.depth();
        assert_eq!((d.loc, d.size, d.qual, d.ty), (1, 1, 1, 1));
        assert!(c.loc_in_scope(0));
        assert!(!c.loc_in_scope(1));
    }

    #[test]
    fn lookup_shifts_bounds_to_current_depth() {
        let mut c = KindCtx::new();
        // σ0 with no bounds.
        c.push_size(SizeBounds::default());
        // σ (new 0) with upper bound the previous var, written as Var(0) at
        // push time.
        c.push_size(SizeBounds {
            lower: vec![],
            upper: vec![Size::Var(0)],
        });
        // From current depth, variable 0's upper bound must still denote the
        // outer binder, now at index 1.
        let b = c.size_bounds(0).unwrap();
        assert_eq!(b.upper, vec![Size::Var(1)]);
        // The outer binder itself has no bounds.
        let b = c.size_bounds(1).unwrap();
        assert!(b.upper.is_empty());
        assert_eq!(c.size_bounds(2), None);
    }

    #[test]
    fn qual_lookup_shifts_vars() {
        let mut c = KindCtx::new();
        c.push_qual(QualBounds::default());
        c.push_qual(QualBounds {
            lower: vec![Qual::Var(0)],
            upper: vec![Qual::Lin],
        });
        let b = c.qual_bounds(0).unwrap();
        assert_eq!(b.lower, vec![Qual::Var(1)]);
        assert_eq!(b.upper, vec![Qual::Lin]);
    }

    #[test]
    fn type_bound_lookup() {
        let mut c = KindCtx::new();
        c.push_size(SizeBounds::default());
        c.push_type(TypeBound {
            lower_qual: Qual::Lin,
            size: Size::Var(0),
            may_contain_caps: true,
        });
        // No size binders pushed since, so no shift.
        let b = c.type_bound(0).unwrap();
        assert_eq!(b.size, Size::Var(0));
        assert!(b.may_contain_caps);
        // Pushing another size binder shifts the stored bound.
        c.push_size(SizeBounds::default());
        let b = c.type_bound(0).unwrap();
        assert_eq!(b.size, Size::Var(1));
    }

    #[test]
    fn pop_restores_depth() {
        let mut c = KindCtx::new();
        c.push_loc();
        c.push_type(TypeBound {
            lower_qual: Qual::Unr,
            size: Size::Const(0),
            may_contain_caps: false,
        });
        c.pop_type();
        c.pop_loc();
        assert_eq!(c.depth(), Depth::default());
    }
}
