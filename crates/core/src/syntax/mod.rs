//! Abstract syntax of RichWasm (paper Fig. 2).
//!
//! The syntax is split into small modules, one per syntactic category:
//!
//! * [`qual`] — qualifiers `q ::= δ | unr | lin` controlling linearity,
//! * [`size`] — sizes `sz ::= σ | sz + sz | i` (measured in bits),
//! * [`loc`] — memory locations `ℓ ::= ρ | i_unr | i_lin`,
//! * [`types`] — pretypes, types, heap types, function types, quantifiers,
//! * [`instr`] — instructions (including administrative forms, §3),
//! * [`value`] — runtime values and heap values,
//! * [`module`] — top-level declarations: functions, globals, tables, modules.
//!
//! Binders use de Bruijn indices with a separate index space per kind
//! (location, size, qualifier, pretype), mirroring the paper's Coq
//! development. Index `0` always refers to the innermost binder of that kind.

pub mod instr;
pub mod loc;
pub mod module;
pub mod qual;
pub mod size;
pub mod types;
pub mod value;

pub use instr::{Block, Instr, LocalEffect, NumInstr};
pub use loc::{ConcreteLoc, Loc, Mem};
pub use module::{Func, Global, GlobalKind, Module, Table};
pub use qual::Qual;
pub use size::Size;
pub use types::{ArrowType, FunType, HeapType, Index, MemPriv, NumType, Pretype, Quantifier, Type};
pub use value::{HeapValue, Value};
