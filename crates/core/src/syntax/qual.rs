//! Qualifiers (paper §2.1).
//!
//! A qualifier annotates a pretype and determines whether values of the
//! resulting type must be treated linearly. Qualifiers are ordered
//! `unr ⪯ lin`; abstract qualifier variables `δ` are bound by function-level
//! quantifiers and carry lower/upper bound constraints (see
//! [`crate::syntax::types::Quantifier::Qual`]).

use std::fmt;

/// A linearity qualifier `q ::= δ | unr | lin`.
///
/// `Unr` (unrestricted) values may be freely duplicated and dropped;
/// `Lin` (linear) values must be consumed exactly once. `Var(i)` is a
/// de Bruijn index into the qualifier context of the enclosing function
/// type (index 0 = innermost binder).
///
/// ```
/// use richwasm::syntax::Qual;
/// assert!(Qual::Unr < Qual::Lin);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Qual {
    /// An unrestricted (copyable, droppable) qualifier — the bottom of the
    /// ordering.
    #[default]
    Unr,
    /// A linear (must-use-exactly-once) qualifier — the top of the ordering.
    Lin,
    /// An abstract qualifier variable `δ` (de Bruijn index).
    Var(u32),
}

impl Qual {
    /// Returns `true` if this is the concrete `unr` qualifier.
    pub fn is_unr(self) -> bool {
        self == Qual::Unr
    }

    /// Returns `true` if this is the concrete `lin` qualifier.
    pub fn is_lin(self) -> bool {
        self == Qual::Lin
    }

    /// Returns `true` if this is an abstract qualifier variable.
    pub fn is_var(self) -> bool {
        matches!(self, Qual::Var(_))
    }

    /// The least upper bound of two *concrete* qualifiers.
    ///
    /// # Panics
    ///
    /// Panics if either qualifier is a variable; use the solver in
    /// [`crate::solver`] for symbolic joins.
    pub fn join_concrete(self, other: Qual) -> Qual {
        match (self, other) {
            (Qual::Lin, _) | (_, Qual::Lin) => Qual::Lin,
            (Qual::Unr, Qual::Unr) => Qual::Unr,
            _ => panic!("join_concrete on qualifier variable"),
        }
    }
}

impl fmt::Display for Qual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qual::Unr => write!(f, "unr"),
            Qual::Lin => write!(f, "lin"),
            Qual::Var(i) => write!(f, "δ{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_unr_below_lin() {
        assert!(Qual::Unr < Qual::Lin);
        assert!(Qual::Unr.is_unr());
        assert!(Qual::Lin.is_lin());
        assert!(Qual::Var(0).is_var());
    }

    #[test]
    fn join_concrete_is_lub() {
        assert_eq!(Qual::Unr.join_concrete(Qual::Unr), Qual::Unr);
        assert_eq!(Qual::Unr.join_concrete(Qual::Lin), Qual::Lin);
        assert_eq!(Qual::Lin.join_concrete(Qual::Unr), Qual::Lin);
        assert_eq!(Qual::Lin.join_concrete(Qual::Lin), Qual::Lin);
    }

    #[test]
    #[should_panic]
    fn join_concrete_rejects_vars() {
        let _ = Qual::Var(0).join_concrete(Qual::Unr);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Qual::Unr.to_string(), "unr");
        assert_eq!(Qual::Lin.to_string(), "lin");
        assert_eq!(Qual::Var(3).to_string(), "δ3");
    }
}
