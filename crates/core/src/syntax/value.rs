//! Runtime values and heap values (paper Fig. 2, "Terms").

use std::fmt;

use super::loc::ConcreteLoc;
use super::types::{HeapType, Index, NumType, Pretype};

/// A runtime value `v` (paper Fig. 2).
///
/// Numeric payloads are stored as raw 64-bit patterns; the [`NumType`] tag
/// determines their interpretation (floats are bit-cast).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value `()`.
    Unit,
    /// A numeric constant `np.const c` (raw bits).
    Num(NumType, u64),
    /// A tuple of values `(v*)`.
    Prod(Vec<Value>),
    /// A reference `ref ℓ` to a concrete location.
    Ref(ConcreteLoc),
    /// A bare pointer `ptr ℓ`.
    Ptr(ConcreteLoc),
    /// A capability token — computationally irrelevant, erased by
    /// compilation to Wasm.
    Cap,
    /// An ownership token — likewise erased.
    Own,
    /// An isorecursive fold `fold v`.
    Fold(Box<Value>),
    /// An existential location package `mempack ℓ v`.
    MemPack(ConcreteLoc, Box<Value>),
    /// A code reference `coderef i j z*`: function `j` of module instance
    /// `i`, partially applied to instantiation indices `z*`.
    CodeRef {
        /// The module instance index.
        inst: u32,
        /// The index into that instance's *table*.
        table_idx: u32,
        /// Instantiations supplied so far (via `inst`).
        indices: Vec<Index>,
    },
}

impl Value {
    /// An `i32` constant.
    pub fn i32(v: i32) -> Value {
        Value::Num(NumType::I32, v as u32 as u64)
    }

    /// A `ui32` constant.
    pub fn u32(v: u32) -> Value {
        Value::Num(NumType::U32, v as u64)
    }

    /// An `i64` constant.
    pub fn i64(v: i64) -> Value {
        Value::Num(NumType::I64, v as u64)
    }

    /// A `ui64` constant.
    pub fn u64(v: u64) -> Value {
        Value::Num(NumType::U64, v)
    }

    /// An `f32` constant (bit-cast).
    pub fn f32(v: f32) -> Value {
        Value::Num(NumType::F32, v.to_bits() as u64)
    }

    /// An `f64` constant (bit-cast).
    pub fn f64(v: f64) -> Value {
        Value::Num(NumType::F64, v.to_bits())
    }

    /// Extracts a numeric payload as `u64` bits, if numeric.
    pub fn as_num(&self) -> Option<(NumType, u64)> {
        match self {
            Value::Num(nt, bits) => Some((*nt, *bits)),
            _ => None,
        }
    }

    /// Extracts an `i32`-class (32-bit integer) payload.
    pub fn as_i32(&self) -> Option<u32> {
        match self {
            Value::Num(NumType::I32 | NumType::U32, bits) => Some(*bits as u32),
            _ => None,
        }
    }

    /// Extracts the referenced location, if this is a `ref`.
    pub fn as_ref_loc(&self) -> Option<ConcreteLoc> {
        match self {
            Value::Ref(l) => Some(*l),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Num(nt, bits) => match nt {
                NumType::F32 => write!(f, "f32.const {}", f32::from_bits(*bits as u32)),
                NumType::F64 => write!(f, "f64.const {}", f64::from_bits(*bits)),
                NumType::I32 => write!(f, "i32.const {}", *bits as u32 as i32),
                NumType::I64 => write!(f, "i64.const {}", *bits as i64),
                _ => write!(f, "{nt}.const {bits}"),
            },
            Value::Prod(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Ref(l) => write!(f, "(ref {l})"),
            Value::Ptr(l) => write!(f, "(ptr {l})"),
            Value::Cap => write!(f, "cap"),
            Value::Own => write!(f, "own"),
            Value::Fold(v) => write!(f, "(fold {v})"),
            Value::MemPack(l, v) => write!(f, "(mempack {l} {v})"),
            Value::CodeRef {
                inst,
                table_idx,
                indices,
            } => {
                write!(f, "(coderef {inst} {table_idx}")?;
                for z in indices {
                    write!(f, " {z}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A heap value `hv` (paper Fig. 2) — what memory cells hold.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapValue {
    /// `(variant i v)`: the `i`-th case holding `v`.
    Variant(u32, Box<Value>),
    /// `(struct v*)`: a record of field values.
    Struct(Vec<Value>),
    /// `(array i v*)`: a fixed-length array (`i` = length).
    Array(Vec<Value>),
    /// `(pack p v ψ)`: an existential package with pretype witness `p`.
    Pack(Pretype, Box<Value>, HeapType),
}

impl HeapValue {
    /// All values stored directly in this heap cell.
    pub fn values(&self) -> Vec<&Value> {
        match self {
            HeapValue::Variant(_, v) => vec![v],
            HeapValue::Struct(vs) | HeapValue::Array(vs) => vs.iter().collect(),
            HeapValue::Pack(_, v, _) => vec![v],
        }
    }
}

impl fmt::Display for HeapValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapValue::Variant(i, v) => write!(f, "(variant {i} {v})"),
            HeapValue::Struct(vs) => {
                write!(f, "(struct")?;
                for v in vs {
                    write!(f, " {v}")?;
                }
                write!(f, ")")
            }
            HeapValue::Array(vs) => {
                write!(f, "(array {}", vs.len())?;
                for v in vs {
                    write!(f, " {v}")?;
                }
                write!(f, ")")
            }
            HeapValue::Pack(p, v, h) => write!(f, "(pack {p} {v} {h})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_constructors_bitcast() {
        assert_eq!(Value::i32(-1).as_i32(), Some(u32::MAX));
        assert_eq!(Value::f64(1.5), Value::Num(NumType::F64, 1.5f64.to_bits()));
        assert_eq!(Value::u64(7).as_num(), Some((NumType::U64, 7)));
    }

    #[test]
    fn heap_value_values_collects_children() {
        let hv = HeapValue::Struct(vec![Value::Unit, Value::i32(3)]);
        assert_eq!(hv.values().len(), 2);
        let hv = HeapValue::Variant(1, Box::new(Value::Unit));
        assert_eq!(hv.values(), vec![&Value::Unit]);
    }

    #[test]
    fn display_smoke() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::i32(5).to_string(), "i32.const 5");
        assert!(HeapValue::Array(vec![Value::Unit])
            .to_string()
            .starts_with("(array 1"));
    }
}
