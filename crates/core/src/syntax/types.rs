//! Types, pretypes, heap types, and function types (paper Fig. 2, §2.1).

use std::fmt;

use super::loc::Loc;
use super::qual::Qual;
use super::size::Size;

/// Numeric pretypes `np ::= ui32 | ui64 | i32 | i64 | f32 | f64`.
///
/// RichWasm distinguishes signed and unsigned integers at the type level
/// (unlike Wasm, where signedness lives in the operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumType {
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl NumType {
    /// The width of the representation in bits.
    pub fn bits(self) -> u64 {
        match self {
            NumType::U32 | NumType::I32 | NumType::F32 => 32,
            NumType::U64 | NumType::I64 | NumType::F64 => 64,
        }
    }

    /// Returns `true` for the four integer types.
    pub fn is_int(self) -> bool {
        !matches!(self, NumType::F32 | NumType::F64)
    }

    /// Returns `true` for the two float types.
    pub fn is_float(self) -> bool {
        matches!(self, NumType::F32 | NumType::F64)
    }

    /// Returns `true` for the signed integer types.
    pub fn is_signed_int(self) -> bool {
        matches!(self, NumType::I32 | NumType::I64)
    }
}

impl fmt::Display for NumType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumType::U32 => write!(f, "ui32"),
            NumType::U64 => write!(f, "ui64"),
            NumType::I32 => write!(f, "i32"),
            NumType::I64 => write!(f, "i64"),
            NumType::F32 => write!(f, "f32"),
            NumType::F64 => write!(f, "f64"),
        }
    }
}

/// Memory privilege `π ::= rw | r` carried by references and capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPriv {
    /// Read-write access.
    ReadWrite,
    /// Read-only access.
    Read,
}

impl fmt::Display for MemPriv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemPriv::ReadWrite => write!(f, "rw"),
            MemPriv::Read => write!(f, "r"),
        }
    }
}

/// A pretype `p` (paper Fig. 2).
///
/// Pretypes are annotated with a [`Qual`] to form a [`Type`]. The
/// constructors follow the paper's grammar:
///
/// ```text
/// p ::= unit | np | (τ*) | ref π ℓ ψ | ptr ℓ | cap π ℓ ψ
///     | rec q ⪯ α. τ | ∃ρ. τ | coderef χ | own ℓ | α
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pretype {
    /// The unit pretype; its only value is `()`.
    Unit,
    /// A numeric pretype.
    Num(NumType),
    /// A tuple `(τ*)` of values kept together on the stack.
    Prod(Vec<Type>),
    /// A reference `ref π ℓ ψ`: the pair of a capability and a pointer to
    /// location `ℓ` holding heap type `ψ` with privilege `π`.
    Ref(MemPriv, Loc, HeapType),
    /// A bare pointer `ptr ℓ`: runtime address without ownership.
    Ptr(Loc),
    /// A capability `cap π ℓ ψ`: the (computationally irrelevant) ownership
    /// token granting access to `ℓ`.
    Cap(MemPriv, Loc, HeapType),
    /// An isorecursive type `rec q ⪯ α. τ`; binds pretype variable 0 in `τ`.
    Rec(Qual, Box<Type>),
    /// An existential over locations `∃ρ. τ`; binds location variable 0 in
    /// `τ`.
    ExistsLoc(Box<Type>),
    /// A code pointer `coderef χ` to a table entry of function type `χ`.
    CodeRef(FunType),
    /// An ownership token `own ℓ` representing write ownership of `ℓ`.
    Own(Loc),
    /// A pretype variable `α` (de Bruijn index).
    Var(u32),
}

impl Pretype {
    /// Annotates this pretype with a qualifier, forming a [`Type`].
    pub fn with_qual(self, qual: Qual) -> Type {
        Type {
            pre: Box::new(self),
            qual,
        }
    }

    /// Shorthand for `self.with_qual(Qual::Unr)`.
    pub fn unr(self) -> Type {
        self.with_qual(Qual::Unr)
    }

    /// Shorthand for `self.with_qual(Qual::Lin)`.
    pub fn lin(self) -> Type {
        self.with_qual(Qual::Lin)
    }
}

/// A value type `τ ::= p^q`: a pretype annotated with a qualifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Type {
    /// The underlying pretype.
    pub pre: Box<Pretype>,
    /// The linearity qualifier.
    pub qual: Qual,
}

impl Type {
    /// Constructs a type from a pretype and a qualifier.
    pub fn new(pre: Pretype, qual: Qual) -> Type {
        Type {
            pre: Box::new(pre),
            qual,
        }
    }

    /// The unrestricted unit type `unit^unr` — the type of freshly
    /// initialised (and linearly-consumed) local slots.
    pub fn unit() -> Type {
        Pretype::Unit.unr()
    }

    /// An unrestricted numeric type.
    pub fn num(nt: NumType) -> Type {
        Pretype::Num(nt).unr()
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}", self.pre, self.qual)
    }
}

/// Heap types `ψ` (paper Fig. 2) — the structured contents of memory cells.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HeapType {
    /// A variant `(variant τ*)`: a tagged value drawn from the listed cases.
    Variant(Vec<Type>),
    /// A struct `(struct (τ, sz)*)`: fields with explicitly sized slots so
    /// strong updates can be checked to fit.
    Struct(Vec<(Type, Size)>),
    /// An array `(array τ)`: variable-length sequence of `τ`s.
    Array(Type),
    /// A type-abstracting package `∃ q ⪯ α ≲ sz. τ`; binds pretype
    /// variable 0 in `τ`. `q` is the minimum qualifier at which `α` may be
    /// used, `sz` an upper bound on the witness's size.
    Exists(Qual, Size, Box<Type>),
}

impl fmt::Display for HeapType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapType::Variant(ts) => {
                write!(f, "(variant")?;
                for t in ts {
                    write!(f, " {t}")?;
                }
                write!(f, ")")
            }
            HeapType::Struct(fields) => {
                write!(f, "(struct")?;
                for (t, sz) in fields {
                    write!(f, " ({t}, {sz})")?;
                }
                write!(f, ")")
            }
            HeapType::Array(t) => write!(f, "(array {t})"),
            HeapType::Exists(q, sz, t) => write!(f, "(∃ {q} ⪯ α ≲ {sz}. {t})"),
        }
    }
}

/// A (monomorphic) arrow type `tf ::= τ1* → τ2*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ArrowType {
    /// The types consumed from the stack.
    pub params: Vec<Type>,
    /// The types left on the stack.
    pub results: Vec<Type>,
}

impl ArrowType {
    /// Constructs an arrow type.
    pub fn new(params: Vec<Type>, results: Vec<Type>) -> ArrowType {
        ArrowType { params, results }
    }
}

impl fmt::Display for ArrowType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "] → [")?;
        for (i, t) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// A quantifier `κ` in a polymorphic function type (paper §2.1).
///
/// Function types may quantify over locations, sizes (with lower/upper
/// bound constraints), qualifiers (with bound constraints), and pretypes
/// (with a qualifier lower bound, size upper bound, and a flag recording
/// whether instantiations may contain capabilities).
///
/// Quantifiers form a telescope: the constraint expressions of later
/// quantifiers may refer to variables bound by earlier ones.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// `ρ` — a location variable.
    Loc,
    /// `sz* ≤ σ ≤ sz*` — a size variable with lower and upper bounds.
    Size {
        /// Sizes that must be `≤ σ`.
        lower: Vec<Size>,
        /// Sizes that `σ` must be `≤`.
        upper: Vec<Size>,
    },
    /// `q* ⪯ δ ⪯ q*` — a qualifier variable with bounds.
    Qual {
        /// Qualifiers that must be `⪯ δ`.
        lower: Vec<Qual>,
        /// Qualifiers that `δ` must be `⪯`.
        upper: Vec<Qual>,
    },
    /// `q ⪯ α (c?) ≲ sz` — a pretype variable.
    Type {
        /// The minimum qualifier at which `α` may appear.
        lower_qual: Qual,
        /// An upper bound on the size of instantiations.
        size: Size,
        /// Whether instantiations may contain (bare) capabilities; relevant
        /// for what may be stored in garbage-collected memory (§3).
        may_contain_caps: bool,
    },
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Loc => write!(f, "ρ"),
            Quantifier::Size { lower, upper } => {
                write!(f, "{lower:?} ≤ σ ≤ {upper:?}")
            }
            Quantifier::Qual { lower, upper } => {
                write!(f, "{lower:?} ⪯ δ ⪯ {upper:?}")
            }
            Quantifier::Type {
                lower_qual,
                size,
                may_contain_caps,
            } => {
                let c = if *may_contain_caps { "ᶜ" } else { "" };
                write!(f, "{lower_qual} ⪯ α{c} ≲ {size}")
            }
        }
    }
}

/// A polymorphic function type `χ ::= ∀κ*. τ1* → τ2*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FunType {
    /// The quantifier telescope.
    pub quants: Vec<Quantifier>,
    /// The underlying arrow type.
    pub arrow: ArrowType,
}

impl FunType {
    /// A monomorphic function type with no quantifiers.
    pub fn mono(params: Vec<Type>, results: Vec<Type>) -> FunType {
        FunType {
            quants: Vec::new(),
            arrow: ArrowType::new(params, results),
        }
    }
}

impl fmt::Display for FunType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.quants.is_empty() {
            write!(f, "∀")?;
            for q in &self.quants {
                write!(f, " {q}.")?;
            }
            write!(f, " ")?;
        }
        write!(f, "{}", self.arrow)
    }
}

/// A concrete instantiation `z` for one quantifier (paper's index `z*`
/// supplied at `call`, `inst`, and in `coderef` values).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Index {
    /// Instantiates a location quantifier.
    Loc(Loc),
    /// Instantiates a size quantifier.
    Size(Size),
    /// Instantiates a qualifier quantifier.
    Qual(Qual),
    /// Instantiates a pretype quantifier.
    Pretype(Pretype),
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Index::Loc(l) => write!(f, "{l}"),
            Index::Size(s) => write!(f, "{s}"),
            Index::Qual(q) => write!(f, "{q}"),
            Index::Pretype(p) => write!(f, "{p}"),
        }
    }
}

impl fmt::Display for Pretype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pretype::Unit => write!(f, "unit"),
            Pretype::Num(nt) => write!(f, "{nt}"),
            Pretype::Prod(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Pretype::Ref(p, l, h) => write!(f, "(ref {p} {l} {h})"),
            Pretype::Ptr(l) => write!(f, "(ptr {l})"),
            Pretype::Cap(p, l, h) => write!(f, "(cap {p} {l} {h})"),
            Pretype::Rec(q, t) => write!(f, "(rec {q} ⪯ α. {t})"),
            Pretype::ExistsLoc(t) => write!(f, "(∃ρ. {t})"),
            Pretype::CodeRef(ft) => write!(f, "(coderef {ft})"),
            Pretype::Own(l) => write!(f, "(own {l})"),
            Pretype::Var(i) => write!(f, "α{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numtype_bits_and_classes() {
        assert_eq!(NumType::U32.bits(), 32);
        assert_eq!(NumType::F64.bits(), 64);
        assert!(NumType::I64.is_int());
        assert!(NumType::I64.is_signed_int());
        assert!(!NumType::U32.is_signed_int());
        assert!(NumType::F32.is_float());
    }

    #[test]
    fn type_constructors() {
        let t = Pretype::Num(NumType::I32).unr();
        assert_eq!(t.qual, Qual::Unr);
        let t = Pretype::Unit.lin();
        assert_eq!(t.qual, Qual::Lin);
        assert_eq!(Type::unit(), Pretype::Unit.unr());
    }

    #[test]
    fn display_roundtrip_smoke() {
        let t = Pretype::Ref(
            MemPriv::ReadWrite,
            Loc::Var(0),
            HeapType::Struct(vec![(Type::num(NumType::I32), Size::Const(32))]),
        )
        .lin();
        let s = t.to_string();
        assert!(s.contains("ref rw"), "{s}");
        assert!(s.contains("struct"), "{s}");
    }

    #[test]
    fn funtype_display_mentions_quants() {
        let ft = FunType {
            quants: vec![Quantifier::Loc],
            arrow: ArrowType::new(vec![], vec![Type::unit()]),
        };
        assert!(ft.to_string().starts_with('∀'));
        assert_eq!(FunType::mono(vec![], vec![]).to_string(), "[] → []");
    }
}
