//! Memory locations (paper §2.1).
//!
//! RichWasm has two global flat memories: the **linear** memory (manually
//! managed, references treated linearly) and the **unrestricted** memory
//! (garbage collected, ML-style references). A location is either an
//! abstract location variable `ρ` or a concrete index into one of the two
//! memories.

use std::fmt;

/// Which of the two RichWasm memories a concrete location lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mem {
    /// The manually managed, linear memory.
    Lin,
    /// The garbage-collected, unrestricted memory.
    Unr,
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mem::Lin => write!(f, "lin"),
            Mem::Unr => write!(f, "unr"),
        }
    }
}

/// A concrete runtime location: an index into one of the two memories.
///
/// ```
/// use richwasm::syntax::{ConcreteLoc, Mem};
/// let l = ConcreteLoc::lin(3);
/// assert_eq!(l.mem, Mem::Lin);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConcreteLoc {
    /// The memory this location belongs to.
    pub mem: Mem,
    /// The index within that memory.
    pub idx: u32,
}

impl ConcreteLoc {
    /// A concrete location in the linear memory.
    pub fn lin(idx: u32) -> ConcreteLoc {
        ConcreteLoc { mem: Mem::Lin, idx }
    }

    /// A concrete location in the unrestricted memory.
    pub fn unr(idx: u32) -> ConcreteLoc {
        ConcreteLoc { mem: Mem::Unr, idx }
    }
}

impl fmt::Display for ConcreteLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}", self.idx, self.mem)
    }
}

/// A static location `ℓ ::= ρ | i_unr | i_lin`.
///
/// `Var(i)` is a de Bruijn index into the location context (bound by
/// function-level `ρ` quantifiers, existential location types `∃ρ.τ`, or
/// `mem.unpack` blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// An abstract location variable `ρ`.
    Var(u32),
    /// A concrete location.
    Concrete(ConcreteLoc),
}

impl Loc {
    /// A concrete linear-memory location.
    pub fn lin(idx: u32) -> Loc {
        Loc::Concrete(ConcreteLoc::lin(idx))
    }

    /// A concrete unrestricted-memory location.
    pub fn unr(idx: u32) -> Loc {
        Loc::Concrete(ConcreteLoc::unr(idx))
    }

    /// Returns the concrete location, if this is not a variable.
    pub fn as_concrete(self) -> Option<ConcreteLoc> {
        match self {
            Loc::Var(_) => None,
            Loc::Concrete(c) => Some(c),
        }
    }

    /// The memory of the location, if concrete.
    pub fn mem(self) -> Option<Mem> {
        self.as_concrete().map(|c| c.mem)
    }
}

impl From<ConcreteLoc> for Loc {
    fn from(c: ConcreteLoc) -> Loc {
        Loc::Concrete(c)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Var(i) => write!(f, "ρ{i}"),
            Loc::Concrete(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_memory() {
        assert_eq!(Loc::lin(1).mem(), Some(Mem::Lin));
        assert_eq!(Loc::unr(2).mem(), Some(Mem::Unr));
        assert_eq!(Loc::Var(0).mem(), None);
    }

    #[test]
    fn concrete_roundtrip() {
        let c = ConcreteLoc::unr(7);
        assert_eq!(Loc::from(c).as_concrete(), Some(c));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Loc::Var(2).to_string(), "ρ2");
        assert_eq!(Loc::lin(4).to_string(), "4^lin");
        assert_eq!(Loc::unr(9).to_string(), "9^unr");
    }
}
