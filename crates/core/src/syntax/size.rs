//! Sizes (paper §2.1).
//!
//! RichWasm types track the size of the memory slots they occupy so that
//! strong updates can be checked to fit. Sizes are measured in **bits**
//! (the paper's `32 + size(v)` variant header and the 160-bit local
//! splitting example of §6 fix this unit).

use std::fmt;

/// A size expression `sz ::= σ | sz + sz | i`.
///
/// `Var(i)` is a de Bruijn index into the size context of the enclosing
/// function type. Constants are in bits.
///
/// ```
/// use richwasm::syntax::Size;
/// let sz = Size::Const(32) + Size::Const(64);
/// assert_eq!(sz.eval_closed(), Some(96));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Size {
    /// An abstract size variable `σ` (de Bruijn index).
    Var(u32),
    /// A constant size in bits.
    Const(u64),
    /// The sum of two sizes.
    Plus(Box<Size>, Box<Size>),
}

impl Size {
    /// Builds the sum of an iterator of sizes, normalising the empty sum to
    /// `Const(0)`.
    pub fn sum<I: IntoIterator<Item = Size>>(sizes: I) -> Size {
        let mut it = sizes.into_iter();
        match it.next() {
            None => Size::Const(0),
            Some(first) => it.fold(first, |acc, s| acc + s),
        }
    }

    /// Evaluates a size expression containing no variables.
    ///
    /// Returns `None` if a variable occurs.
    pub fn eval_closed(&self) -> Option<u64> {
        match self {
            Size::Var(_) => None,
            Size::Const(c) => Some(*c),
            Size::Plus(a, b) => Some(a.eval_closed()? + b.eval_closed()?),
        }
    }

    /// Returns `true` if the expression mentions no size variables.
    pub fn is_closed(&self) -> bool {
        match self {
            Size::Var(_) => false,
            Size::Const(_) => true,
            Size::Plus(a, b) => a.is_closed() && b.is_closed(),
        }
    }

    /// Normalises the size to a `(constant, sorted-variable-multiset)` pair.
    ///
    /// Two sizes with equal normal forms are provably equal under any
    /// variable assignment.
    pub fn normalize(&self) -> (u64, Vec<u32>) {
        let mut konst = 0u64;
        let mut vars = Vec::new();
        self.collect(&mut konst, &mut vars);
        vars.sort_unstable();
        (konst, vars)
    }

    fn collect(&self, konst: &mut u64, vars: &mut Vec<u32>) {
        match self {
            Size::Var(v) => vars.push(*v),
            Size::Const(c) => *konst += c,
            Size::Plus(a, b) => {
                a.collect(konst, vars);
                b.collect(konst, vars);
            }
        }
    }
}

impl Default for Size {
    fn default() -> Self {
        Size::Const(0)
    }
}

impl std::ops::Add for Size {
    type Output = Size;
    fn add(self, rhs: Size) -> Size {
        // Fold constants eagerly to keep expressions small.
        match (self, rhs) {
            (Size::Const(a), Size::Const(b)) => Size::Const(a + b),
            (Size::Const(0), s) | (s, Size::Const(0)) => s,
            (a, b) => Size::Plus(Box::new(a), Box::new(b)),
        }
    }
}

impl From<u64> for Size {
    fn from(bits: u64) -> Size {
        Size::Const(bits)
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Size::Var(i) => write!(f, "σ{i}"),
            Size::Const(c) => write!(f, "{c}"),
            Size::Plus(a, b) => write!(f, "({a} + {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_folds_constants() {
        assert_eq!(Size::Const(32) + Size::Const(32), Size::Const(64));
        assert_eq!(Size::Var(0) + Size::Const(0), Size::Var(0));
    }

    #[test]
    fn sum_of_empty_is_zero() {
        assert_eq!(Size::sum(std::iter::empty()), Size::Const(0));
    }

    #[test]
    fn eval_closed_handles_nesting() {
        let s = Size::Plus(
            Box::new(Size::Const(8)),
            Box::new(Size::Plus(
                Box::new(Size::Const(8)),
                Box::new(Size::Const(16)),
            )),
        );
        assert_eq!(s.eval_closed(), Some(32));
        assert!(s.is_closed());
        assert_eq!((Size::Var(1)).eval_closed(), None);
    }

    #[test]
    fn normalize_sorts_vars_and_sums_consts() {
        let s = Size::Var(2) + Size::Const(8) + Size::Var(0) + Size::Const(8);
        assert_eq!(s.normalize(), (16, vec![0, 2]));
    }
}
