//! Instructions (paper Fig. 2 "Terms" and Fig. 4 administrative forms).

use std::fmt;

use super::loc::Loc;
use super::qual::Qual;
use super::size::Size;
use super::types::{ArrowType, HeapType, Index, NumType, Pretype, Type};
use super::value::{HeapValue, Value};

/// A local effect `(i, τ)`: after the annotated block, local slot `i` has
/// type `τ` (paper §2.1: block-style instructions carry local effects).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalEffect {
    /// The local slot index.
    pub idx: u32,
    /// The slot's type after the block.
    pub ty: Type,
}

impl LocalEffect {
    /// Constructs a local effect.
    pub fn new(idx: u32, ty: Type) -> LocalEffect {
        LocalEffect { idx, ty }
    }
}

/// A block annotation: arrow type + local effects, shared by `block`, `if`,
/// `mem.unpack`, `variant.case` and `exist.unpack`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The type `τ1* → τ2*` of the enclosed instruction sequence.
    pub arrow: ArrowType,
    /// The prescribed effect on local slots.
    pub effects: Vec<LocalEffect>,
}

impl Block {
    /// Constructs a block annotation.
    pub fn new(arrow: ArrowType, effects: Vec<LocalEffect>) -> Block {
        Block { arrow, effects }
    }
}

/// Sign interpretation for integer operations that need one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Signed interpretation.
    S,
    /// Unsigned interpretation.
    U,
}

/// Integer unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntUnop {
    /// Count leading zeros.
    Clz,
    /// Count trailing zeros.
    Ctz,
    /// Population count.
    Popcnt,
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IntBinop {
    Add,
    Sub,
    Mul,
    Div(Sign),
    Rem(Sign),
    And,
    Or,
    Xor,
    Shl,
    Shr(Sign),
    Rotl,
    Rotr,
}

/// Integer relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IntRelop {
    Eq,
    Ne,
    Lt(Sign),
    Gt(Sign),
    Le(Sign),
    Ge(Sign),
}

/// Float unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FloatUnop {
    Abs,
    Neg,
    Sqrt,
    Ceil,
    Floor,
    Trunc,
    Nearest,
}

/// Float binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FloatBinop {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Copysign,
}

/// Float relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FloatRelop {
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
}

/// Numeric instructions `np.unop`, `np.binop`, `np.testop`, `np.relop`,
/// `np.cvtop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumInstr {
    /// An integer unary operation on the given type.
    IntUnop(NumType, IntUnop),
    /// An integer binary operation.
    IntBinop(NumType, IntBinop),
    /// `eqz`: test an integer for zero (produces `i32`).
    Eqz(NumType),
    /// An integer comparison (produces `i32`).
    IntRelop(NumType, IntRelop),
    /// A float unary operation.
    FloatUnop(NumType, FloatUnop),
    /// A float binary operation.
    FloatBinop(NumType, FloatBinop),
    /// A float comparison (produces `i32`).
    FloatRelop(NumType, FloatRelop),
    /// `dst.convert src`: numeric conversion (wrap/extend/trunc/convert…).
    Convert(NumType, NumType),
    /// `dst.reinterpret src`: bit-pattern reinterpretation between
    /// same-width types.
    Reinterpret(NumType, NumType),
}

/// A RichWasm instruction `e` (paper Fig. 2), including the administrative
/// instructions of Fig. 4 (which only arise during reduction).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// A value used as an instruction (constants in source programs;
    /// arbitrary values during reduction).
    Val(Value),
    /// A numeric operation.
    Num(NumInstr),
    /// `unreachable`: always traps.
    Unreachable,
    /// `nop`.
    Nop,
    /// `drop` the (unrestricted) top of stack.
    Drop,
    /// `select`: pick between two unrestricted values by an `i32` flag.
    Select,
    /// `block tf (i,τ)* e* end`.
    BlockI(Block, Vec<Instr>),
    /// `loop tf e* end`.
    LoopI(ArrowType, Vec<Instr>),
    /// `if tf (i,τ)* e* else e* end`.
    IfI(Block, Vec<Instr>, Vec<Instr>),
    /// `br i`.
    Br(u32),
    /// `br_if i`.
    BrIf(u32),
    /// `br_table i* j`.
    BrTable(Vec<u32>, u32),
    /// `return`.
    Return,
    /// `get_local i q`: read local `i`; if `q` is linear the slot is
    /// strongly updated to `unit` to prevent duplication.
    GetLocal(u32, Qual),
    /// `set_local i`: write local `i` (old contents must be unrestricted).
    SetLocal(u32),
    /// `tee_local i`: like `set_local` but keeps the value on the stack
    /// (value must be unrestricted).
    TeeLocal(u32),
    /// `get_global i`.
    GetGlobal(u32),
    /// `set_global i`.
    SetGlobal(u32),
    /// `qualify q`: coerce the top value's qualifier upward to `q`.
    Qualify(Qual),
    /// `coderef i`: push a code reference to table entry `i` of the current
    /// module.
    CodeRefI(u32),
    /// `inst z*`: partially instantiate the coderef on top of the stack.
    Inst(Vec<Index>),
    /// `call_indirect`: call through a (fully instantiated) coderef.
    CallIndirect,
    /// `call i z*`: direct call of function `i` with instantiation `z*`.
    Call(u32, Vec<Index>),
    /// `rec.fold p`: fold into the isorecursive pretype `p` (which must be
    /// a `rec`).
    RecFold(Pretype),
    /// `rec.unfold`.
    RecUnfold,
    /// `mem.pack ℓ`: abstract location `ℓ` into an existential package.
    MemPack(Loc),
    /// `mem.unpack tf (i,τ)* ρ. e*`: block that opens an existential
    /// location package, binding location variable 0 in the body.
    MemUnpack(Block, Vec<Instr>),
    /// `seq.group i q`: group the top `i` stack values into a tuple with
    /// qualifier `q`.
    Group(u32, Qual),
    /// `seq.ungroup`: splat a tuple back onto the stack.
    Ungroup,
    /// `cap.split`: split a `cap rw` into `cap r` + `own`.
    CapSplit,
    /// `cap.join`: inverse of `cap.split`.
    CapJoin,
    /// `ref.demote`: weaken a `ref rw` to `ref r`.
    RefDemote,
    /// `ref.split`: split a reference into capability + pointer.
    RefSplit,
    /// `ref.join`: recombine capability + pointer into a reference.
    RefJoin,
    /// `struct.malloc sz* q`: allocate a struct with the given field slot
    /// sizes in the memory selected by `q`.
    StructMalloc(Vec<Size>, Qual),
    /// `struct.free`: free a linear struct (fields must be unrestricted).
    StructFree,
    /// `struct.get i`: read (copy) field `i`, which must be unrestricted.
    StructGet(u32),
    /// `struct.set i`: overwrite field `i` (old value unrestricted; strong
    /// update allowed on linear references).
    StructSet(u32),
    /// `struct.swap i`: simultaneously read and replace field `i` — the
    /// only way to move linear values through memory.
    StructSwap(u32),
    /// `variant.malloc i τ* q`: allocate case `i` of variant type `τ*`.
    VariantMalloc(u32, Vec<Type>, Qual),
    /// `variant.case q ψ tf (i,τ)* (e*)* end`: case analysis; if `q` is
    /// linear the variant cell is freed and its payload handed to the
    /// branch.
    VariantCase(Qual, HeapType, Block, Vec<Vec<Instr>>),
    /// `array.malloc q`: allocate an array (length and fill value from the
    /// stack).
    ArrayMalloc(Qual),
    /// `array.get`: index an array (traps when out of bounds).
    ArrayGet,
    /// `array.set`: update an array slot (traps when out of bounds).
    ArraySet,
    /// `array.free`: free a linear array (elements must be unrestricted).
    ArrayFree,
    /// `exist.pack p ψ q`: pack a value into a heap-allocated existential
    /// package with witness `p`.
    ExistPack(Pretype, HeapType, Qual),
    /// `exist.unpack q ψ tf (i,τ)* α. e* end`: open a package, binding
    /// pretype variable 0 in the body; frees the cell when `q` is linear.
    ExistUnpack(Qual, HeapType, Block, Vec<Instr>),

    // ------------------------------------------------------------------
    // Administrative instructions (paper Fig. 4) — produced by reduction,
    // never written in source modules.
    // ------------------------------------------------------------------
    /// `trap`: the configuration has aborted.
    Trap,
    /// `call cl z*`: a resolved call about to enter its frame. The closure
    /// is referenced as (instance, function index) into the store.
    CallAdmin {
        /// The module instance providing the function's environment.
        inst: u32,
        /// The function index within the instance's `func` list.
        func: u32,
        /// The quantifier instantiation.
        indices: Vec<Index>,
    },
    /// `label_n {e1*} e2* end`: a control frame with arity `n`,
    /// continuation `e1*` (non-empty only for loops) and body `e2*`.
    Label {
        /// Number of values the label yields (branch arity).
        arity: u32,
        /// The continuation spliced in when a branch targets this label.
        cont: Vec<Instr>,
        /// The body currently being reduced.
        body: Vec<Instr>,
    },
    /// `local_n {i; (v, sz)*} e* end`: a function activation frame with
    /// return arity `n`, owning module instance `i`, and local slots.
    LocalFrame {
        /// Return arity.
        arity: u32,
        /// The module instance the code belongs to.
        inst: u32,
        /// Local slot values and their sizes.
        locals: Vec<(Value, Size)>,
        /// The body being reduced.
        body: Vec<Instr>,
    },
    /// `malloc sz hv q`: allocate `hv` in the memory selected by `q`.
    MallocAdmin(Size, HeapValue, Qual),
    /// `free`: deallocate the linear location referenced on the stack.
    Free,
}

impl Instr {
    /// A convenience constant constructor.
    pub fn i32(v: i32) -> Instr {
        Instr::Val(Value::i32(v))
    }

    /// Returns `true` if this instruction is a value (already reduced).
    pub fn is_value(&self) -> bool {
        matches!(self, Instr::Val(_))
    }

    /// Returns `true` if this is one of the administrative instructions
    /// that only arise during reduction.
    pub fn is_administrative(&self) -> bool {
        matches!(
            self,
            Instr::Trap
                | Instr::CallAdmin { .. }
                | Instr::Label { .. }
                | Instr::LocalFrame { .. }
                | Instr::MallocAdmin(..)
                | Instr::Free
        )
    }
}

impl From<Value> for Instr {
    fn from(v: Value) -> Instr {
        Instr::Val(v)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Val(v) => write!(f, "{v}"),
            Instr::Num(n) => write!(f, "{n:?}"),
            Instr::Unreachable => write!(f, "unreachable"),
            Instr::Nop => write!(f, "nop"),
            Instr::Drop => write!(f, "drop"),
            Instr::Select => write!(f, "select"),
            Instr::BlockI(b, _) => write!(f, "block {}", b.arrow),
            Instr::LoopI(a, _) => write!(f, "loop {a}"),
            Instr::IfI(b, _, _) => write!(f, "if {}", b.arrow),
            Instr::Br(i) => write!(f, "br {i}"),
            Instr::BrIf(i) => write!(f, "br_if {i}"),
            Instr::BrTable(is, j) => write!(f, "br_table {is:?} {j}"),
            Instr::Return => write!(f, "return"),
            Instr::GetLocal(i, q) => write!(f, "get_local {i} {q}"),
            Instr::SetLocal(i) => write!(f, "set_local {i}"),
            Instr::TeeLocal(i) => write!(f, "tee_local {i}"),
            Instr::GetGlobal(i) => write!(f, "get_global {i}"),
            Instr::SetGlobal(i) => write!(f, "set_global {i}"),
            Instr::Qualify(q) => write!(f, "qualify {q}"),
            Instr::CodeRefI(i) => write!(f, "coderef {i}"),
            Instr::Inst(_) => write!(f, "inst"),
            Instr::CallIndirect => write!(f, "call_indirect"),
            Instr::Call(i, _) => write!(f, "call {i}"),
            Instr::RecFold(_) => write!(f, "rec.fold"),
            Instr::RecUnfold => write!(f, "rec.unfold"),
            Instr::MemPack(l) => write!(f, "mem.pack {l}"),
            Instr::MemUnpack(b, _) => write!(f, "mem.unpack {}", b.arrow),
            Instr::Group(i, q) => write!(f, "seq.group {i} {q}"),
            Instr::Ungroup => write!(f, "seq.ungroup"),
            Instr::CapSplit => write!(f, "cap.split"),
            Instr::CapJoin => write!(f, "cap.join"),
            Instr::RefDemote => write!(f, "ref.demote"),
            Instr::RefSplit => write!(f, "ref.split"),
            Instr::RefJoin => write!(f, "ref.join"),
            Instr::StructMalloc(szs, q) => write!(f, "struct.malloc {szs:?} {q}"),
            Instr::StructFree => write!(f, "struct.free"),
            Instr::StructGet(i) => write!(f, "struct.get {i}"),
            Instr::StructSet(i) => write!(f, "struct.set {i}"),
            Instr::StructSwap(i) => write!(f, "struct.swap {i}"),
            Instr::VariantMalloc(i, _, q) => write!(f, "variant.malloc {i} {q}"),
            Instr::VariantCase(q, _, b, _) => {
                write!(f, "variant.case {q} {}", b.arrow)
            }
            Instr::ArrayMalloc(q) => write!(f, "array.malloc {q}"),
            Instr::ArrayGet => write!(f, "array.get"),
            Instr::ArraySet => write!(f, "array.set"),
            Instr::ArrayFree => write!(f, "array.free"),
            Instr::ExistPack(_, _, q) => write!(f, "exist.pack {q}"),
            Instr::ExistUnpack(q, _, b, _) => {
                write!(f, "exist.unpack {q} {}", b.arrow)
            }
            Instr::Trap => write!(f, "trap"),
            Instr::CallAdmin { inst, func, .. } => write!(f, "call⟨{inst}.{func}⟩"),
            Instr::Label { arity, body, .. } => {
                write!(f, "label_{arity}{{…}} [{} instrs] end", body.len())
            }
            Instr::LocalFrame {
                arity, inst, body, ..
            } => {
                write!(f, "local_{arity}{{{inst}}} [{} instrs] end", body.len())
            }
            Instr::MallocAdmin(sz, _, q) => write!(f, "malloc {sz} {q}"),
            Instr::Free => write!(f, "free"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_instrs_are_values() {
        assert!(Instr::i32(1).is_value());
        assert!(!Instr::Nop.is_value());
    }

    #[test]
    fn administrative_classification() {
        assert!(Instr::Trap.is_administrative());
        assert!(Instr::Free.is_administrative());
        assert!(!Instr::Drop.is_administrative());
        assert!(!Instr::Return.is_administrative());
    }

    #[test]
    fn display_smoke() {
        assert_eq!(Instr::Br(2).to_string(), "br 2");
        assert_eq!(Instr::GetLocal(0, Qual::Lin).to_string(), "get_local 0 lin");
        assert_eq!(Instr::Trap.to_string(), "trap");
    }
}
